"""The search-engine substrate on its own: real top-k retrieval.

Shows the Lucene-like machinery the cache sits on: frequency-sorted
posting lists, early-terminated traversal (the utilization rate PU),
tf-idf scoring with materialized postings, and the on-disk layout that
turns queries into the I/O pattern of Fig. 1(b).

Run:  python examples/search_engine_demo.py
"""

from repro import CorpusConfig, InvertedIndex, Query, QueryProcessor
from repro.trace import analyze_trace, trace_from_engine
from repro.engine.querylog import QueryLogConfig, generate_query_log


def main() -> None:
    index = InvertedIndex(CorpusConfig(num_docs=100_000, vocab_size=10_000,
                                       avg_doc_len=250, seed=5))
    processor = QueryProcessor(index, top_k=10, seed=2)
    print(index.describe())

    # A multi-term query over mid-frequency terms.
    query = Query(query_id=0, terms=(120, 450, 2210),
                  text="term00120 term00450 term02210")
    plan = processor.plan(query)
    print(f"\nquery: {query.text!r}")
    for demand in plan.demands:
        info = index.lexicon.term(demand.term_id)
        print(f"  {info.text}: df={info.doc_freq}, "
              f"list={info.list_bytes / 1024:.0f} KB, "
              f"traversal reads {demand.pu:.0%} "
              f"({demand.needed_bytes / 1024:.0f} KB, "
              f"{demand.postings} postings)")
    print(f"  CPU cost: {processor.cpu_time_us(plan):.0f} us")

    entry = processor.execute(plan, materialize=True)
    print(f"\ntop {len(entry)} results (tf-idf over traversed prefixes):")
    for rank, hit in enumerate(entry.results, start=1):
        print(f"  {rank:2d}. doc {hit.doc_id:6d}  score {hit.score:.3f}")
    print(f"result entry size if cached: {entry.nbytes / 1024:.1f} KB")

    # The I/O this engine generates (Fig. 1b's measurement).
    log = generate_query_log(QueryLogConfig(
        num_queries=300, distinct_queries=150, vocab_size=10_000, seed=3))
    trace = trace_from_engine(index, log)
    analysis = analyze_trace(trace)
    print(f"\ndisk trace of 300 queries: {analysis.summary()}")


if __name__ == "__main__":
    main()
