"""End-to-end pipeline: documents -> index -> parsed queries -> cached search.

Everything a downstream adopter would actually do: generate (or bring)
token-level documents, build an exact inverted index from them, parse
free-text queries against the lexicon, and serve them through the
paper's hybrid cache — including the dynamic-scenario TTL and the
three-level intersection cache.

Run:  python examples/documents_to_search.py
"""

from repro.core.config import CacheConfig, Policy
from repro.core.intersections import ThreeLevelCacheManager
from repro.core.manager import build_hierarchy_for
from repro.engine.builder import build_index
from repro.engine.documents import generate_documents
from repro.engine.parser import QueryParser
from repro.engine.processor import QueryProcessor

KB = 1024
MB = 1024 * KB


def main() -> None:
    # 1. Documents in (your corpus would go here).
    store = generate_documents(num_docs=3_000, vocab_size=1_500,
                               avg_doc_len=120, seed=10)
    print(f"{len(store)} documents, {store.total_tokens:,} tokens")

    # 2. Exact inverted index out.
    index = build_index(store, vocab_size=1_500)
    print(index.describe())

    # 3. Free-text queries through the parser.
    parser = QueryParser(index.lexicon)
    queries = [
        parser.parse("term00012 term00047"),
        parser.parse("TERM00012, term00047 nonsense-word"),  # normalised
        parser.parse("term00003 term00104 term00761"),
        parser.parse("term00012 term00047"),                  # a repeat
    ] * 10

    # 4. The hybrid cache in front (three-level, dynamic scenario).
    cfg = CacheConfig(
        mem_result_bytes=200 * KB, mem_list_bytes=1 * MB,
        ssd_result_bytes=2 * MB, ssd_list_bytes=8 * MB,
        policy=Policy.CBLRU,
        ttl_us=30_000_000.0,  # 30 s of simulated time
    )
    manager = ThreeLevelCacheManager(
        cfg, build_hierarchy_for(cfg, index), index,
        intersection_bytes=1 * MB, min_pair_freq=2,
        materialize_results=True,
    )
    for query in queries:
        outcome = manager.process_query(query)
    print(f"\nreplayed {manager.stats.queries} parsed queries: "
          f"hit ratio {manager.stats.combined_hit_ratio:.0%}, "
          f"mean {manager.stats.mean_response_us / 1000:.2f} ms, "
          f"intersection hits {manager.intersections.hits}")

    # 5. Real ranked results for one query (scored from built postings).
    processor = QueryProcessor(index, top_k=5, seed=1)
    plan = processor.plan(queries[0])
    entry = processor.execute(plan, materialize=True)
    print(f"\ntop hits for {queries[0].text!r}:")
    for rank, hit in enumerate(entry.results[:5], start=1):
        doc = store.get(hit.doc_id)
        tfs = doc.term_frequencies()
        counts = {f"term{t:05d}": tfs.get(t, 0) for t in queries[0].key}
        print(f"  {rank}. doc {hit.doc_id:4d} score {hit.score:6.2f}  {counts}")


if __name__ == "__main__":
    main()
