"""Quickstart: build a search engine, put the hybrid cache in front of it.

Builds a 200k-document synthetic index, replays 2 000 queries through the
paper's two-level cache (DRAM L1 + SSD L2, CBSLRU policy), and prints the
hit ratios, response time and SSD wear the architecture delivers.

Run:  python examples/quickstart.py
"""

from repro import (
    CacheConfig,
    CacheManager,
    CorpusConfig,
    InvertedIndex,
    QueryLogConfig,
    build_hierarchy_for,
    generate_query_log,
)

MB = 1024 * 1024


def main() -> None:
    # 1. The substrate: a synthetic inverted index (stands in for the
    #    paper's 5M-document enwiki/Lucene index).
    index = InvertedIndex(CorpusConfig.paper_scale(200_000))
    print(f"index: {index.describe()}")

    # 2. A Zipf-repeated query stream (stands in for the AOL log).
    log = generate_query_log(
        QueryLogConfig(num_queries=2_000, distinct_queries=600,
                       vocab_size=10_000, seed=1)
    )
    print(f"query log: {len(log)} queries, "
          f"{log.distinct_fraction():.0%} distinct")

    # 3. The paper's architecture: memory L1 + SSD L2 in front of the HDD.
    cfg = CacheConfig.paper_split(mem_bytes=8 * MB, ssd_bytes=64 * MB)
    hierarchy = build_hierarchy_for(cfg, index)
    manager = CacheManager(cfg, hierarchy, index)
    manager.warmup_static(log)  # CBSLRU: pin hot entries from log analysis

    # 4. Replay.
    for query in log:
        manager.process_query(query)

    # 5. What the cache did.
    stats = manager.stats
    print(f"\nresult hit ratio:   {stats.result_hit_ratio:.1%}")
    print(f"list hit ratio:     {stats.list_hit_ratio:.1%}")
    print(f"combined hit ratio: {stats.combined_hit_ratio:.1%}")
    print(f"mean response:      {stats.mean_response_us / 1000:.2f} ms")
    print(f"throughput:         {stats.throughput_qps:.1f} queries/s")
    print(f"SSD block erasures: {manager.ssd.erase_count}")
    wear = manager.ssd.wear()
    print(f"SSD wear: max {wear.max_erases} erases/block, "
          f"skew {wear.skew:.2f}")
    print("\nTable I situations (probability, mean ms):")
    for name, prob, ms in stats.situation_table():
        if prob > 0:
            print(f"  {name}: p={prob:.3f}  t={ms:.2f} ms")


if __name__ == "__main__":
    main()
