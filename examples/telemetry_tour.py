"""Telemetry tour: spans, latency histograms, and the metrics registry.

Attaches a :class:`repro.obs.Telemetry` bundle to the paper's two-level
cache, replays a query stream, and shows every exposition surface:

* the per-stage latency breakdown (where each query's microseconds went),
* exact percentiles from the log-bucketed histograms,
* cache life-cycle counters bridged from the CacheEvents bus,
* the span tree of a single query,
* the decision audit trail and `repro explain`-style verdicts,
* the flash-device telemetry bridge (erases, WA, wear projections),
* the timeline: windowed time series, steady-state detection,
  sparklines, SLO verdicts, and tail exemplars,
* the on-disk telemetry dir (spans.jsonl / metrics.json / metrics.prom
  / audit.jsonl / timeline.jsonl),
* the host profiler: wall-clock attribution by subsystem, hot-path
  counters, and flamegraph-ready collapsed stacks (`repro profile`),
* kernel blame: per-query critical-path decomposition under open-loop
  load, differential tail blame, and the capacity model (`repro blame`),
* the flight recorder: streaming SLO/anomaly verdicts over each window
  as it closes, and the self-contained incident bundle a past-the-knee
  overload dumps (`repro incidents` / `repro explain --incident`).

Run:  python examples/telemetry_tour.py
"""

import tempfile

from repro import (
    CacheConfig,
    CacheManager,
    CorpusConfig,
    InvertedIndex,
    QueryLogConfig,
    build_hierarchy_for,
    generate_query_log,
)
from repro.obs import (
    DEFAULT_SLOS,
    FlightRecorder,
    Profiler,
    Telemetry,
    assemble_queries,
    blame_profiles,
    evaluate_slos,
    explain_subject,
    format_explanation,
    format_query_blame,
    format_stage_breakdown,
    list_incidents,
    run_detectors,
    sparkline,
    steady_state_window,
    validate_incident_dir,
    window_series,
    write_telemetry_dir,
)
from repro.workloads.openloop import PoissonArrivals, run_open_loop

MB = 1024 * 1024


def main() -> None:
    index = InvertedIndex(CorpusConfig.paper_scale(200_000))
    log = generate_query_log(
        QueryLogConfig(num_queries=1_000, distinct_queries=300,
                       vocab_size=10_000, seed=1)
    )

    # One registry + one tracer, attached as a unit. Everything below is
    # observation only: outcomes are identical with telemetry=None.
    tel = Telemetry()
    tel.attach_timeline(window_us=50_000.0)  # 50 ms windows + exemplars
    cfg = CacheConfig.paper_split(mem_bytes=8 * MB, ssd_bytes=64 * MB)
    manager = CacheManager(cfg, build_hierarchy_for(cfg, index), index,
                           telemetry=tel)
    manager.warmup_static(log)
    for query in log:
        manager.process_query(query)

    # 1. Per-stage breakdown: stage sums reconcile with total response.
    print(format_stage_breakdown(tel.registry))
    staged = sum(inst.sum for name, tags, inst in tel.registry.items()
                 if name == "stage_latency_us")
    print(f"\nstage sum {staged / 1e3:.1f} ms vs total response "
          f"{manager.stats.total_response_us / 1e3:.1f} ms")

    # 2. Exact percentiles straight off a histogram instrument.
    print("\nquery latency percentiles by Table-I situation:")
    for name, tags, inst in tel.registry.items():
        if name == "query_latency_us":
            p50, p90, p95, p99, p999 = inst.percentiles()
            print(f"  {tags['situation']:>3s}: n={inst.count:<5d} "
                  f"p50={p50 / 1e3:.2f} ms  p99={p99 / 1e3:.2f} ms")

    # 3. Cache life-cycle counters bridged from the CacheEvents bus.
    print("\ncache event counters:")
    for name, tags, inst in tel.registry.items():
        if name.startswith("cache_") and not name.endswith("bytes_total"):
            label = ",".join(f"{k}={v}" for k, v in sorted(tags.items()))
            print(f"  {name}{{{label}}} = {inst.value}")

    # 4. The span tree of the last query.
    spans = tel.tracer.spans
    last_query = max(s.span_id for s in spans if s.name == "query")
    tree = [s for s in spans
            if s.span_id == last_query or s.parent_id == last_query]
    print("\nlast query's spans:")
    for s in sorted(tree, key=lambda s: (s.start_us, s.span_id)):
        indent = "  " if s.parent_id else ""
        print(f"  {indent}{s.name:<16s} {s.dur_us:8.1f} us  {s.attrs}")

    # 5. The decision audit trail: why is a given term (not) on the SSD?
    # Every admission (Formula 1/2, EV vs TEV), victim walk (CBLRU
    # replace-first region), and GC choice left a structured record.
    selects = [r for r in tel.audit.records if r.type == "list.select"]
    print(f"\naudit log: {len(tel.audit)} records "
          f"({len(selects)} Formula-1/2 admission decisions)")
    term = selects[-1].key
    print(format_explanation(
        explain_subject(tel.audit.records, "list", term)))

    # 6. Flash-device telemetry: FTL counters + wear projections bridged
    # into the registry (what `repro run --telemetry` tabulates).
    tel.collect()  # sample the flash bridges
    print("\nflash telemetry:")
    for name, tags, inst in tel.registry.items():
        if name.startswith("flash_"):
            print(f"  {name}{{device={tags['device']}}} = {inst.value:g}")

    # 7. The timeline: the same registry, factored over 50 ms windows.
    # Counter deltas per window sum exactly to the cumulative counters;
    # merged sub-histograms reproduce the run-level distributions.
    tel.timeline.finish()
    windows = tel.timeline.windows
    steady = steady_state_window(windows)
    print(f"\ntimeline: {len(windows)} windows of 50 ms; "
          f"steady state from window {steady}")
    for series in ("hit_ratio", "p99_response_us", "write_amp"):
        vals = [v for _, v in window_series(windows, series)]
        print(f"  {series:<16s} {sparkline(vals, width=60)}")

    # 8. SLO verdicts and anomaly detectors over those windows — what
    # `repro timeline DIR` (and `--strict` in CI) checks.
    print("\nSLOs:")
    for res in evaluate_slos(DEFAULT_SLOS, windows):
        print(f"  {res.format()}")
    anomalies = run_detectors(windows)
    print(f"anomalies: {len(anomalies)}")
    for a in anomalies[:3]:
        print(f"  {a.format()}")

    # 9. Tail exemplars: each one remembers which query (and span)
    # produced a sample above the live p99, so aggregate tail latency
    # chains back to a cause (`repro explain DIR --query N`).
    exemplars = tel.exemplars.to_dicts()
    if exemplars:
        ex = exemplars[-1]
        print(f"\ntail exemplar: {ex['metric']} = {ex['value_us']:.1f} us "
              f"(query {ex['query_id']}, span {ex['span_id']}, "
              f"window {ex['window']})")

    # 10. Export: what `repro run --telemetry DIR --timeline` writes.
    with tempfile.TemporaryDirectory() as out:
        written = write_telemetry_dir(tel, out)
        print(f"\nwrote {written['spans']} spans, {written['metrics']} "
              f"metrics, {written['audit_records']} audit records and "
              f"{written.get('timeline_windows', 0)} timeline windows "
              f"(spans.jsonl, metrics.json, metrics.prom, audit.jsonl, "
              f"timeline.jsonl)")

    # 11. Host time: all of the above measured the *simulated* system;
    # the profiler measures the *simulator*. Everything inside the
    # `profile()` section is attributed to a subsystem, hot-path
    # counters turn wall time into ns/op, and `folded_lines()` is
    # flamegraph.pl / speedscope food (what `repro profile` runs).
    profiler = Profiler()
    replay = generate_query_log(
        QueryLogConfig(num_queries=300, distinct_queries=300,
                       vocab_size=10_000, seed=2))
    with profiler.profile():
        for query in replay:
            manager.process_query(query)
    doc = profiler.summary(top=3)
    print(f"\nhost profile: {doc['wall_s'] * 1e3:.0f} ms wall for "
          f"{len(replay)} queries")
    for name, entry in sorted(doc["subsystems"].items(),
                              key=lambda kv: -kv[1]["share"])[:4]:
        print(f"  {name:<16s} {entry['share']:6.1%} of self time")
    for op, ns in sorted(doc["wall_ns_per_op"].items()):
        print(f"  {op:<20s} {doc['counters'][op]:>9,d} ops "
              f"({ns:,.0f} ns/op of wall)")
    print(f"  {len(profiler.folded_lines())} collapsed stacks ready for "
          f"flamegraph.pl")

    # 12. Kernel blame: replay under open-loop arrivals on the
    # concurrency kernel, then decompose every query's latency into
    # admission wait + per-resource queue wait + service — exactly, with
    # zero residual — and fit the capacity model (`repro blame DIR`).
    tour_tel = Telemetry(trace=False, audit=False)
    open_mgr = CacheManager(cfg, build_hierarchy_for(cfg, index), index,
                            telemetry=tour_tel)
    open_log = generate_query_log(
        QueryLogConfig(num_queries=400, distinct_queries=300,
                       vocab_size=10_000, seed=3))
    run_open_loop(open_mgr, list(open_log), PoissonArrivals(60.0, seed=4),
                  concurrency=4, max_queue=64, label="tour")
    rec = tour_tel.blame
    queries = assemble_queries(rec.records)
    worst = max(queries, key=lambda q: q.total_us)
    print(f"\nkernel blame: {len(queries)} queries decomposed, max "
          f"|residual| {max(abs(q.residual_us) for q in queries):g} us")
    print(format_query_blame(worst))
    profiles = blame_profiles(queries, tail_pct=95.0)
    print(f"tail blame verdict: {profiles['verdict']} (wait grew "
          f"{profiles['wait_growth_us'][profiles['verdict']] / 1e3:.2f} ms "
          f"tail vs median)")
    cap = rec.capacity(completed=len(queries))
    check = "ok" if cap["little_law_ok"] else "FAILED"
    print(f"capacity: bottleneck {cap['bottleneck']} at "
          f"{cap['bottleneck_utilization']:.0%}, knee ~{cap['knee_qps']:.0f} "
          f"qps, Little's-law self-check {check}")

    # 13. Flight recorder: arm the black box, push the system past the
    # knee, and an incident bundle falls out — trigger verdict, the
    # surrounding windows, span trees, blame critical paths, audit
    # trail, capacity snapshot, config fingerprint — self-contained and
    # schema-valid (`repro incidents DIR`, `repro explain --incident N`).
    fr_tel = Telemetry(trace=False, audit=False)
    fr_tel.attach_timeline(window_us=10_000.0)
    fr_mgr = CacheManager(cfg, build_hierarchy_for(cfg, index), index,
                          telemetry=fr_tel)
    with tempfile.TemporaryDirectory() as out:
        flight = FlightRecorder(fr_tel, out_dir=out,
                                config={"tour": "past-knee"}).arm()
        run_open_loop(fr_mgr, list(open_log),
                      PoissonArrivals(3000.0, seed=5),
                      concurrency=2, max_queue=64, label="overload")
        fr_tel.timeline.finish()
        n = flight.finish()
        print(f"\nflight recorder: {n} incident(s) under overload")
        for bundle, man in zip(list_incidents(out), flight.incidents):
            counts = validate_incident_dir(bundle)  # raises if not valid
            print(f"  trigger [{man['trigger']['severity']}] "
                  f"{man['trigger']['detector']} @ window "
                  f"{man['trigger_window']}: {man['trigger']['detail']}")
            print(f"  evidence: {counts['windows']} windows, "
                  f"{counts['spans']} spans, {counts['blame_queries']} "
                  f"blame queries, fingerprint "
                  f"{man['config']['fingerprint']}")


if __name__ == "__main__":
    main()
