"""LRU vs CBLRU vs CBSLRU on one workload — the paper's headline table.

Runs the same query stream through the two-level cache under the three
replacement policies and prints the quantities the paper's evaluation
reports: hit ratios (Fig. 14b), response time and throughput (Fig. 17),
block erasures and mean flash access time (Fig. 19).

Run:  python examples/cache_policy_comparison.py
"""

from repro import CacheConfig, Policy
from repro.analysis.tables import format_table
from repro.workloads.retrieval import run_cached
from repro.workloads.sweep import make_log_for, make_scaled_index

MB = 1024 * 1024


def main() -> None:
    index = make_scaled_index(1_000_000)
    log = make_log_for(4_000, distinct_queries=1_200, seed=4)
    print(f"{index.describe()}, {len(log)} queries\n")

    rows = []
    results = {}
    for policy in (Policy.LRU, Policy.CBLRU, Policy.CBSLRU):
        cfg = CacheConfig.paper_split(16 * MB, 64 * MB, policy=policy)
        result = run_cached(index, log, cfg)
        results[policy] = result
        stats = result.stats
        rows.append([
            policy.value.upper(),
            stats.combined_hit_ratio * 100,
            result.mean_response_ms,
            result.throughput_qps,
            result.ssd_erases,
            result.ssd_mean_access_us / 1000,
        ])
    print(format_table(
        ["policy", "hit %", "resp ms", "qps", "erases", "flash ms"],
        rows,
        title="Two-level cache under the three policies",
    ))

    lru = results[Policy.LRU]
    for policy in (Policy.CBLRU, Policy.CBSLRU):
        r = results[policy]
        dt = 100 * (1 - r.mean_response_ms / lru.mean_response_ms)
        de = 100 * (1 - r.ssd_erases / max(1, lru.ssd_erases))
        print(f"\n{policy.value.upper()} vs LRU: "
              f"response -{dt:.1f}% (paper: -35.27/-41.05), "
              f"erases -{de:.1f}% (paper: -59.92/-71.52)")


if __name__ == "__main__":
    main()
