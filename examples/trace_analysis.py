"""Trace tooling: generate, persist, parse, analyze, replay.

Reproduces the Section III methodology end to end: a UMass-style
web-search trace and a DiskMon-style engine capture are generated,
round-tripped through their on-disk formats, analyzed for the four I/O
signatures, and replayed against the HDD and SSD simulators to quantify
the random-read gap that motivates the architecture.

Run:  python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro import CorpusConfig, InvertedIndex, SimulatedHDD, SimulatedSSD, FlashConfig
from repro.analysis.tables import format_table
from repro.engine.querylog import QueryLogConfig, generate_query_log
from repro.trace import (
    WebSearchTraceConfig,
    analyze_trace,
    generate_websearch_trace,
    parse_diskmon,
    parse_spc,
    replay_trace,
    trace_from_engine,
    write_diskmon,
    write_spc,
)


def main() -> None:
    # 1. Generate the two traces of Fig. 1.
    umass = generate_websearch_trace(WebSearchTraceConfig(num_requests=20_000))
    index = InvertedIndex(CorpusConfig(num_docs=100_000, vocab_size=10_000, seed=6))
    log = generate_query_log(QueryLogConfig(
        num_queries=400, distinct_queries=200, vocab_size=10_000, seed=6))
    engine = trace_from_engine(index, log)

    # 2. Round-trip through the capture formats the paper used.
    with tempfile.TemporaryDirectory() as tmp:
        spc_path = Path(tmp) / "websearch.spc"
        dmn_path = Path(tmp) / "engine.diskmon"
        write_spc(umass, spc_path)
        write_diskmon(engine, dmn_path)
        umass = parse_spc(spc_path, name="websearch(spc)")
        engine = parse_diskmon(dmn_path, name="engine(diskmon)")
        print(f"round-tripped {len(umass)} SPC and {len(engine)} DiskMon records")

    # 3. Section III's signature analysis.
    rows = []
    for trace in (umass, engine):
        a = analyze_trace(trace)
        rows.append([a.name, a.num_requests, a.read_fraction * 100,
                     a.locality_top10 * 100, a.random_fraction * 100,
                     a.skipped_read_fraction * 100])
    print(format_table(
        ["trace", "requests", "read %", "locality %", "random %", "skipped %"],
        rows, title="\nSection III — I/O signatures"))

    # 4. Replay a slice on both device models.
    slice_ = umass.slice(0, 2_000)
    hdd = SimulatedHDD()
    ssd = SimulatedSSD(FlashConfig(num_blocks=2048, overprovision=0.1))
    # Pre-fill the SSD so reads hit programmed pages.
    for off in range(0, ssd.capacity_bytes // 2, 128 * 1024):
        ssd.write(off // 512, 128 * 1024)
    ssd.reset_counters()
    rows = []
    for device in (hdd, ssd):
        r = replay_trace(slice_, device)
        rows.append([device.name, r.mean_latency_us / 1000, r.throughput_iops])
    print(format_table(
        ["device", "mean latency ms", "IOPS"],
        rows, title="\nReplaying 2000 web-search requests"))
    print("\nthe SSD's random-read advantage is the premise of the "
          "hybrid architecture (Section I)")


if __name__ == "__main__":
    main()
