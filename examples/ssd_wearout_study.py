"""SSD simulator deep-dive: FTLs, garbage collection and lifetime.

Uses the flash substrate directly (no search engine) to show why the
paper worries about writes: the same logical write stream costs wildly
different erase counts depending on the FTL and on whether writes are
block-aligned (the paper's placement policy) or small and scattered (the
LRU baseline's).  Ends with the lifetime projection the Griffin citation
[3] alludes to.

Run:  python examples/ssd_wearout_study.py
"""

import numpy as np

from repro import FlashConfig, SimulatedSSD
from repro.analysis.tables import format_table

BLOCK = 128 * 1024


def aligned_workload(ssd: SimulatedSSD, writes: int, rng) -> None:
    """128 KB block-aligned overwrites (CBLRU-style placement)."""
    slots = ssd.capacity_bytes // BLOCK - 1
    for _ in range(writes):
        slot = int(rng.integers(0, slots))
        ssd.write(slot * BLOCK // 512, BLOCK)


def scattered_workload(ssd: SimulatedSSD, writes: int, rng) -> None:
    """20 KB writes at arbitrary sector offsets (LRU-style placement),
    same total bytes as the aligned workload."""
    span = ssd.capacity_bytes - BLOCK
    for _ in range(writes * (BLOCK // (20 * 1024))):
        off = int(rng.integers(0, span // 512)) * 512
        ssd.write(off // 512, 20 * 1024)


def main() -> None:
    writes = 600

    print("Placement study (page-mapping FTL, identical bytes written):")
    rows = []
    for name, workload in (("block-aligned", aligned_workload),
                           ("20KB scattered", scattered_workload)):
        ssd = SimulatedSSD(FlashConfig(num_blocks=512, overprovision=0.12))
        workload(ssd, writes, np.random.default_rng(1))
        stats = ssd.ftl.stats
        rows.append([name, ssd.erase_count, stats.write_amplification,
                     ssd.mean_access_time_us / 1000])
    print(format_table(
        ["write pattern", "erases", "write amp", "mean access ms"], rows))

    print("\nFTL study (same mixed workload on every FTL):")
    rows = []
    for ftl in ("page", "dftl", "fast", "block"):
        ssd = SimulatedSSD(FlashConfig(num_blocks=96, overprovision=0.15),
                           ftl=ftl)
        rng = np.random.default_rng(2)
        slots = ssd.capacity_bytes // BLOCK - 1
        for _ in range(400):
            slot = int(rng.integers(0, slots))
            if rng.random() < 0.6:
                ssd.write(slot * BLOCK // 512, BLOCK)
            else:
                ssd.write(slot * BLOCK // 512 + 8, 20 * 1024)
        rows.append([ftl, ssd.erase_count,
                     ssd.ftl.stats.write_amplification,
                     ssd.mean_access_time_us / 1000])
    print(format_table(
        ["FTL", "erases", "write amp", "mean access ms"], rows))

    print("\nLifetime projection (5000-cycle MLC, Intel 320 class):")
    ssd = SimulatedSSD(FlashConfig(num_blocks=256, overprovision=0.12))
    rng = np.random.default_rng(3)
    scattered_workload(ssd, 400, rng)
    report = ssd.wear(endurance_cycles=5000)
    # Pretend this workload was one day of traffic.
    days_left = report.remaining_lifetime_days(elapsed_days=1.0)
    print(f"  total erases {report.total_erases}, "
          f"hottest block {report.max_erases} cycles, "
          f"wear skew {report.skew:.2f}")
    print(f"  at this rate the drive lasts ~{days_left:.0f} more days — "
          f"the write-reduction motive of Section VI.C")


if __name__ == "__main__":
    main()
