"""A sharded search cluster with per-server hybrid caches.

Models the deployment the paper's title implies: the collection is
document-partitioned over N index servers, each running the two-level
DRAM+SSD cache; a broker fans queries out and waits for the slowest
shard.  Shows the scaling curve, the straggler cost of fan-out, and the
cluster-wide effect of the cache policy.

Run:  python examples/cluster_simulation.py
"""

from repro.analysis.tables import format_table
from repro.cluster.broker import Broker
from repro.core.config import CacheConfig, Policy
from repro.engine.corpus import CorpusConfig
from repro.engine.querylog import QueryLogConfig, generate_query_log

MB = 1024 * 1024


def main() -> None:
    corpus = CorpusConfig(num_docs=400_000, vocab_size=50_000,
                          avg_doc_len=300, seed=42)
    log = generate_query_log(QueryLogConfig(
        num_queries=800, distinct_queries=250, vocab_size=10_000, seed=5))

    print("Fan-out scaling (CBLRU per shard):")
    rows = []
    for n in (1, 2, 4):
        broker = Broker.build(
            corpus, num_shards=n,
            cache_config=CacheConfig.paper_split(8 * MB, 32 * MB,
                                                 policy=Policy.CBLRU),
        )
        for query in log:
            broker.process_query(query)
        rows.append([
            n,
            broker.stats.mean_response_us / 1000,
            broker.stats.mean_straggler_us / 1000,
            broker.combined_hit_ratio() * 100,
            broker.total_ssd_erases(),
        ])
    print(format_table(
        ["shards", "resp ms", "straggler ms", "hit %", "cluster erases"], rows))

    print("\nPolicy effect at 4 shards:")
    rows = []
    for policy in (Policy.LRU, Policy.CBSLRU):
        broker = Broker.build(
            corpus, num_shards=4,
            cache_config=CacheConfig.paper_split(8 * MB, 32 * MB, policy=policy),
        )
        if policy is Policy.CBSLRU:
            broker.warmup_static(log, analyze_queries=400)
        for query in log:
            broker.process_query(query)
        rows.append([
            policy.value.upper(),
            broker.stats.mean_response_us / 1000,
            broker.stats.throughput_qps,
            broker.total_ssd_erases(),
        ])
    print(format_table(["policy", "resp ms", "qps", "cluster erases"], rows))
    print("\nthe per-server savings of the paper's policies multiply by the "
          "fleet size — the cost argument of Section VII.C at scale")


if __name__ == "__main__":
    main()
