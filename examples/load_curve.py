"""Latency under load: open-loop curves for two cache policies.

Closed-loop throughput says how fast one query runs after another;
production cares where the latency knee sits when queries *arrive* on
their own schedule.  This example measures per-query service times with
the cache replay, then queue-simulates a range of offered loads.

Run:  python examples/load_curve.py
"""

from repro.analysis.tables import format_table
from repro.core.config import CacheConfig, Policy
from repro.workloads.openloop import collect_service_times, load_sweep
from repro.workloads.sweep import make_log_for, make_scaled_index

MB = 1024 * 1024


def main() -> None:
    index = make_scaled_index(500_000)
    log = make_log_for(2_000, distinct_queries=600, seed=8)
    print(f"{index.describe()}, {len(log)} queries\n")

    curves = {}
    capacity = None
    for policy in (Policy.LRU, Policy.CBSLRU):
        cfg = CacheConfig.paper_split(12 * MB, 48 * MB, policy=policy)
        service = collect_service_times(index, log, cfg, warmup_queries=500,
                                        static_analyze_queries=1000)
        if capacity is None:
            capacity = 1e6 / service.mean()
            print(f"LRU closed-loop capacity: ~{capacity:.0f} queries/s")
        rates = [capacity * f for f in (0.3, 0.6, 0.9, 1.2)]
        curves[policy.value] = load_sweep(service, rates, seed=2)

    rows = []
    for i, frac in enumerate((0.3, 0.6, 0.9, 1.2)):
        lru = curves["lru"][i]
        cbs = curves["cbslru"][i]
        rows.append([
            f"{frac:.0%}",
            lru.mean_response_us / 1000,
            lru.p99_us / 1000,
            "SATURATED" if lru.saturated else "ok",
            cbs.mean_response_us / 1000,
            cbs.p99_us / 1000,
            "SATURATED" if cbs.saturated else "ok",
        ])
    print()
    print(format_table(
        ["load vs LRU cap", "LRU ms", "LRU p99", "LRU",
         "CBSLRU ms", "CBSLRU p99", "CBSLRU"],
        rows,
        title="Open-loop latency (FIFO server, Poisson arrivals)",
    ))
    print("\nthe cost-based policy moves the saturation knee: the same "
          "server absorbs offered load that melts the LRU configuration")


if __name__ == "__main__":
    main()
