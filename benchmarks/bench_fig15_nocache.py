"""Fig. 15: retrieval without any cache — index on HDD vs SSD.

The paper: response time rises (and throughput falls) sharply with the
document count, and the SSD helps only modestly at these data sizes
("the performance improvement is not obvious as expected").
"""

from repro.analysis.tables import format_table
from repro.workloads.retrieval import run_uncached
from repro.workloads.sweep import make_log_for, make_scaled_index

from conftest import DOC_SWEEP


def _run():
    log = make_log_for(400, distinct_queries=400, seed=15)  # no repetition
    rows = []
    for num_docs in DOC_SWEEP:
        index = make_scaled_index(num_docs)
        hdd = run_uncached(index, log, "hdd")
        ssd = run_uncached(index, log, "ssd")
        rows.append({
            "num_docs": num_docs,
            "hdd_ms": hdd.mean_response_ms, "hdd_qps": hdd.throughput_qps,
            "ssd_ms": ssd.mean_response_ms, "ssd_qps": ssd.throughput_qps,
        })
    return rows


def test_fig15_nocache(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["docs (M)", "HDD ms", "SSD ms", "HDD qps", "SSD qps"],
        [[r["num_docs"] / 1e6, r["hdd_ms"], r["ssd_ms"],
          r["hdd_qps"], r["ssd_qps"]] for r in rows],
        title="Fig. 15 — no cache: response time & throughput, HDD vs SSD index",
    ))

    # Response time grows with document count on both media.
    assert rows[-1]["hdd_ms"] > rows[0]["hdd_ms"]
    assert rows[-1]["ssd_ms"] > rows[0]["ssd_ms"]
    # Throughput falls correspondingly.
    assert rows[-1]["hdd_qps"] < rows[0]["hdd_qps"]
    # SSD is faster but "not obvious": a modest factor, not an order of
    # magnitude (reads here are large and partly sequential).
    for r in rows:
        assert r["ssd_ms"] < r["hdd_ms"]
        assert r["ssd_ms"] > r["hdd_ms"] / 6

    benchmark.extra_info["hdd_over_ssd_at_5m"] = round(
        rows[-1]["hdd_ms"] / rows[-1]["ssd_ms"], 2
    )
