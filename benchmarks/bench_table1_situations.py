"""Table I: the nine retrieval situations, measured.

The paper defines S1-S9 by which devices serve a query (results or lists
from memory / SSD / HDD) and reasons about their probabilities and time
costs.  This bench measures both columns on a warm two-level cache.
"""

from repro.analysis.tables import format_table
from repro.core.config import CacheConfig, Policy
from repro.core.manager import CacheManager, build_hierarchy_for

MB = 1024 * 1024


def _run(index, log):
    cfg = CacheConfig.paper_split(
        mem_bytes=16 * MB, ssd_bytes=128 * MB, policy=Policy.CBLRU
    )
    mgr = CacheManager(cfg, build_hierarchy_for(cfg, index), index)
    for query in log.head(1_500):   # warm up
        mgr.process_query(query)
    mgr.stats.reset()
    for query in log.head(4_500)[1_500:]:
        mgr.process_query(query)
    return mgr.stats


def test_table1_situations(benchmark, index_1m, standard_log):
    stats = benchmark.pedantic(
        _run, args=(index_1m, standard_log), rounds=1, iterations=1
    )

    descriptions = {
        "S1": "result from memory", "S2": "lists from memory",
        "S3": "result from SSD", "S4": "lists from memory+SSD",
        "S5": "lists from SSD", "S6": "lists from memory+HDD",
        "S7": "lists from SSD+HDD", "S8": "lists from HDD",
        "S9": "lists from memory+SSD+HDD",
    }
    rows = [
        [name, descriptions[name], round(prob, 4), round(ms, 3)]
        for name, prob, ms in stats.situation_table()
    ]
    print()
    print(format_table(
        ["situation", "sources", "probability", "mean time (ms)"],
        rows,
        title="Table I — retrieval situations on a warm 2LC (CBLRU)",
    ))

    table = {name: (prob, ms) for name, prob, ms in stats.situation_table()}
    # Probabilities form a distribution.
    assert abs(sum(p for p, _ in table.values()) - 1.0) < 1e-9
    # Cache-served situations must be common on a warm cache...
    assert table["S1"][0] > 0.2
    # ...and cheaper than HDD-involved ones (T1 < T8), the premise of the
    # paper's design goal (increase P(S1..S5)).
    populated_hdd = [table[s][1] for s in ("S6", "S7", "S8", "S9")
                     if table[s][0] > 0]
    assert populated_hdd, "some queries must still reach the HDD"
    assert table["S1"][1] < min(populated_hdd) / 10

    benchmark.extra_info.update(
        {name: round(prob, 4) for name, prob, _ in stats.situation_table()}
    )
