"""Ablation A3: inclusive vs exclusive vs hybrid caching schemes.

Section IV.A argues for the hybrid scheme: inclusive wastes SSD capacity
and write bandwidth duplicating what memory holds; exclusive deletes on
every promotion, multiplying erasures.  This bench quantifies both
penalties.
"""

from repro.analysis.tables import format_table
from repro.core.config import CacheConfig, Policy, Scheme
from repro.workloads.retrieval import run_cached
from repro.workloads.sweep import make_log_for

MB = 1024 * 1024


def _run(index):
    log = make_log_for(4_000, distinct_queries=1_200, seed=23)
    rows = []
    for scheme in (Scheme.HYBRID, Scheme.INCLUSIVE, Scheme.EXCLUSIVE):
        cfg = CacheConfig.paper_split(
            16 * MB, 64 * MB, policy=Policy.CBLRU, scheme=scheme
        )
        result = run_cached(index, log, cfg)
        stats = result.stats
        rows.append({
            "scheme": scheme.value,
            "hit": stats.combined_hit_ratio,
            "ms": result.mean_response_ms,
            "writes": stats.ssd_result_writes + stats.ssd_list_writes,
            "erases": result.ssd_erases,
        })
    return rows


def test_ablation_caching_scheme(benchmark, index_1m):
    rows = benchmark.pedantic(_run, args=(index_1m,), rounds=1, iterations=1)
    print()
    print(format_table(
        ["scheme", "hit ratio %", "resp ms", "SSD writes", "erases"],
        [[r["scheme"], r["hit"] * 100, r["ms"], r["writes"], r["erases"]]
         for r in rows],
        title="Ablation A3 — caching scheme (Section IV.A argues for hybrid)",
    ))
    by = {r["scheme"]: r for r in rows}
    # Inclusive duplicates every insert: strictly more SSD writes.
    assert by["inclusive"]["writes"] > by["hybrid"]["writes"]
    # Exclusive re-promotes and re-writes: at least as many writes as hybrid.
    assert by["exclusive"]["writes"] >= by["hybrid"]["writes"]
    # Hybrid is the fastest or within noise of the fastest.
    best_ms = min(r["ms"] for r in rows)
    assert by["hybrid"]["ms"] <= best_ms * 1.10

    benchmark.extra_info.update(
        {r["scheme"]: {"writes": r["writes"], "ms": round(r["ms"], 2)}
         for r in rows}
    )
