"""Fig. 18: cost-performance of the hybrid architecture.

(a) response time: 1LC-HDD vs 1LC-SSD (index on SSD) vs 2LC-HDD;
(b) trading DRAM for SSD: a small memory + 2 GB-class SSD cache matches a
much larger memory-only cache at a fraction of the storage cost
(DRAM $14.5/GB vs SSD $1.9/GB).
"""

from repro.analysis.tables import format_table
from repro.core.config import CacheConfig
from repro.workloads.cost import ServerConfig, server_cost_usd
from repro.workloads.retrieval import run_cached
from repro.workloads.sweep import make_log_for, make_scaled_index

from conftest import DOC_SWEEP

MB = 1024 * 1024


def _run_fig18a():
    # Warm-cache measurement: the first 1500 queries populate the caches
    # and are excluded, as in the paper's steady-state comparison.
    log = make_log_for(4_000, distinct_queries=800, seed=18)
    mem = 16 * MB
    # The paper's 2LC proportions: SSD RC = 10x memory RC and SSD IC =
    # 100x memory IC (Section VII.B).
    two = CacheConfig(
        mem_result_bytes=mem // 5,
        mem_list_bytes=4 * mem // 5,
        ssd_result_bytes=10 * (mem // 5),
        ssd_list_bytes=100 * (4 * mem // 5),
        tev=0.25,
    )
    rows = []
    for num_docs in DOC_SWEEP:
        index = make_scaled_index(num_docs)
        one = CacheConfig.paper_split(mem)
        kw = dict(warmup_queries=1_500)
        rows.append({
            "num_docs": num_docs,
            "1LC-HDD": run_cached(index, log, one, "hdd", **kw).mean_response_ms,
            "1LC-SSD": run_cached(index, log, one, "ssd", **kw).mean_response_ms,
            "2LC-HDD": run_cached(index, log, two, "hdd", **kw).mean_response_ms,
        })
    return rows


def _run_fig18b(index):
    """The paper's memory/SSD capacity trade (scaled 1:20 to stay fast).

    Paper configs: MM(0.5G), MM(1G), MM(0.1G)+SSD(2G), MM(0.5G)+SSD(2G).
    """
    log = make_log_for(3_000, distinct_queries=900, seed=19)
    scale = MB // 1  # 1 paper-GB -> 51.2 sim-MB (1:20)
    gb = 1024 // 20 * scale
    configs = [
        ("1LC:MM(0.5GB)", CacheConfig.paper_split(gb // 2), gb // 2, 0),
        ("1LC:MM(1GB)", CacheConfig.paper_split(gb), gb, 0),
        ("2LC:MM(0.1GB)+SSD(2GB)",
         CacheConfig.paper_split(gb // 10, 2 * gb), gb // 10, 2 * gb),
        ("2LC:MM(0.5GB)+SSD(2GB)",
         CacheConfig.paper_split(gb // 2, 2 * gb), gb // 2, 2 * gb),
    ]
    rows = []
    for label, cfg, dram, ssd in configs:
        result = run_cached(index, log, cfg, label=label)
        # Cost is computed at the *paper's* capacities (the run is scaled).
        paper_dram = dram * 20
        paper_ssd = ssd * 20
        cost = server_cost_usd(
            ServerConfig(label, dram_bytes=paper_dram, ssd_bytes=paper_ssd)
        )
        rows.append({
            "label": label,
            "ms": result.mean_response_ms,
            "qps": result.throughput_qps,
            "cost": cost,
        })
    return rows


def test_fig18a_architectures(benchmark):
    rows = benchmark.pedantic(_run_fig18a, rounds=1, iterations=1)
    print()
    print(format_table(
        ["docs (M)", "1LC-HDD ms", "1LC-SSD ms", "2LC-HDD ms"],
        [[r["num_docs"] / 1e6, r["1LC-HDD"], r["1LC-SSD"], r["2LC-HDD"]]
         for r in rows],
        title="Fig. 18(a) — response time by architecture",
    ))
    for r in rows:
        # The hybrid 2LC beats the memory-only cache on HDD...
        assert r["2LC-HDD"] < r["1LC-HDD"]
    # ...and beats even the all-SSD index (the paper: "demonstrates the
    # best performance"), while its storage is far cheaper.
    mean = lambda c: sum(r[c] for r in rows) / len(rows)
    assert mean("2LC-HDD") < mean("1LC-SSD")
    benchmark.extra_info["2lc_vs_1lc_speedup"] = round(
        mean("1LC-HDD") / mean("2LC-HDD"), 2
    )


def test_fig18b_memory_ssd_trade(benchmark, index_1m):
    rows = benchmark.pedantic(_run_fig18b, args=(index_1m,),
                              rounds=1, iterations=1)
    print()
    print(format_table(
        ["configuration", "resp ms", "qps", "storage $ (paper scale)"],
        [[r["label"], r["ms"], r["qps"], r["cost"]] for r in rows],
        title="Fig. 18(b) — DRAM-vs-SSD capacity trade "
              "(DRAM $14.5/GB, SSD $1.9/GB)",
    ))
    by = {r["label"]: r for r in rows}
    small2lc = by["2LC:MM(0.1GB)+SSD(2GB)"]
    big1lc = by["1LC:MM(1GB)"]
    # The paper's claim: the 2LC with 10x less DRAM performs at least as
    # well as the big memory-only cache, at much lower storage cost.
    assert small2lc["ms"] < big1lc["ms"] * 1.1
    assert small2lc["cost"] < big1lc["cost"]
    print(f"2LC(0.1GB+2GB SSD) costs ${small2lc['cost']:.2f} vs "
          f"${big1lc['cost']:.2f} for 1LC(1GB) — "
          f"{big1lc['cost'] / small2lc['cost']:.1f}x cheaper storage")
    benchmark.extra_info["cost_ratio"] = round(
        big1lc["cost"] / small2lc["cost"], 2
    )
