"""Ablation A1: FTL choice under the cache workload.

The paper takes the ideal page-mapping FTL [6] as its baseline and
surveys block-mapped [7], log-hybrid (FAST) [8][9] and DFTL [10]
alternatives in Section II.  This bench runs the same cache-block write
pattern against all four and shows why page mapping is the right
baseline — and how badly block mapping suffers under the cache's
overwrite traffic.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.flash.constants import FlashConfig
from repro.flash.ssd import SimulatedSSD

BLOCK = 128 * 1024


def _cache_like_workload(ssd: SimulatedSSD, seed: int = 0, ops: int = 300):
    """Mimic the L2 cache's traffic: block-aligned list writes, small
    result-entry writes, and random read-backs."""
    rng = np.random.default_rng(seed)
    cap = ssd.capacity_bytes
    n_slots = cap // BLOCK - 1
    for _ in range(ops):
        kind = rng.random()
        slot = int(rng.integers(0, n_slots))
        if kind < 0.45:    # block-aligned cache write (CB placement)
            ssd.write(slot * BLOCK // 512, BLOCK)
        elif kind < 0.65:  # small unaligned result write (LRU placement)
            off = slot * BLOCK + int(rng.integers(0, 64)) * 512
            ssd.write(off // 512, 20 * 1024)
        else:              # read-back
            ssd.read(slot * BLOCK // 512, 64 * 1024)


def _run():
    rows = []
    for ftl_name in ("page", "dftl", "fast", "block"):
        cfg = FlashConfig(num_blocks=256, overprovision=0.12)
        ssd = SimulatedSSD(cfg, ftl=ftl_name)
        _cache_like_workload(ssd)
        stats = ssd.ftl.stats
        rows.append({
            "ftl": ftl_name,
            "erases": ssd.erase_count,
            "wa": stats.write_amplification,
            "mean_us": ssd.mean_access_time_us,
        })
    return rows


def test_ablation_ftl_choice(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["FTL", "erases", "write amplification", "mean access us"],
        [[r["ftl"], r["erases"], r["wa"], r["mean_us"]] for r in rows],
        title="Ablation A1 — FTL comparison under cache traffic "
              "(paper baseline: ideal page-mapping [6])",
    ))
    by = {r["ftl"]: r for r in rows}
    # Page mapping is the cheapest (the paper's 'ideal' baseline).
    assert by["page"]["erases"] <= by["fast"]["erases"]
    assert by["fast"]["erases"] <= by["block"]["erases"]
    # DFTL pays translation overhead over pure page mapping.
    assert by["dftl"]["mean_us"] >= by["page"]["mean_us"]
    # Block mapping collapses under random overwrites.
    assert by["block"]["wa"] > 2 * by["page"]["wa"]

    benchmark.extra_info.update(
        {r["ftl"]: {"erases": r["erases"], "wa": round(r["wa"], 2)} for r in rows}
    )
