"""Ablation A7: SSD over-provisioning under the cache workload.

Over-provisioning is the hidden cost knob of every SSD cache: spare
blocks absorb garbage collection, so erase counts and access latency fall
as OP grows — but every spare gigabyte is a gigabyte the $1.9/GB budget
bought and cannot cache.  This bench sweeps OP for the same cache traffic
and prints the trade the paper's cost analysis implicitly fixes at the
Intel 320's factory setting.

It also applies the Section VII.D methodology with our TracingDevice:
the device-level write stream of the cost-based policy is measured, not
assumed, to be large and sequential.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.flash.constants import FlashConfig
from repro.flash.ssd import SimulatedSSD
from repro.trace.analyzer import analyze_trace
from repro.trace.capture import TracingDevice

BLOCK = 128 * 1024

OP_SWEEP = [0.05, 0.10, 0.20, 0.30]


def _cache_traffic(dev, ops, seed=8):
    """Mixed cache churn (block-aligned RB flushes + the baseline's 20 KB
    scattered result writes) over a logical space that stays fixed across
    OP settings, so the workload — not the capacity — is constant."""
    rng = np.random.default_rng(seed)
    slots = 300  # ~37.5 MB working set, below every OP's logical capacity
    for slot in range(slots):
        dev.write(slot * BLOCK // 512, BLOCK)
    for _ in range(ops):
        slot = int(rng.integers(0, slots))
        if rng.random() < 0.6:
            dev.write(slot * BLOCK // 512, BLOCK)
        else:
            off = slot * BLOCK + int(rng.integers(0, 64)) * 512
            dev.write(off // 512, 20 * 1024)


def _run():
    rows = []
    for op in OP_SWEEP:
        # Fix *logical* capacity; OP adds physical blocks on top.
        logical_blocks = 340
        num_blocks = int(logical_blocks / (1.0 - op)) + 2
        cfg = FlashConfig(num_blocks=num_blocks, overprovision=op)
        ssd = SimulatedSSD(cfg)
        traced = TracingDevice(ssd, capture_reads=False)
        _cache_traffic(traced, ops=2_000)
        analysis = analyze_trace(traced.trace())
        rows.append({
            "op": op,
            "erases": ssd.erase_count,
            "wa": ssd.ftl.stats.write_amplification,
            "mean_ms": ssd.mean_access_time_us / 1000,
            "mean_req_kb": analysis.mean_request_bytes / 1024,
        })
    return rows


def test_ablation_overprovision(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["overprovision", "erases", "write amp", "mean access ms",
         "mean write KB"],
        [[f"{r['op']:.0%}", r["erases"], r["wa"], r["mean_ms"],
          r["mean_req_kb"]] for r in rows],
        title="Ablation A7 — over-provisioning vs GC cost (same workload)",
    ))

    # More spare blocks => less write amplification and fewer erases.
    was = [r["wa"] for r in rows]
    assert all(b <= a + 0.02 for a, b in zip(was, was[1:]))
    assert rows[-1]["wa"] < rows[0]["wa"]
    assert rows[-1]["erases"] <= rows[0]["erases"]
    # The captured device stream shows the mixed pattern (between the
    # 20 KB result writes and the 128 KB block flushes).
    assert 20.0 < rows[0]["mean_req_kb"] < 128.0

    benchmark.extra_info.update(
        {f"op{int(r['op'] * 100)}_wa": round(r["wa"], 3) for r in rows}
    )
