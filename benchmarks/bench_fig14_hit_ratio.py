"""Fig. 14: hit-ratio comparison.

(a) result cache (RC) vs inverted-list cache (IC) vs both (RIC) across
cache sizes — RC saturates early, IC keeps growing, RIC is best.
(b) LRU vs CBLRU vs CBSLRU — the paper reports average hit-ratio
improvements of +9.05 % (CBLRU) and +13.31 % (CBSLRU) over LRU.
"""

from repro.analysis.tables import format_table
from repro.core.config import CacheConfig, Policy
from repro.workloads.retrieval import run_cached

MB = 1024 * 1024

SIZES = [8, 16, 32, 64]  # total memory-cache MB; SSD scales 8x


def _run_fig14a(index, log):
    """All three configurations are scored with the same metric: the
    fraction of *all* data requests (result lookups + list lookups)
    served from cache, so RC/IC/RIC are directly comparable."""
    rows = []
    for mem_mb in SIZES:
        mem = mem_mb * MB
        ssd = 8 * mem
        rc_only = CacheConfig.paper_split(mem, ssd, rc_fraction=1.0)
        ic_only = CacheConfig.paper_split(mem, ssd, rc_fraction=0.0)
        ric = CacheConfig.paper_split(mem, ssd)  # 20/80 split
        r_rc = run_cached(index, log, rc_only, max_queries=4000)
        r_ic = run_cached(index, log, ic_only, max_queries=4000)
        r_ric = run_cached(index, log, ric, max_queries=4000)
        rows.append({
            "mem_mb": mem_mb,
            "RC": r_rc.stats.combined_hit_ratio,
            "IC": r_ic.stats.combined_hit_ratio,
            "RIC": r_ric.stats.combined_hit_ratio,
            # The per-kind ratios the curves are usually explained with.
            "RC_result": r_rc.stats.result_hit_ratio,
            "IC_list": r_ic.stats.list_hit_ratio,
        })
    return rows


def _run_fig14b(index, log):
    rows = []
    for mem_mb in SIZES:
        row = {"mem_mb": mem_mb}
        for policy in (Policy.LRU, Policy.CBLRU, Policy.CBSLRU):
            # No write threshold here: TEV belongs to the Section VII.D
            # flash experiments; Fig. 14 isolates pure hit-ratio effects.
            cfg = CacheConfig.paper_split(mem_mb * MB, 4 * mem_mb * MB,
                                          policy=policy, tev=0.0)
            result = run_cached(index, log, cfg, max_queries=4000,
                                static_analyze_queries=2000)
            row[policy.value] = result.stats.combined_hit_ratio
            row[f"{policy.value}_list"] = result.stats.list_hit_ratio
        rows.append(row)
    return rows


def test_fig14a_rc_ic_ric(benchmark, index_1m, standard_log):
    rows = benchmark.pedantic(
        _run_fig14a, args=(index_1m, standard_log), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["mem (MB)", "RC hit%", "IC hit%", "RIC hit%",
         "RC result%", "IC list%"],
        [[r["mem_mb"], r["RC"] * 100, r["IC"] * 100, r["RIC"] * 100,
          r["RC_result"] * 100, r["IC_list"] * 100] for r in rows],
        title="Fig. 14(a) — hit ratio: RC vs IC vs RIC over cache size "
              "(one metric: all data requests)",
    ))

    # RC saturates: its result hit ratio flattens once popular queries
    # fit (singletons bound it), while IC keeps improving with capacity.
    rc_result = [r["RC_result"] for r in rows]
    ic_list = [r["IC_list"] for r in rows]
    assert rc_result[-1] - rc_result[1] < 0.10, "RC should flatten"
    assert ic_list[-1] > ic_list[0]
    # The combined cache beats both single-kind caches at every size.
    for r in rows:
        assert r["RIC"] >= r["RC"] - 0.02
        assert r["RIC"] >= r["IC"] - 0.02

    benchmark.extra_info["ric_final_pct"] = round(rows[-1]["RIC"] * 100, 2)


def test_fig14b_policy_hit_ratio(benchmark, index_1m, standard_log):
    rows = benchmark.pedantic(
        _run_fig14b, args=(index_1m, standard_log), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["mem (MB)", "LRU hit%", "CBLRU hit%", "CBSLRU hit%",
         "LRU list%", "CBLRU list%", "CBSLRU list%"],
        [[r["mem_mb"], r["lru"] * 100, r["cblru"] * 100, r["cbslru"] * 100,
          r["lru_list"] * 100, r["cblru_list"] * 100, r["cbslru_list"] * 100]
         for r in rows],
        title="Fig. 14(b) — hit ratio: LRU vs CBLRU vs CBSLRU "
              "(paper avg: CBLRU +9.05%, CBSLRU +13.31% over LRU)",
    ))
    mean = lambda key: sum(r[key] for r in rows) / len(rows)
    cblru_gain = (mean("cblru") - mean("lru")) * 100
    cbslru_gain = (mean("cbslru") - mean("lru")) * 100
    print(f"measured avg gain over LRU: CBLRU {cblru_gain:+.2f} pts "
          f"(paper +9.05), CBSLRU {cbslru_gain:+.2f} pts (paper +13.31)")

    # The policies differ on the inverted-list side (results use the same
    # L1 LRU everywhere): the list hit ratio must order LRU < CBLRU.
    assert mean("cblru_list") > mean("lru_list")
    assert mean("cbslru_list") > mean("lru_list")
    assert mean("cbslru") > mean("lru"), "CBSLRU must beat LRU overall"
    assert mean("cblru") >= mean("lru") - 0.005

    benchmark.extra_info.update({
        "cblru_gain_pts": round(cblru_gain, 2),
        "cbslru_gain_pts": round(cbslru_gain, 2),
    })
