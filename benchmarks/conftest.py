"""Shared benchmark fixtures.

Each ``bench_*`` file regenerates one table or figure of the paper.  The
pytest-benchmark fixture times the experiment; the experiment itself
prints a paper-style table (stdout, use ``-s`` to see it live) and stores
the headline numbers in ``benchmark.extra_info`` so they land in the
saved benchmark JSON.

Scale note: the paper's testbed indexes 1-5 M enwiki documents and plays
10-100 k AOL queries.  The benches keep the same axes at reduced query
counts; the *shape* of every comparison (who wins, by what factor) is the
reproduction target, not wall-clock-scale equality.
"""

from __future__ import annotations

import pytest

from repro.workloads.sweep import make_log_for, make_scaled_index

#: Document counts for the Figs. 15-18 sweeps (the paper's 1-5 M axis).
DOC_SWEEP = [1_000_000, 2_000_000, 3_000_000, 4_000_000, 5_000_000]

MB = 1024 * 1024


@pytest.fixture(scope="session")
def index_1m():
    return make_scaled_index(1_000_000)


@pytest.fixture(scope="session")
def index_5m():
    return make_scaled_index(5_000_000)


@pytest.fixture(scope="session")
def standard_log():
    """The workhorse query stream: Zipf-repeated, head-vocabulary terms."""
    return make_log_for(6_000, distinct_queries=1_800, seed=7)


@pytest.fixture(scope="session")
def long_log():
    """Longer stream for the Fig. 19 flash-activity series."""
    return make_log_for(12_000, distinct_queries=3_000, seed=9)
