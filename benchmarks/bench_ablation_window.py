"""Ablation A2: the replace-first-region window W.

The paper fixes W = 5 and calls victim selection "worth being studied and
optimized in the future work".  This bench sweeps W to show the
sensitivity: tiny windows degenerate to plain LRU-end replacement, huge
windows let stale entries shield hot ones.
"""

from repro.analysis.tables import format_table
from repro.core.config import CacheConfig, Policy
from repro.workloads.retrieval import run_cached
from repro.workloads.sweep import make_log_for

MB = 1024 * 1024

WINDOWS = [1, 3, 5, 10, 20]


def _run(index):
    log = make_log_for(4_000, distinct_queries=1_200, seed=22)
    rows = []
    for window in WINDOWS:
        cfg = CacheConfig.paper_split(
            16 * MB, 64 * MB, policy=Policy.CBLRU, replace_window=window
        )
        result = run_cached(index, log, cfg)
        rows.append({
            "W": window,
            "hit": result.stats.combined_hit_ratio,
            "ms": result.mean_response_ms,
            "erases": result.ssd_erases,
        })
    return rows


def test_ablation_replace_window(benchmark, index_1m):
    rows = benchmark.pedantic(_run, args=(index_1m,), rounds=1, iterations=1)
    print()
    print(format_table(
        ["W", "hit ratio %", "resp ms", "erases"],
        [[r["W"], r["hit"] * 100, r["ms"], r["erases"]] for r in rows],
        title="Ablation A2 — replace-first-region window sweep (paper: W=5)",
    ))
    # The mechanism must function at every window size.
    for r in rows:
        assert 0 < r["hit"] < 1
        assert r["ms"] > 0
    # Sensitivity is bounded: W is a tuning knob, not a cliff.
    times = [r["ms"] for r in rows]
    assert max(times) < 2.0 * min(times)

    benchmark.extra_info.update(
        {f"w{r['W']}_ms": round(r["ms"], 2) for r in rows}
    )
