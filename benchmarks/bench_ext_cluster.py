"""Extension E5: the hybrid cache at cluster scale.

The paper's cost argument is per-server; a large engine runs hundreds of
document-partitioned servers behind a broker.  This bench measures (a)
the fan-out scaling curve and (b) whether the per-server policy ordering
(LRU vs CBSLRU) survives aggregation — including the straggler effect:
the broker waits for the *slowest* shard, so cache-miss tail latency is
amplified by fan-out.
"""

from repro.analysis.tables import format_table
from repro.cluster.broker import Broker
from repro.core.config import CacheConfig, Policy
from repro.engine.corpus import CorpusConfig
from repro.workloads.sweep import make_log_for

MB = 1024 * 1024

CORPUS = CorpusConfig(num_docs=1_200_000, vocab_size=50_000,
                      avg_doc_len=300, seed=42)
SHARD_COUNTS = [1, 2, 4, 8]


def _cache_cfg(policy):
    return CacheConfig.paper_split(8 * MB, 32 * MB, policy=policy)


def _run():
    log = make_log_for(1_200, distinct_queries=400, seed=33)
    scaling = []
    for n in SHARD_COUNTS:
        broker = Broker.build(CORPUS, num_shards=n,
                              cache_config=_cache_cfg(Policy.CBLRU))
        for q in log:
            broker.process_query(q)
        scaling.append({
            "shards": n,
            "ms": broker.stats.mean_response_us / 1000,
            "straggler_ms": broker.stats.mean_straggler_us / 1000,
            "hit": broker.combined_hit_ratio(),
            "erases": broker.total_ssd_erases(),
        })

    policies = {}
    for policy in (Policy.LRU, Policy.CBSLRU):
        broker = Broker.build(CORPUS, num_shards=4,
                              cache_config=_cache_cfg(policy))
        if policy is Policy.CBSLRU:
            broker.warmup_static(log, analyze_queries=600)
        for q in log:
            broker.process_query(q)
        policies[policy.value] = broker
    return scaling, policies


def test_ext_cluster(benchmark):
    scaling, policies = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["shards", "resp ms", "straggler ms", "hit %", "total erases"],
        [[r["shards"], r["ms"], r["straggler_ms"], r["hit"] * 100,
          r["erases"]] for r in scaling],
        title="Extension E5a — fan-out scaling (CBLRU per shard)",
    ))
    rows = []
    for name, broker in policies.items():
        rows.append([
            name, broker.stats.mean_response_us / 1000,
            broker.stats.throughput_qps,
            broker.combined_hit_ratio() * 100,
            broker.total_ssd_erases(),
        ])
    print(format_table(
        ["policy", "resp ms", "qps", "hit %", "total erases"],
        rows,
        title="Extension E5b — per-shard policy at cluster level (4 shards)",
    ))

    # Scaling: more shards = less data per server = faster fan-out.
    times = [r["ms"] for r in scaling]
    assert times[-1] < times[0]
    # Straggler cost exists whenever there is fan-out.
    assert scaling[-1]["straggler_ms"] > 0
    assert scaling[0]["straggler_ms"] == 0  # no fan-out at 1 shard
    # The paper's per-server ordering survives aggregation.
    lru = policies["lru"]
    cbs = policies["cbslru"]
    assert cbs.stats.mean_response_us < lru.stats.mean_response_us
    assert cbs.total_ssd_erases() <= lru.total_ssd_erases()

    benchmark.extra_info.update({
        "one_shard_ms": round(times[0], 2),
        "eight_shard_ms": round(times[-1], 2),
        "cluster_cbslru_vs_lru": round(
            lru.stats.mean_response_us / cbs.stats.mean_response_us, 2
        ),
    })
