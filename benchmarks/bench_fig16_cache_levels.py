"""Fig. 16: one-level vs two-level caches.

(a) a result-only memory cache with the index on HDD vs SSD — moving the
index to SSD helps a little; (b) adding the SSD cache tier (2LC) and the
inverted-list cache (RI) helps much more.  Paper proportions: the SSD RC
is 10x the memory RC; the SSD IC is ~100x the memory IC (expressed here
through `paper_split`'s budget split).
"""

from repro.analysis.tables import format_table
from repro.core.config import CacheConfig
from repro.workloads.retrieval import run_cached
from repro.workloads.sweep import make_log_for, make_scaled_index

from conftest import DOC_SWEEP

MB = 1024 * 1024


def _run():
    # The distinct-query pool must exceed the memory result cache (~400
    # entries at 8 MB), or every configuration degenerates to pure S1.
    # Warm-cache measurement: the first 1500 queries are excluded.
    log = make_log_for(4_000, distinct_queries=1_200, seed=16)
    mem_rc = 8 * MB
    kw = dict(warmup_queries=1_500)
    rows = []
    for num_docs in DOC_SWEEP:
        index = make_scaled_index(num_docs)
        # (a) one-level result cache, index on HDD vs SSD.
        one_r = CacheConfig(mem_result_bytes=mem_rc, mem_list_bytes=0,
                            ssd_result_bytes=0, ssd_list_bytes=0)
        a_hdd = run_cached(index, log, one_r, index_on="hdd",
                           label="1LC(R)-HDD", **kw)
        a_ssd = run_cached(index, log, one_r, index_on="ssd",
                           label="1LC(R)-SSD", **kw)
        # (b) add the SSD tier (RC = 10x memory RC), then add the
        # inverted-list cache on top (IC = 100x memory IC), the paper's
        # additive Section VII.B configurations.
        two_r = CacheConfig(mem_result_bytes=mem_rc, mem_list_bytes=0,
                            ssd_result_bytes=10 * mem_rc, ssd_list_bytes=0)
        two_ri = CacheConfig(mem_result_bytes=mem_rc, mem_list_bytes=8 * MB,
                             ssd_result_bytes=10 * mem_rc,
                             ssd_list_bytes=100 * 8 * MB, tev=0.25)
        b_2r = run_cached(index, log, two_r, label="2LC(R)-HDD", **kw)
        b_2ri = run_cached(index, log, two_ri, label="2LC(RI)-HDD", **kw)
        rows.append({
            "num_docs": num_docs,
            "1LC(R)-HDD": a_hdd.mean_response_ms,
            "1LC(R)-SSD": a_ssd.mean_response_ms,
            "2LC(R)-HDD": b_2r.mean_response_ms,
            "2LC(RI)-HDD": b_2ri.mean_response_ms,
        })
    return rows


def test_fig16_cache_levels(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    cols = ["1LC(R)-HDD", "1LC(R)-SSD", "2LC(R)-HDD", "2LC(RI)-HDD"]
    print()
    print(format_table(
        ["docs (M)"] + [f"{c} ms" for c in cols],
        [[r["num_docs"] / 1e6] + [r[c] for c in cols] for r in rows],
        title="Fig. 16 — response time: 1LC vs 2LC, R vs RI",
    ))

    for r in rows:
        # (a) SSD-resident index helps, but only somewhat.
        assert r["1LC(R)-SSD"] < r["1LC(R)-HDD"]
        # (b) the two-level RI cache is the clear winner.
        assert r["2LC(RI)-HDD"] < r["1LC(R)-HDD"]
        assert r["2LC(RI)-HDD"] < r["2LC(R)-HDD"]
    mean = lambda c: sum(r[c] for r in rows) / len(rows)
    print(f"mean speedup of 2LC(RI) over 1LC(R): "
          f"{mean('1LC(R)-HDD') / mean('2LC(RI)-HDD'):.2f}x")

    benchmark.extra_info["ri_speedup"] = round(
        mean("1LC(R)-HDD") / mean("2LC(RI)-HDD"), 2
    )
