"""Extension E1: three-level caching (results + lists + intersections).

The paper's conclusion proposes caching *intersections* as a third level
[19] and conjectures it "will further improve the performance".  This
bench tests that conjecture: same workload, two-level vs three-level
manager, on a query stream where term pairs recur (as they do in real
logs — people repeat popular word combinations).
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.config import CacheConfig, Policy
from repro.core.intersections import ThreeLevelCacheManager
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.query import Query
from repro.engine.querylog import QueryLog, QueryLogConfig

MB = 1024 * 1024


def _pair_heavy_log(num_queries=4_000, hot_pairs=60, vocab=10_000, seed=31):
    """Distinct queries sharing hot term pairs ("new york times", "new
    york weather", ...): the access pattern intersection caching exists
    for.  Each query is one hot pair plus 1-2 fresh tail terms, so the
    *queries* rarely repeat (little result-cache shielding) while the
    *pairs* recur constantly."""
    rng = np.random.default_rng(seed)
    pairs = [tuple(sorted(rng.choice(np.arange(25, vocab // 4), size=2,
                                     replace=False).tolist()))
             for _ in range(hot_pairs)]
    pair_probs = (1.0 / np.arange(1, hot_pairs + 1)) ** 0.9
    pair_probs /= pair_probs.sum()
    pool: list[Query] = []
    for qid in range(num_queries):
        a, b = pairs[int(rng.choice(hot_pairs, p=pair_probs))]
        extras = rng.choice(vocab, size=int(rng.integers(1, 3)), replace=False)
        terms = tuple({int(a), int(b), *(int(e) for e in extras)})
        pool.append(Query(query_id=qid, terms=terms))
    cfg = QueryLogConfig(num_queries=num_queries, distinct_queries=num_queries,
                         vocab_size=vocab, seed=seed)
    return QueryLog(cfg, pool, np.arange(num_queries, dtype=np.int64))


def _run(index):
    log = _pair_heavy_log()
    cfg = CacheConfig.paper_split(16 * MB, 64 * MB, policy=Policy.CBLRU)

    two = CacheManager(cfg, build_hierarchy_for(cfg, index), index)
    three = ThreeLevelCacheManager(
        cfg, build_hierarchy_for(cfg, index), index,
        intersection_bytes=8 * MB, min_pair_freq=2,
    )
    for query in log:
        two.process_query(query)
    for query in log:
        three.process_query(query)
    return two, three


def test_ext_three_level(benchmark, index_1m):
    two, three = benchmark.pedantic(_run, args=(index_1m,),
                                    rounds=1, iterations=1)
    rows = []
    for label, mgr in (("two-level", two), ("three-level", three)):
        stats = mgr.stats
        rows.append([
            label,
            stats.combined_hit_ratio * 100,
            stats.mean_response_us / 1000,
            stats.throughput_qps,
            mgr.ssd.erase_count,
        ])
    inter = three.intersections
    print()
    print(format_table(
        ["manager", "hit %", "resp ms", "qps", "erases"],
        rows,
        title="Extension E1 — two-level vs three-level (intersections [19])",
    ))
    print(f"intersection cache: {len(inter)} entries, "
          f"{inter.used_bytes / MB:.1f} MB, hits={inter.hits}, "
          f"misses={inter.misses}")

    # The paper's conjecture: the third level helps.
    assert inter.hits > 0
    assert (three.stats.mean_response_us <= two.stats.mean_response_us)
    # The intersection level also sheds SSD traffic (pairs served from
    # memory never touch the lower tiers).
    assert three.ssd.erase_count <= two.ssd.erase_count * 1.05

    speedup = two.stats.mean_response_us / three.stats.mean_response_us
    print(f"three-level speedup: {speedup:.3f}x")
    benchmark.extra_info.update({
        "speedup": round(speedup, 3),
        "intersection_hits": inter.hits,
    })
