"""Extension E4: open-loop load curves.

The paper reports closed-loop throughput (queries/s of serial execution).
A production server faces an arrival process; what the better cache
policy actually buys is a *later saturation knee*.  This bench feeds each
policy's measured service times into the FIFO queueing model and prints
mean/p99 latency across offered loads.
"""

from repro.analysis.tables import format_table
from repro.core.config import CacheConfig, Policy
from repro.workloads.openloop import collect_service_times, load_sweep

MB = 1024 * 1024

#: offered load as a fraction of the LRU configuration's capacity
LOAD_POINTS = [0.2, 0.5, 0.8, 1.1]


def _run(index, log):
    curves = {}
    base_capacity = None
    for policy in (Policy.LRU, Policy.CBSLRU):
        cfg = CacheConfig.paper_split(16 * MB, 64 * MB, policy=policy)
        service = collect_service_times(
            index, log, cfg, warmup_queries=1_000, static_analyze_queries=3_000
        )
        if base_capacity is None:
            base_capacity = 1e6 / service.mean()  # LRU's capacity in qps
        rates = [base_capacity * f for f in LOAD_POINTS]
        curves[policy.value] = load_sweep(service, rates, seed=3)
    return curves, base_capacity


def test_ext_open_loop(benchmark, index_1m, standard_log):
    curves, base_capacity = benchmark.pedantic(
        _run, args=(index_1m, standard_log), rounds=1, iterations=1
    )
    rows = []
    for i, frac in enumerate(LOAD_POINTS):
        lru = curves["lru"][i]
        cbs = curves["cbslru"][i]
        rows.append([
            f"{frac:.0%} of LRU capacity",
            lru.mean_response_us / 1000, lru.p99_us / 1000,
            "yes" if lru.saturated else "no",
            cbs.mean_response_us / 1000, cbs.p99_us / 1000,
            "yes" if cbs.saturated else "no",
        ])
    print()
    print(format_table(
        ["offered load", "LRU ms", "LRU p99", "LRU sat?",
         "CBSLRU ms", "CBSLRU p99", "CBSLRU sat?"],
        rows,
        title=f"Extension E4 — open-loop latency "
              f"(LRU capacity ~{base_capacity:.0f} qps)",
    ))

    # Beyond LRU's capacity, LRU melts while CBSLRU still serves.
    over = LOAD_POINTS.index(1.1)
    assert curves["lru"][over].saturated
    assert not curves["cbslru"][over].saturated
    # At every load, CBSLRU responds faster.
    for i in range(len(LOAD_POINTS)):
        assert (curves["cbslru"][i].mean_response_us
                < curves["lru"][i].mean_response_us)

    benchmark.extra_info["lru_capacity_qps"] = round(base_capacity, 1)
