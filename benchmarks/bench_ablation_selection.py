"""Ablation A4: the TEV admission threshold and CBSLRU's static fraction.

Two knobs the paper sets by query-log analysis: the efficiency-value
threshold below which evicted lists are discarded instead of flushed
(Fig. 4), and the static/dynamic split of CBSLRU.  This bench sweeps
both: TEV trades SSD write traffic against list hit ratio; the static
fraction trades adaptivity against write-free hits.
"""

from repro.analysis.tables import format_table
from repro.core.config import CacheConfig, Policy
from repro.workloads.retrieval import run_cached
from repro.workloads.sweep import make_log_for

MB = 1024 * 1024

TEVS = [0.0, 0.25, 0.5, 1.0, 2.0]
STATIC_FRACTIONS = [0.0, 0.25, 0.5, 0.75]


def _run_tev(index):
    log = make_log_for(4_000, distinct_queries=1_200, seed=24)
    rows = []
    for tev in TEVS:
        cfg = CacheConfig.paper_split(16 * MB, 64 * MB,
                                      policy=Policy.CBLRU, tev=tev)
        result = run_cached(index, log, cfg)
        stats = result.stats
        rows.append({
            "tev": tev,
            "list_hit": stats.list_hit_ratio,
            "writes": stats.ssd_list_writes,
            "discarded": stats.discarded_by_tev,
            "erases": result.ssd_erases,
        })
    return rows


def _run_static(index):
    log = make_log_for(4_000, distinct_queries=1_200, seed=24)
    rows = []
    for frac in STATIC_FRACTIONS:
        cfg = CacheConfig.paper_split(16 * MB, 64 * MB,
                                      policy=Policy.CBSLRU, static_fraction=frac)
        result = run_cached(index, log, cfg)
        rows.append({
            "frac": frac,
            "hit": result.stats.combined_hit_ratio,
            "ms": result.mean_response_ms,
            "erases": result.ssd_erases,
        })
    return rows


def test_ablation_tev_threshold(benchmark, index_1m):
    rows = benchmark.pedantic(_run_tev, args=(index_1m,), rounds=1, iterations=1)
    print()
    print(format_table(
        ["TEV", "list hit %", "SSD list writes", "discarded", "erases"],
        [[r["tev"], r["list_hit"] * 100, r["writes"], r["discarded"],
          r["erases"]] for r in rows],
        title="Ablation A4a — TEV admission threshold (Fig. 4's cut line)",
    ))
    # Raising TEV monotonically discards more and writes less.
    discards = [r["discarded"] for r in rows]
    writes = [r["writes"] for r in rows]
    assert discards == sorted(discards)
    assert writes == sorted(writes, reverse=True)
    # Erases shrink as admission tightens.
    assert rows[-1]["erases"] <= rows[0]["erases"]

    benchmark.extra_info.update(
        {f"tev{r['tev']}": {"writes": r["writes"], "erases": r["erases"]}
         for r in rows}
    )


def test_ablation_static_fraction(benchmark, index_1m):
    rows = benchmark.pedantic(_run_static, args=(index_1m,),
                              rounds=1, iterations=1)
    print()
    print(format_table(
        ["static fraction", "hit ratio %", "resp ms", "erases"],
        [[r["frac"], r["hit"] * 100, r["ms"], r["erases"]] for r in rows],
        title="Ablation A4b — CBSLRU static fraction "
              "(0.0 degenerates to CBLRU)",
    ))
    # Some static partition must beat having none (the CBSLRU thesis)...
    best = min(rows, key=lambda r: r["ms"])
    assert best["frac"] > 0.0
    # ...and pinning reduces erases relative to fully-dynamic.
    assert min(r["erases"] for r in rows[1:]) <= rows[0]["erases"]

    benchmark.extra_info.update(
        {f"static{r['frac']}": round(r["ms"], 2) for r in rows}
    )
