"""Fig. 3: inverted-list utilization rate and term access frequency.

The paper measures these on 5 M enwiki documents with the AOL log; the
same two distributions are regenerated here from the synthetic corpus and
query stream: (a) utilization declines across ranked terms (lists are
almost always partially processed); (b) term access frequency is
Zipf-like and uncorrelated enough with list size that frequency alone is
a poor caching signal — the motivation for EV = Freq/SC.
"""

import numpy as np

from repro.analysis.metrics import (
    term_access_frequency_series,
    utilization_rate_series,
)
from repro.analysis.tables import format_table
from repro.analysis.zipf import fit_zipf_exponent


def _run(index, log):
    util = utilization_rate_series(index, log)
    counts, sizes = term_access_frequency_series(index, log)
    return util, counts, sizes


def test_fig03_distributions(benchmark, index_5m, standard_log):
    util, counts, sizes = benchmark.pedantic(
        _run, args=(index_5m, standard_log), rounds=1, iterations=1
    )

    deciles = [int(p) for p in range(0, 101, 10)]
    rows = [[f"p{p}", float(np.percentile(util, 100 - p))] for p in deciles]
    print()
    print(format_table(
        ["rank percentile", "utilization %"],
        rows,
        title="Fig. 3(a) — inverted-list utilization rate across ranked terms",
    ))

    s = fit_zipf_exponent(counts, head_fraction=0.3)
    rows = [
        ["queried terms", len(counts), ""],
        ["top-term accesses", int(counts[0]), ""],
        ["zipf exponent (head)", round(s, 3), "paper cites Zipf-like [18]"],
        ["median list size (KB)", int(np.median(sizes) / 1024), ""],
        ["p99 list size (KB)", int(np.percentile(sizes, 99) / 1024), ""],
    ]
    print(format_table(
        ["metric", "value", "note"],
        rows,
        title="Fig. 3(b) — term access frequency vs inverted list size",
    ))

    # Paper's qualitative claims.
    assert util[0] > 80.0          # head terms nearly fully used
    assert util[-1] < 20.0         # tail terms barely used
    assert 0.3 < s < 2.0           # Zipf-like access frequency
    # Lists of queried terms span orders of magnitude (variable-length).
    assert np.percentile(sizes, 95) > 20 * np.percentile(sizes, 5)

    benchmark.extra_info.update({
        "zipf_exponent": round(s, 3),
        "median_list_kb": int(np.median(sizes) / 1024),
    })
