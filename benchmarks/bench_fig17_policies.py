"""Fig. 17: two-level cache performance under LRU / CBLRU / CBSLRU.

The paper reports, versus LRU: response time -35.27 % (CBLRU) and
-41.05 % (CBSLRU); throughput +55.29 % and +70.47 %.
"""

from repro.analysis.tables import format_table
from repro.core.config import CacheConfig, Policy
from repro.workloads.retrieval import run_cached
from repro.workloads.sweep import make_log_for, make_scaled_index

from conftest import DOC_SWEEP

MB = 1024 * 1024


def _run():
    log = make_log_for(3_000, distinct_queries=900, seed=17)
    rows = []
    for num_docs in DOC_SWEEP:
        index = make_scaled_index(num_docs)
        row = {"num_docs": num_docs}
        for policy in (Policy.LRU, Policy.CBLRU, Policy.CBSLRU):
            cfg = CacheConfig.paper_split(16 * MB, 64 * MB, policy=policy)
            result = run_cached(index, log, cfg, static_analyze_queries=1500)
            row[f"{policy.value}_ms"] = result.mean_response_ms
            row[f"{policy.value}_qps"] = result.throughput_qps
        rows.append(row)
    return rows


def test_fig17_policies(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["docs (M)", "LRU ms", "CBLRU ms", "CBSLRU ms",
         "LRU qps", "CBLRU qps", "CBSLRU qps"],
        [[r["num_docs"] / 1e6, r["lru_ms"], r["cblru_ms"], r["cbslru_ms"],
          r["lru_qps"], r["cblru_qps"], r["cbslru_qps"]] for r in rows],
        title="Fig. 17 — 2LC response time & throughput by policy",
    ))

    mean = lambda k: sum(r[k] for r in rows) / len(rows)
    dt_cblru = (1 - mean("cblru_ms") / mean("lru_ms")) * 100
    dt_cbslru = (1 - mean("cbslru_ms") / mean("lru_ms")) * 100
    dq_cblru = (mean("cblru_qps") / mean("lru_qps") - 1) * 100
    dq_cbslru = (mean("cbslru_qps") / mean("lru_qps") - 1) * 100
    print(f"response time vs LRU: CBLRU -{dt_cblru:.1f}% (paper -35.27%), "
          f"CBSLRU -{dt_cbslru:.1f}% (paper -41.05%)")
    print(f"throughput vs LRU:  CBLRU +{dq_cblru:.1f}% (paper +55.29%), "
          f"CBSLRU +{dq_cbslru:.1f}% (paper +70.47%)")

    # Shape assertions: ordering + a substantial margin.
    for r in rows:
        assert r["cblru_ms"] < r["lru_ms"]
        assert r["cbslru_ms"] < r["cblru_ms"] * 1.05
    assert dt_cblru > 15.0
    assert dt_cbslru > dt_cblru - 2.0
    assert dq_cblru > 15.0

    benchmark.extra_info.update({
        "cblru_resp_reduction_pct": round(dt_cblru, 1),
        "cbslru_resp_reduction_pct": round(dt_cbslru, 1),
        "cblru_qps_gain_pct": round(dq_cblru, 1),
        "cbslru_qps_gain_pct": round(dq_cbslru, 1),
    })
