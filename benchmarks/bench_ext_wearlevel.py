"""Extension E3: static wear leveling under cache traffic.

The paper measures total erase counts but not their *distribution*; a
cache workload concentrates erasures (hot result blocks churn, cold
static data never moves), which is what actually kills drives.  This
bench runs the same cache-like traffic on the plain page-mapping FTL and
on the wear-levelling variant and compares wear skew and projected
lifetime.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.flash.constants import FlashConfig
from repro.flash.ftl_page import PageMappingFTL
from repro.flash.ssd import SimulatedSSD
from repro.flash.wearlevel import WearLevelingFTL

BLOCK = 128 * 1024


def _cache_traffic(ssd: SimulatedSSD, ops: int, seed: int) -> None:
    """Hot/cold cache pattern: a cold static region written once, a hot
    dynamic region overwritten continuously."""
    rng = np.random.default_rng(seed)
    slots = ssd.capacity_bytes // BLOCK
    cold = int(slots * 0.6)
    for slot in range(slots - 1):  # initial fill (static + dynamic)
        ssd.write(slot * BLOCK // 512, BLOCK)
    for _ in range(ops):
        slot = cold + int(rng.integers(0, slots - cold - 1))
        ssd.write(slot * BLOCK // 512, BLOCK)


def _run():
    cfg = FlashConfig(num_blocks=512, overprovision=0.12)
    plain = SimulatedSSD(cfg, ftl=PageMappingFTL(cfg))
    level = SimulatedSSD(
        cfg, ftl=WearLevelingFTL(cfg, wear_delta_threshold=4, check_interval=128)
    )
    _cache_traffic(plain, ops=3_000, seed=5)
    _cache_traffic(level, ops=3_000, seed=5)
    return plain, level


def test_ext_wear_leveling(benchmark):
    plain, level = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for label, ssd in (("greedy GC only", plain), ("+ static wear leveling", level)):
        report = ssd.wear(endurance_cycles=5000)
        rows.append([
            label,
            report.total_erases,
            report.max_erases,
            round(report.skew, 2),
            f"{report.lifetime_consumed:.2%}",
        ])
    print()
    print(format_table(
        ["FTL", "total erases", "max/block", "skew", "endurance used"],
        rows,
        title="Extension E3 — wear distribution under hot/cold cache traffic",
    ))
    migrations = level.ftl.migrations  # type: ignore[attr-defined]
    print(f"wear-leveling migrations: {migrations}")

    rp = plain.wear()
    rl = level.wear()
    # Leveling flattens wear (lower skew, lower per-block maximum)...
    assert rl.skew < rp.skew
    assert rl.max_erases <= rp.max_erases
    # ...at a bounded total-erase overhead.
    assert rl.total_erases < rp.total_erases * 3

    benchmark.extra_info.update({
        "plain_skew": round(rp.skew, 2),
        "leveled_skew": round(rl.skew, 2),
        "migrations": migrations,
    })
