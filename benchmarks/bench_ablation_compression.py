"""Ablation A6: index compression (the intro's other lever).

The paper's introduction lists index compression next to caching as a
standard throughput technique.  With d-gap + varbyte lists, every tier
moves less data: HDD reads shrink, more lists fit in both cache levels,
and the SSD absorbs fewer bytes per flush.  This bench measures the
interaction: compression and the hybrid cache compound.
"""

from repro.analysis.tables import format_table
from repro.core.config import CacheConfig, Policy
from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.workloads.retrieval import run_cached, run_uncached
from repro.workloads.sweep import make_log_for

MB = 1024 * 1024


def _run():
    corpus = CorpusConfig.paper_scale(1_000_000)
    raw = InvertedIndex(corpus)
    comp = InvertedIndex(corpus, compressed=True)
    log = make_log_for(2_500, distinct_queries=800, seed=34)
    cfg = CacheConfig.paper_split(16 * MB, 64 * MB, policy=Policy.CBLRU)

    rows = []
    for label, index in (("raw (8 B/posting)", raw), ("compressed", comp)):
        uncached = run_uncached(index, log, max_queries=400)
        cached = run_cached(index, log, cfg)
        stats = cached.stats
        rows.append({
            "label": label,
            "index_mb": index.index_bytes / MB,
            "uncached_ms": uncached.mean_response_ms,
            "cached_ms": cached.mean_response_ms,
            "hit": stats.combined_hit_ratio,
            "erases": cached.ssd_erases,
        })
    return rows


def test_ablation_compression(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["index", "size MB", "uncached ms", "cached ms", "hit %", "erases"],
        [[r["label"], r["index_mb"], r["uncached_ms"], r["cached_ms"],
          r["hit"] * 100, r["erases"]] for r in rows],
        title="Ablation A6 — d-gap+varbyte compression under the hybrid cache",
    ))
    raw, comp = rows
    # Compression shrinks the index substantially...
    assert comp["index_mb"] < raw["index_mb"] * 0.7
    # ...speeds up both uncached and cached retrieval...
    assert comp["uncached_ms"] < raw["uncached_ms"]
    assert comp["cached_ms"] < raw["cached_ms"]
    # ...and improves the cache's effectiveness (more lists fit).
    assert comp["hit"] >= raw["hit"] - 0.01
    # Erases need not drop: smaller entries mean *more* lists are admitted
    # through the same SSD region; bound the growth instead.
    assert comp["erases"] <= raw["erases"] * 1.5

    benchmark.extra_info.update({
        "compression_ratio": round(raw["index_mb"] / comp["index_mb"], 2),
        "cached_speedup": round(raw["cached_ms"] / comp["cached_ms"], 2),
    })
