"""Fig. 19: simulated flash behaviour under the three policies.

(a) block erasure count vs query count — the paper reports -59.92 %
(CBLRU) and -71.52 % (CBSLRU) versus LRU at the end of the run;
(b) mean flash access time — -13.20 % and -43.83 %, with the curve
settling as reads start to dominate.
"""

from repro.analysis.tables import format_table
from repro.core.config import CacheConfig, Policy
from repro.workloads.retrieval import sample_flash_series

MB = 1024 * 1024

# The paper samples 10k..100k queries; same axis shape at 1/10 scale.
SAMPLE_POINTS = [1_000 * i for i in range(1, 11)]


def _run(index, log):
    series = {}
    for policy in (Policy.LRU, Policy.CBLRU, Policy.CBSLRU):
        cfg = CacheConfig.paper_split(16 * MB, 64 * MB, policy=policy)
        series[policy.value] = sample_flash_series(
            index, log, cfg, SAMPLE_POINTS, static_analyze_queries=5_000
        )
    return series


def test_fig19_flash_behaviour(benchmark, index_1m, long_log):
    series = benchmark.pedantic(
        _run, args=(index_1m, long_log), rounds=1, iterations=1
    )

    rows = []
    for i, point in enumerate(SAMPLE_POINTS):
        rows.append([
            point,
            series["lru"][i]["erases"],
            series["cblru"][i]["erases"],
            series["cbslru"][i]["erases"],
        ])
    print()
    print(format_table(
        ["queries", "LRU erases", "CBLRU erases", "CBSLRU erases"],
        rows,
        title="Fig. 19(a) — block erasure count "
              "(paper: CBLRU -59.92%, CBSLRU -71.52% vs LRU)",
    ))

    rows = []
    for i, point in enumerate(SAMPLE_POINTS):
        rows.append([
            point,
            series["lru"][i]["mean_access_us"] / 1000.0,
            series["cblru"][i]["mean_access_us"] / 1000.0,
            series["cbslru"][i]["mean_access_us"] / 1000.0,
        ])
    print(format_table(
        ["queries", "LRU ms", "CBLRU ms", "CBSLRU ms"],
        rows,
        title="Fig. 19(b) — flash mean access time "
              "(paper: CBLRU -13.20%, CBSLRU -43.83% vs LRU)",
    ))

    final = {k: v[-1] for k, v in series.items()}
    e_cblru = (1 - final["cblru"]["erases"] / max(1, final["lru"]["erases"])) * 100
    e_cbslru = (1 - final["cbslru"]["erases"] / max(1, final["lru"]["erases"])) * 100
    t_cblru = (1 - final["cblru"]["mean_access_us"]
               / final["lru"]["mean_access_us"]) * 100
    t_cbslru = (1 - final["cbslru"]["mean_access_us"]
                / final["lru"]["mean_access_us"]) * 100
    print(f"erase reduction vs LRU: CBLRU -{e_cblru:.1f}% (paper -59.92%), "
          f"CBSLRU -{e_cbslru:.1f}% (paper -71.52%)")
    print(f"access-time reduction: CBLRU -{t_cblru:.1f}% (paper -13.20%), "
          f"CBSLRU -{t_cbslru:.1f}% (paper -43.83%)")

    # Shape: erases grow monotonically; cost-based policies erase far less.
    for key in ("lru", "cblru", "cbslru"):
        erases = [s["erases"] for s in series[key]]
        assert erases == sorted(erases)
    assert final["lru"]["erases"] > 0
    assert e_cblru > 40.0
    assert e_cbslru >= e_cblru - 5.0
    # Access time: cost-based policies are faster inside the SSD too.
    assert t_cblru > 0
    assert t_cbslru > 0
    # Fig. 19(b)'s settling: LRU's later samples do not keep rising
    # steeply (reads start to dominate writes).
    lru_times = [s["mean_access_us"] for s in series["lru"]]
    assert lru_times[-1] < lru_times[4] * 1.5

    benchmark.extra_info.update({
        "erase_reduction_cblru_pct": round(e_cblru, 1),
        "erase_reduction_cbslru_pct": round(e_cbslru, 1),
        "access_reduction_cblru_pct": round(t_cblru, 1),
        "access_reduction_cbslru_pct": round(t_cbslru, 1),
    })
