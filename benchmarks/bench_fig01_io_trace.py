"""Fig. 1 + Section III: I/O patterns of search engines.

Regenerates both traces the paper examines — a UMass-style web-search
block trace and a DiskMon-style capture of our Lucene-like engine — and
measures the four signatures the paper claims: read-dominance (> 99 %),
locality, random reads, and skipped reads.
"""

from repro.analysis.tables import format_table
from repro.trace.analyzer import analyze_trace, figure1_series
from repro.trace.generator import (
    WebSearchTraceConfig,
    generate_websearch_trace,
    trace_from_engine,
)


def _run(index, log):
    umass = generate_websearch_trace(WebSearchTraceConfig(num_requests=50_000))
    engine = trace_from_engine(index, log, max_queries=400)
    return analyze_trace(umass), analyze_trace(engine), umass, engine


def test_fig01_io_patterns(benchmark, index_1m, standard_log):
    a_umass, a_engine, umass, engine = benchmark.pedantic(
        _run, args=(index_1m, standard_log), rounds=1, iterations=1
    )

    rows = []
    for a in (a_umass, a_engine):
        rows.append([
            a.name, a.num_requests, a.read_fraction * 100,
            a.locality_top10 * 100, a.random_fraction * 100,
            a.skipped_read_fraction * 100, a.lba_span,
        ])
    print()
    print(format_table(
        ["trace", "requests", "read%", "locality%", "random%", "skipped%", "span"],
        rows,
        title="Fig. 1 / Section III — I/O trace signatures "
              "(paper: >99% reads, obvious locality, random + skipped reads)",
    ))
    xs, ys = figure1_series(engine)
    print(f"Fig. 1(b) series: {len(xs)} read requests over LBA span "
          f"[{ys.min()}, {ys.max()}]")

    # The paper's claims, as assertions.
    assert a_umass.read_fraction > 0.99
    assert a_engine.read_fraction > 0.99
    assert a_umass.locality_top10 > 0.3
    assert a_engine.random_fraction > 0.3
    assert a_engine.skipped_read_fraction > 0.02

    benchmark.extra_info.update({
        "umass_read_pct": round(a_umass.read_fraction * 100, 2),
        "engine_read_pct": round(a_engine.read_fraction * 100, 2),
        "engine_skipped_pct": round(a_engine.skipped_read_fraction * 100, 2),
    })
