"""Extension E2: the dynamic scenario (Section IV.B).

The paper confines its evaluation to a static index and sketches the
dynamic case: give each cached datum a TTL; expired data is re-read from
the HDD.  This bench quantifies the freshness/performance trade the
sketch implies: sweeping the TTL from "everything is instantly stale" to
"static" shows response time and SSD write traffic falling as staleness
tolerance grows.
"""

from repro.analysis.tables import format_table
from repro.core.config import CacheConfig, Policy
from repro.workloads.retrieval import run_cached
from repro.workloads.sweep import make_log_for, make_scaled_index

MB = 1024 * 1024

#: TTLs in seconds of simulated time (the full run spans ~100 s).
TTLS_S = [0.5, 2.0, 10.0, 50.0, 0.0]  # 0 = static scenario


def _run(index):
    log = make_log_for(4_000, distinct_queries=1_200, seed=32)
    rows = []
    for ttl_s in TTLS_S:
        cfg = CacheConfig.paper_split(
            16 * MB, 64 * MB, policy=Policy.CBLRU, ttl_us=ttl_s * 1e6
        )
        result = run_cached(index, log, cfg)
        stats = result.stats
        rows.append({
            "ttl_s": ttl_s,
            "hit": stats.combined_hit_ratio,
            "ms": result.mean_response_ms,
            "expired": stats.expired_results + stats.expired_lists,
            "erases": result.ssd_erases,
        })
    return rows


def test_ext_dynamic_ttl(benchmark, index_1m):
    rows = benchmark.pedantic(_run, args=(index_1m,), rounds=1, iterations=1)
    print()
    print(format_table(
        ["TTL (s)", "hit %", "resp ms", "expirations", "erases"],
        [["static" if r["ttl_s"] == 0 else r["ttl_s"],
          r["hit"] * 100, r["ms"], r["expired"], r["erases"]] for r in rows],
        title="Extension E2 — dynamic scenario: freshness vs performance",
    ))

    static = rows[-1]
    tight = rows[0]
    assert static["expired"] == 0
    assert tight["expired"] > 0
    # Staleness tolerance buys hit ratio and response time monotonically
    # (modulo noise): the static scenario is the best case.
    assert static["hit"] >= tight["hit"]
    assert static["ms"] <= tight["ms"]
    hits = [r["hit"] for r in rows]
    assert hits == sorted(hits), "hit ratio should grow with TTL"

    benchmark.extra_info.update({
        f"ttl{r['ttl_s']}_ms": round(r["ms"], 2) for r in rows
    })
