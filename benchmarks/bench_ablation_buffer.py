"""Ablation A5: the Section II.C buffer-management schemes.

The paper positions CFLRU [13], LRU-WSR [14] and BPLRU [15] as the
general-purpose flash buffer managers its search-specific policies differ
from.  This bench reproduces each scheme's headline property on the same
traffic: CFLRU and LRU-WSR defer dirty evictions (fewer writebacks than
plain LRU), and BPLRU turns random small writes into block writes (fewer
erasures than writing the SSD directly).
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.flash.constants import FlashConfig
from repro.flash.ssd import SimulatedSSD
from repro.storage.buffer import BplruBuffer, BufferPolicy, HostPageBuffer
from repro.storage.device import NullDevice

PAGE = 2048


def _host_buffer_workload(buf, ops=20_000, span_pages=512, write_frac=0.35, seed=6):
    rng = np.random.default_rng(seed)
    pages = rng.integers(0, span_pages, size=ops)
    writes = rng.random(ops) < write_frac
    for page, is_write in zip(pages, writes):
        lba = int(page) * (PAGE // 512)
        if is_write:
            buf.write(lba, PAGE)
        else:
            buf.read(lba, PAGE)


def _run_host_policies():
    rows = []
    for policy in (BufferPolicy.LRU, BufferPolicy.CFLRU, BufferPolicy.LRU_WSR):
        buf = HostPageBuffer(NullDevice(), capacity_pages=128,
                             page_bytes=PAGE, policy=policy)
        _host_buffer_workload(buf)
        rows.append({
            "policy": policy.value,
            "hit": buf.stats.hit_ratio,
            "writebacks": buf.stats.writebacks,
            "second_chances": buf.stats.second_chances,
        })
    return rows


def _run_bplru():
    cfg = FlashConfig(num_blocks=128, overprovision=0.15)
    raw = SimulatedSSD(cfg)
    buffered_dev = SimulatedSSD(cfg)
    buffered = BplruBuffer(buffered_dev, capacity_pages=512)
    rng = np.random.default_rng(7)
    span = raw.capacity_bytes // 2
    for off in range(0, span, cfg.block_bytes):
        raw.write(off // 512, cfg.block_bytes)
        buffered.write(off // 512, cfg.block_bytes)
    buffered.flush()
    for _ in range(4_000):
        off = (int(rng.integers(0, span - 4096)) // 512) * 512
        raw.write(off // 512, PAGE)
        buffered.write(off // 512, PAGE)
    buffered.flush()
    return raw, buffered_dev, buffered


def test_ablation_buffer_management(benchmark):
    host_rows, (raw, buffered_dev, buffered) = benchmark.pedantic(
        lambda: (_run_host_policies(), _run_bplru()), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["policy", "hit %", "writebacks", "second chances"],
        [[r["policy"], r["hit"] * 100, r["writebacks"], r["second_chances"]]
         for r in host_rows],
        title="Ablation A5a — host buffer policies (CFLRU [13], LRU-WSR [14])",
    ))
    print(format_table(
        ["path", "erases", "GC copies", "write amp"],
        [
            ["direct to SSD", raw.erase_count,
             raw.ftl.stats.gc_page_writes, raw.ftl.stats.write_amplification],
            ["through BPLRU", buffered_dev.erase_count,
             buffered_dev.ftl.stats.gc_page_writes,
             buffered_dev.ftl.stats.write_amplification],
        ],
        title="Ablation A5b — BPLRU [15] vs direct random small writes",
    ))

    by = {r["policy"]: r for r in host_rows}
    # The flash-aware policies defer/reduce dirty writebacks vs LRU.
    assert by["cflru"]["writebacks"] < by["lru"]["writebacks"]
    assert by["lru-wsr"]["second_chances"] > 0
    # BPLRU eliminates most GC copy-back.
    assert (buffered_dev.ftl.stats.gc_page_writes
            < raw.ftl.stats.gc_page_writes / 2)

    benchmark.extra_info.update({
        "lru_writebacks": by["lru"]["writebacks"],
        "cflru_writebacks": by["cflru"]["writebacks"],
        "bplru_gc_copies": buffered_dev.ftl.stats.gc_page_writes,
        "raw_gc_copies": raw.ftl.stats.gc_page_writes,
    })
