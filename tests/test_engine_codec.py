"""Posting-list compression codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.codec import (
    decode_posting_list,
    encode_posting_list,
    encoded_size,
    varbyte_decode,
    varbyte_encode,
)
from repro.engine.postings import POSTING_BYTES, generate_posting_list


def test_varbyte_roundtrip_basics():
    values = np.array([0, 1, 127, 128, 300, 2**20, 2**40])
    assert np.array_equal(varbyte_decode(varbyte_encode(values)), values)


def test_varbyte_single_byte_for_small_values():
    assert len(varbyte_encode(np.array([0]))) == 1
    assert len(varbyte_encode(np.array([127]))) == 1
    assert len(varbyte_encode(np.array([128]))) == 2


def test_varbyte_rejects_negative():
    with pytest.raises(ValueError):
        varbyte_encode(np.array([-1]))


def test_varbyte_truncated_stream_detected():
    data = varbyte_encode(np.array([300]))
    with pytest.raises(ValueError):
        varbyte_decode(data[:-1])


def test_varbyte_count_limits_output():
    data = varbyte_encode(np.array([1, 2, 3]))
    assert varbyte_decode(data, count=2).tolist() == [1, 2]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 2**50), max_size=60))
def test_varbyte_roundtrip_property(values):
    arr = np.array(values, dtype=np.int64)
    assert np.array_equal(varbyte_decode(varbyte_encode(arr)), arr)


def test_posting_list_roundtrip():
    plist = generate_posting_list(7, 500, 10_000, seed=3)
    decoded = decode_posting_list(encode_posting_list(plist))
    assert decoded.term_id == 7
    assert np.array_equal(decoded.doc_ids, plist.doc_ids)
    assert np.array_equal(decoded.tfs, plist.tfs)


def test_empty_posting_list_roundtrip():
    plist = generate_posting_list(3, 0, 100, seed=0)
    decoded = decode_posting_list(encode_posting_list(plist))
    assert len(decoded) == 0
    assert decoded.term_id == 3


def test_truncated_payload_detected():
    plist = generate_posting_list(1, 50, 1000, seed=1)
    data = encode_posting_list(plist)
    with pytest.raises(ValueError):
        decode_posting_list(data[: len(data) // 2])


def test_compression_beats_fixed_width():
    """Delta + varbyte must beat the 8 B/posting raw layout."""
    plist = generate_posting_list(0, 5_000, 100_000, seed=2)
    encoded = encode_posting_list(plist)
    assert len(encoded) < plist.nbytes
    ratio = len(encoded) / (len(plist) * POSTING_BYTES)
    assert ratio < 0.8


def test_encoded_size_is_exact():
    for df, n_docs, seed in ((10, 100, 1), (500, 10_000, 2), (3000, 50_000, 3)):
        plist = generate_posting_list(5, df, n_docs, seed=seed)
        assert encoded_size(plist) == len(encode_posting_list(plist))


@settings(max_examples=30, deadline=None)
@given(
    df=st.integers(1, 300),
    seed=st.integers(0, 10**6),
)
def test_posting_roundtrip_property(df, seed):
    plist = generate_posting_list(2, df, 5_000, seed=seed)
    decoded = decode_posting_list(encode_posting_list(plist))
    assert np.array_equal(decoded.doc_ids, plist.doc_ids)
    assert np.array_equal(decoded.tfs, plist.tfs)
    assert encoded_size(plist) == len(encode_posting_list(plist))
