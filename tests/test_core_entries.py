"""Cache entries and result blocks (Fig. 6/7 mapping values)."""

import pytest

from repro.core.entries import CachedList, CachedResult, EntryState, ResultBlock


def test_cached_result_defaults():
    e = CachedResult(query_key=(1, 2), nbytes=20480)
    assert e.freq == 1
    assert not e.on_ssd
    assert e.state is EntryState.NORMAL
    e.touch()
    assert e.freq == 2


def test_cached_result_on_ssd_detection():
    e = CachedResult(query_key=(1,), nbytes=100, rb_id=3, slot=0, lba=40)
    assert e.on_ssd


def test_cached_list_validation():
    with pytest.raises(ValueError):
        CachedList(term_id=0, cached_bytes=-1, total_bytes=100, pu=0.5)
    with pytest.raises(ValueError):
        CachedList(term_id=0, cached_bytes=10, total_bytes=0, pu=0.5)
    with pytest.raises(ValueError):
        CachedList(term_id=0, cached_bytes=10, total_bytes=100, pu=0.0)
    with pytest.raises(ValueError):
        CachedList(term_id=0, cached_bytes=10, total_bytes=100, pu=1.5)


def test_cached_list_covers():
    e = CachedList(term_id=0, cached_bytes=1000, total_bytes=5000, pu=0.2)
    assert e.covers(999) and e.covers(1000)
    assert not e.covers(1001)


def test_cached_list_formula1_pu():
    e = CachedList(term_id=0, cached_bytes=1000, total_bytes=5000, pu=0.2,
                   mean_needed_bytes=600.0)
    assert e.formula1_pu == pytest.approx(0.6)
    # Falls back to the term utilization when no need has been recorded.
    fresh = CachedList(term_id=0, cached_bytes=1000, total_bytes=5000, pu=0.2)
    assert fresh.formula1_pu == pytest.approx(0.2)
    # Never exceeds 1.
    hot = CachedList(term_id=0, cached_bytes=100, total_bytes=500, pu=0.2,
                     mean_needed_bytes=1000.0)
    assert hot.formula1_pu == 1.0


def test_cached_list_on_ssd_detection():
    blocks = CachedList(term_id=0, cached_bytes=10, total_bytes=20, pu=0.5,
                        blocks=[1, 2])
    byte = CachedList(term_id=0, cached_bytes=10, total_bytes=20, pu=0.5,
                      lba_byte=100)
    neither = CachedList(term_id=0, cached_bytes=10, total_bytes=20, pu=0.5)
    assert blocks.on_ssd and byte.on_ssd and not neither.on_ssd


def test_result_block_bitmap():
    rb = ResultBlock(rb_id=0, lba=0, num_slots=6)
    assert rb.iren == 6 and rb.valid_count == 0
    rb.set_valid(0, (1,))
    rb.set_valid(3, (2,))
    assert rb.valid_count == 2
    assert rb.iren == 4
    assert rb.is_valid(3) and not rb.is_valid(1)
    rb.clear_valid(3)
    assert rb.iren == 5
    assert rb.entries[3] == (2,)  # key stays for mapping cleanup


def test_result_block_paper_bitmap_example():
    """'10110000' -> entries 1, 3, 4 valid (paper's example, 1-indexed)."""
    rb = ResultBlock(rb_id=0, lba=0, num_slots=8)
    for slot in (0, 2, 3):
        rb.set_valid(slot, (slot,))
    assert rb.valid_count == 3
    assert rb.iren == 5


def test_result_block_slot_bounds():
    rb = ResultBlock(rb_id=0, lba=0, num_slots=4)
    with pytest.raises(IndexError):
        rb.set_valid(4, (1,))
    with pytest.raises(IndexError):
        rb.is_valid(-1)


def test_result_block_validation():
    with pytest.raises(ValueError):
        ResultBlock(rb_id=0, lba=0, num_slots=0)
    with pytest.raises(ValueError):
        ResultBlock(rb_id=0, lba=0, num_slots=3, entries=[None] * 4)
