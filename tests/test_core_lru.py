"""LRU list with working / replace-first regions."""

import pytest

from repro.core.lru import LruList


def test_insert_and_get():
    lru = LruList()
    lru.insert("a", 1)
    assert "a" in lru
    assert lru.get("a") == 1
    assert lru.get("b") is None
    assert len(lru) == 1


def test_window_validation():
    with pytest.raises(ValueError):
        LruList(replace_window=0)


def test_pop_lru_order():
    lru = LruList()
    for k in "abc":
        lru.insert(k, k.upper())
    assert lru.pop_lru() == ("a", "A")
    assert lru.pop_lru() == ("b", "B")


def test_pop_lru_empty_raises():
    with pytest.raises(KeyError):
        LruList().pop_lru()
    with pytest.raises(KeyError):
        LruList().peek_lru()


def test_touch_moves_to_mru():
    lru = LruList()
    for k in "abc":
        lru.insert(k, k)
    lru.touch("a")
    assert lru.pop_lru()[0] == "b"


def test_get_does_not_touch():
    lru = LruList()
    for k in "ab":
        lru.insert(k, k)
    lru.get("a")
    assert lru.peek_lru()[0] == "a"


def test_reinsert_moves_to_mru():
    lru = LruList()
    for k in "ab":
        lru.insert(k, k)
    lru.insert("a", "A2")
    assert lru.pop_lru()[0] == "b"
    assert lru.get("a") == "A2"


def test_replace_first_region_is_lru_end():
    lru = LruList(replace_window=3)
    for k in "abcdefg":
        lru.insert(k, k)
    region = lru.replace_first_region()
    assert [k for k, _ in region] == ["a", "b", "c"]


def test_replace_first_region_smaller_than_window():
    lru = LruList(replace_window=5)
    lru.insert("x", 1)
    assert len(lru.replace_first_region()) == 1


def test_items_lru_order_full_scan():
    lru = LruList()
    for k in "abc":
        lru.insert(k, k)
    assert [k for k, _ in lru.items_lru_order()] == ["a", "b", "c"]


def test_pop_specific_key():
    lru = LruList()
    for k in "abc":
        lru.insert(k, k)
    assert lru.pop("b") == "b"
    assert "b" not in lru
    with pytest.raises(KeyError):
        lru.pop("b")


def test_keys_and_clear():
    lru = LruList()
    for k in "ab":
        lru.insert(k, k)
    assert lru.keys() == ["a", "b"]
    lru.clear()
    assert len(lru) == 0
