"""Documents, the index builder and the query parser."""

import numpy as np
import pytest

from repro.engine.builder import build_index
from repro.engine.documents import Document, DocumentStore, generate_documents
from repro.engine.parser import QueryParser
from repro.engine.postings import POSTING_BYTES
from repro.engine.processor import QueryProcessor
from repro.engine.query import Query


@pytest.fixture(scope="module")
def store():
    return generate_documents(num_docs=300, vocab_size=120, avg_doc_len=60, seed=8)


@pytest.fixture(scope="module")
def built(store):
    return build_index(store, vocab_size=120)


# -- documents -------------------------------------------------------------

def test_document_term_frequencies():
    doc = Document(doc_id=0, tokens=np.array([3, 1, 3, 3, 2], dtype=np.int64))
    assert doc.term_frequencies() == {1: 1, 2: 1, 3: 3}
    assert len(doc) == 5


def test_document_validation():
    with pytest.raises(ValueError):
        Document(doc_id=-1, tokens=np.array([1], dtype=np.int64))


def test_store_rejects_duplicate_ids():
    docs = [Document(0, np.array([1], dtype=np.int64)),
            Document(0, np.array([2], dtype=np.int64))]
    with pytest.raises(ValueError):
        DocumentStore(docs)


def test_store_iteration_sorted(store):
    ids = [d.doc_id for d in store]
    assert ids == sorted(ids)
    assert len(store) == 300


def test_store_get(store):
    assert store.get(5).doc_id == 5
    with pytest.raises(KeyError):
        store.get(10**6)


def test_generate_documents_deterministic():
    a = generate_documents(50, 40, seed=1)
    b = generate_documents(50, 40, seed=1)
    assert np.array_equal(a.get(3).tokens, b.get(3).tokens)


def test_generate_documents_zipf_head_dominates(store):
    """Low term ids (high Zipf probability) occur most often."""
    counts = np.zeros(120, dtype=np.int64)
    for doc in store:
        terms, c = np.unique(doc.tokens, return_counts=True)
        counts[terms] += c
    assert counts[:12].sum() > counts[60:].sum()


def test_generate_documents_validation():
    with pytest.raises(ValueError):
        generate_documents(0, 10)


# -- builder ------------------------------------------------------------------

def test_built_index_doc_freqs_exact(store, built):
    """df from the index must equal a direct count over documents."""
    direct = np.zeros(120, dtype=np.int64)
    for doc in store:
        for term in doc.term_frequencies():
            direct[term] += 1
    present = direct > 0
    assert np.array_equal(built.stats.doc_freqs[present], direct[present])
    # Absent terms carry the documented df=1 placeholder.
    assert (built.stats.doc_freqs[~present] == 1).all()


def test_built_postings_frequency_sorted(built):
    for term in range(0, 120, 7):
        plist = built.postings(term)
        if len(plist) > 1:
            assert (np.diff(plist.tfs) <= 0).all()


def test_built_postings_match_documents(store, built):
    """Every posting's (doc, tf) must be exactly the document's count."""
    term = 0  # most frequent term: present in many docs
    plist = built.postings(term)
    for doc_id, tf in zip(plist.doc_ids[:20], plist.tfs[:20]):
        assert store.get(int(doc_id)).term_frequencies()[term] == int(tf)


def test_built_index_layout_consistent(built):
    ext = built.layout.extent(0)
    assert ext.nbytes == int(built.stats.doc_freqs[0]) * POSTING_BYTES


def test_built_index_works_with_processor(built):
    processor = QueryProcessor(built, top_k=5, seed=3)
    plan = processor.plan(Query(0, (0, 1)))
    entry = processor.execute(plan, materialize=True)
    assert len(entry) > 0


def test_build_empty_store_rejected():
    with pytest.raises(ValueError):
        build_index(DocumentStore([]))


def test_build_vocab_too_small_rejected(store):
    with pytest.raises(ValueError):
        build_index(store, vocab_size=3)


# -- parser -------------------------------------------------------------------

def test_parser_roundtrip(built):
    parser = QueryParser(built.lexicon)
    q = parser.parse("term00003 term00007")
    assert q.terms == (3, 7)
    assert q.key == (3, 7)


def test_parser_case_punctuation_and_dedup(built):
    parser = QueryParser(built.lexicon)
    q = parser.parse("TERM00003, term00003! term00007?")
    assert q.terms == (3, 7)


def test_parser_drops_unknown_tokens(built):
    parser = QueryParser(built.lexicon)
    q = parser.parse("hello term00002 world")
    assert q.terms == (2,)


def test_parser_rejects_fully_unknown(built):
    parser = QueryParser(built.lexicon)
    with pytest.raises(ValueError):
        parser.parse("completely unknown words")


def test_parser_max_terms(built):
    parser = QueryParser(built.lexicon, max_terms=2)
    q = parser.parse("term00001 term00002 term00003")
    assert len(q.terms) == 2


def test_parser_assigns_sequential_ids(built):
    parser = QueryParser(built.lexicon)
    a = parser.parse("term00001")
    b = parser.parse("term00002")
    assert b.query_id == a.query_id + 1
    c = parser.parse("term00003", query_id=99)
    assert c.query_id == 99
