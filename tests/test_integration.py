"""End-to-end integration: the paper's qualitative claims must hold.

These tests run the full stack (engine -> cache manager -> SSD/HDD
simulators) at reduced scale and assert the *orderings* the paper reports,
not absolute numbers.
"""

import pytest

from repro.core.config import CacheConfig, Policy, Scheme
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.workloads.retrieval import run_cached, run_uncached
from repro.workloads.sweep import make_log_for, make_scaled_index

MB = 1024 * 1024


@pytest.fixture(scope="module")
def index():
    return make_scaled_index(1_000_000)


@pytest.fixture(scope="module")
def log():
    return make_log_for(4_000, distinct_queries=1_200, seed=21)


@pytest.fixture(scope="module")
def policy_results(index, log):
    """One cached run per policy, shared by the ordering tests.

    The SSD is deliberately small relative to the list working set so the
    replacement policies actually replace (and GC actually runs).
    """
    out = {}
    for policy in (Policy.LRU, Policy.CBLRU, Policy.CBSLRU):
        cfg = CacheConfig.paper_split(
            mem_bytes=16 * MB, ssd_bytes=64 * MB, policy=policy
        )
        out[policy] = run_cached(index, log, cfg, static_analyze_queries=2_000)
    return out


def test_two_level_beats_one_level(index, log):
    cfg2 = CacheConfig.paper_split(mem_bytes=24 * MB, ssd_bytes=256 * MB,
                                   policy=Policy.CBLRU)
    cfg1 = cfg2.one_level()
    two = run_cached(index, log, cfg2)
    one = run_cached(index, log, cfg1)
    # Fig. 16: the SSD tier improves both hit ratio and response time.
    assert two.stats.combined_hit_ratio > one.stats.combined_hit_ratio
    assert two.mean_response_ms < one.mean_response_ms


def test_cache_beats_no_cache(index, log):
    cfg = CacheConfig.paper_split(mem_bytes=24 * MB, ssd_bytes=256 * MB)
    cached = run_cached(index, log, cfg, max_queries=800)
    uncached = run_uncached(index, log, max_queries=800)
    assert cached.mean_response_ms < uncached.mean_response_ms / 2


def test_cost_based_policies_improve_hit_ratio(policy_results):
    """Fig. 14b ordering: LRU < CBLRU <= CBSLRU on list hit ratio."""
    lru = policy_results[Policy.LRU].stats
    cblru = policy_results[Policy.CBLRU].stats
    assert cblru.list_hit_ratio > lru.list_hit_ratio


def test_cost_based_policies_improve_response_time(policy_results):
    """Fig. 17 ordering: response(LRU) > response(CBLRU) > response(CBSLRU)."""
    assert (policy_results[Policy.LRU].mean_response_ms
            > policy_results[Policy.CBLRU].mean_response_ms
            > policy_results[Policy.CBSLRU].mean_response_ms)


def test_cost_based_policies_reduce_erases(policy_results):
    """Fig. 19a ordering: erases(LRU) > erases(CBLRU) >= erases(CBSLRU)."""
    lru = policy_results[Policy.LRU].ssd_erases
    cblru = policy_results[Policy.CBLRU].ssd_erases
    cbslru = policy_results[Policy.CBSLRU].ssd_erases
    assert lru > cblru >= cbslru
    # The paper reports ~60-72% reductions; require at least 30%.
    assert cblru < 0.7 * lru


def test_throughput_tracks_response_time(policy_results):
    for result in policy_results.values():
        expected_qps = 1000.0 / result.mean_response_ms
        assert result.throughput_qps == pytest.approx(expected_qps, rel=1e-6)


def test_hybrid_scheme_beats_inclusive_on_writes(index, log):
    """Section IV.A: inclusive wastes SSD writes on data that is already
    in memory; hybrid avoids them."""
    base = dict(mem_bytes=24 * MB, ssd_bytes=256 * MB, policy=Policy.CBLRU)
    hybrid = run_cached(index, log,
                        CacheConfig.paper_split(**base, scheme=Scheme.HYBRID),
                        max_queries=1000)
    inclusive = run_cached(index, log,
                           CacheConfig.paper_split(**base, scheme=Scheme.INCLUSIVE),
                           max_queries=1000)
    h_writes = hybrid.stats.ssd_result_writes + hybrid.stats.ssd_list_writes
    i_writes = inclusive.stats.ssd_result_writes + inclusive.stats.ssd_list_writes
    assert h_writes < i_writes


def test_exclusive_scheme_erases_more_than_hybrid(index, log):
    """Section IV.A: exclusive deletes on every promotion, costing erases."""
    base = dict(mem_bytes=24 * MB, ssd_bytes=192 * MB, policy=Policy.CBLRU)
    hybrid = run_cached(index, log,
                        CacheConfig.paper_split(**base, scheme=Scheme.HYBRID),
                        max_queries=1200)
    exclusive = run_cached(index, log,
                           CacheConfig.paper_split(**base, scheme=Scheme.EXCLUSIVE),
                           max_queries=1200)
    h = hybrid.stats.ssd_result_writes + hybrid.stats.ssd_list_writes
    e = exclusive.stats.ssd_result_writes + exclusive.stats.ssd_list_writes
    assert e >= h  # re-promotions force rewrites under exclusive


def test_situation_matrix_covers_multiple_sources(index, log):
    """Table I: a warm two-level cache serves queries from many situations."""
    cfg = CacheConfig.paper_split(mem_bytes=24 * MB, ssd_bytes=256 * MB,
                                  policy=Policy.CBLRU)
    mgr = CacheManager(cfg, build_hierarchy_for(cfg, index), index)
    for query in log.head(1500):
        mgr.process_query(query)
    counts = mgr.stats.situation_counts
    populated = [s for s, c in counts.items() if c > 0]
    assert len(populated) >= 4  # S1, S3, S8 and at least one mixed source


def test_hit_ratio_grows_with_cache_size(index, log):
    """Fig. 14a: hit ratio increases with capacity, with diminishing
    returns."""
    ratios = []
    for mem_mb in (6, 24, 96):
        cfg = CacheConfig.paper_split(mem_bytes=mem_mb * MB,
                                      ssd_bytes=mem_mb * 10 * MB)
        result = run_cached(index, log, cfg, max_queries=1200)
        ratios.append(result.stats.combined_hit_ratio)
    assert ratios[0] < ratios[1] <= ratios[2] + 0.02
    # Diminishing returns: the second doubling gains less than the first.
    assert (ratios[1] - ratios[0]) > (ratios[2] - ratios[1]) - 0.05


def test_deterministic_runs(index, log):
    cfg = CacheConfig.paper_split(mem_bytes=12 * MB, ssd_bytes=96 * MB)
    a = run_cached(index, log, cfg, max_queries=400)
    b = run_cached(index, log, cfg, max_queries=400)
    assert a.mean_response_ms == pytest.approx(b.mean_response_ms)
    assert a.ssd_erases == b.ssd_erases
