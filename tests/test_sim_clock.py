"""Virtual clock semantics."""

import pytest

from repro.sim.clock import VirtualClock


def test_starts_at_zero_by_default():
    clock = VirtualClock()
    assert clock.now_us == 0.0


def test_custom_start():
    assert VirtualClock(5.0).now_us == 5.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        VirtualClock(-1.0)


def test_advance_accumulates_and_returns_now():
    clock = VirtualClock()
    assert clock.advance(10.0) == 10.0
    assert clock.advance(2.5) == 12.5
    assert clock.now_us == 12.5


def test_advance_rejects_negative():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_unit_conversions():
    clock = VirtualClock()
    clock.advance(2_500_000.0)
    assert clock.now_ms == pytest.approx(2500.0)
    assert clock.now_s == pytest.approx(2.5)


def test_charge_tracks_channels_independently():
    clock = VirtualClock()
    clock.charge("ssd", 5.0)
    clock.charge("hdd", 7.0)
    clock.charge("ssd", 3.0)
    assert clock.busy_us("ssd") == pytest.approx(8.0)
    assert clock.busy_us("hdd") == pytest.approx(7.0)
    assert set(clock.channels()) == {"ssd", "hdd"}


def test_charge_does_not_advance_now():
    clock = VirtualClock()
    clock.charge("x", 100.0)
    assert clock.now_us == 0.0


def test_charge_rejects_negative():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.charge("x", -1.0)


def test_unknown_channel_reads_zero():
    assert VirtualClock().busy_us("nope") == 0.0


def test_reset_clears_time_and_channels():
    clock = VirtualClock()
    clock.advance(9.0)
    clock.charge("a", 1.0)
    clock.reset()
    assert clock.now_us == 0.0
    assert clock.channels() == ()


# -- monotonicity (advance_to) -----------------------------------------------

def test_advance_to_jumps_forward():
    clock = VirtualClock()
    assert clock.advance_to(50.0) == 50.0
    assert clock.now_us == 50.0


def test_advance_to_same_instant_is_allowed():
    clock = VirtualClock()
    clock.advance(10.0)
    assert clock.advance_to(10.0) == 10.0


def test_advance_to_rejects_time_travel():
    clock = VirtualClock()
    clock.advance(10.0)
    with pytest.raises(ValueError, match="backwards"):
        clock.advance_to(9.999)
    assert clock.now_us == 10.0  # a rejected jump leaves the clock untouched


# -- the consume seam --------------------------------------------------------

class _StubKernel:
    """Records serve() calls; ``in_task`` is scripted per test."""

    def __init__(self, in_task: bool) -> None:
        self._in_task = in_task
        self.calls = []

    def in_task(self) -> bool:
        return self._in_task

    def serve(self, channel, delta_us, charge=True):
        self.calls.append((channel, delta_us, charge))


def test_consume_without_kernel_is_advance_plus_charge():
    clock = VirtualClock()
    assert clock.consume("ssd", 8.0) == 8.0
    assert clock.busy_us("ssd") == 8.0


def test_consume_charge_false_advances_without_attribution():
    clock = VirtualClock()
    clock.consume("cpu", 5.0, charge=False)
    assert clock.now_us == 5.0
    assert clock.busy_us("cpu") == 0.0


def test_consume_routes_to_bound_kernel_inside_task():
    clock = VirtualClock()
    kernel = _StubKernel(in_task=True)
    clock.bind_kernel(kernel)
    assert clock.kernel is kernel
    clock.consume("ssd", 8.0, charge=False)
    # The kernel owns time and attribution now: nothing happened inline.
    assert kernel.calls == [("ssd", 8.0, False)]
    assert clock.now_us == 0.0
    assert clock.busy_us("ssd") == 0.0


def test_consume_outside_task_ignores_bound_kernel():
    clock = VirtualClock()
    kernel = _StubKernel(in_task=False)
    clock.bind_kernel(kernel)
    clock.consume("ssd", 8.0)
    assert kernel.calls == []
    assert clock.now_us == 8.0
    assert clock.busy_us("ssd") == 8.0
    clock.bind_kernel(None)
    assert clock.kernel is None
