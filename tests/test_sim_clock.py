"""Virtual clock semantics."""

import pytest

from repro.sim.clock import VirtualClock


def test_starts_at_zero_by_default():
    clock = VirtualClock()
    assert clock.now_us == 0.0


def test_custom_start():
    assert VirtualClock(5.0).now_us == 5.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        VirtualClock(-1.0)


def test_advance_accumulates_and_returns_now():
    clock = VirtualClock()
    assert clock.advance(10.0) == 10.0
    assert clock.advance(2.5) == 12.5
    assert clock.now_us == 12.5


def test_advance_rejects_negative():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_unit_conversions():
    clock = VirtualClock()
    clock.advance(2_500_000.0)
    assert clock.now_ms == pytest.approx(2500.0)
    assert clock.now_s == pytest.approx(2.5)


def test_charge_tracks_channels_independently():
    clock = VirtualClock()
    clock.charge("ssd", 5.0)
    clock.charge("hdd", 7.0)
    clock.charge("ssd", 3.0)
    assert clock.busy_us("ssd") == pytest.approx(8.0)
    assert clock.busy_us("hdd") == pytest.approx(7.0)
    assert set(clock.channels()) == {"ssd", "hdd"}


def test_charge_does_not_advance_now():
    clock = VirtualClock()
    clock.charge("x", 100.0)
    assert clock.now_us == 0.0


def test_charge_rejects_negative():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.charge("x", -1.0)


def test_unknown_channel_reads_zero():
    assert VirtualClock().busy_us("nope") == 0.0


def test_reset_clears_time_and_channels():
    clock = VirtualClock()
    clock.advance(9.0)
    clock.charge("a", 1.0)
    clock.reset()
    assert clock.now_us == 0.0
    assert clock.channels() == ()
