"""DFTL: demand-paged mapping table."""

import pytest

from repro.flash.ftl_dftl import DFTL
from repro.flash.ftl_page import PageMappingFTL


@pytest.fixture
def ftl(tiny_flash):
    return DFTL(tiny_flash, cmt_entries=8)


def test_cmt_capacity_validated(tiny_flash):
    with pytest.raises(ValueError):
        DFTL(tiny_flash, cmt_entries=0)


def test_write_read_roundtrip(ftl):
    ftl.write(0)
    assert ftl.read(0) >= ftl.config.read_us
    assert ftl.mapped_lpn_count() == 1


def test_cmt_hit_costs_no_translation_io(ftl):
    ftl.write(0)
    before = ftl.stats.translation_page_reads
    latency = ftl.read(0)  # entry is cached now
    assert latency == ftl.config.read_us
    assert ftl.stats.translation_page_reads == before


def test_cmt_eviction_flushes_dirty_entries(ftl):
    spread = ftl.entries_per_tpage  # force distinct translation pages
    for i in range(ftl.cmt_entries + 4):
        ftl.write((i * spread) % ftl.num_lpns)
    assert ftl.cmt_size <= ftl.cmt_entries
    assert ftl.stats.translation_page_writes > 0


def test_cmt_miss_after_eviction_reads_translation_page(ftl):
    spread = ftl.entries_per_tpage
    lpns = [(i * spread) % ftl.num_lpns for i in range(ftl.cmt_entries + 2)]
    for lpn in lpns:
        ftl.write(lpn)
    before = ftl.stats.translation_page_reads
    ftl.read(lpns[0])  # long evicted
    assert ftl.stats.translation_page_reads > before


def test_same_tpage_entries_share_flush(ftl):
    """Entries in one translation page are batch-cleaned on flush."""
    for i in range(4):
        ftl.write(i)  # all in translation page 0
    # Fill the CMT with entries from other translation pages to force
    # eviction of the dirty page-0 entries.
    spread = ftl.entries_per_tpage
    for i in range(1, ftl.cmt_entries + 1):
        ftl.write((i * spread) % ftl.num_lpns)
    # At most a handful of flushes of tvpn 0 should have occurred, not 4
    # separate ones (batch-update effect): allow <= 2.
    assert ftl.stats.translation_page_writes <= ftl.cmt_entries + 2


def test_trim(ftl):
    ftl.write(5)
    ftl.trim(5)
    assert ftl.mapped_lpn_count() == 0
    assert ftl.stats.trimmed_pages == 1


def test_gc_with_translation_pages_survives_churn(tiny_flash):
    ftl = DFTL(tiny_flash, cmt_entries=16)
    span = ftl.num_lpns // 3
    for i in range(tiny_flash.total_pages * 2):
        ftl.write((i * 7) % span)
    assert ftl.stats.block_erases > 0
    assert ftl.mapped_lpn_count() == span
    ftl.nand.check_invariants()
    # Data still resolvable after GC moved both data and translation pages.
    for lpn in range(0, span, 11):
        ftl.read(lpn)


def test_dftl_matches_page_mapping_semantics(tiny_flash):
    """Same workload => same mapped set as the ideal page-mapping FTL."""
    dftl = DFTL(tiny_flash, cmt_entries=8)
    page = PageMappingFTL(tiny_flash)
    ops = [(i * 13) % 50 for i in range(300)]
    for lpn in ops:
        dftl.write(lpn)
        page.write(lpn)
    assert dftl.mapped_lpn_count() == page.mapped_lpn_count()


def test_dftl_costs_more_than_ideal_page_mapping(tiny_flash):
    """The paper treats page-mapping as the ideal; DFTL adds mapping I/O."""
    dftl = DFTL(tiny_flash, cmt_entries=4)
    page = PageMappingFTL(tiny_flash)
    spread = dftl.entries_per_tpage
    total_d = total_p = 0.0
    for i in range(60):
        lpn = (i * spread) % dftl.num_lpns
        total_d += dftl.write(lpn)
        total_p += page.write(lpn)
    assert total_d > total_p
