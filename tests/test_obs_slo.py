"""SLO spec parsing, evaluation, and the anomaly detectors."""

import pytest

from repro.obs import (
    detect_shard_skew,
    evaluate_slo,
    evaluate_slos,
    parse_slo,
    run_detectors,
)
from repro.obs.slo import (
    detect_hit_ratio_drift,
    detect_queue_buildup,
    detect_wait_dominated,
    detect_write_amp_spike,
)


def windows(series_values: dict):
    """Synthetic window records from {series: [values...]}."""
    length = max(len(v) for v in series_values.values())
    out = []
    for i in range(length):
        derived = {s: vals[i] for s, vals in series_values.items()
                   if i < len(vals) and vals[i] is not None}
        out.append({"type": "window", "window": i, "start_us": i * 100.0,
                    "end_us": (i + 1) * 100.0, "counters": {}, "gauges": {},
                    "histograms": {}, "derived": derived})
    return out


# -- the grammar -------------------------------------------------------------

def test_parse_slo_grammar():
    spec = parse_slo("p99_response_us < 100000 @ 95%")
    assert spec.series == "p99_response_us"
    assert spec.op == "<"
    assert spec.threshold == 100000.0
    assert spec.min_fraction == 0.95

    spec = parse_slo("hit_ratio >= 0.3")
    assert spec.min_fraction == 1.0
    assert parse_slo("write_amp<=4.0@90%").op == "<="
    assert parse_slo("erases > 1e3").threshold == 1000.0


def test_parse_slo_rejects_garbage():
    for bad in ("p99 ~ 5", "hit_ratio >=", "< 3", "x > 1 @ 0%",
                "x > 1 @ 150%"):
        with pytest.raises(ValueError):
            parse_slo(bad)


# -- evaluation --------------------------------------------------------------

def test_evaluate_slo_verdicts_and_burn_rate():
    w = windows({"hit_ratio": [0.1, 0.5, 0.6, 0.7, 0.7]})
    met = evaluate_slo(parse_slo("hit_ratio >= 0.4 @ 80%"), w)
    assert met.verdict == "met"
    assert met.windows_evaluated == 5
    assert met.windows_passed == 4

    strict = evaluate_slo(parse_slo("hit_ratio >= 0.4"), w)
    assert strict.verdict == "violated"
    assert strict.worst_window == 0
    assert strict.worst_value == 0.1
    assert "FAIL" in strict.format()

    nodata = evaluate_slo(parse_slo("write_amp < 2"), w)
    assert nodata.verdict == "no-data"
    assert "no data" in nodata.format()


def test_evaluate_slos_accepts_text_lines():
    w = windows({"hit_ratio": [0.9, 0.9]})
    results = evaluate_slos(["hit_ratio >= 0.5", "hit_ratio < 0.5"], w)
    assert [r.verdict for r in results] == ["met", "violated"]


# -- detectors ---------------------------------------------------------------

def test_detect_hit_ratio_drift_fires_on_drop():
    stable = [0.7] * 6
    assert not detect_hit_ratio_drift(windows({"hit_ratio": stable}))
    dropped = stable + [0.3]
    hits = detect_hit_ratio_drift(windows({"hit_ratio": dropped}))
    assert hits and hits[0].window == 6
    assert hits[0].detector == "hit_ratio_drift"


def test_detect_write_amp_spike():
    calm = [1.2] * 6
    assert not detect_write_amp_spike(windows({"write_amp": calm}))
    spiked = calm + [3.0]
    hits = detect_write_amp_spike(windows({"write_amp": spiked}))
    assert hits and hits[0].severity == "critical"
    # A spike below min_wa is noise, not an anomaly.
    tiny = [0.5] * 6 + [1.2]
    assert not detect_write_amp_spike(windows({"write_amp": tiny}))


def test_detect_queue_buildup_needs_consecutive_rise():
    sawtooth = [1, 3, 1, 3, 1, 3]
    assert not detect_queue_buildup(windows({"queue_depth": sawtooth}))
    rising = [1, 2, 3, 4, 5]
    hits = detect_queue_buildup(windows({"queue_depth": rising}))
    assert hits and hits[0].window == 3


def test_detect_queue_buildup_escalates_to_critical():
    """A run reaching critical_k is the unbounded-backlog signature of an
    offered rate past the knee; --strict turns critical into a failure."""
    rising = list(range(1, 9))  # runs of length 3..7
    hits = detect_queue_buildup(windows({"queue_depth": rising}))
    assert [h.severity for h in hits] == [
        "warn", "warn", "warn", "critical", "critical"]
    # A dip resets the run: no escalation without consecutive growth.
    interrupted = [1, 2, 3, 4, 1, 2, 3, 4, 5]
    hits = detect_queue_buildup(windows({"queue_depth": interrupted}))
    assert all(h.severity == "warn" for h in hits)


def test_detect_wait_dominated_warns_after_sustained_run():
    calm = [0.3] * 8
    assert not detect_wait_dominated(windows({"wait_fraction": calm}))
    # Three high windows are not a run of four; the fourth flags warn.
    short = [0.8, 0.8, 0.8, 0.3, 0.8]
    assert not detect_wait_dominated(windows({"wait_fraction": short}))
    sustained = [0.8] * 5
    hits = detect_wait_dominated(windows({"wait_fraction": sustained}))
    assert [(h.window, h.severity) for h in hits] == [(3, "warn"),
                                                     (4, "warn")]
    assert hits[0].detector == "wait_dominated"


def test_detect_wait_dominated_escalates_only_past_the_knee():
    # High-but-under-capacity fractions never reach critical: 0.90 for
    # many windows stays warn, so --strict passes a healthy loaded run.
    loaded = [0.90] * 12
    hits = detect_wait_dominated(windows({"wait_fraction": loaded}))
    assert hits and all(h.severity == "warn" for h in hits)
    # Near-total wait domination sustained for critical_k escalates.
    saturated = [0.97] * 9
    hits = detect_wait_dominated(windows({"wait_fraction": saturated}))
    assert hits[-1].severity == "critical"
    assert [h.severity for h in hits].count("critical") == 2  # windows 7, 8
    # A single dip resets the critical run but not necessarily the warn.
    interrupted = [0.97] * 7 + [0.80] + [0.97] * 7
    hits = detect_wait_dominated(windows({"wait_fraction": interrupted}))
    assert all(h.severity == "warn" for h in hits)


def test_run_detectors_includes_wait_dominated():
    w = windows({"wait_fraction": [0.8] * 6})
    anomalies = run_detectors(w)
    assert {a.detector for a in anomalies} == {"wait_dominated"}


def test_run_detectors_orders_by_window():
    w = windows({"hit_ratio": [0.7] * 6 + [0.2],
                 "queue_depth": [1, 2, 3, 4, 5, 5, 5]})
    anomalies = run_detectors(w)
    assert [a.window for a in anomalies] == sorted(a.window for a in anomalies)
    assert {a.detector for a in anomalies} == {"hit_ratio_drift",
                                               "queue_buildup"}


def test_detect_shard_skew():
    balanced = {0: windows({"hit_ratio": [0.7] * 4}),
                1: windows({"hit_ratio": [0.68] * 4})}
    assert not detect_shard_skew(balanced)
    skewed = {0: windows({"hit_ratio": [0.7] * 4}),
              1: windows({"hit_ratio": [0.7] * 4}),
              2: windows({"hit_ratio": [0.1] * 4})}
    hits = detect_shard_skew(skewed)
    assert len(hits) == 1
    assert "shard 2" in hits[0].detail
    # One shard (or none with data) can't be skewed against anything.
    assert not detect_shard_skew({0: windows({"hit_ratio": [0.9]})})
