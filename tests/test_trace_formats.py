"""SPC and DiskMon parsers/writers."""

import numpy as np
import pytest

from repro.trace.diskmon import parse_diskmon, write_diskmon
from repro.trace.generator import WebSearchTraceConfig, generate_websearch_trace
from repro.trace.record import Trace
from repro.trace.umass import parse_spc, write_spc


@pytest.fixture
def sample_trace():
    return generate_websearch_trace(WebSearchTraceConfig(num_requests=200, seed=6))


# -- SPC ------------------------------------------------------------------

def test_spc_roundtrip(tmp_path, sample_trace):
    path = tmp_path / "t.spc"
    write_spc(sample_trace, path)
    parsed = parse_spc(path)
    assert len(parsed) == len(sample_trace)
    assert np.array_equal(parsed.lbas, sample_trace.lbas)
    assert np.array_equal(parsed.nbytes, sample_trace.nbytes)
    assert np.array_equal(parsed.is_read, sample_trace.is_read)


def test_spc_parses_lines_directly():
    lines = ["0,100,4096,R,0.5", "0,200,512,w,0.6"]
    t = parse_spc(lines)
    assert len(t) == 2
    assert t[0].is_read and not t[1].is_read


def test_spc_skips_comments_and_blanks():
    t = parse_spc(["# header", "", "0,1,512,R,0.0"])
    assert len(t) == 1


def test_spc_asu_filter():
    lines = ["0,1,512,R,0.0", "1,2,512,R,0.0", "0,3,512,R,0.0"]
    t = parse_spc(lines, asu_filter=0)
    assert len(t) == 2


def test_spc_malformed_raises_with_line_number():
    with pytest.raises(ValueError, match="line 2"):
        parse_spc(["0,1,512,R,0.0", "garbage"])
    with pytest.raises(ValueError, match="opcode"):
        parse_spc(["0,1,512,X,0.0"])


# -- DiskMon ----------------------------------------------------------------

def test_diskmon_roundtrip(tmp_path, sample_trace):
    path = tmp_path / "t.dmn"
    write_diskmon(sample_trace, path)
    parsed = parse_diskmon(path)
    assert len(parsed) == len(sample_trace)
    assert np.array_equal(parsed.lbas, sample_trace.lbas)
    # Sizes round up to whole sectors in this format.
    assert (parsed.nbytes >= sample_trace.nbytes).all()


def test_diskmon_parses_lines():
    lines = ["0\t0.10\t0.0001\tRead\t1000\t8", "1 0.20 0.0001 Write 2000 16"]
    t = parse_diskmon(lines)
    assert len(t) == 2
    assert t[0].nbytes == 8 * 512
    assert not t[1].is_read


def test_diskmon_malformed():
    with pytest.raises(ValueError, match="line 1"):
        parse_diskmon(["too few fields"])
    with pytest.raises(ValueError, match="bad op"):
        parse_diskmon(["0 0.1 0.1 Erase 100 8"])
    with pytest.raises(ValueError, match="length"):
        parse_diskmon(["0 0.1 0.1 Read 100 0"])
