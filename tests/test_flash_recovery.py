"""Power-loss mapping recovery from OOB metadata."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flash.constants import FlashConfig
from repro.flash.ftl_page import PageMappingFTL

CFG = FlashConfig(num_blocks=16, pages_per_block=8, overprovision=0.25)


def test_recovery_on_fresh_ftl():
    ftl = PageMappingFTL(CFG)
    assert ftl.verify_recovery()  # empty mapping rebuilds to empty


def test_recovery_after_simple_writes(tiny_flash):
    ftl = PageMappingFTL(tiny_flash)
    for lpn in (0, 5, 9, 5, 0):  # includes overwrites
        ftl.write(lpn)
    rebuilt = ftl.recover_mapping()
    assert rebuilt[0] == ftl.ppn_of(0)
    assert rebuilt[5] == ftl.ppn_of(5)
    assert ftl.verify_recovery()


def test_recovery_survives_gc(tiny_flash):
    """GC relocations rewrite OOB at the new location; old copies in
    erased blocks vanish — recovery must still find the latest."""
    ftl = PageMappingFTL(tiny_flash)
    span = ftl.num_lpns // 4
    for i in range(tiny_flash.total_pages * 2):
        ftl.write(i % span)
    assert ftl.stats.block_erases > 0
    assert ftl.verify_recovery()


def test_recovery_respects_trim(tiny_flash):
    ftl = PageMappingFTL(tiny_flash)
    ftl.write(3)
    ftl.write(4)
    ftl.trim(3)
    rebuilt = ftl.recover_mapping()
    assert rebuilt[3] == -1  # journaled trim wins over the stale OOB copy
    assert rebuilt[4] == ftl.ppn_of(4)
    assert ftl.verify_recovery()


def test_rewrite_after_trim_recovers_new_copy(tiny_flash):
    ftl = PageMappingFTL(tiny_flash)
    ftl.write(7)
    ftl.trim(7)
    ftl.write(7)  # newer than the trim record
    assert ftl.recover_mapping()[7] == ftl.ppn_of(7)
    assert ftl.verify_recovery()


def test_recovery_with_span_operations(tiny_flash):
    ftl = PageMappingFTL(tiny_flash)
    ftl.write_span(0, 50)
    ftl.write_span(10, 30)  # overwrite middle
    ftl.trim_span(20, 10)
    assert ftl.verify_recovery()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, CFG.logical_pages - 1)),
        min_size=1,
        max_size=250,
    )
)
def test_recovery_property(ops):
    """Whatever the history (writes, trims, GC), OOB recovery rebuilds
    exactly the live mapping."""
    ftl = PageMappingFTL(CFG)
    for op, lpn in ops:
        if op == 0:
            ftl.read(lpn)
        elif op == 1:
            ftl.write(lpn)
        else:
            ftl.trim(lpn)
    assert ftl.verify_recovery()


def test_recovery_finds_latest_among_stale_copies(tiny_flash):
    """Multiple stale copies of one lpn coexist on flash until GC; the
    highest sequence number must win."""
    ftl = PageMappingFTL(tiny_flash)
    for _ in range(5):
        ftl.write(11)
    # Five OOB records exist for lpn 11 (no GC yet in a fresh device).
    stale = np.nonzero(ftl._oob_lpn == 11)[0]
    assert stale.size == 5
    assert ftl.recover_mapping()[11] == ftl.ppn_of(11)
