"""Posting lists and their frequency-sorted layout."""

import numpy as np
import pytest

from repro.engine.postings import (
    POSTING_BYTES,
    PostingList,
    generate_posting_list,
)


def test_generated_list_shape():
    plist = generate_posting_list(3, doc_freq=200, num_docs=5000, seed=1)
    assert len(plist) == 200
    assert plist.nbytes == 200 * POSTING_BYTES


def test_doc_ids_unique_and_in_range():
    plist = generate_posting_list(0, 500, 1000, seed=2)
    assert len(np.unique(plist.doc_ids)) == 500
    assert plist.doc_ids.min() >= 0
    assert plist.doc_ids.max() < 1000


def test_frequency_sorted_invariant():
    plist = generate_posting_list(1, 300, 5000, seed=3)
    assert (np.diff(plist.tfs) <= 0).all()


def test_dense_list_path():
    """doc_freq > num_docs/2 takes the permutation branch."""
    plist = generate_posting_list(0, 900, 1000, seed=4)
    assert len(np.unique(plist.doc_ids)) == 900


def test_deterministic_per_term_and_seed():
    a = generate_posting_list(7, 100, 1000, seed=5)
    b = generate_posting_list(7, 100, 1000, seed=5)
    assert np.array_equal(a.doc_ids, b.doc_ids)
    c = generate_posting_list(8, 100, 1000, seed=5)
    assert not np.array_equal(a.doc_ids, c.doc_ids)


def test_empty_and_invalid():
    empty = generate_posting_list(0, 0, 100, seed=0)
    assert len(empty) == 0
    with pytest.raises(ValueError):
        generate_posting_list(0, -1, 100, seed=0)
    with pytest.raises(ValueError):
        generate_posting_list(0, 200, 100, seed=0)


def test_prefix_returns_head():
    plist = generate_posting_list(2, 100, 1000, seed=1)
    half = plist.prefix(0.5)
    assert len(half) == 50
    assert np.array_equal(half.doc_ids, plist.doc_ids[:50])
    assert len(plist.prefix(0.0)) == 1  # never less than one posting


def test_prefix_validation():
    plist = generate_posting_list(2, 10, 100, seed=1)
    with pytest.raises(ValueError):
        plist.prefix(1.5)


def test_prefix_contains_highest_tf():
    """The frequency-sorted layout puts the best documents first."""
    plist = generate_posting_list(2, 400, 5000, seed=6)
    head = plist.prefix(0.1)
    assert head.tfs.min() >= np.percentile(plist.tfs, 85)


def test_constructor_rejects_mismatched_arrays():
    with pytest.raises(ValueError):
        PostingList(0, np.array([1, 2]), np.array([1], dtype=np.int32))


def test_constructor_rejects_unsorted_tfs():
    with pytest.raises(ValueError):
        PostingList(
            0,
            np.array([1, 2], dtype=np.int64),
            np.array([1, 5], dtype=np.int32),
        )


def test_skip_offsets():
    plist = generate_posting_list(0, 100, 1000, seed=1)
    offsets = plist.skip_offsets()
    assert len(offsets) == 100 // 16
    assert offsets[0] == 16 * POSTING_BYTES
