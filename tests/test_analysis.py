"""Analysis helpers: Zipf fit, Fig. 3 series, table formatting."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    term_access_frequency_series,
    utilization_rate_series,
)
from repro.analysis.tables import format_table
from repro.analysis.zipf import fit_zipf_exponent


def test_zipf_fit_recovers_exponent():
    for s in (0.7, 1.0, 1.3):
        freqs = 1e6 / np.arange(1, 2000) ** s
        assert fit_zipf_exponent(freqs) == pytest.approx(s, abs=0.05)


def test_zipf_fit_order_independent():
    freqs = 1e4 / np.arange(1, 500)
    shuffled = np.random.default_rng(0).permutation(freqs)
    assert fit_zipf_exponent(shuffled) == pytest.approx(fit_zipf_exponent(freqs))


def test_zipf_fit_validation():
    with pytest.raises(ValueError):
        fit_zipf_exponent(np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        fit_zipf_exponent(np.arange(1, 10), head_fraction=0.0)


def test_utilization_series_descending(small_index, small_log):
    series = utilization_rate_series(small_index, small_log)
    assert (np.diff(series) <= 0).all()
    assert series.max() <= 100.0
    assert series.min() > 0


def test_utilization_series_without_log(small_index):
    series = utilization_rate_series(small_index)
    assert len(series) == small_index.num_terms


def test_term_access_series(small_index, small_log):
    counts, sizes = term_access_frequency_series(small_index, small_log)
    assert (np.diff(counts) <= 0).all()  # ranked by frequency
    assert len(counts) == len(sizes)
    assert counts.sum() == sum(len(q.terms) for q in small_log)


def test_term_access_series_is_zipf_like(paper_index, paper_log):
    counts, _ = term_access_frequency_series(paper_index, paper_log)
    s = fit_zipf_exponent(counts, head_fraction=0.3)
    assert 0.3 < s < 2.0


def test_format_table_alignment():
    out = format_table(["name", "value"], [["x", 1.0], ["long-name", 22.5]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_format_table_validation():
    with pytest.raises(ValueError):
        format_table([], [])
    with pytest.raises(ValueError):
        format_table(["a"], [["x", "y"]])


def test_format_table_empty_rows():
    out = format_table(["a", "b"], [])
    assert "a" in out
