"""Sector-addressed SSD front-end."""

import pytest

from repro.flash.constants import FlashConfig
from repro.flash.ftl_page import PageMappingFTL
from repro.flash.ssd import SimulatedSSD
from repro.sim.clock import VirtualClock


@pytest.fixture
def ssd(tiny_flash):
    return SimulatedSSD(tiny_flash)


def test_ftl_factory_names(tiny_flash):
    for name in ("page", "block", "fast", "dftl"):
        assert SimulatedSSD(tiny_flash, ftl=name).ftl is not None
    with pytest.raises(ValueError):
        SimulatedSSD(tiny_flash, ftl="bogus")


def test_explicit_ftl_instance(tiny_flash):
    ftl = PageMappingFTL(tiny_flash)
    ssd = SimulatedSSD(tiny_flash, ftl=ftl)
    assert ssd.ftl is ftl


def test_mismatched_ftl_config_rejected(tiny_flash):
    other = FlashConfig(num_blocks=64)
    with pytest.raises(ValueError):
        SimulatedSSD(tiny_flash, ftl=PageMappingFTL(other))


def test_capacity_reflects_overprovisioning(tiny_flash):
    ssd = SimulatedSSD(tiny_flash)
    assert ssd.capacity_bytes == tiny_flash.logical_bytes
    assert ssd.capacity_bytes < tiny_flash.physical_bytes


def test_write_read_advance_shared_clock(tiny_flash):
    clock = VirtualClock()
    ssd = SimulatedSSD(tiny_flash, clock=clock)
    ssd.write(0, 4096)   # 2 pages, striped over channels
    ssd.read(0, 4096)
    pages = -(-2 // tiny_flash.channels)
    expected = pages * tiny_flash.write_us + pages * tiny_flash.read_us
    assert clock.now_us == pytest.approx(expected)
    assert clock.busy_us("ssd") == pytest.approx(expected)


def test_partial_page_requests_round_to_pages(ssd):
    latency = ssd.read(0, 1)  # 1 byte -> 1 page
    assert latency == pytest.approx(ssd.config.read_us)
    # 2048 bytes starting mid-page crosses a boundary -> 2 pages, which
    # still fits one channel-stripe round with the default 4 channels.
    latency = ssd.read(3, 2048)
    assert latency == pytest.approx(ssd.config.read_us)


def test_request_validation(ssd):
    with pytest.raises(ValueError):
        ssd.read(-1, 10)
    with pytest.raises(ValueError):
        ssd.read(0, 0)
    with pytest.raises(ValueError):
        ssd.read(0, ssd.capacity_bytes + 512)


def test_trim_keeps_partial_pages(ssd):
    ssd.write(0, 8192)  # pages 0-3
    # Trim bytes [1024, 7168): only pages 1 and 2 are wholly inside.
    ssd.trim(2, 6144)
    assert ssd.ftl.mapped_lpn_count() == 2


def test_erase_count_and_mean_access_time(ssd):
    cap = ssd.capacity_bytes
    for round_ in range(3):
        for off in range(0, cap // 2, 128 * 1024):
            ssd.write(off // 512, 128 * 1024)
    assert ssd.erase_count >= 0
    assert ssd.mean_access_time_us > 0
    report = ssd.wear()
    assert report.total_erases == ssd.erase_count


def test_reset_counters_keeps_wear(ssd):
    ssd.write(0, 128 * 1024)
    ssd.reset_counters()
    assert ssd.counters.count("write_ops") == 0
    assert ssd.ftl.stats.host_page_writes > 0  # FTL history persists
