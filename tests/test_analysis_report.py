"""Markdown report generation and the CLI compare subcommand."""

import pytest

from repro.analysis.report import policy_comparison_report
from repro.cli import main
from repro.core.stats import CacheStats, Situation
from repro.workloads.retrieval import RunResult


def fake_result(label, ms, qps, erases, hit=0.4):
    stats = CacheStats()
    # Seed enough counters that combined_hit_ratio ~ hit.
    stats.result_l1_hits = int(hit * 100)
    stats.result_misses = 100 - stats.result_l1_hits
    stats.record_query(Situation.S1, ms * 1000.0)
    return RunResult(label=label, queries=100, mean_response_ms=ms,
                     throughput_qps=qps, stats=stats, ssd_erases=erases)


def test_report_structure():
    results = {
        "lru": fake_result("lru", 40.0, 25.0, 1000),
        "cblru": fake_result("cblru", 24.0, 41.0, 300),
        "cbslru": fake_result("cbslru", 20.0, 50.0, 250),
    }
    report = policy_comparison_report(results)
    assert report.startswith("# Cache policy comparison")
    assert "| lru |" in report and "| cbslru |" in report
    # Relative columns computed vs LRU.
    assert "-40.0%" in report  # 24 vs 40 ms
    assert "+64.0%" in report  # 41 vs 25 qps
    assert "-70.0%" in report  # 300 vs 1000 erases
    assert "Paper reference" in report


def test_report_validation():
    with pytest.raises(ValueError):
        policy_comparison_report({})
    with pytest.raises(ValueError):
        policy_comparison_report({"cblru": fake_result("c", 1, 1, 1)},
                                 baseline="lru")


def test_report_zero_baseline_erases():
    results = {
        "lru": fake_result("lru", 40.0, 25.0, 0),
        "cblru": fake_result("cblru", 24.0, 41.0, 0),
    }
    report = policy_comparison_report(results)
    assert "n/a" in report


def test_cli_compare(tmp_path, capsys):
    out = tmp_path / "report.md"
    rc = main(["compare", "--docs", "100000", "--queries", "250",
               "--mem-mb", "2", "--ssd-mb", "8", "--out", str(out)])
    printed = capsys.readouterr().out
    assert rc == 0
    assert out.exists()
    text = out.read_text()
    assert "| lru |" in text
    assert "| cbslru |" in text
    assert "Policy comparison on 100,000 docs" in printed
