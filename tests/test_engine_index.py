"""Lexicon, layout and inverted index."""

import numpy as np
import pytest

from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.layout import SECTOR_BYTES, IndexLayout
from repro.engine.lexicon import Lexicon
from repro.engine.postings import POSTING_BYTES


# -- lexicon -----------------------------------------------------------------

def test_lexicon_term_info(small_corpus):
    lex = Lexicon(small_corpus)
    info = lex.term(0)
    assert info.term_id == 0
    assert info.doc_freq == small_corpus.doc_freqs[0]
    assert info.list_bytes == info.doc_freq * POSTING_BYTES
    assert 0 < info.utilization <= 1


def test_lexicon_spell_lookup_roundtrip(small_corpus):
    lex = Lexicon(small_corpus)
    assert lex.lookup(lex.spell(42)) == 42
    assert lex.spell(42) == "term00042"


def test_lexicon_lookup_rejects_unknown(small_corpus):
    lex = Lexicon(small_corpus)
    with pytest.raises(KeyError):
        lex.lookup("nonsense")
    with pytest.raises(KeyError):
        lex.lookup("termXYZ")
    with pytest.raises(KeyError):
        lex.lookup(lex.spell(len(lex) + 5))


def test_lexicon_bounds(small_corpus):
    lex = Lexicon(small_corpus)
    with pytest.raises(KeyError):
        lex.term(len(lex))
    with pytest.raises(KeyError):
        lex.list_bytes(-1)


# -- layout ----------------------------------------------------------------------

def test_layout_extents_are_disjoint_and_ordered(small_corpus):
    layout = IndexLayout(small_corpus)
    prev_end = 0
    for term_id in range(min(100, small_corpus.num_terms)):
        ext = layout.extent(term_id)
        assert ext.lba >= prev_end
        prev_end = ext.lba + ext.sectors
    assert layout.total_sectors >= prev_end


def test_layout_total_bytes(small_corpus):
    layout = IndexLayout(small_corpus)
    assert layout.total_bytes == int(small_corpus.doc_freqs.sum()) * POSTING_BYTES


def test_layout_base_lba_offset(small_corpus):
    base = 10_000
    layout = IndexLayout(small_corpus, base_lba=base)
    assert layout.extent(0).lba == base


def test_layout_chunk_reads_cover_needed(small_corpus):
    layout = IndexLayout(small_corpus, chunk_bytes=128 * 1024)
    term = int(np.argmax(small_corpus.doc_freqs))
    ext = layout.extent(term)
    needed = min(ext.nbytes, 300 * 1024)
    reads = layout.chunk_reads(term, needed)
    assert sum(nb for _, nb in reads) >= needed
    # Each read stays within the extent.
    for lba, nb in reads:
        assert lba >= ext.lba
        assert (lba - ext.lba) * SECTOR_BYTES + nb <= ext.nbytes + SECTOR_BYTES


def test_layout_chunk_reads_clamped_to_list(small_corpus):
    layout = IndexLayout(small_corpus)
    term = int(np.argmin(small_corpus.doc_freqs))
    ext = layout.extent(term)
    reads = layout.chunk_reads(term, 10**9)
    assert sum(nb for _, nb in reads) == ext.nbytes


def test_layout_no_skip_coalesces(small_corpus):
    layout = IndexLayout(small_corpus, chunk_bytes=64 * 1024)
    term = int(np.argmax(small_corpus.doc_freqs))
    needed = min(layout.extent(term).nbytes, 200 * 1024)
    skip = layout.chunk_reads(term, needed, skip=True)
    merged = layout.chunk_reads(term, needed, skip=False)
    if len(skip) > 1:
        assert len(merged) == 1
        assert merged[0][1] == sum(nb for _, nb in skip)


def test_layout_validation(small_corpus):
    with pytest.raises(ValueError):
        IndexLayout(small_corpus, chunk_bytes=1000)  # not sector multiple
    layout = IndexLayout(small_corpus)
    with pytest.raises(KeyError):
        layout.extent(small_corpus.num_terms)


# -- index ---------------------------------------------------------------------------

def test_index_from_config():
    index = InvertedIndex(CorpusConfig(num_docs=2000, vocab_size=100, seed=9))
    assert index.num_docs == 2000
    assert index.num_terms == 100
    assert index.index_bytes > 0


def test_index_postings_lazy_and_memoised(small_index):
    a = small_index.postings(5)
    b = small_index.postings(5)
    assert a is b  # cached
    assert len(a) == small_index.stats.doc_freqs[5]


def test_index_postings_cache_bounded():
    index = InvertedIndex(
        CorpusConfig(num_docs=1000, vocab_size=50, seed=1), postings_cache_size=4
    )
    for t in range(10):
        index.postings(t)
    assert len(index._postings_cache) <= 4
    # Regenerated lists are identical (deterministic).
    first = index.postings(0).doc_ids.copy()
    for t in range(1, 10):
        index.postings(t)
    assert np.array_equal(index.postings(0).doc_ids, first)


def test_index_postings_bounds(small_index):
    with pytest.raises(KeyError):
        small_index.postings(small_index.num_terms)


def test_index_idf_decreasing_in_df(small_index):
    df = small_index.stats.doc_freqs
    frequent = int(np.argmax(df))
    rare = int(np.argmin(df))
    assert small_index.idf(rare) > small_index.idf(frequent)


def test_index_describe(small_index):
    text = small_index.describe()
    assert "docs=" in text and "MB" in text
