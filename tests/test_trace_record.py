"""Columnar trace representation."""

import numpy as np
import pytest

from repro.trace.record import Trace, TraceRecord


def make_trace(n=10):
    return Trace(
        lbas=np.arange(n) * 100,
        nbytes=np.full(n, 4096),
        is_read=np.array([i % 3 != 0 for i in range(n)]),
        timestamps_s=np.arange(n) * 0.001,
        name="t",
    )


def test_len_and_indexing():
    t = make_trace(5)
    assert len(t) == 5
    rec = t[2]
    assert isinstance(rec, TraceRecord)
    assert rec.lba == 200
    assert rec.nbytes == 4096
    assert rec.op in ("R", "W")


def test_iteration_matches_indexing():
    t = make_trace(6)
    assert [r.lba for r in t] == [t[i].lba for i in range(6)]


def test_column_length_mismatch_rejected():
    with pytest.raises(ValueError):
        Trace(np.arange(3), np.full(2, 512), np.ones(3, bool))
    with pytest.raises(ValueError):
        Trace(np.arange(3), np.full(3, 512), np.ones(3, bool),
              timestamps_s=np.zeros(2))


def test_invalid_values_rejected():
    with pytest.raises(ValueError):
        Trace(np.array([-1]), np.array([512]), np.array([True]))
    with pytest.raises(ValueError):
        Trace(np.array([0]), np.array([0]), np.array([True]))


def test_reads_only_filters():
    t = make_trace(9)
    reads = t.reads_only()
    assert len(reads) == int(t.is_read.sum())
    assert reads.is_read.all()


def test_slice():
    t = make_trace(10)
    s = t.slice(2, 5)
    assert len(s) == 3
    assert s[0].lba == t[2].lba


def test_from_records_roundtrip():
    records = [TraceRecord(lba=i, nbytes=512, is_read=True) for i in range(4)]
    t = Trace.from_records(records)
    assert len(t) == 4
    assert t[3].lba == 3


def test_from_records_empty():
    t = Trace.from_records([])
    assert len(t) == 0


def test_concat():
    t = make_trace(3).concat(make_trace(4))
    assert len(t) == 7


def test_default_timestamps_zero():
    t = Trace(np.array([1]), np.array([512]), np.array([True]))
    assert t[0].timestamp_s == 0.0
