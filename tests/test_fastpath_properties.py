"""Property suite pinning the vectorized fast paths to scalar references.

Every hot-path kernel that was vectorized (or given a fast path) keeps a
scalar reference implementation in-tree; these Hypothesis tests assert
the two never diverge:

* codec — ``varbyte_encode``/``varbyte_decode`` vs
  ``_scalar_varbyte_encode``/``_scalar_varbyte_decode`` (byte-for-byte
  encode equality plus round-trips, including the >63-bit fallback);
* flash — the NAND bitmap/valid-count arrays (slice-store
  ``invalidate_run`` fast path included) reconcile with page states and
  with ``FtlStats`` after arbitrary span workloads;
* LRU — the intrusive slot arena behaves exactly like an
  ``OrderedDict`` model over its full operation set;
* telemetry — ``Histogram.bucket_index``'s bisect over the exact
  boundary table matches the float-log reference oracle.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.codec import (
    _scalar_varbyte_decode,
    _scalar_varbyte_encode,
    varbyte_decode,
    varbyte_encode,
)
from repro.flash.constants import FlashConfig
from repro.flash.ftl_page import PageMappingFTL
from repro.obs.instruments import Histogram

# ---------------------------------------------------------------------------
# codec: vectorized varbyte vs the scalar reference
# ---------------------------------------------------------------------------

small_values = st.lists(st.integers(0, 2**40), max_size=200)
wide_values = st.lists(st.integers(0, 2**63 - 1), min_size=1, max_size=50)


@settings(max_examples=150, deadline=None)
@given(values=small_values)
def test_varbyte_encode_byte_identical_to_scalar(values):
    arr = np.asarray(values, dtype=np.int64)
    assert varbyte_encode(arr) == _scalar_varbyte_encode(arr)


@settings(max_examples=150, deadline=None)
@given(values=small_values)
def test_varbyte_roundtrip_matches_scalar_decode(values):
    arr = np.asarray(values, dtype=np.int64)
    blob = varbyte_encode(arr)
    fast = varbyte_decode(blob)
    ref, ref_off = _scalar_varbyte_decode(blob, 0, None)
    assert fast.tolist() == list(ref)
    assert ref_off == len(blob)
    assert fast.tolist() == values


@settings(max_examples=50, deadline=None)
@given(values=wide_values)
def test_varbyte_wide_values_roundtrip(values):
    """Full int64 range (up to 9-byte runs, the vector-path ceiling)."""
    arr = np.asarray(values, dtype=np.int64)
    blob = varbyte_encode(arr)
    assert blob == _scalar_varbyte_encode(arr)
    assert varbyte_decode(blob).tolist() == values


def test_varbyte_overlong_run_raises_like_scalar():
    """A >63-bit run (corrupt stream) delegates to the scalar reference,
    which owns the corrupt-stream semantics — both paths raise."""
    # 11-byte run: shift exceeds 63 → the explicit corrupt-stream guard.
    corrupt = b"\x80" * 10 + b"\x01"
    with pytest.raises(ValueError):
        _scalar_varbyte_decode(corrupt, 0, None)
    with pytest.raises(ValueError):
        varbyte_decode(corrupt)
    # 10-byte run: shift lands on exactly 63, the assembled value
    # overflows int64 instead — same error from both paths.
    overflow = b"\x80" * 9 + b"\x01"
    with pytest.raises(OverflowError):
        _scalar_varbyte_decode(overflow, 0, None)
    with pytest.raises(OverflowError):
        varbyte_decode(overflow)


@settings(max_examples=100, deadline=None)
@given(values=st.lists(st.integers(0, 2**40), min_size=1, max_size=80),
       count=st.integers(0, 90))
def test_varbyte_count_prefix_matches_scalar(values, count):
    """Bounded decodes agree with the scalar reference on values AND the
    consumed byte offset (the decode_posting_list resume contract)."""
    blob = varbyte_encode(np.asarray(values, dtype=np.int64))
    want = min(count, len(values))
    ref, ref_off = _scalar_varbyte_decode(blob, 0, count)
    fast = varbyte_decode(blob, count=count)
    assert fast.tolist() == list(ref) == values[:want]
    re_ref, _ = _scalar_varbyte_decode(blob, ref_off, None)
    assert list(re_ref) == values[want:]


# ---------------------------------------------------------------------------
# flash: NAND bitmap bookkeeping vs page states and FtlStats
# ---------------------------------------------------------------------------

_SPAN_OPS = st.lists(
    st.tuples(
        st.sampled_from(["write_span", "trim_span", "write", "trim"]),
        st.integers(0, 359),   # lpn
        st.integers(1, 96),    # count (spans may cross block boundaries)
    ),
    min_size=1,
    max_size=60,
)


def _reconcile(ftl: PageMappingFTL) -> None:
    nand = ftl.nand
    # Bitmap counts vs the page-state array (the vectorized bookkeeping's
    # own ground truth).
    nand.check_invariants()
    # Every mapped lpn owns exactly one VALID page and vice versa.
    assert int(nand.valid_counts.sum()) == ftl.mapped_lpn_count()
    # FtlStats reconciliation: NAND-level totals equal the stats ledger.
    stats = ftl.stats
    assert nand.programs == stats.host_page_writes + stats.gc_page_writes
    assert nand.erases == stats.block_erases


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.data_too_large])
@given(ops=_SPAN_OPS)
def test_ftl_valid_counts_reconcile_with_stats(ops):
    """Arbitrary span workloads keep bitmaps, states and stats in sync.

    The tiny geometry forces garbage collection, so the reconciliation
    also covers the GC relocation path and the contiguous-run
    invalidation fast paths (whole-span overwrites and trims).
    """
    cfg = FlashConfig(page_bytes=2048, pages_per_block=8, num_blocks=64,
                      overprovision=0.2, gc_free_block_threshold=2)
    ftl = PageMappingFTL(cfg)
    limit = ftl.num_lpns
    for op, lpn, count in ops:
        lpn = lpn % limit
        count = min(count, limit - lpn)
        if op == "write_span":
            ftl.write_span(lpn, count)
        elif op == "trim_span":
            ftl.trim_span(lpn, count)
        elif op == "write":
            ftl.write(lpn)
        else:
            ftl.trim(lpn)
        _reconcile(ftl)
    # The span ops must be indistinguishable from their scalar loops in
    # mapping content too: recovery from OOB metadata agrees.
    assert ftl.verify_recovery()


def test_invalidate_run_matches_pagewise_invalidation():
    """The slice-store fast path flips exactly the pages the scalar
    per-page loop would."""
    from repro.flash.nand import NandArray, PageState

    cfg = FlashConfig(pages_per_block=8, num_blocks=8)
    a = NandArray(cfg)
    b = NandArray(cfg)
    for nand in (a, b):
        nand.program_run(0, 8)
        nand.program_run(1, 8)
        nand.program_run(2, 4)
    # A run crossing a block boundary: fast path on `a`, scalar on `b`.
    a.invalidate_run(4, 8)
    for ppn in range(4, 12):
        b.invalidate_page(ppn)
    assert np.array_equal(a.valid_counts, b.valid_counts)
    assert np.array_equal(a.invalid_counts, b.invalid_counts)
    for ppn in range(20):
        assert a.state(ppn) == b.state(ppn)
    a.check_invariants()
    with pytest.raises(RuntimeError):
        a.invalidate_run(4, 2)  # already INVALID
    with pytest.raises(ValueError):
        a.invalidate_run(0, 0)


# ---------------------------------------------------------------------------
# LRU slot arena vs an OrderedDict model (full operation set)
# ---------------------------------------------------------------------------

_LRU_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["insert", "touch", "get", "pop", "pop_lru", "peek", "contains"]),
        st.integers(0, 15),
    ),
    max_size=200,
)


@settings(max_examples=80, deadline=None)
@given(ops=_LRU_OPS, window=st.integers(1, 6))
def test_lru_arena_full_op_sequence_equivalence(ops, window):
    """The intrusive slot arena is observationally equivalent to an
    OrderedDict across its whole public surface, including re-insertion
    after pops (slot reuse) and value overwrites."""
    from collections import OrderedDict

    from repro.core.lru import LruList

    lru = LruList(replace_window=window)
    model: OrderedDict = OrderedDict()
    for op, key in ops:
        if op == "insert":
            lru.insert(key, key * 3)
            model[key] = key * 3
            model.move_to_end(key)
        elif op == "touch":
            if key in model:
                assert lru.touch(key) == model[key]
                model.move_to_end(key)
        elif op == "get":
            assert lru.get(key) == model.get(key)
        elif op == "pop":
            if key in model:
                assert lru.pop(key) == model.pop(key)
        elif op == "pop_lru":
            if model:
                assert lru.pop_lru() == model.popitem(last=False)
        elif op == "peek":
            if model:
                k = next(iter(model))
                assert lru.peek_lru() == (k, model[k])
        else:
            assert (key in lru) == (key in model)
        assert len(lru) == len(model)
    assert lru.keys() == list(model.keys())
    assert list(lru.items_lru_order()) == list(model.items())
    assert lru.replace_first_region() == list(model.items())[:window]


# ---------------------------------------------------------------------------
# telemetry: histogram bucketing vs the float-log oracle
# ---------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(
    value=st.one_of(
        st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.integers(0, 10**9).map(float),
    ),
    lo=st.sampled_from([0.5, 1.0, 2.0]),
    growth=st.sampled_from([1.04, 1.5, 2.0]),
)
def test_histogram_bucket_index_matches_reference(value, lo, growth):
    h = Histogram(lo=lo, growth=growth)
    assert h.bucket_index(value) == h._reference_bucket_index(value)


@settings(max_examples=60, deadline=None)
@given(values=st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False), max_size=100))
def test_histogram_record_and_drain_consistency(values):
    """Recording keeps count/sum exact and the window-delta drain returns
    exactly the increments since the previous drain."""
    h = Histogram()
    seen: dict[int, int] = {}
    for i, v in enumerate(values):
        h.record(v)
        b = h._reference_bucket_index(v)
        seen[b] = seen.get(b, 0) + 1
        if i % 7 == 6:
            drained = h.take_bucket_deltas()
            assert drained == seen
            seen = {}
    assert h.take_bucket_deltas() == seen
    assert h.count == len(values)
    assert h.sum == pytest.approx(sum(values))
