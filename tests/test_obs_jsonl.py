"""Torn-tail tolerance of the JSONL readers.

A crash mid-write can truncate the final line of a streamed JSONL file.
Every reader skips such a torn tail with a counted loss instead of
raising; corruption anywhere *else* still raises.
"""

import json

import pytest

from repro.obs import read_jsonl
from repro.obs.audit import load_audit_jsonl
from repro.obs.blame import BLAME_SCHEMA, load_blame_jsonl
from repro.obs.timeline import TIMELINE_SCHEMA, load_timeline_jsonl
from repro.obs.tracer import load_spans_jsonl


def _write_lines(path, lines):
    path.write_text("".join(line + "\n" for line in lines))


def test_read_jsonl_clean(tmp_path):
    path = tmp_path / "x.jsonl"
    _write_lines(path, [json.dumps({"a": i}) for i in range(3)])
    records, torn = read_jsonl(path)
    assert torn == 0
    assert [rec for _, rec in records] == [{"a": 0}, {"a": 1}, {"a": 2}]
    assert [lineno for lineno, _ in records] == [1, 2, 3]


def test_read_jsonl_torn_tail_skipped(tmp_path):
    path = tmp_path / "x.jsonl"
    path.write_text(json.dumps({"a": 1}) + "\n" + '{"a": 2, "b"')
    records, torn = read_jsonl(path)
    assert torn == 1
    assert [rec for _, rec in records] == [{"a": 1}]


def test_read_jsonl_mid_file_corruption_raises(tmp_path):
    path = tmp_path / "x.jsonl"
    _write_lines(path, [json.dumps({"a": 1}), "{not json", json.dumps({"a": 3})])
    with pytest.raises(ValueError, match="x.jsonl:2"):
        read_jsonl(path)


def test_read_jsonl_ignores_blank_lines(tmp_path):
    path = tmp_path / "x.jsonl"
    path.write_text(json.dumps({"a": 1}) + "\n\n" + json.dumps({"a": 2}) + "\n\n")
    records, torn = read_jsonl(path)
    assert torn == 0
    assert len(records) == 2


def _truncate_last_line(path):
    """Chop the final record mid-way, simulating a crash during write."""
    text = path.read_text().rstrip("\n")
    lines = text.split("\n")
    lines[-1] = lines[-1][: max(2, len(lines[-1]) // 2)]
    path.write_text("\n".join(lines))  # no trailing newline: torn


def test_timeline_loader_tolerates_torn_tail(tmp_path):
    path = tmp_path / "timeline.jsonl"
    recs = [{"type": "header", "schema": TIMELINE_SCHEMA, "window_us": 100.0}]
    for i in range(4):
        recs.append({"type": "window", "window": i, "start_us": i * 100.0,
                     "end_us": (i + 1) * 100.0, "counters": {}, "gauges": {},
                     "histograms": {}})
    _write_lines(path, [json.dumps(r) for r in recs])
    _truncate_last_line(path)
    tl = load_timeline_jsonl(path)
    assert tl.torn_tail == 1
    assert [w["window"] for w in tl.windows] == [0, 1, 2]


def test_blame_loader_tolerates_torn_tail(tmp_path):
    path = tmp_path / "blame.jsonl"
    recs = [
        {"schema": BLAME_SCHEMA},
        {"type": "span", "task": 1, "name": "q0", "resource": "cpu",
         "enq_us": 0.0, "start_us": 1.0, "end_us": 2.0, "qid": 0},
        {"type": "span", "task": 2, "name": "q1", "resource": "cpu",
         "enq_us": 2.0, "start_us": 3.0, "end_us": 4.0, "qid": 1},
    ]
    _write_lines(path, [json.dumps(r) for r in recs])
    _truncate_last_line(path)
    log = load_blame_jsonl(path)
    assert log.torn_tail == 1
    assert len(log.records) == 1


def test_audit_loader_tolerates_torn_tail(tmp_path):
    path = tmp_path / "audit.jsonl"
    recs = [{"seq": i, "t_us": float(i), "type": "admit", "kind": "list",
             "key": i, "data": {}} for i in range(3)]
    _write_lines(path, [json.dumps(r) for r in recs])
    _truncate_last_line(path)
    out, torn = load_audit_jsonl(path, return_torn=True)
    assert torn == 1
    assert len(out) == 2
    # Default signature stays list-returning for existing callers.
    assert len(load_audit_jsonl(path)) == 2


def test_span_loader_tolerates_torn_tail(tmp_path):
    path = tmp_path / "spans.jsonl"
    recs = [{"span_id": i, "parent_id": None, "name": "q", "start_us": 0.0,
             "end_us": 1.0, "dur_us": 1.0, "attrs": {}} for i in range(3)]
    _write_lines(path, [json.dumps(r) for r in recs])
    _truncate_last_line(path)
    spans, torn = load_spans_jsonl(path)
    assert torn == 1
    assert len(spans) == 2
