"""HDD geometry and device model."""

import numpy as np
import pytest

from repro.hdd.disk import SimulatedHDD
from repro.hdd.geometry import DiskGeometry
from repro.sim.clock import VirtualClock


def test_geometry_validation():
    with pytest.raises(ValueError):
        DiskGeometry(capacity_bytes=0)
    with pytest.raises(ValueError):
        DiskGeometry(rpm=0)
    with pytest.raises(ValueError):
        DiskGeometry(track_to_track_seek_ms=5.0, full_stroke_seek_ms=2.0)
    with pytest.raises(ValueError):
        DiskGeometry(sustained_transfer_mb_s=0)


def test_rotation_period_7200rpm():
    geo = DiskGeometry(rpm=7200)
    assert geo.rotation_period_us == pytest.approx(8333.33, rel=1e-3)
    assert geo.mean_rotational_latency_us == pytest.approx(4166.67, rel=1e-3)


def test_seek_time_monotone_in_distance():
    geo = DiskGeometry()
    assert geo.seek_time_us(0) == 0.0
    short = geo.seek_time_us(1000)
    mid = geo.seek_time_us(geo.num_sectors // 4)
    full = geo.seek_time_us(geo.num_sectors)
    assert 0 < short < mid < full
    assert full == pytest.approx(geo.full_stroke_seek_ms * 1000.0)


def test_seek_time_negative_distance_rejected():
    with pytest.raises(ValueError):
        DiskGeometry().seek_time_us(-1)


def test_transfer_time_scales_linearly():
    geo = DiskGeometry(sustained_transfer_mb_s=100.0)
    assert geo.transfer_time_us(100 * 10**6) == pytest.approx(1e6)
    assert geo.transfer_time_us(0) == 0.0


def test_sequential_reads_avoid_seeks():
    hdd = SimulatedHDD()
    hdd.read(1000, 64 * 1024)
    t_seq = hdd.read(1000 + 128, 64 * 1024)  # continues at head position
    # No seek, no rotation: just overhead + transfer.
    expected = (hdd.geometry.controller_overhead_us
                + hdd.geometry.transfer_time_us(64 * 1024))
    assert t_seq == pytest.approx(expected)
    assert hdd.counters.count("seeks") == 1  # only the first request


def test_random_read_pays_seek_and_rotation():
    hdd = SimulatedHDD()
    hdd.read(0, 4096)
    t_far = hdd.read(hdd.num_sectors // 2, 4096)
    assert t_far > hdd.geometry.mean_rotational_latency_us


def test_sampled_rotational_latency_is_seeded():
    a = SimulatedHDD(rng=np.random.default_rng(3))
    b = SimulatedHDD(rng=np.random.default_rng(3))
    for lba in (10**6, 10**7, 5 * 10**6):
        assert a.read(lba, 4096) == pytest.approx(b.read(lba, 4096))


def test_write_and_read_symmetric_model():
    hdd = SimulatedHDD()
    t_r = hdd.read(10**6, 8192)
    hdd2 = SimulatedHDD()
    t_w = hdd2.write(10**6, 8192)
    assert t_r == pytest.approx(t_w)


def test_trim_is_noop():
    hdd = SimulatedHDD()
    assert hdd.trim(0, 4096) == 0.0


def test_request_validation():
    hdd = SimulatedHDD()
    with pytest.raises(ValueError):
        hdd.read(-1, 10)
    with pytest.raises(ValueError):
        hdd.read(0, 0)
    with pytest.raises(ValueError):
        hdd.read(hdd.num_sectors, 4096)


def test_clock_charging():
    clock = VirtualClock()
    hdd = SimulatedHDD(clock=clock)
    t = hdd.read(10**6, 4096)
    assert clock.now_us == pytest.approx(t)
    assert clock.busy_us("hdd") == pytest.approx(t)


def test_mean_access_time_tracks_requests():
    hdd = SimulatedHDD()
    t1 = hdd.read(10**6, 4096)
    t2 = hdd.read(2 * 10**6, 4096)
    assert hdd.mean_access_time_us == pytest.approx((t1 + t2) / 2)
    hdd.reset_counters()
    assert hdd.mean_access_time_us == 0.0
