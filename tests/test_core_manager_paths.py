"""Targeted cache-manager path coverage: scheme-specific list flows,
warmup budgets, and configuration presets."""

import pytest

from repro.core.config import CacheConfig, Policy, Scheme
from repro.core.entries import EntryState
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.query import Query
from repro.engine.querylog import QueryLogConfig, generate_query_log
from repro.flash.constants import FlashConfig

KB = 1024


@pytest.fixture(scope="module")
def index():
    return InvertedIndex(CorpusConfig(num_docs=4000, vocab_size=80, seed=13))


def build(index, **overrides):
    kwargs = dict(
        mem_result_bytes=100 * KB,
        mem_list_bytes=384 * KB,
        ssd_result_bytes=512 * KB,
        ssd_list_bytes=2048 * KB,
        policy=Policy.CBLRU,
        scheme=Scheme.HYBRID,
    )
    kwargs.update(overrides)
    cfg = CacheConfig(**kwargs)
    return CacheManager(cfg, build_hierarchy_for(cfg, index), index)


def test_exclusive_list_reeviction_rewrites(index):
    """Under the exclusive scheme, a promoted list's SSD copy is deleted,
    so its next eviction must write again (no replaceable skip)."""
    mgr = build(index, scheme=Scheme.EXCLUSIVE, mem_list_bytes=256 * KB)
    for i, t in enumerate(range(10, 22)):
        mgr.process_query(Query(i, (t,)))
    writes_before = mgr.stats.ssd_list_writes
    ssd_terms = [t for t in mgr.l2_lists.keys() if mgr.l1_lists.get(t) is None]
    t0 = ssd_terms[0]
    mgr.process_query(Query(100, (t0, 79)))        # promote: SSD copy removed
    assert mgr.l2_lists.get(t0) is None
    for i, t in enumerate(range(30, 42)):           # force t0 out of L1 again
        mgr.process_query(Query(200 + i, (t,)))
    assert mgr.stats.ssd_list_writes > writes_before
    assert mgr.stats.ssd_writes_avoided == 0
    mgr.check_invariants()


def test_hybrid_list_reeviction_skips_rewrite(index):
    """Same flow under hybrid: the REPLACEABLE copy is revalidated."""
    mgr = build(index, mem_list_bytes=256 * KB)
    for i, t in enumerate(range(10, 22)):
        mgr.process_query(Query(i, (t,)))
    ssd_terms = [t for t in mgr.l2_lists.keys() if mgr.l1_lists.get(t) is None]
    t0 = ssd_terms[0]
    mgr.process_query(Query(100, (t0, 79)))
    entry = mgr.l2_lists.get(t0)
    assert entry is not None and entry.state is EntryState.REPLACEABLE
    avoided_before = mgr.stats.ssd_writes_avoided
    for i, t in enumerate(range(30, 42)):
        mgr.process_query(Query(200 + i, (t,)))
    if mgr.l2_lists.get(t0) is not None:  # unless evicted by pressure
        assert mgr.stats.ssd_writes_avoided >= avoided_before
    mgr.check_invariants()


def test_warmup_static_respects_block_budget(index):
    log = generate_query_log(QueryLogConfig(
        num_queries=600, distinct_queries=200, vocab_size=80,
        singleton_fraction=0.0, seed=6))
    mgr = build(index, policy=Policy.CBSLRU, static_fraction=0.25,
                ssd_result_bytes=1024 * KB, ssd_list_bytes=4096 * KB)
    info = mgr.warmup_static(log)
    assert info["static_list_blocks"] <= info["static_list_blocks_budget"]
    rc_blocks_used = -(-info["static_results"] * 20 * KB // (128 * KB))
    assert rc_blocks_used <= info["static_result_blocks_budget"] + 1
    # Dynamic region kept the remaining blocks.
    assert mgr.list_region.free_count >= (
        mgr.config.ssd_list_blocks - info["static_list_blocks_budget"]
    ) - 1
    mgr.check_invariants()


def test_warmup_static_never_pins_singletons(index):
    """Queries seen once in the analysed prefix are never pinned (with a
    tiny vocabulary some 'singletons' collide into genuine repeats; those
    may be pinned — every pinned entry must carry freq >= 2)."""
    log = generate_query_log(QueryLogConfig(
        num_queries=150, distinct_queries=150, vocab_size=80,
        singleton_fraction=1.0, query_zipf_s=0.01, seed=7))
    mgr = build(index, policy=Policy.CBSLRU)
    mgr.warmup_static(log, analyze_queries=150)
    for entry in mgr.static_results.values():
        assert entry.freq >= 2


def test_query_outcome_fields(index):
    mgr = build(index)
    out = mgr.process_query(Query(0, (5,)))
    assert out.query.key == (5,)
    assert out.result_hit_level == 0
    assert out.response_us > 0
    out2 = mgr.process_query(Query(0, (5,)))
    assert out2.result_hit_level == 1


def test_section6_flash_preset():
    cfg = FlashConfig.section6(num_blocks=64)
    assert cfg.read_us == 20.0
    assert cfg.write_us == 250.0
    assert cfg.erase_us == 1500.0
    assert cfg.name == "section6"


def test_table3_flash_preset_defaults():
    cfg = FlashConfig.table3()
    assert cfg.page_bytes == 2048
    assert cfg.pages_per_block == 64
    assert cfg.block_bytes == 128 * 1024
    assert cfg.read_us == pytest.approx(32.725)
    assert cfg.write_us == pytest.approx(101.475)
    assert cfg.erase_us == pytest.approx(1500.0)


def test_flash_config_validation_extras():
    with pytest.raises(ValueError):
        FlashConfig(channels=0)
    with pytest.raises(ValueError):
        FlashConfig(page_bytes=1000)
    with pytest.raises(ValueError):
        FlashConfig(num_blocks=1, gc_free_block_threshold=2)
    with pytest.raises(ValueError):
        FlashConfig(overprovision=1.0)


def test_manager_with_materialized_results(index):
    mgr = CacheManager(
        CacheConfig(mem_result_bytes=100 * KB, mem_list_bytes=256 * KB,
                    ssd_result_bytes=512 * KB, ssd_list_bytes=1024 * KB),
        build_hierarchy_for(
            CacheConfig(mem_result_bytes=100 * KB, mem_list_bytes=256 * KB,
                        ssd_result_bytes=512 * KB, ssd_list_bytes=1024 * KB),
            index),
        index,
        materialize_results=True,
    )
    out = mgr.process_query(Query(0, (3, 9)))
    assert out.response_us > 0


def test_write_buffer_drain_after_run(index):
    mgr = build(index, mem_result_bytes=40 * KB)
    for i in range(10):
        mgr.process_query(Query(i, (1 + i,)))
    staged = mgr.write_buffer.drain()
    assert len(mgr.write_buffer) == 0
    for entry in staged:
        assert entry.nbytes == mgr.config.result_entry_bytes
