"""The pluggable policy seam: registry, protocols, third-party policies."""

import pytest

from repro.core.config import CacheConfig, Policy, Scheme
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.core.policies import (
    AdmissionPolicy,
    BaseReplacementPolicy,
    CblruPolicy,
    CbslruPolicy,
    LruPolicy,
    ReplacementPolicy,
    available_policies,
    create_policy,
    register_policy,
    unregister_policy,
)
from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.query import Query

KB = 1024


@pytest.fixture(scope="module")
def index():
    return InvertedIndex(CorpusConfig(num_docs=3000, vocab_size=60, seed=21))


# -- registry ----------------------------------------------------------------

def test_builtins_are_registered():
    assert {"lru", "cblru", "cbslru"} <= set(available_policies())


def test_create_policy_resolves_enum_and_string():
    assert isinstance(create_policy(Policy.LRU), LruPolicy)
    assert isinstance(create_policy("cblru"), CblruPolicy)
    assert isinstance(create_policy(Policy.CBSLRU), CbslruPolicy)


def test_create_policy_passes_instances_through():
    policy = CblruPolicy()
    assert create_policy(policy) is policy


def test_unknown_policy_raises():
    with pytest.raises(ValueError, match="unknown cache policy"):
        create_policy("no-such-policy")


def test_duplicate_registration_raises():
    register_policy("dup-test", LruPolicy)
    try:
        with pytest.raises(ValueError, match="already registered"):
            register_policy("dup-test", LruPolicy)
        register_policy("dup-test", CblruPolicy, overwrite=True)
        assert isinstance(create_policy("dup-test"), CblruPolicy)
    finally:
        unregister_policy("dup-test")


def test_builtin_policies_satisfy_protocols():
    for cls in (LruPolicy, CblruPolicy, CbslruPolicy):
        policy = cls()
        assert isinstance(policy, ReplacementPolicy)
        assert isinstance(policy.build_admission(CacheConfig()), AdmissionPolicy)


def test_policy_traits():
    assert not LruPolicy().cost_based
    assert not LruPolicy().tracks_replaceable
    assert CblruPolicy().cost_based
    assert not CblruPolicy().supports_static
    assert CbslruPolicy().supports_static


# -- a third-party policy, registered without touching manager.py ------------

class FifoPolicy(BaseReplacementPolicy):
    """Demo third-party policy: first-in-first-out L1 list victims.

    Victims are picked by entry creation time instead of recency, so a
    hot old list is evicted as readily as a cold one.  Everything else
    (Formula 1 placement, IREN RB victims, staged list search) is
    inherited from the cost-based base.
    """

    name = "fifo"

    def pick_l1_list_victim(self, lists, protect, config):
        best_key = None
        best_created = float("inf")
        for key, entry in lists.items_lru_order():
            if key == protect:
                continue
            if entry.created_us < best_created:
                best_created = entry.created_us
                best_key = key
        return best_key


@pytest.fixture
def fifo_registered():
    register_policy(FifoPolicy.name, FifoPolicy, overwrite=True)
    yield
    unregister_policy(FifoPolicy.name)


def test_fifo_policy_runs_through_manager(index, fifo_registered):
    """A registered custom policy drives a full replay via config alone."""
    cfg = CacheConfig(
        mem_result_bytes=100 * KB,
        mem_list_bytes=384 * KB,
        ssd_result_bytes=512 * KB,
        ssd_list_bytes=2048 * KB,
        policy="fifo",
        scheme=Scheme.HYBRID,
    )
    mgr = CacheManager(cfg, build_hierarchy_for(cfg, index), index)
    assert isinstance(mgr.policy, FifoPolicy)
    for i in range(200):
        mgr.process_query(Query(i % 50, (1 + i % 25, 26 + i % 20)))
        if i % 25 == 24:
            mgr.check_invariants()
    assert mgr.stats.queries == 200
    assert mgr.stats.mean_response_us > 0
    # The cost-based machinery ran under the custom policy.
    assert len(mgr.l2_lists) + mgr.stats.ssd_list_writes > 0
    mgr.check_invariants()


def test_fifo_evicts_oldest_not_least_recent(index, fifo_registered):
    """FIFO differs observably from LRU: recency does not protect entries."""
    def replay(policy):
        cfg = CacheConfig(
            mem_result_bytes=40 * KB,
            mem_list_bytes=128 * KB,
            ssd_result_bytes=256 * KB,
            ssd_list_bytes=1024 * KB,
            policy=policy,
        )
        mgr = CacheManager(cfg, build_hierarchy_for(cfg, index), index)
        # Keep term 1 hot while streaming a widening set of other terms.
        for i in range(120):
            mgr.process_query(Query(i, (1, 2 + i % 40)))
        mgr.check_invariants()
        return mgr

    fifo = replay("fifo")
    cblru = replay(Policy.CBLRU)
    assert fifo.stats.queries == cblru.stats.queries
    # Both complete cleanly; the victim orderings genuinely diverge.
    assert (fifo.stats.list_l1_hits != cblru.stats.list_l1_hits
            or fifo.occupancy() != cblru.occupancy())


def test_unregistered_policy_rejected_by_manager(index):
    cfg = CacheConfig(policy="fifo")  # not registered in this test
    with pytest.raises(ValueError, match="unknown cache policy"):
        CacheManager(cfg, build_hierarchy_for(cfg, index), index)
