"""GC victim-selection policies."""

import numpy as np
import pytest

from repro.flash.constants import FlashConfig
from repro.flash.gc import (
    CostBenefitVictimPolicy,
    GreedyVictimPolicy,
    RandomVictimPolicy,
)
from repro.flash.nand import NandArray


@pytest.fixture
def nand_with_utilisation():
    """Blocks 0..3 with 8, 2, 5, 0 valid pages respectively."""
    nand = NandArray(FlashConfig(num_blocks=4, overprovision=0.0))
    for block, valid in enumerate((8, 2, 5, 0)):
        for i in range(10):
            ppn = nand.program_page(block)
            if i >= valid:
                nand.invalidate_page(ppn)
    return nand


def test_greedy_picks_fewest_valid(nand_with_utilisation):
    policy = GreedyVictimPolicy()
    victim = policy.choose(nand_with_utilisation, np.array([0, 1, 2, 3]), 0.0)
    assert victim == 3  # zero valid pages


def test_greedy_respects_candidate_subset(nand_with_utilisation):
    policy = GreedyVictimPolicy()
    assert policy.choose(nand_with_utilisation, np.array([0, 2]), 0.0) == 2


def test_greedy_empty_candidates_raise(nand_with_utilisation):
    with pytest.raises(ValueError):
        GreedyVictimPolicy().choose(nand_with_utilisation, np.array([], dtype=int), 0.0)


def test_cost_benefit_prefers_old_sparse_blocks(nand_with_utilisation):
    policy = CostBenefitVictimPolicy()
    policy.note_program(0, 1000.0)   # hot, dense
    policy.note_program(1, 0.0)      # old, sparse
    policy.note_program(2, 900.0)
    policy.note_program(3, 999.0)
    victim = policy.choose(nand_with_utilisation, np.array([0, 1, 2]), 1000.0)
    assert victim == 1


def test_cost_benefit_empty_candidates_raise(nand_with_utilisation):
    with pytest.raises(ValueError):
        CostBenefitVictimPolicy().choose(
            nand_with_utilisation, np.array([], dtype=int), 0.0
        )


def test_random_is_seeded_and_within_candidates(nand_with_utilisation):
    a = RandomVictimPolicy(seed=1)
    b = RandomVictimPolicy(seed=1)
    cands = np.array([0, 1, 2, 3])
    picks_a = [a.choose(nand_with_utilisation, cands, 0.0) for _ in range(10)]
    picks_b = [b.choose(nand_with_utilisation, cands, 0.0) for _ in range(10)]
    assert picks_a == picks_b
    assert set(picks_a) <= {0, 1, 2, 3}
