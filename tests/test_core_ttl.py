"""The dynamic scenario (Section IV.B): TTL-based staleness."""

import pytest

from repro.core.config import CacheConfig, Policy
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.core.stats import Situation
from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.query import Query

KB = 1024
TTL = 50_000.0  # us


@pytest.fixture(scope="module")
def index():
    return InvertedIndex(CorpusConfig(num_docs=4000, vocab_size=80, seed=13))


def make_manager(index, ttl_us=TTL, policy=Policy.CBLRU, **overrides):
    kwargs = dict(
        mem_result_bytes=200 * KB,
        mem_list_bytes=512 * KB,
        ssd_result_bytes=512 * KB,
        ssd_list_bytes=4 * 1024 * KB,
        policy=policy,
        ttl_us=ttl_us,
    )
    kwargs.update(overrides)
    cfg = CacheConfig(**kwargs)
    return CacheManager(cfg, build_hierarchy_for(cfg, index), index)


def q(qid, *terms):
    return Query(query_id=qid, terms=terms)


def test_ttl_zero_never_expires(index):
    mgr = make_manager(index, ttl_us=0.0)
    mgr.process_query(q(0, 3))
    mgr.clock.advance(10**9)
    out = mgr.process_query(q(0, 3))
    assert out.situation is Situation.S1
    assert mgr.stats.expired_results == 0


def test_fresh_hit_within_ttl(index):
    mgr = make_manager(index)
    mgr.process_query(q(0, 3))
    out = mgr.process_query(q(0, 3))
    assert out.situation is Situation.S1


def test_expired_result_recomputes(index):
    mgr = make_manager(index)
    first = mgr.process_query(q(0, 3))
    mgr.clock.advance(2 * TTL)
    out = mgr.process_query(q(0, 3))
    assert out.result_hit_level == 0
    assert mgr.stats.expired_results >= 1
    # The recomputed entry is fresh again.
    again = mgr.process_query(q(0, 3))
    assert again.situation is Situation.S1


def test_expired_list_rereads_from_store(index):
    mgr = make_manager(index)
    mgr.process_query(q(0, 7))
    mgr.clock.advance(2 * TTL)
    out = mgr.process_query(q(1, 7, 9))  # different key, shares term 7
    assert mgr.stats.expired_lists >= 1
    assert out.situation in (Situation.S6, Situation.S8, Situation.S9, Situation.S7)


def test_expired_l2_result_dropped(index):
    mgr = make_manager(index, mem_result_bytes=20 * KB)  # 1 entry
    mgr.process_query(q(0, 3))
    mgr.process_query(q(1, 4))
    mgr.process_query(q(2, 5))
    # Ensure something made it to the SSD result map or the write buffer.
    mgr.clock.advance(2 * TTL)
    keys_before = set(mgr.l2_result_map)
    for key in list(keys_before):
        out = mgr.process_query(Query(50, key))
        assert out.result_hit_level == 0
    assert mgr.stats.expired_results >= len(keys_before)


def test_ttl_costs_performance(index):
    """Expiry converts hits into recomputes, so TTL must cost time."""
    stream = [q(i % 6, 1 + i % 6) for i in range(60)]
    static = make_manager(index, ttl_us=0.0)
    dynamic = make_manager(index, ttl_us=100.0)  # expires almost instantly
    for query in stream:
        static.process_query(query)
    for query in stream:
        dynamic.process_query(query)
    assert dynamic.stats.mean_response_us > static.stats.mean_response_us
    assert dynamic.stats.expired_results > 0


def test_static_entries_refresh_in_place(index):
    from repro.engine.querylog import QueryLogConfig, generate_query_log

    log = generate_query_log(QueryLogConfig(
        num_queries=300, distinct_queries=60, vocab_size=80,
        singleton_fraction=0.0, seed=2))
    mgr = make_manager(index, policy=Policy.CBSLRU,
                       ssd_result_bytes=1024 * KB)
    mgr.warmup_static(log, analyze_queries=300)
    assert mgr.static_results
    key = next(iter(mgr.static_results))
    mgr.clock.advance(2 * TTL)
    mgr.process_query(Query(500, key))  # stale -> recompute -> refresh
    assert mgr.stats.static_refreshes >= 1
    assert key in mgr.static_results  # still pinned
    out = mgr.process_query(Query(501, key))
    assert out.situation is Situation.S1  # fresh L1 copy from the recompute


def test_ttl_validation():
    with pytest.raises(ValueError):
        CacheConfig(ttl_us=-1.0)
