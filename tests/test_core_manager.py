"""Cache-manager behaviour: QM, SM, RM across policies and schemes."""

import pytest

from repro.core.config import CacheConfig, Policy, Scheme
from repro.core.entries import EntryState
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.core.stats import Situation
from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.query import Query

KB = 1024
MB = 1024 * KB


@pytest.fixture(scope="module")
def index():
    return InvertedIndex(CorpusConfig(num_docs=4000, vocab_size=80, seed=13))


def make_manager(
    index,
    policy=Policy.CBLRU,
    scheme=Scheme.HYBRID,
    mem_rc=2,          # capacities in result-entry / block units
    mem_lc_bytes=512 * KB,
    ssd_rc_blocks=4,
    ssd_lc_blocks=16,
    **overrides,
):
    cfg = CacheConfig(
        mem_result_bytes=mem_rc * 20 * KB,
        mem_list_bytes=mem_lc_bytes,
        ssd_result_bytes=ssd_rc_blocks * 128 * KB,
        ssd_list_bytes=ssd_lc_blocks * 128 * KB,
        policy=policy,
        scheme=scheme,
        **overrides,
    )
    hierarchy = build_hierarchy_for(cfg, index)
    return CacheManager(cfg, hierarchy, index)


def q(qid, *terms):
    return Query(query_id=qid, terms=terms)


# -- result cache ------------------------------------------------------------

def test_first_query_misses_then_hits_l1(index):
    mgr = make_manager(index)
    first = mgr.process_query(q(0, 3))
    assert first.result_hit_level == 0
    assert first.situation in (Situation.S8, Situation.S6)
    second = mgr.process_query(q(0, 3))
    assert second.result_hit_level == 1
    assert second.situation is Situation.S1
    assert second.response_us < first.response_us


def test_result_eviction_cascades_to_ssd_via_write_buffer(index):
    mgr = make_manager(index, mem_rc=2)
    n_flush = mgr.config.entries_per_rb
    # Fill L1 (2 entries) then evict enough entries to assemble one RB.
    for i in range(2 + n_flush):
        mgr.process_query(q(i, 1 + i % 10))
    assert mgr.stats.ssd_result_writes >= 1
    assert len(mgr.l2_result_map) >= n_flush


def test_staged_write_buffer_entry_counts_as_memory_hit(index):
    mgr = make_manager(index, mem_rc=2)
    mgr.process_query(q(0, 3))
    mgr.process_query(q(1, 4))
    mgr.process_query(q(2, 5))  # evicts query 0 into the write buffer
    assert (3,) in mgr.write_buffer
    out = mgr.process_query(q(0, 3))
    assert out.situation is Situation.S1
    assert (3,) not in mgr.write_buffer  # pulled back into L1


def test_l2_result_hit_marks_replaceable_and_skips_rewrite(index):
    mgr = make_manager(index, mem_rc=2)
    n_flush = mgr.config.entries_per_rb
    for i in range(2 + n_flush):
        mgr.process_query(q(i, 1 + i % 10))
    # One of the flushed entries is on SSD: hit it.
    key = next(iter(mgr.l2_result_map))
    out = mgr.process_query(Query(99, key))
    assert out.situation is Situation.S3
    entry = mgr.l2_result_map[key]
    assert entry.state is EntryState.REPLACEABLE
    writes_before = mgr.stats.ssd_result_writes
    # Evict it from L1 again: the SSD copy is reused, no rewrite needed.
    for i in range(100, 100 + 2 + n_flush):
        mgr.process_query(q(i, 1 + i % 10))
    assert mgr.stats.ssd_writes_avoided >= 1
    assert mgr.l2_result_map[key].state is EntryState.NORMAL


def test_rb_victim_is_max_iren_in_replace_first_region(index):
    mgr = make_manager(index, mem_rc=2, ssd_rc_blocks=3)
    n_flush = mgr.config.entries_per_rb
    # Many distinct queries (more than 3 RBs hold) force RB overwrites.
    for i in range(2 + n_flush * 8):
        mgr.process_query(q(i, 1 + i % 10, 20 + i % 40))
    assert len(mgr.rb_map) <= 3
    assert mgr.stats.ssd_result_writes > 3  # overwrites happened


def test_lru_policy_writes_entries_individually(index):
    mgr = make_manager(index, policy=Policy.LRU, mem_rc=2)
    for i in range(8):
        mgr.process_query(q(i, 1 + i % 10))
    # Baseline writes one entry at a time (no RB assembly).
    assert mgr.stats.ssd_result_writes >= 4
    assert len(mgr.rb_map) == 0
    assert all(e.rb_id is None for e in mgr.l2_result_map.values())


def test_lru_l2_result_hit_and_reeviction_rewrites(index):
    mgr = make_manager(index, policy=Policy.LRU, mem_rc=1)
    mgr.process_query(q(0, 3))
    mgr.process_query(q(1, 4))  # evicts q0 to SSD
    assert (3,) in mgr.l2_result_map
    out = mgr.process_query(q(0, 3))  # L2 hit
    assert out.situation is Situation.S3
    writes = mgr.stats.ssd_result_writes
    mgr.process_query(q(2, 5))  # evicts q0 again -> baseline rewrites
    assert mgr.stats.ssd_result_writes > writes
    assert mgr.stats.ssd_writes_avoided == 0


# -- inverted-list cache ----------------------------------------------------------

def test_shared_term_hits_memory_list_cache(index):
    mgr = make_manager(index, mem_lc_bytes=4 * MB)
    mgr.process_query(q(0, 7))
    out = mgr.process_query(q(1, 7, 9))  # term 7 now cached in memory
    assert out.situation in (Situation.S2, Situation.S4, Situation.S6, Situation.S9)
    assert mgr.stats.list_l1_hits >= 1


def test_list_eviction_lands_on_ssd_and_hits(index):
    mgr = make_manager(index, mem_lc_bytes=256 * KB, ssd_lc_blocks=32)
    terms = list(range(10, 22))
    for i, t in enumerate(terms):
        mgr.process_query(q(i, t))
    assert len(mgr.l2_lists) >= 1
    # Query a term whose list sits on SSD only (with a fresh second term
    # so the result cache cannot satisfy the query).
    ssd_terms = [t for t in mgr.l2_lists.keys() if mgr.l1_lists.get(t) is None]
    assert ssd_terms
    out = mgr.process_query(Query(100, (ssd_terms[0], 79)))
    assert mgr.stats.list_l2_hits + mgr.stats.list_partial_hits >= 1
    assert out.situation in (Situation.S5, Situation.S7, Situation.S4, Situation.S9)


def test_l2_list_hit_marks_replaceable(index):
    mgr = make_manager(index, mem_lc_bytes=256 * KB, ssd_lc_blocks=32)
    for i, t in enumerate(range(10, 22)):
        mgr.process_query(q(i, t))
    ssd_terms = [t for t in mgr.l2_lists.keys() if mgr.l1_lists.get(t) is None]
    t0 = ssd_terms[0]
    mgr.process_query(Query(100, (t0, 79)))
    entry = mgr.l2_lists.get(t0)
    assert entry is not None
    assert entry.state is EntryState.REPLACEABLE


def test_tev_discards_low_value_lists(index):
    mgr = make_manager(index, mem_lc_bytes=256 * KB, tev=10**9)
    for i, t in enumerate(range(10, 30)):
        mgr.process_query(q(i, t))
    assert mgr.stats.discarded_by_tev > 0
    assert len(mgr.l2_lists) == 0


def test_block_region_allocation_is_whole_blocks(index):
    mgr = make_manager(index, mem_lc_bytes=256 * KB, ssd_lc_blocks=32)
    for i, t in enumerate(range(10, 26)):
        mgr.process_query(q(i, t))
    for entry in (mgr.l2_lists.get(k) for k in mgr.l2_lists.keys()):
        assert entry.blocks  # placed as whole blocks
        assert entry.lba_byte is None


def test_lru_list_placement_is_byte_granular(index):
    mgr = make_manager(index, policy=Policy.LRU, mem_lc_bytes=256 * KB)
    for i, t in enumerate(range(10, 26)):
        mgr.process_query(q(i, t))
    placed = [mgr.l2_lists.get(k) for k in mgr.l2_lists.keys()]
    assert placed
    for entry in placed:
        assert not entry.blocks
        assert entry.lba_byte is not None


def test_l2_list_replacement_under_pressure(index):
    """Filling the SSD list region must evict, not fail."""
    mgr = make_manager(index, mem_lc_bytes=256 * KB, ssd_lc_blocks=4)
    for i, t in enumerate(range(10, 60)):
        mgr.process_query(q(i, t))
    used = sum(len(mgr.l2_lists.get(k).blocks) for k in mgr.l2_lists.keys())
    assert used <= 4
    stages = (mgr.stats.evict_stage_replaceable + mgr.stats.evict_stage_size_match
              + mgr.stats.evict_stage_assemble + mgr.stats.evict_stage_fallback)
    assert stages > 0


# -- schemes ----------------------------------------------------------------------

def test_exclusive_scheme_drops_l2_copy_on_hit(index):
    mgr = make_manager(index, scheme=Scheme.EXCLUSIVE,
                       mem_lc_bytes=256 * KB, ssd_lc_blocks=32)
    for i, t in enumerate(range(10, 22)):
        mgr.process_query(q(i, t))
    ssd_terms = [t for t in mgr.l2_lists.keys() if mgr.l1_lists.get(t) is None]
    t0 = ssd_terms[0]
    mgr.process_query(Query(100, (t0, 79)))
    assert mgr.l2_lists.get(t0) is None  # removed after read-back


def test_inclusive_scheme_writes_through(index):
    mgr = make_manager(index, scheme=Scheme.INCLUSIVE, mem_rc=4)
    for i in range(mgr.config.entries_per_rb):
        mgr.process_query(q(i, 1 + i))
    # Entries were pushed to the write buffer at insert time, before any
    # eviction happened.
    assert len(mgr.l1_results) <= 4
    assert mgr.write_buffer.flushes + len(mgr.write_buffer) > 0


# -- accounting / wiring -------------------------------------------------------------

def test_l1_occupancy_never_exceeds_capacity(index):
    mgr = make_manager(index, mem_rc=3, mem_lc_bytes=512 * KB)
    for i in range(40):
        mgr.process_query(q(i, 1 + i % 15, 16 + i % 7))
        occ = mgr.occupancy()
        assert occ["l1_result_bytes"] <= mgr.config.mem_result_bytes
        assert occ["l1_list_bytes"] <= mgr.config.mem_list_bytes


def test_clock_advances_monotonically(index):
    mgr = make_manager(index)
    last = 0.0
    for i in range(10):
        mgr.process_query(q(i, 1 + i))
        assert mgr.clock.now_us > last
        last = mgr.clock.now_us


def test_situation_table_probabilities_sum_to_one(index):
    mgr = make_manager(index)
    for i in range(30):
        mgr.process_query(q(i % 7, 1 + i % 12))
    probs = [p for _, p, _ in mgr.stats.situation_table()]
    assert sum(probs) == pytest.approx(1.0)


def test_one_level_config_runs_without_ssd(index):
    cfg = CacheConfig(
        mem_result_bytes=40 * KB, mem_list_bytes=512 * KB,
        ssd_result_bytes=0, ssd_list_bytes=0,
    )
    mgr = CacheManager(cfg, build_hierarchy_for(cfg, index), index)
    for i in range(20):
        mgr.process_query(q(i % 2, 1 + i % 2))  # reuse distance < capacity
    assert mgr.ssd is None
    assert mgr.stats.queries == 20
    assert mgr.stats.result_l1_hits > 0


def test_ssd_too_small_rejected(index):
    from repro.flash.constants import FlashConfig
    from repro.storage.hierarchy import HierarchyConfig, StorageHierarchy

    cfg = CacheConfig(ssd_result_bytes=100 * MB, ssd_list_bytes=100 * MB)
    tiny = StorageHierarchy(HierarchyConfig(ssd_config=FlashConfig(num_blocks=32)))
    with pytest.raises(ValueError):
        CacheManager(cfg, tiny, index)


def test_build_hierarchy_sizes_ssd_to_cache(index):
    cfg = CacheConfig(ssd_result_bytes=8 * MB, ssd_list_bytes=64 * MB)
    h = build_hierarchy_for(cfg, index)
    assert h.ssd.capacity_bytes >= cfg.ssd_cache_bytes


# -- CBSLRU static partition --------------------------------------------------------

def test_warmup_static_requires_cbslru(index):
    mgr = make_manager(index, policy=Policy.CBLRU)
    with pytest.raises(ValueError):
        mgr.warmup_static(None)


def test_warmup_static_places_and_pins(index, small_log=None):
    from repro.engine.querylog import QueryLogConfig, generate_query_log

    log = generate_query_log(
        QueryLogConfig(num_queries=400, distinct_queries=100, vocab_size=80, seed=2)
    )
    mgr = make_manager(index, policy=Policy.CBSLRU,
                       ssd_rc_blocks=8, ssd_lc_blocks=32, static_fraction=0.5)
    info = mgr.warmup_static(log)
    assert info["static_results"] > 0
    assert info["static_lists"] > 0
    assert info["static_list_blocks"] <= info["static_list_blocks_budget"]
    # Static entries serve hits and are never evicted.
    static_key = next(iter(mgr.static_results))
    out = mgr.process_query(Query(999, static_key))
    assert out.situation is Situation.S3
    # Run pressure; static entries must survive.
    for i in range(60):
        mgr.process_query(q(i, 1 + i % 30))
    assert static_key in mgr.static_results
    assert len(mgr.static_lists) == info["static_lists"]
