"""Three-level caching (intersections) — the paper's [19] extension."""

import pytest

from repro.core.config import CacheConfig, Policy
from repro.core.intersections import (
    IntersectionCache,
    IntersectionEntry,
    ThreeLevelCacheManager,
    estimate_intersection_postings,
)
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.query import Query

KB = 1024


@pytest.fixture(scope="module")
def index():
    return InvertedIndex(CorpusConfig(num_docs=4000, vocab_size=80, seed=13))


def make_manager(index, intersection_bytes=2 * 1024 * KB, **kwargs):
    cfg = CacheConfig(
        mem_result_bytes=100 * KB,
        mem_list_bytes=512 * KB,
        ssd_result_bytes=512 * KB,
        ssd_list_bytes=4 * 1024 * KB,
        policy=Policy.CBLRU,
    )
    return ThreeLevelCacheManager(
        cfg, build_hierarchy_for(cfg, index), index,
        intersection_bytes=intersection_bytes, **kwargs,
    )


# -- IntersectionCache -------------------------------------------------------

def entry(pair, nbytes=1000, postings=100):
    return IntersectionEntry(pair=pair, nbytes=nbytes, postings=postings)


def test_cache_lookup_insert():
    cache = IntersectionCache(10_000)
    assert cache.lookup((1, 2)) is None
    assert cache.misses == 1
    assert cache.insert(entry((1, 2)))
    got = cache.lookup((1, 2))
    assert got is not None and got.freq == 2
    assert cache.hits == 1


def test_cache_byte_budget_eviction():
    cache = IntersectionCache(2500)
    cache.insert(entry((1, 2), nbytes=1000))
    cache.insert(entry((3, 4), nbytes=1000))
    cache.insert(entry((5, 6), nbytes=1000))  # evicts (1,2)
    assert cache.used_bytes <= 2500
    assert cache.lookup((1, 2)) is None
    assert cache.lookup((5, 6)) is not None


def test_cache_oversized_entry_rejected():
    cache = IntersectionCache(100)
    assert not cache.insert(entry((1, 2), nbytes=1000))
    assert len(cache) == 0


def test_cache_reinsert_replaces():
    cache = IntersectionCache(10_000)
    cache.insert(entry((1, 2), nbytes=1000))
    cache.insert(entry((1, 2), nbytes=2000))
    assert cache.used_bytes == 2000
    assert len(cache) == 1


def test_cache_drop():
    cache = IntersectionCache(10_000)
    cache.insert(entry((1, 2)))
    cache.drop((1, 2))
    assert len(cache) == 0 and cache.used_bytes == 0
    cache.drop((9, 9))  # no-op


def test_cache_validation():
    with pytest.raises(ValueError):
        IntersectionCache(-1)


def test_estimate():
    assert estimate_intersection_postings(100, 200, 1000) == 20
    assert estimate_intersection_postings(1, 1, 10**6) == 1
    with pytest.raises(ValueError):
        estimate_intersection_postings(1, 1, 0)


# -- ThreeLevelCacheManager -------------------------------------------------------

def test_pair_must_recur_before_admission(index):
    mgr = make_manager(index, min_pair_freq=2)
    mgr.process_query(Query(0, (5, 9)))
    assert len(mgr.intersections) == 0  # seen once
    mgr.process_query(Query(1, (5, 9, 14)))  # same pair again, new key
    assert len(mgr.intersections) >= 1


def test_intersection_hit_serves_pair_from_memory(index):
    mgr = make_manager(index, min_pair_freq=1)
    mgr.process_query(Query(0, (5, 9)))     # admits (5, 9)
    assert len(mgr.intersections) == 1
    out = mgr.process_query(Query(1, (5, 9, 23)))
    assert mgr.intersections.hits >= 1
    # Terms 5 and 9 were served from memory; only 23 needed fetching.
    assert out.situation.name in ("S2", "S4", "S6", "S9")


def test_three_level_reduces_work_on_recurring_pairs(index):
    stream = [Query(i, (5, 9, 10 + i % 25)) for i in range(50)]
    cfg = CacheConfig(
        mem_result_bytes=100 * KB, mem_list_bytes=512 * KB,
        ssd_result_bytes=512 * KB, ssd_list_bytes=4 * 1024 * KB,
        policy=Policy.CBLRU,
    )
    two = CacheManager(cfg, build_hierarchy_for(cfg, index), index)
    three = make_manager(index, min_pair_freq=1)
    for query in stream:
        two.process_query(query)
    for query in stream:
        three.process_query(query)
    assert three.intersections.hits > 10
    assert (three.stats.mean_response_us < two.stats.mean_response_us)


def test_ttl_expires_intersections(index):
    cfg = CacheConfig(
        mem_result_bytes=100 * KB, mem_list_bytes=512 * KB,
        ssd_result_bytes=512 * KB, ssd_list_bytes=4 * 1024 * KB,
        policy=Policy.CBLRU, ttl_us=10_000.0,
    )
    mgr = ThreeLevelCacheManager(
        cfg, build_hierarchy_for(cfg, index), index,
        intersection_bytes=1024 * KB, min_pair_freq=1,
    )
    mgr.process_query(Query(0, (5, 9)))
    assert len(mgr.intersections) == 1
    mgr.clock.advance(50_000.0)
    mgr.process_query(Query(1, (5, 9, 23)))
    # The stale intersection was dropped, not served.
    assert mgr.intersections.hits == 0


def test_min_pair_freq_validation(index):
    with pytest.raises(ValueError):
        make_manager(index, min_pair_freq=0)


def test_occupancy_reports_intersections(index):
    mgr = make_manager(index, min_pair_freq=1)
    mgr.process_query(Query(0, (5, 9)))
    occ = mgr.occupancy()
    assert occ["intersections"] == 1
    assert occ["intersection_bytes"] > 0


def test_single_term_queries_unaffected(index):
    mgr = make_manager(index, min_pair_freq=1)
    out = mgr.process_query(Query(0, (7,)))
    assert out.situation.name in ("S6", "S8")
    assert len(mgr.intersections) == 0
