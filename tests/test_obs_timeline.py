"""The timeline recorder: windowing, reconciliation, exemplars, steady state."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CacheConfig, Policy
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.query import Query
from repro.obs import (
    ExemplarStore,
    Histogram,
    MetricsRegistry,
    Telemetry,
    TimelineRecorder,
    load_timeline_jsonl,
    merge_windows,
    sparkline,
    steady_state_window,
    sub_histogram,
    validate_telemetry_dir,
    window_series,
    write_telemetry_dir,
)

KB = 1024


class FakeClock:
    def __init__(self):
        self.now_us = 0.0


def make_manager(small_index, telemetry=None, policy=Policy.CBLRU):
    cfg = CacheConfig(
        mem_result_bytes=100 * KB, mem_list_bytes=384 * KB,
        ssd_result_bytes=512 * KB, ssd_list_bytes=2048 * KB,
        policy=policy,
    )
    return CacheManager(cfg, build_hierarchy_for(cfg, small_index), small_index,
                        telemetry=telemetry)


def replay(mgr, n=400):
    outcomes = []
    for i in range(n):
        out = mgr.process_query(Query(i % 60, (1 + i % 25, 26 + i % 20)))
        outcomes.append((out.situation, out.result_hit_level, out.response_us))
    return outcomes


# -- recorder mechanics ------------------------------------------------------

def test_recorder_windows_are_sparse_and_ordered():
    clock = FakeClock()
    reg = MetricsRegistry()
    rec = TimelineRecorder(reg, window_us=100.0, clock=clock)
    c = reg.counter("n")
    c.inc(3)
    clock.now_us = 150.0  # into window 1: closes window 0
    rec.tick()
    clock.now_us = 550.0  # skips windows 2-4 entirely (no activity)
    rec.tick()
    c.inc(7)
    rec.finish()
    assert [w["window"] for w in rec.windows] == [0, 5]
    assert rec.windows[0]["counters"]["n"] == 3
    assert rec.windows[1]["counters"]["n"] == 7
    assert rec.windows[0]["start_us"] == 0.0
    assert rec.windows[0]["end_us"] == 100.0


def test_recorder_finish_is_idempotent_and_gauges_on_change():
    clock = FakeClock()
    reg = MetricsRegistry()
    rec = TimelineRecorder(reg, window_us=100.0, clock=clock)
    g = reg.gauge("depth")
    g.set(4.0)
    clock.now_us = 120.0
    rec.tick()
    clock.now_us = 220.0  # gauge unchanged: window 1 has nothing to say
    rec.tick()
    rec.finish()
    rec.finish()
    assert [w["window"] for w in rec.windows] == [0]
    assert rec.windows[0]["gauges"]["depth"] == 4.0


def test_recorder_rejects_bad_window_width():
    with pytest.raises(ValueError):
        TimelineRecorder(MetricsRegistry(), window_us=0.0)


# -- the reconciliation properties (satellite: exact delta sums) -------------

@settings(max_examples=60, deadline=None)
@given(steps=st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=500.0),  # clock advance
              st.integers(min_value=0, max_value=50)),    # increment
    min_size=1, max_size=60,
))
def test_window_counter_deltas_sum_exactly_to_cumulative(steps):
    clock = FakeClock()
    reg = MetricsRegistry()
    rec = TimelineRecorder(reg, window_us=100.0, clock=clock)
    c = reg.counter("events_total", kind="x")
    for advance, inc in steps:
        clock.now_us += advance
        rec.tick()
        c.inc(inc)
    rec.finish()
    total = sum(w["counters"].get("events_total{kind=x}", 0)
                for w in rec.windows)
    assert total == c.value  # exact, not approx: integer telescoping


@settings(max_examples=60, deadline=None)
@given(steps=st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=500.0),
              st.floats(min_value=0.0, max_value=1e6,
                        allow_nan=False, allow_infinity=False)),
    min_size=1, max_size=60,
))
def test_merged_sub_histograms_reproduce_run_level_histogram(steps):
    clock = FakeClock()
    reg = MetricsRegistry()
    rec = TimelineRecorder(reg, window_us=100.0, clock=clock)
    h = reg.histogram("lat")
    for advance, value in steps:
        clock.now_us += advance
        rec.tick()
        h.record(value)
    rec.finish()
    merged = merge_windows(rec.windows)["histograms"]["lat"]
    assert merged.count == h.count
    assert merged._counts == h._counts  # bucket-wise exact
    assert merged.sum == pytest.approx(h.sum, rel=1e-9, abs=1e-9)


def test_sub_histogram_reconstruction_bounds():
    h = Histogram()
    h.record_many([1.0, 50.0, 2000.0])
    entry = {"count": h.count, "sum": h.sum, "lo": h.lo, "growth": h.growth,
             "buckets": {str(b): c for b, c in h._counts.items()}}
    back = sub_histogram(entry)
    assert back.count == 3
    assert back.min <= 1.0 and back.max >= 2000.0
    # Percentiles survive the round trip to within one bucket width.
    assert back.percentile(50.0) == pytest.approx(
        h.percentile(50.0), rel=h.growth - 1.0)


# -- end-to-end with the cache manager ---------------------------------------

def test_timeline_reconciles_with_end_of_run_registry(small_index):
    tel = Telemetry(trace=False, audit=False)
    timeline = tel.attach_timeline(window_us=5_000.0)
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr)
    timeline.finish()
    assert timeline.emitted > 3, "workload too small to window"

    merged = merge_windows(timeline.windows)
    from repro.obs.timeline import series_key

    for name, tags, inst in tel.registry.items():
        key = series_key(name, tags)
        if inst.kind == "counter":
            assert merged["counters"].get(key, 0) == inst.value, key
        elif inst.kind == "histogram" and inst.count:
            sub = merged["histograms"][key]
            assert sub.count == inst.count, key
            assert sub._counts == inst._counts, key
            assert sub.sum == pytest.approx(inst.sum, rel=1e-9), key


def test_timeline_parity_attached_changes_no_outcome(small_index):
    bare = replay(make_manager(small_index))
    tel = Telemetry()
    tel.attach_timeline(window_us=5_000.0)
    observed = replay(make_manager(small_index, telemetry=tel))
    assert bare == observed


def test_timeline_derived_series_present(small_index):
    tel = Telemetry(trace=False, audit=False)
    timeline = tel.attach_timeline(window_us=5_000.0)
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr)
    timeline.finish()
    for series in ("queries", "hit_ratio", "p99_response_us"):
        assert window_series(timeline.windows, series), series
    total_queries = sum(v for _, v in window_series(timeline.windows,
                                                    "queries"))
    assert total_queries == mgr.stats.queries


# -- exemplars ---------------------------------------------------------------

def test_exemplar_store_captures_tail_samples_with_context():
    store = ExemplarStore(threshold_q=99.0, min_count=64)
    h = Histogram()
    store.register(h, "lat")
    for i in range(1, 101):
        store.set_context(query_id=i, span_id=1000 + i, window=i // 10,
                          t_us=float(i))
        h.record(float(i))
    assert store.exemplars, "no tail samples captured"
    values = [ex.value_us for ex in store.exemplars]
    assert 100.0 in values  # the maximum is always in the tail
    for ex in store.exemplars:
        assert ex.metric == "lat"
        # Tail relative to the distribution *at capture time*: nothing
        # below the p99 of the first min_count samples ever qualifies.
        assert ex.value_us >= 63.0
        assert ex.query_id == int(ex.value_us)  # context travelled with it
        assert ex.span_id == 1000 + ex.query_id


def test_exemplar_traceable_to_span_and_audit(small_index):
    """The acceptance chain: histogram sample -> span -> audit records."""
    tel = Telemetry()  # tracing and audit on
    tel.attach_timeline(window_us=5_000.0)
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr, n=600)
    tel.timeline.finish()

    exemplars = [e for e in tel.exemplars.exemplars
                 if e.query_id is not None and e.span_id is not None]
    assert exemplars, "no tail exemplars captured"

    spans = {s.span_id: s for s in tel.tracer.spans}
    ex = exemplars[-1]
    root = spans[ex.span_id]  # the exemplar's span exists
    assert root.name == "query"
    assert root.attrs["qid"] == ex.query_id
    assert root.dur_us == pytest.approx(ex.value_us)
    # ... and decisions made during that query are on the audit trail.
    inside = [r for r in tel.audit.records
              if root.start_us <= r.t_us <= root.end_us]
    assert inside, "no audit records during the exemplar's span"


# -- steady-state detection --------------------------------------------------

def synth_windows(values, series="hit_ratio"):
    return [{"type": "window", "window": i, "start_us": i * 100.0,
             "end_us": (i + 1) * 100.0, "counters": {}, "gauges": {},
             "histograms": {}, "derived": {series: v}}
            for i, v in enumerate(values)]


def test_steady_state_window_finds_stability_onset():
    warmup = [0.0, 0.1, 0.25, 0.4, 0.55, 0.65]
    steady = [0.70, 0.71, 0.70, 0.72, 0.71, 0.70, 0.71]
    windows = synth_windows(warmup + steady)
    assert steady_state_window(windows, k=5) == len(warmup)
    assert steady_state_window(synth_windows(warmup), k=5) is None
    assert steady_state_window(synth_windows([0.5]), k=5) is None
    with pytest.raises(ValueError):
        steady_state_window(windows, k=1)


def test_merge_windows_start_window_excludes_warmup():
    windows = synth_windows([0.1, 0.2, 0.7, 0.7])
    for i, w in enumerate(windows):
        w["counters"]["n"] = 10
    merged = merge_windows(windows, start_window=2)
    assert merged["counters"]["n"] == 20
    assert merged["first_window"] == 2


# -- export, load, validate --------------------------------------------------

def test_timeline_export_load_validate_roundtrip(small_index, tmp_path):
    tel = Telemetry()
    tel.attach_timeline(window_us=5_000.0)
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr)
    out = tmp_path / "tel"
    written = write_telemetry_dir(tel, out)
    assert written["timeline_windows"] > 0

    counts = validate_telemetry_dir(out)
    assert counts["timeline_windows"] == written["timeline_windows"]

    tl = load_timeline_jsonl(out / "timeline.jsonl")
    assert tl.window_us == 5_000.0
    assert len(tl.windows) == written["timeline_windows"]
    assert tl.footer["windows"] == len(tl.windows)
    # Reconciliation survives the disk round trip.
    merged = merge_windows(tl.windows)
    total = sum(v for k, v in merged["counters"].items()
                if k.startswith("queries_total{"))
    assert total == mgr.stats.queries


def test_streaming_timeline_matches_retained(small_index, tmp_path):
    path = tmp_path / "timeline.jsonl"
    tel = Telemetry(trace=False, audit=False)
    tel.attach_timeline(window_us=5_000.0, stream_path=path)
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr)
    tel.timeline.finish()
    tl = load_timeline_jsonl(path)
    assert [w["window"] for w in tl.windows] == \
        [w["window"] for w in tel.timeline.windows]
    assert tl.windows == list(tel.timeline.windows)


def test_validate_timeline_rejects_corruption(tmp_path):
    path = tmp_path / "timeline.jsonl"
    path.write_text(json.dumps({"type": "header", "schema": "nope"}) + "\n")
    with pytest.raises(ValueError):
        load_timeline_jsonl(path)
    good_header = json.dumps({"type": "header",
                              "schema": "repro.obs.timeline/v1",
                              "window_us": 100.0})
    bad_window = json.dumps({"type": "window", "window": 0, "start_us": 100.0,
                             "end_us": 50.0, "counters": {}, "gauges": {},
                             "histograms": {}})
    path.write_text(good_header + "\n" + bad_window + "\n")
    with pytest.raises(ValueError):
        load_timeline_jsonl(path)


# -- rendering ---------------------------------------------------------------

def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([1.0, 1.0]) == "▄▄"
    line = sparkline([0.0, None, 10.0])
    assert len(line) == 3
    assert line[1] == "·"
    assert line[0] < line[2]
    assert len(sparkline(list(range(200)), width=40)) == 40
