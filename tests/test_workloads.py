"""Workload drivers and the cost model."""

import pytest

from repro.core.config import CacheConfig, Policy
from repro.workloads.cost import (
    GB,
    PriceList,
    ServerConfig,
    cost_performance,
    server_cost_usd,
)
from repro.workloads.retrieval import run_cached, run_uncached, sample_flash_series
from repro.workloads.sweep import document_sweep, make_log_for, make_scaled_index

MB = 1024 * 1024


# -- cost model -------------------------------------------------------------

def test_paper_prices_are_default():
    prices = PriceList()
    assert prices.dram_per_gb == 14.5
    assert prices.ssd_per_gb == 1.9


def test_server_cost_arithmetic():
    cfg = ServerConfig("x", dram_bytes=GB, ssd_bytes=2 * GB, hdd_bytes=100 * GB)
    cost = server_cost_usd(cfg)
    assert cost == pytest.approx(14.5 + 2 * 1.9 + 100 * 0.08)


def test_paper_cost_claim_holds():
    """0.1 GB DRAM + 2 GB SSD is far cheaper than 1 GB DRAM (Fig. 18b)."""
    small_mem_big_ssd = server_cost_usd(
        ServerConfig("2LC", dram_bytes=int(0.1 * GB), ssd_bytes=2 * GB)
    )
    big_mem = server_cost_usd(ServerConfig("1LC", dram_bytes=GB))
    assert small_mem_big_ssd < big_mem / 2


def test_cost_performance():
    cfg = ServerConfig("x", dram_bytes=GB)
    assert cost_performance(cfg, throughput_qps=29.0) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        cost_performance(ServerConfig("z", dram_bytes=0), 10.0)


def test_validation():
    with pytest.raises(ValueError):
        PriceList(dram_per_gb=-1)
    with pytest.raises(ValueError):
        ServerConfig("x", dram_bytes=-1)


# -- retrieval drivers --------------------------------------------------------------

def test_uncached_hdd_vs_ssd(small_index, small_log):
    hdd = run_uncached(small_index, small_log, "hdd", max_queries=100)
    ssd = run_uncached(small_index, small_log, "ssd", max_queries=100)
    assert hdd.queries == ssd.queries == 100
    assert hdd.mean_response_ms > 0
    # Fig. 15: SSD index is faster, though not dramatically for small data.
    assert ssd.mean_response_ms < hdd.mean_response_ms


def test_cached_run_reports_stats(small_index, small_log):
    cfg = CacheConfig.paper_split(mem_bytes=1 * MB, ssd_bytes=8 * MB,
                                  policy=Policy.CBLRU)
    result = run_cached(small_index, small_log, cfg, max_queries=300)
    assert result.queries == 300
    assert result.stats is not None
    assert 0 <= result.stats.combined_hit_ratio <= 1
    assert result.throughput_qps > 0


def test_cached_warmup_excluded_from_stats(small_index, small_log):
    cfg = CacheConfig.paper_split(mem_bytes=1 * MB, ssd_bytes=8 * MB)
    result = run_cached(small_index, small_log, cfg,
                        warmup_queries=100, max_queries=300)
    assert result.queries == 200  # warmup not counted


def test_cached_beats_uncached(small_index, small_log):
    cfg = CacheConfig.paper_split(mem_bytes=2 * MB, ssd_bytes=16 * MB)
    cached = run_cached(small_index, small_log, cfg, max_queries=300)
    uncached = run_uncached(small_index, small_log, max_queries=300)
    assert cached.mean_response_ms < uncached.mean_response_ms


def test_flash_series_monotone(small_index, small_log):
    cfg = CacheConfig.paper_split(mem_bytes=1 * MB, ssd_bytes=8 * MB,
                                  policy=Policy.LRU)
    series = sample_flash_series(small_index, small_log, cfg, [100, 200, 300])
    assert [s["queries"] for s in series] == [100, 200, 300]
    erases = [s["erases"] for s in series]
    assert erases == sorted(erases)  # erase count never decreases


def test_flash_series_validation(small_index, small_log):
    cfg = CacheConfig.paper_split(mem_bytes=1 * MB, ssd_bytes=8 * MB)
    with pytest.raises(ValueError):
        sample_flash_series(small_index, small_log, cfg, [])
    with pytest.raises(ValueError):
        sample_flash_series(small_index, small_log, cfg, [200, 100])
    with pytest.raises(ValueError):
        sample_flash_series(small_index, small_log, cfg, [10**9])
    no_ssd = CacheConfig.paper_split(mem_bytes=1 * MB)
    with pytest.raises(ValueError):
        sample_flash_series(small_index, small_log, no_ssd, [10])


# -- sweep helpers ----------------------------------------------------------------

def test_scaled_index_memoised():
    a = make_scaled_index(100_000)
    b = make_scaled_index(100_000)
    assert a is b
    assert a.num_docs == 100_000


def test_make_log_defaults():
    log = make_log_for(400)
    assert len(log) == 400
    assert log.config.distinct_queries == 100


def test_document_sweep_runs_experiment():
    rows = document_sweep(
        [50_000, 100_000],
        lambda index, n: {"bytes": index.index_bytes},
    )
    assert len(rows) == 2
    assert rows[0]["num_docs"] == 50_000
    assert rows[1]["bytes"] > rows[0]["bytes"]
