"""Flash-aware buffer management: LRU, CFLRU, LRU-WSR, BPLRU."""

import numpy as np
import pytest

from repro.flash.constants import FlashConfig
from repro.flash.ssd import SimulatedSSD
from repro.storage.buffer import BplruBuffer, BufferPolicy, HostPageBuffer
from repro.storage.device import NullDevice

PAGE = 2048


def make_buffer(policy=BufferPolicy.LRU, capacity=8, device=None):
    return HostPageBuffer(device or NullDevice(), capacity_pages=capacity,
                          page_bytes=PAGE, policy=policy)


def page_lba(i):
    return i * (PAGE // 512)


# -- common write-back cache behaviour --------------------------------------

def test_validation():
    with pytest.raises(ValueError):
        HostPageBuffer(NullDevice(), capacity_pages=0)
    with pytest.raises(ValueError):
        HostPageBuffer(NullDevice(), capacity_pages=4, page_bytes=1000)
    with pytest.raises(ValueError):
        HostPageBuffer(NullDevice(), capacity_pages=4, clean_first_fraction=0.0)
    with pytest.raises(ValueError):
        make_buffer().read(-1, 10)


def test_read_miss_then_hit():
    dev = NullDevice()
    buf = make_buffer(device=dev)
    buf.read(0, PAGE)
    assert buf.stats.misses == 1
    assert dev.counters.count("read_ops") == 1
    buf.read(0, PAGE)
    assert buf.stats.hits == 1
    assert dev.counters.count("read_ops") == 1  # served from cache


def test_writes_are_absorbed_until_eviction():
    dev = NullDevice()
    buf = make_buffer(capacity=4, device=dev)
    for i in range(4):
        buf.write(page_lba(i), PAGE)
    assert dev.counters.count("write_ops") == 0
    assert buf.dirty_pages == 4
    buf.write(page_lba(9), PAGE)  # evicts one dirty page
    assert dev.counters.count("write_ops") == 1
    assert buf.stats.writebacks == 1


def test_flush_writes_all_dirty():
    dev = NullDevice()
    buf = make_buffer(capacity=8, device=dev)
    for i in range(5):
        buf.write(page_lba(i), PAGE)
    buf.read(page_lba(7), PAGE)
    buf.flush()
    assert dev.counters.count("write_ops") == 5
    assert buf.dirty_pages == 0


def test_trim_drops_buffered_pages():
    buf = make_buffer(capacity=8)
    buf.write(0, PAGE)
    buf.trim(0, PAGE)
    assert len(buf) == 0


def test_multi_page_requests():
    buf = make_buffer(capacity=8)
    buf.write(0, 3 * PAGE)
    assert len(buf) == 3


# -- CFLRU -----------------------------------------------------------------------

def test_cflru_prefers_clean_victims():
    dev = NullDevice()
    buf = make_buffer(policy=BufferPolicy.CFLRU, capacity=4, device=dev)
    # LRU order will be: clean(0), dirty(1), dirty(2), dirty(3).
    buf.read(page_lba(0), PAGE)
    for i in (1, 2, 3):
        buf.write(page_lba(i), PAGE)
    buf.write(page_lba(9), PAGE)
    # The clean page 0 was sacrificed; no device write happened.
    assert dev.counters.count("write_ops") == 0
    assert buf.stats.evict_clean == 1


def test_cflru_falls_back_to_dirty_lru():
    dev = NullDevice()
    buf = make_buffer(policy=BufferPolicy.CFLRU, capacity=4, device=dev)
    for i in range(4):
        buf.write(page_lba(i), PAGE)  # all dirty
    buf.write(page_lba(9), PAGE)
    assert buf.stats.writebacks == 1


def test_cflru_reduces_writebacks_vs_lru():
    """Mixed read/write traffic: CFLRU must write back less than LRU."""
    rng = np.random.default_rng(4)
    ops = [(int(rng.integers(0, 64)), rng.random() < 0.3) for _ in range(2000)]
    results = {}
    for policy in (BufferPolicy.LRU, BufferPolicy.CFLRU):
        dev = NullDevice()
        buf = make_buffer(policy=policy, capacity=16, device=dev)
        for page, is_write in ops:
            if is_write:
                buf.write(page_lba(page), PAGE)
            else:
                buf.read(page_lba(page), PAGE)
        results[policy] = buf.stats.writebacks
    assert results[BufferPolicy.CFLRU] < results[BufferPolicy.LRU]


# -- LRU-WSR --------------------------------------------------------------------

def test_wsr_gives_dirty_pages_second_chance():
    dev = NullDevice()
    buf = make_buffer(policy=BufferPolicy.LRU_WSR, capacity=3, device=dev)
    buf.write(page_lba(0), PAGE)   # dirty, will be LRU
    buf.read(page_lba(1), PAGE)
    buf.read(page_lba(2), PAGE)
    buf.read(page_lba(3), PAGE)    # eviction: page 0 gets a second chance,
    assert buf.stats.second_chances == 1
    assert dev.counters.count("write_ops") == 0  # clean page 1 evicted instead
    # Page 0 is now cold; next eviction of it flushes.
    buf.read(page_lba(4), PAGE)
    buf.read(page_lba(5), PAGE)
    assert buf.stats.writebacks == 1


def test_wsr_rewrite_clears_cold_flag():
    buf = make_buffer(policy=BufferPolicy.LRU_WSR, capacity=2)
    buf.write(page_lba(0), PAGE)
    buf.read(page_lba(1), PAGE)
    buf.read(page_lba(2), PAGE)   # page 0 second chance
    assert buf.stats.second_chances == 1
    buf.write(page_lba(0), PAGE)  # re-reference: hot again
    buf.read(page_lba(3), PAGE)
    buf.read(page_lba(4), PAGE)
    assert buf.stats.second_chances >= 2  # earned another chance


# -- BPLRU ------------------------------------------------------------------------

@pytest.fixture
def ssd():
    return SimulatedSSD(FlashConfig(num_blocks=64, overprovision=0.15))


def test_bplru_validation(ssd):
    with pytest.raises(ValueError):
        BplruBuffer(ssd, capacity_pages=0)
    buf = BplruBuffer(ssd, capacity_pages=16)
    with pytest.raises(ValueError):
        buf.write(0, 0)


def test_bplru_buffers_until_capacity(ssd):
    buf = BplruBuffer(ssd, capacity_pages=128)
    writes_before = ssd.counters.count("write_ops")
    buf.write(0, 2048)
    buf.write(4096 // 512, 2048)
    assert ssd.counters.count("write_ops") == writes_before
    assert buf.buffered_pages == 2


def test_bplru_flushes_whole_padded_blocks(ssd):
    buf = BplruBuffer(ssd, capacity_pages=64)
    block_bytes = ssd.config.block_bytes
    # Dirty one page in each of 3 different blocks, then overflow.
    for blk in range(3):
        buf.write(blk * block_bytes // 512, 2048)
    buf.flush()
    assert buf.stats.block_flushes == 3
    assert buf.stats.padding_reads == 3 * (ssd.config.pages_per_block - 1)
    # Device saw whole-block writes.
    assert ssd.ftl.stats.host_page_writes == 3 * ssd.config.pages_per_block


def test_bplru_reduces_erases_under_random_small_writes(ssd):
    """The claim of [15]: random small writes become block writes."""
    rng = np.random.default_rng(5)
    raw = SimulatedSSD(FlashConfig(num_blocks=64, overprovision=0.15))
    buffered = BplruBuffer(ssd, capacity_pages=256)
    span = raw.capacity_bytes // 2
    # Pre-fill both so overwrites land on mapped space.
    for off in range(0, span, raw.config.block_bytes):
        raw.write(off // 512, raw.config.block_bytes)
        buffered.write(off // 512, raw.config.block_bytes)
    buffered.flush()
    for _ in range(1500):
        off = (int(rng.integers(0, span - 4096)) // 512) * 512
        raw.write(off // 512, 2048)
        buffered.write(off // 512, 2048)
    buffered.flush()
    # Same logical traffic, far fewer erases through BPLRU (GC copies
    # vanish because whole blocks invalidate together).
    assert ssd.ftl.stats.gc_page_writes < raw.ftl.stats.gc_page_writes / 2


def test_bplru_read_passthrough(ssd):
    buf = BplruBuffer(ssd, capacity_pages=16)
    ssd.write(0, 2048)
    latency = buf.read(0, 2048)
    assert latency > 0
