"""Synthetic trace generators and the Section III signatures."""

import numpy as np
import pytest

from repro.trace.analyzer import analyze_trace, figure1_series
from repro.trace.generator import (
    WebSearchTraceConfig,
    generate_websearch_trace,
    trace_from_engine,
)


def test_config_validation():
    with pytest.raises(ValueError):
        WebSearchTraceConfig(num_requests=0)
    with pytest.raises(ValueError):
        WebSearchTraceConfig(read_fraction=1.5)
    with pytest.raises(ValueError):
        WebSearchTraceConfig(hot_fraction=-0.1)
    with pytest.raises(ValueError):
        WebSearchTraceConfig(hot_spots=0)


def test_websearch_trace_basic_shape():
    cfg = WebSearchTraceConfig(num_requests=5000, seed=1)
    t = generate_websearch_trace(cfg)
    assert len(t) == 5000
    assert t.lbas.max() < cfg.lba_span
    assert (np.diff(t.timestamps_s) >= 0).all()


def test_websearch_trace_is_read_dominant():
    """The paper: UMass web-search trace is > 99% reads."""
    t = generate_websearch_trace(WebSearchTraceConfig(num_requests=20_000, seed=2))
    a = analyze_trace(t)
    assert a.read_fraction > 0.99


def test_websearch_trace_shows_locality():
    t = generate_websearch_trace(WebSearchTraceConfig(num_requests=20_000, seed=3))
    a = analyze_trace(t)
    assert a.locality_top10 > 0.4  # hot 10% of regions take >40% of accesses


def test_websearch_trace_is_random():
    t = generate_websearch_trace(WebSearchTraceConfig(num_requests=5_000, seed=4))
    a = analyze_trace(t)
    assert a.random_fraction > 0.9


def test_websearch_trace_deterministic():
    cfg = WebSearchTraceConfig(num_requests=1000, seed=9)
    assert np.array_equal(
        generate_websearch_trace(cfg).lbas, generate_websearch_trace(cfg).lbas
    )


def test_engine_trace_is_pure_reads(small_index, small_log):
    t = trace_from_engine(small_index, small_log, max_queries=100)
    assert t.is_read.all()
    assert len(t) > 0


def test_engine_trace_lbas_within_layout(small_index, small_log):
    t = trace_from_engine(small_index, small_log, max_queries=100)
    assert t.lbas.max() <= small_index.layout.total_sectors


def test_engine_trace_shows_skipped_reads(paper_index, paper_log):
    """Big lists are read in multiple chunks -> forward skips appear."""
    t = trace_from_engine(paper_index, paper_log, max_queries=200)
    a = analyze_trace(t)
    assert a.skipped_read_fraction > 0.02
    assert a.random_fraction > 0.5


def test_figure1_series_matches_reads(small_index, small_log):
    t = trace_from_engine(small_index, small_log, max_queries=50)
    xs, ys = figure1_series(t)
    assert len(xs) == len(t.reads_only())
    assert (ys >= 0).all()
