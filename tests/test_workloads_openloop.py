"""Open-loop arrivals and the emergent concurrent driver."""

import pytest

from repro.cluster.broker import Broker
from repro.core.config import CacheConfig, Policy
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.querylog import QueryLogConfig, generate_query_log
from repro.obs import KernelMetrics, MetricsRegistry, Telemetry
from repro.sim.clock import VirtualClock
from repro.sim.kernel import AdmissionControl, Kernel
from repro.workloads.openloop import (
    DiurnalArrivals,
    PoissonArrivals,
    run_open_loop,
    schedule_arrivals,
)

KB = 1024


@pytest.fixture(scope="module")
def index():
    return InvertedIndex(CorpusConfig(num_docs=4000, vocab_size=120, seed=29))


@pytest.fixture(scope="module")
def log():
    return generate_query_log(QueryLogConfig(
        num_queries=120, distinct_queries=60, vocab_size=120, seed=5))


def make_manager(index, telemetry=None) -> CacheManager:
    cfg = CacheConfig(
        mem_result_bytes=100 * KB, mem_list_bytes=384 * KB,
        ssd_result_bytes=512 * KB, ssd_list_bytes=2048 * KB,
        policy=Policy.CBLRU,
    )
    return CacheManager(cfg, build_hierarchy_for(cfg, index), index,
                        telemetry=telemetry)


# -- arrival processes -------------------------------------------------------

def test_poisson_arrivals_deterministic_with_correct_mean_gap():
    a1 = PoissonArrivals(1000.0, seed=3)
    a2 = PoissonArrivals(1000.0, seed=3)
    t1 = t2 = 0.0
    gaps = []
    for _ in range(2000):
        n1, n2 = a1.next_after(t1), a2.next_after(t2)
        assert n1 == n2
        assert n1 > t1
        gaps.append(n1 - t1)
        t1, t2 = n1, n2
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap == pytest.approx(1e6 / 1000.0, rel=0.1)


def test_poisson_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0)


def test_diurnal_rate_swings_between_floor_and_peak():
    d = DiurnalArrivals(100.0, period_s=10.0, floor_fraction=0.2)
    assert d.rate_at(0.0) == pytest.approx(20.0)  # cycle starts at night
    assert d.rate_at(5e6) == pytest.approx(100.0)  # mid-period peak
    for t in range(0, 10_000_000, 250_000):
        assert 20.0 - 1e-9 <= d.rate_at(float(t)) <= 100.0 + 1e-9


def test_diurnal_arrivals_deterministic_and_monotonic():
    d1 = DiurnalArrivals(200.0, period_s=2.0, seed=9)
    d2 = DiurnalArrivals(200.0, period_s=2.0, seed=9)
    t = 0.0
    for _ in range(500):
        n1 = d1.next_after(t)
        assert n1 == d2.next_after(t)
        assert n1 > t
        t = n1


def test_diurnal_validation():
    with pytest.raises(ValueError):
        DiurnalArrivals(0.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(10.0, period_s=0.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(10.0, floor_fraction=0.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(10.0, floor_fraction=1.5)


def test_schedule_arrivals_submits_each_query_once_in_order():
    kernel = Kernel(VirtualClock())
    seen = []
    schedule_arrivals(kernel, PoissonArrivals(500.0, seed=1), 25,
                      lambda i, t: seen.append((i, t)))
    kernel.run()
    assert [i for i, _ in seen] == list(range(25))
    times = [t for _, t in seen]
    assert times == sorted(times)
    assert times[0] > 0.0


# -- the emergent driver -----------------------------------------------------

def test_run_open_loop_completes_and_detaches(index, log):
    manager = make_manager(index)
    result = run_open_loop(manager, list(log), PoissonArrivals(50.0, seed=2),
                           concurrency=4, max_queue=64, label="t")
    assert result.arrived == len(log)
    assert result.completed == len(log)
    assert result.rejected == 0
    assert result.duration_us > 0
    assert result.mean_response_us > 0
    assert result.p999_us >= result.p99_us >= result.p50_us > 0
    assert result.throughput_qps > 0
    # Device resources actually served work.
    assert sum(result.peak_resource_depth.values()) > 0
    assert any(u > 0 for u in result.utilization.values())
    # The kernel detached: the manager serves closed-loop again.
    assert manager.clock.kernel is None
    out = manager.process_query(log[0])
    assert out.response_us > 0


def test_run_open_loop_sheds_past_the_knee(index, log):
    manager = make_manager(index)
    # Offered load far above capacity with a tiny queue: shedding must
    # emerge, and every arrival must still be accounted for.
    result = run_open_loop(manager, list(log),
                           PoissonArrivals(100_000.0, seed=2),
                           concurrency=2, max_queue=2, label="hot")
    assert result.rejected > 0
    assert result.completed + result.rejected == result.arrived == len(log)
    assert 0.0 < result.reject_fraction < 1.0
    assert result.peak_inflight <= 2 + 2  # inflight + bounded queue


def test_run_open_loop_rejects_empty_queries(index):
    with pytest.raises(ValueError):
        run_open_loop(make_manager(index), [], PoissonArrivals(10.0))


# -- kernel telemetry --------------------------------------------------------

def test_queue_depth_gauge_tracks_burst_backlog():
    clock = VirtualClock()
    kernel = Kernel(clock)
    admission = AdmissionControl(kernel, max_inflight=1, max_queue=8)
    registry = MetricsRegistry()
    bridge = KernelMetrics(registry, kernel, admission)
    for i in range(5):
        kernel.at(0.0, lambda i=i: admission.submit(
            lambda: kernel.serve("dev", 100.0), name=f"b{i}"))
    sampled = []
    kernel.at(50.0, lambda: (
        bridge.collect(),
        sampled.append(registry.gauge("queue_depth", resource="admission").value),
        sampled.append(registry.gauge("queue_depth", resource="dev").value),
    ))
    kernel.run()
    # Mid-burst: one job in service on "dev", four waiting for a slot.
    assert sampled == [5.0, 1.0]
    bridge.collect()
    assert registry.gauge("queue_depth", resource="admission").value == 0.0
    assert registry.counter("admission_completed_total").value == 5
    assert registry.counter("arrivals_total").value == 5
    assert registry.counter(
        "kernel_served_total", resource="dev").value == 5


def test_telemetry_observe_kernel_collects_gauges(index, log):
    tel = Telemetry(trace=False, audit=False)
    manager = make_manager(index, telemetry=tel)
    run_open_loop(manager, list(log)[:40], PoissonArrivals(50.0, seed=4),
                  concurrency=4, label="tel")
    tel.collect()
    assert tel.registry.counter("arrivals_total").value == 40
    assert tel.registry.counter("admission_completed_total").value == 40
    # Every hierarchy device became a kernel resource with a depth gauge.
    assert tel.registry.get("queue_depth", resource="admission") is not None
    assert tel.registry.get("queue_depth", resource="index-hdd") is not None


# -- cluster fan-out ---------------------------------------------------------

BASE = CorpusConfig(num_docs=6000, vocab_size=120, seed=19)


def cluster_cfg():
    return CacheConfig(
        mem_result_bytes=100 * KB, mem_list_bytes=256 * KB,
        ssd_result_bytes=512 * KB, ssd_list_bytes=2048 * KB,
        policy=Policy.CBLRU,
    )


def test_broker_open_loop_requires_shared_clock(log):
    broker = Broker.build(BASE, num_shards=2, cache_config=cluster_cfg())
    with pytest.raises(ValueError, match="shared_clock"):
        broker.run_open_loop(list(log)[:10], PoissonArrivals(50.0, seed=1))


def test_broker_open_loop_fans_out_concurrently(log):
    broker = Broker.build(BASE, num_shards=2, cache_config=cluster_cfg(),
                          shared_clock=True)
    queries = list(log)[:60]
    result = broker.run_open_loop(queries, PoissonArrivals(80.0, seed=3),
                                  concurrency=4, max_queue=32)
    assert result.completed + result.rejected == result.arrived == len(queries)
    assert result.completed > 0
    names = set(result.peak_resource_depth)
    assert "broker" in names
    # Per-shard devices carry the #<shard> suffix on the shared timeline.
    assert any(n.endswith("#0") for n in names)
    assert any(n.endswith("#1") for n in names)
    assert result.mean_response_us > 0
