"""FAST log-buffer hybrid FTL."""

import pytest

from repro.flash.constants import FlashConfig
from repro.flash.ftl_fast import FastFTL
from repro.flash.ftl_page import PageMappingFTL


@pytest.fixture
def ftl(tiny_flash):
    return FastFTL(tiny_flash)


def test_needs_spare_blocks():
    with pytest.raises(ValueError):
        FastFTL(FlashConfig(num_blocks=16, overprovision=0.0))


def test_log_block_count_validation(tiny_flash):
    with pytest.raises(ValueError):
        FastFTL(tiny_flash, num_log_blocks=10**6)


def test_bulk_load_uses_data_blocks(ftl):
    ppb = ftl.config.pages_per_block
    for lpn in range(ppb * 2):
        ftl.write(lpn)
    # Sequential first-writes go straight to data blocks: no merges.
    assert ftl.stats.full_merges == 0
    assert ftl.stats.block_erases == 0
    assert ftl.mapped_lpn_count() == ppb * 2


def test_overwrite_lands_in_log_and_reads_back(ftl):
    ppb = ftl.config.pages_per_block
    for lpn in range(ppb):
        ftl.write(lpn)
    ftl.write(3)  # overwrite -> log
    assert 3 in ftl._log_map
    assert ftl.read(3) == ftl.config.read_us
    assert ftl.mapped_lpn_count() == ppb


def test_sequential_block_overwrite_switch_merges(ftl):
    ppb = ftl.config.pages_per_block
    # Load several logical blocks, then overwrite them repeatedly in
    # perfect block order: every retired log block is switchable.
    for lpn in range(ppb * 3):
        ftl.write(lpn)
    for _ in range(6):
        for lpn in range(ppb * 3):
            ftl.write(lpn)
    assert ftl.stats.extra.get("switch_merges", 0) > 0
    assert ftl.stats.full_merges == 0
    assert ftl.stats.gc_page_writes == 0  # switch merges copy nothing
    assert ftl.mapped_lpn_count() == ppb * 3
    ftl.nand.check_invariants()


def test_random_overwrites_full_merge(ftl):
    ppb = ftl.config.pages_per_block
    span = ppb * 4
    for lpn in range(span):
        ftl.write(lpn)
    for i in range(span * 4):
        ftl.write((i * 29) % span)
    assert ftl.stats.full_merges > 0
    assert ftl.mapped_lpn_count() == span
    ftl.nand.check_invariants()


def test_fast_beats_block_mapping_on_random_writes(tiny_flash):
    from repro.flash.ftl_block import BlockMappingFTL

    fast = FastFTL(tiny_flash)
    block = BlockMappingFTL(tiny_flash)
    span = tiny_flash.pages_per_block * 4
    for i in range(span * 3):
        lpn = (i * 29) % span
        fast.write(lpn)
        block.write(lpn)
    assert fast.stats.block_erases < block.stats.block_erases


def test_trim_from_log_and_data(ftl):
    ppb = ftl.config.pages_per_block
    for lpn in range(ppb):
        ftl.write(lpn)
    ftl.write(0)  # move lpn 0 into log
    ftl.trim(0)
    ftl.trim(1)
    assert ftl.mapped_lpn_count() == ppb - 2
    assert ftl.read(0) == ftl.config.read_us  # unmapped read still bounded


def test_mapping_correct_after_heavy_churn(ftl):
    """Every lpn written must remain readable; state arrays must agree."""
    span = ftl.config.pages_per_block * 3
    for i in range(span * 5):
        ftl.write((i * 13 + i % 7) % span)
    for lpn in range(span):
        ftl.read(lpn)
    ftl.nand.check_invariants()
