"""CLI surface of the observability plane: graceful errors, rotation,
``top``/``incidents``/``explain --incident``, and the live plane flag."""

import json
import os

import pytest

from repro.cli import main
from repro.obs import list_incidents


_SATURATED = ["run", "--policy", "cbslru", "--docs", "20000",
              "--queries", "600", "--mem-mb", "2", "--ssd-mb", "8",
              "--arrival", "poisson", "--rate-qps", "3000",
              "--concurrency", "2", "--max-queue", "64",
              "--timeline", "--window-ms", "10"]


@pytest.fixture(scope="module")
def knee_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("knee") / "tel"
    assert main(_SATURATED + ["--telemetry", str(out)]) == 0
    assert list_incidents(out)
    return out


# -- graceful errors on missing/partial telemetry dirs -----------------------

def test_explain_missing_audit_is_clean_error(tmp_path, capsys):
    rc = main(["explain", str(tmp_path), "--term", "3"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "no audit trail" in err


def test_explain_corrupt_audit_is_clean_error(tmp_path, capsys):
    (tmp_path / "audit.jsonl").write_text("{bad\n{worse\n")
    rc = main(["explain", str(tmp_path), "--term", "3"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "not a usable audit trail" in err


def test_timeline_missing_file_is_clean_error(tmp_path, capsys):
    rc = main(["timeline", str(tmp_path)])
    err = capsys.readouterr().err
    assert rc == 2
    assert "not a usable timeline" in err


def test_blame_missing_file_is_clean_error(tmp_path, capsys):
    rc = main(["blame", str(tmp_path)])
    err = capsys.readouterr().err
    assert rc == 2
    assert "not a usable blame file" in err


def test_explain_incident_on_empty_dir_is_clean_error(tmp_path, capsys):
    rc = main(["explain", str(tmp_path), "--incident", "1"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "no incident-1" in err and "have: none" in err


def test_top_on_missing_dir_is_clean_error(tmp_path, capsys):
    rc = main(["top", str(tmp_path / "nope"), "--once"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "error:" in err


def test_incidents_on_missing_dir_is_clean_error(tmp_path, capsys):
    rc = main(["incidents", str(tmp_path / "nope")])
    err = capsys.readouterr().err
    assert rc == 2
    assert "not a directory" in err


# -- run-flag validation -----------------------------------------------------

def test_live_port_requires_timeline(capsys):
    rc = main(["run", "--live-port", "0"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "--timeline" in err


def test_max_windows_requires_timeline(capsys):
    rc = main(["run", "--max-windows", "10"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "--timeline" in err


# -- the end-to-end plane over one saturated run -----------------------------

def test_incidents_command_lists_and_requires(knee_dir, capsys):
    rc = main(["incidents", str(knee_dir), "--require", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "incident-1" in out and "[critical]" in out

    rc = main(["incidents", str(knee_dir), "--require", "999"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "need >= 999" in captured.err


def test_incidents_command_json(knee_dir, capsys):
    rc = main(["incidents", str(knee_dir), "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["valid"] >= 1
    assert doc["bundles"][0]["valid"] is True
    assert doc["bundles"][0]["manifest"]["trigger"]["severity"] == "critical"


def test_incidents_command_empty_dir(tmp_path, capsys):
    rc = main(["incidents", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "no incident bundles" in out


def test_explain_incident_walks_bundle(knee_dir, capsys):
    rc = main(["explain", str(knee_dir), "--incident", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "incident 1:" in out
    assert "config fingerprint:" in out
    assert "SLO state at capture:" in out
    assert "evidence:" in out


def test_top_once_from_dir(knee_dir, capsys):
    rc = main(["top", str(knee_dir), "--once"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "repro top" in out
    assert "incidents:" in out and "dumped" in out


def test_run_summary_mentions_incidents(knee_dir, tmp_path, capsys):
    # The knee fixture already ran; re-run a quiet scenario to see the
    # no-incident summary line too.
    out = tmp_path / "quiet"
    rc = main(["run", "--policy", "lru", "--docs", "2000", "--queries",
               "80", "--mem-mb", "4", "--ssd-mb", "8", "--arrival",
               "poisson", "--rate-qps", "50", "--concurrency", "2",
               "--telemetry", str(out), "--timeline", "--window-ms", "50"])
    text = capsys.readouterr().out
    assert rc == 0
    assert "flight recorder: armed, no incidents" in text


def test_run_with_live_port_prints_url(tmp_path, capsys):
    out = tmp_path / "tel"
    rc = main(["run", "--policy", "lru", "--docs", "2000", "--queries",
               "60", "--mem-mb", "4", "--ssd-mb", "8", "--arrival",
               "poisson", "--rate-qps", "100", "--concurrency", "2",
               "--telemetry", str(out), "--timeline", "--window-ms", "50",
               "--live-port", "0"])
    text = capsys.readouterr().out
    assert rc == 0
    assert "live plane at http://127.0.0.1:" in text


# -- retention/rotation ------------------------------------------------------

def test_max_windows_rotates_and_loads(tmp_path, capsys):
    out = tmp_path / "tel"
    rc = main(["run", "--policy", "lru", "--docs", "5000", "--queries",
               "200", "--mem-mb", "2", "--ssd-mb", "8", "--arrival",
               "poisson", "--rate-qps", "1000", "--concurrency", "2",
               "--max-queue", "16", "--telemetry", str(out), "--timeline",
               "--window-ms", "5", "--max-windows", "10",
               "--max-blame-records", "100", "--no-flight"])
    capsys.readouterr()
    assert rc == 0
    assert os.path.exists(out / "timeline.jsonl.1")
    assert os.path.exists(out / "blame.jsonl.1")

    from repro.obs import (load_blame_jsonl, load_timeline_jsonl,
                           validate_blame_jsonl, validate_timeline_jsonl)

    tl = load_timeline_jsonl(out / "timeline.jsonl")
    # At most two generations of <= max_windows each survive on disk.
    assert 0 < len(tl.windows) <= 20
    windows = [w["window"] for w in tl.windows]
    assert windows == sorted(windows)
    validate_timeline_jsonl(out / "timeline.jsonl")
    blame = load_blame_jsonl(out / "blame.jsonl")
    assert 0 < len(blame.records) <= 200
    validate_blame_jsonl(out / "blame.jsonl")

    # The downstream tools accept a rotated dir end to end.
    assert main(["timeline", str(out)]) == 0
    assert main(["blame", str(out)]) in (0, 1)
    capsys.readouterr()
