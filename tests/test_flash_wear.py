"""Wear reports and lifetime projection."""

import numpy as np
import pytest

from repro.flash.wear import WearReport, wear_report


def test_report_statistics():
    counts = np.array([10, 20, 30, 40])
    report = wear_report(counts, endurance_cycles=100)
    assert report.total_erases == 100
    assert report.max_erases == 40
    assert report.min_erases == 10
    assert report.mean_erases == pytest.approx(25.0)
    assert report.skew == pytest.approx(40 / 25)
    assert report.lifetime_consumed == pytest.approx(0.4)


def test_perfectly_level_wear_has_unit_skew():
    report = wear_report(np.full(8, 7))
    assert report.skew == pytest.approx(1.0)


def test_zero_wear():
    report = wear_report(np.zeros(4, dtype=int))
    assert report.skew == 1.0
    assert report.lifetime_consumed == 0.0
    assert report.remaining_lifetime_days(10.0) == float("inf")


def test_lifetime_projection():
    report = wear_report(np.array([500]), endurance_cycles=1000)
    # Half the endurance consumed in 30 days -> 30 days left.
    assert report.remaining_lifetime_days(30.0) == pytest.approx(30.0)


def test_lifetime_consumed_caps_at_one():
    report = wear_report(np.array([99999]), endurance_cycles=100)
    assert report.lifetime_consumed == 1.0


def test_validation():
    with pytest.raises(ValueError):
        wear_report(np.array([], dtype=int))
    with pytest.raises(ValueError):
        wear_report(np.array([1]), endurance_cycles=0)
    with pytest.raises(ValueError):
        wear_report(np.array([1])).remaining_lifetime_days(0.0)
