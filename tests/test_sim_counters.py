"""Counter and CounterSet behaviour."""

import pytest

from repro.sim.counters import Counter, CounterSet


def test_counter_add_accumulates():
    c = Counter("x")
    c.add(10.0)
    c.add(20.0)
    assert c.count == 2
    assert c.total == pytest.approx(30.0)
    assert c.mean == pytest.approx(15.0)


def test_counter_mean_empty_is_zero():
    assert Counter("x").mean == 0.0


def test_counter_batch_n():
    c = Counter("x")
    c.add(100.0, n=4)
    assert c.count == 4
    assert c.mean == pytest.approx(25.0)


def test_counter_reset():
    c = Counter("x")
    c.add(5.0)
    c.reset()
    assert c.count == 0 and c.total == 0.0


def test_counterset_creates_on_demand():
    cs = CounterSet()
    assert "reads" not in cs
    cs["reads"].add(1.0)
    assert "reads" in cs
    assert cs.count("reads") == 1


def test_counterset_shorthand_add():
    cs = CounterSet()
    cs.add("w", 7.0, n=2)
    assert cs.count("w") == 2
    assert cs.total("w") == pytest.approx(7.0)


def test_counterset_missing_reads_zero():
    cs = CounterSet()
    assert cs.count("nope") == 0
    assert cs.total("nope") == 0.0


def test_counterset_iteration_and_len():
    cs = CounterSet()
    cs.add("a")
    cs.add("b")
    assert len(cs) == 2
    assert {c.name for c in cs} == {"a", "b"}


def test_counterset_snapshot_and_reset():
    cs = CounterSet()
    cs.add("a", 3.0)
    snap = cs.snapshot()
    assert snap == {"a": (1, 3.0)}
    cs.reset()
    assert cs.count("a") == 0
