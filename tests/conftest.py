"""Shared fixtures: small, fast instances of every substrate."""

from __future__ import annotations

import pytest

from repro.engine.corpus import CorpusConfig, build_corpus_stats
from repro.engine.index import InvertedIndex
from repro.engine.querylog import QueryLogConfig, generate_query_log
from repro.flash.constants import FlashConfig


@pytest.fixture
def tiny_flash() -> FlashConfig:
    """A 32-block SSD — small enough that GC pressure appears quickly."""
    return FlashConfig(num_blocks=32, overprovision=0.15)


@pytest.fixture(scope="session")
def small_corpus():
    return build_corpus_stats(
        CorpusConfig(num_docs=5_000, vocab_size=500, avg_doc_len=120, seed=3)
    )


@pytest.fixture(scope="session")
def small_index(small_corpus) -> InvertedIndex:
    return InvertedIndex(small_corpus)


@pytest.fixture(scope="session")
def small_log():
    return generate_query_log(
        QueryLogConfig(
            num_queries=600,
            distinct_queries=150,
            vocab_size=500,
            seed=5,
        )
    )


@pytest.fixture(scope="session")
def paper_index() -> InvertedIndex:
    """A scaled paper-like index whose hot lists span many flash blocks."""
    return InvertedIndex(CorpusConfig.paper_scale(1_000_000))


@pytest.fixture(scope="session")
def paper_log():
    return generate_query_log(
        QueryLogConfig(
            num_queries=3_000,
            distinct_queries=900,
            vocab_size=10_000,
            seed=11,
        )
    )
