"""Device-level trace capture (the paper's 'DiskMon inside the SSD')."""

import numpy as np
import pytest

from repro.core.config import CacheConfig, Policy
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.query import Query
from repro.flash.constants import FlashConfig
from repro.flash.ssd import SimulatedSSD
from repro.storage.device import NullDevice
from repro.trace.analyzer import analyze_trace
from repro.trace.capture import TracingDevice


def test_capture_records_reads_and_writes():
    traced = TracingDevice(NullDevice())
    traced.write(0, 4096)
    traced.read(8, 2048)
    traced.trim(0, 4096)  # trims are not captured
    trace = traced.trace()
    assert len(trace) == 2
    assert not trace[0].is_read and trace[1].is_read
    assert trace[0].nbytes == 4096


def test_capture_filters():
    writes_only = TracingDevice(NullDevice(), capture_reads=False)
    writes_only.read(0, 512)
    writes_only.write(0, 512)
    assert len(writes_only) == 1
    reads_only = TracingDevice(NullDevice(), capture_writes=False)
    reads_only.read(0, 512)
    reads_only.write(0, 512)
    assert reads_only.trace()[0].is_read


def test_capture_timestamps_follow_device_clock(tiny_flash):
    ssd = SimulatedSSD(tiny_flash)
    traced = TracingDevice(ssd)
    traced.write(0, 128 * 1024)
    traced.write(256, 128 * 1024)
    trace = traced.trace()
    assert trace.timestamps_s[1] > trace.timestamps_s[0]


def test_capture_passthrough_semantics(tiny_flash):
    ssd = SimulatedSSD(tiny_flash)
    traced = TracingDevice(ssd)
    latency = traced.write(0, 4096)
    assert latency > 0
    assert traced.capacity_bytes == ssd.capacity_bytes
    assert ssd.ftl.stats.host_page_writes == 2
    assert traced.counters.count("write_ops") == 1
    with pytest.raises(ValueError):
        traced.read(-1, 10)


def test_capture_clear():
    traced = TracingDevice(NullDevice())
    traced.write(0, 512)
    traced.clear()
    assert len(traced) == 0


def test_cache_manager_runs_on_traced_ssd():
    """Wrap the L2 SSD with a tracer and analyze the policy's write
    stream — the Section VII.D methodology."""
    index = InvertedIndex(CorpusConfig(num_docs=4000, vocab_size=80, seed=13))
    results = {}
    for policy in (Policy.LRU, Policy.CBLRU):
        cfg = CacheConfig(
            mem_result_bytes=100 * 1024, mem_list_bytes=384 * 1024,
            ssd_result_bytes=512 * 1024, ssd_list_bytes=2048 * 1024,
            policy=policy,
        )
        hierarchy = build_hierarchy_for(cfg, index)
        traced = TracingDevice(hierarchy.ssd, capture_reads=False)
        hierarchy.ssd = traced
        mgr = CacheManager(cfg, hierarchy, index)
        for i in range(250):
            mgr.process_query(Query(i % 60, (1 + i % 30, 31 + i % 25)))
        results[policy] = analyze_trace(traced.trace(),
                                        skip_window_sectors=10**9)
    lru, cblru = results[Policy.LRU], results[Policy.CBLRU]
    # The baseline's writes are smaller and more scattered; the cost-based
    # policy writes fewer, larger, block-aligned requests.
    assert cblru.mean_request_bytes > lru.mean_request_bytes
    assert cblru.num_requests < lru.num_requests
