"""Property-based tests on the core cache machinery."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import CacheConfig, Policy, Scheme
from repro.core.lru import LruList
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.core.selection import efficiency_value, ssd_cache_blocks
from repro.core.ssd_region import BlockRegion, ByteRegion
from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.query import Query

SB = 128 * 1024
KB = 1024


@settings(max_examples=100, deadline=None)
@given(
    si=st.integers(1, 10**9),
    pu=st.floats(0.001, 1.0),
)
def test_formula1_bounds(si, pu):
    """SC blocks always cover si*pu bytes and never exceed it by a block."""
    sc = ssd_cache_blocks(si, pu, SB)
    assert sc >= 1
    assert sc * SB >= si * pu - 1  # covers the target
    assert (sc - 1) * SB < si * pu + 1  # tight: one block fewer is too small


@settings(max_examples=100, deadline=None)
@given(freq=st.integers(0, 10**6), sc=st.integers(1, 10**4))
def test_formula2_monotone(freq, sc):
    ev = efficiency_value(freq, sc)
    assert ev >= 0
    assert efficiency_value(freq + 1, sc) >= ev
    assert efficiency_value(freq, sc + 1) <= ev


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "touch", "pop_lru"]),
                  st.integers(0, 20)),
        max_size=120,
    )
)
def test_lru_list_model(ops):
    """LruList behaves like an ordered-dict reference model."""
    from collections import OrderedDict

    lru = LruList(replace_window=3)
    model: OrderedDict = OrderedDict()
    for op, key in ops:
        if op == "insert":
            lru.insert(key, key * 2)
            model[key] = key * 2
            model.move_to_end(key)
        elif op == "touch":
            if key in model:
                assert lru.touch(key) == model[key]
                model.move_to_end(key)
            else:
                assert lru.get(key) is None
        else:
            if model:
                assert lru.pop_lru() == model.popitem(last=False)
    assert len(lru) == len(model)
    assert lru.keys() == list(model.keys())
    rfr = lru.replace_first_region()
    assert [k for k, _ in rfr] == list(model.keys())[:3]


@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 8), min_size=1, max_size=30),
    data=st.data(),
)
def test_block_region_conservation(sizes, data):
    """Allocated + free block counts always equal the region size."""
    region = BlockRegion(0, 24, SB)
    held: list[list[int]] = []
    for size in sizes:
        blocks = region.alloc(size)
        if blocks is None:
            if held:
                victim = data.draw(st.integers(0, len(held) - 1))
                region.free(held.pop(victim))
            continue
        held.append(blocks)
        allocated = sum(len(b) for b in held)
        assert allocated + region.free_count == 24
        # No block handed out twice.
        flat = [b for blocks in held for b in blocks]
        assert len(flat) == len(set(flat))


@settings(max_examples=60, deadline=None)
@given(
    requests=st.lists(st.integers(1, 16 * 512), min_size=1, max_size=40),
    data=st.data(),
)
def test_byte_region_no_overlap(requests, data):
    """Live extents never overlap; free+used sectors conserve."""
    region = ByteRegion(0, 64 * 512)
    held: list[tuple[int, int]] = []  # (lba, nbytes)
    for nbytes in requests:
        lba = region.alloc(nbytes)
        if lba is None:
            if held:
                victim = data.draw(st.integers(0, len(held) - 1))
                old = held.pop(victim)
                region.free(*old)
            continue
        held.append((lba, nbytes))
        # Overlap check over sector spans.
        spans = sorted(
            (l, l + -(-n // 512)) for l, n in held
        )
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2
        used = sum(e - s for s, e in spans)
        assert used + region.free_sectors == 64


# -- invariant-checked replay over the layered cache manager -----------------

@pytest.fixture(scope="module")
def replay_index():
    return InvertedIndex(CorpusConfig(num_docs=2500, vocab_size=50, seed=19))


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    policy=st.sampled_from(list(Policy)),
    scheme=st.sampled_from(list(Scheme)),
    ttl_us=st.sampled_from([0.0, 15_000.0]),
    queries=st.lists(
        st.tuples(
            st.integers(0, 30),                               # query id
            st.lists(st.integers(1, 40), min_size=1, max_size=3, unique=True),
        ),
        min_size=1,
        max_size=60,
    ),
)
def test_replay_preserves_invariants_after_every_query(
    replay_index, policy, scheme, ttl_us, queries
):
    """check_invariants() holds after *every* query of a random replay.

    Exercises the decomposed result/list caches and all three built-in
    policies under Hypothesis-generated logs, including the dynamic (TTL)
    scenario, so any accounting drift inside the layers surfaces at the
    exact query that introduced it.
    """
    cfg = CacheConfig(
        mem_result_bytes=60 * KB,
        mem_list_bytes=256 * KB,
        ssd_result_bytes=384 * KB,
        ssd_list_bytes=1024 * KB,
        policy=policy,
        scheme=scheme,
        ttl_us=ttl_us,
    )
    mgr = CacheManager(cfg, build_hierarchy_for(cfg, replay_index), replay_index)
    for qid, terms in queries:
        mgr.process_query(Query(qid, tuple(terms)))
        mgr.check_invariants()
    assert mgr.stats.queries == len(queries)
