"""The live observability plane: HTTP endpoints, top frames, post-hoc."""

import json
from urllib.request import urlopen

import pytest

from repro.cli import main
from repro.obs import (
    LIVE_SCHEMA,
    LiveServer,
    Telemetry,
    fetch_status,
    format_top_frame,
    status_from_dir,
)
from repro.obs.live import OPENMETRICS_CONTENT_TYPE


def _window(i, **derived):
    return {"type": "window", "window": i, "start_us": i * 100.0,
            "end_us": (i + 1) * 100.0, "counters": {}, "gauges": {},
            "histograms": {}, "derived": derived}


@pytest.fixture
def live():
    tel = Telemetry(trace=False, audit=False)
    tel.attach_timeline(window_us=100.0)
    tel.registry.counter("queries_total").inc(7)
    server = LiveServer(tel, port=0, run_info={"policy": "lru"}).start()
    for i in range(10):
        server._on_window(_window(i, hit_ratio=0.5, queue_depth=float(i)))
    yield server
    server.close()


def test_live_server_requires_timeline():
    tel = Telemetry(trace=False, audit=False)
    with pytest.raises(RuntimeError, match="timeline"):
        LiveServer(tel).start()


def test_metrics_endpoint_serves_openmetrics(live):
    with urlopen(f"{live.url()}/metrics") as resp:
        assert resp.headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
        body = resp.read().decode()
    assert "queries_total 7" in body
    assert body.rstrip().endswith("# EOF")


def test_windows_endpoint_streams_ndjson(live):
    with urlopen(f"{live.url()}/windows?since=6") as resp:
        lines = [json.loads(line) for line in resp.read().splitlines()]
    assert lines[0]["type"] == "header"
    assert [rec["window"] for rec in lines[1:]] == [7, 8, 9]


def test_windows_endpoint_rejects_bad_since(live):
    with pytest.raises(Exception) as exc_info:
        urlopen(f"{live.url()}/windows?since=nope")
    assert getattr(exc_info.value, "code", None) == 400


def test_status_endpoint_and_fetch_status(live):
    status = fetch_status(str(live.port))
    assert status["schema"] == LIVE_SCHEMA
    assert status["run"] == {"policy": "lru"}
    assert status["windows_seen"] == 10
    assert [w["window"] for w in status["recent"]] == list(range(10))
    assert {r["slo"] for r in status["slo"]}
    assert status["incidents"] == {"open": False, "dumped": []}
    # queue_depth rose 9 windows in a row: anomalies must be visible.
    assert status["anomalies"]["critical"] >= 1


def test_unknown_path_is_404(live):
    with pytest.raises(Exception) as exc_info:
        urlopen(f"{live.url()}/nope")
    assert getattr(exc_info.value, "code", None) == 404


def test_format_top_frame_renders_all_sections(live):
    frame = format_top_frame(live.status(), width=20)
    assert "repro top" in frame
    assert "windows=10" in frame
    assert "hit_ratio" in frame and "queue_depth" in frame
    assert "anomalies:" in frame
    assert "incidents:" in frame


def test_status_from_dir_matches_live_shape(tmp_path, capsys):
    out = tmp_path / "tel"
    assert main(["run", "--policy", "lru", "--docs", "5000",
                 "--queries", "150", "--mem-mb", "2", "--ssd-mb", "8",
                 "--arrival", "poisson", "--rate-qps", "500",
                 "--concurrency", "2", "--max-queue", "16",
                 "--telemetry", str(out), "--timeline",
                 "--window-ms", "20"]) == 0
    capsys.readouterr()
    status = status_from_dir(out)
    assert status["schema"] == LIVE_SCHEMA
    assert status["windows_seen"] > 0
    assert status["recent"][0]["derived"]
    frame = format_top_frame(status)
    assert "repro top" in frame


def test_status_from_dir_without_timeline(tmp_path):
    with pytest.raises(ValueError, match="no timeline"):
        status_from_dir(tmp_path)
