"""FIFO queueing simulation and the open-loop drivers."""

import numpy as np
import pytest

from repro.core.config import CacheConfig
from repro.sim.queueing import simulate_fifo_queue
from repro.workloads.openloop import collect_service_times, load_sweep


def test_validation():
    with pytest.raises(ValueError):
        simulate_fifo_queue(np.array([]), 10.0)
    with pytest.raises(ValueError):
        simulate_fifo_queue(np.array([0.0]), 10.0)
    with pytest.raises(ValueError):
        simulate_fifo_queue(np.array([10.0]), 0.0)
    with pytest.raises(ValueError):
        load_sweep(np.array([10.0]), [])


def test_light_load_has_no_queueing():
    """At vanishing load, response ~= service."""
    service = np.full(2000, 1000.0)  # 1 ms
    result = simulate_fifo_queue(service, offered_qps=1.0, seed=1)  # rho=0.001
    assert result.mean_wait_us < 10.0
    assert result.mean_response_us == pytest.approx(1000.0, rel=0.02)
    assert not result.saturated
    assert result.utilization < 0.01


def test_overload_saturates():
    service = np.full(2000, 1000.0)  # capacity = 1000 qps
    result = simulate_fifo_queue(service, offered_qps=5000.0, seed=1)
    assert result.saturated
    assert result.utilization > 0.95
    assert result.mean_wait_us > 10 * 1000.0


def test_wait_grows_with_load():
    rng = np.random.default_rng(2)
    service = rng.exponential(1000.0, size=5000)
    waits = [
        simulate_fifo_queue(service, qps, seed=3).mean_wait_us
        for qps in (100.0, 400.0, 800.0)
    ]
    assert waits[0] < waits[1] < waits[2]


def test_mg1_wait_matches_pollaczek_khinchine():
    """M/M/1 at rho=0.5: W_q = rho/(1-rho) * E[S] = E[S]."""
    rng = np.random.default_rng(4)
    service = rng.exponential(1000.0, size=200_000)
    result = simulate_fifo_queue(service, offered_qps=500.0, seed=5)
    assert result.mean_wait_us == pytest.approx(1000.0, rel=0.15)


def test_percentiles_ordered():
    rng = np.random.default_rng(6)
    service = rng.exponential(500.0, size=3000)
    r = simulate_fifo_queue(service, 800.0, seed=7)
    assert r.p50_us <= r.p90_us <= r.p95_us <= r.p99_us <= r.p999_us
    assert r.mean_response_us >= r.mean_wait_us


def test_percentiles_match_numpy_within_bucket_tolerance():
    """The histogram-backed percentiles track np.percentile on the same
    response sample (the pre-histogram implementation) within the
    histogram's 2% relative bucket width."""
    from repro.sim.queueing import _HIST_GROWTH, _HIST_LO_US
    from repro.sim.rng import make_rng

    service = np.random.default_rng(21).exponential(800.0, size=10_000)
    r = simulate_fifo_queue(service, 600.0, seed=22)
    # Reconstruct the exact response sample the simulation saw.
    n = len(service)
    arrivals = np.cumsum(make_rng(22).exponential(1e6 / 600.0, size=n))
    start = np.empty(n)
    finish = np.empty(n)
    prev_finish = 0.0
    for i in range(n):
        start[i] = max(arrivals[i], prev_finish)
        finish[i] = start[i] + service[i]
        prev_finish = finish[i]
    response = finish - arrivals
    for got, q in ((r.p50_us, 50), (r.p90_us, 90), (r.p95_us, 95),
                   (r.p99_us, 99), (r.p999_us, 99.9)):
        exact = float(np.percentile(response, q))
        tol = max(_HIST_LO_US, exact * (_HIST_GROWTH - 1.0)) + 1e-6
        assert abs(got - exact) <= tol


def test_deterministic_given_seed():
    service = np.random.default_rng(8).exponential(1000.0, size=1000)
    a = simulate_fifo_queue(service, 300.0, seed=9)
    b = simulate_fifo_queue(service, 300.0, seed=9)
    assert a.mean_response_us == b.mean_response_us


def test_collect_service_times_and_sweep(small_index, small_log):
    cfg = CacheConfig.paper_split(mem_bytes=1 << 20, ssd_bytes=8 << 20)
    service = collect_service_times(small_index, small_log, cfg,
                                    warmup_queries=100)
    assert service.size == len(small_log) - 100
    assert (service > 0).all()
    capacity = 1e6 / service.mean()
    results = load_sweep(service, [capacity * 0.2, capacity * 0.8])
    assert results[0].mean_response_us < results[1].mean_response_us
    assert not results[0].saturated


def test_collect_warmup_overflow_rejected(small_index, small_log):
    cfg = CacheConfig.paper_split(mem_bytes=1 << 20)
    with pytest.raises(ValueError):
        collect_service_times(small_index, small_log, cfg,
                              warmup_queries=len(small_log) + 1)
