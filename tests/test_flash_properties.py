"""Property-based tests over the flash stack.

Whatever operation sequence a host issues, every FTL must preserve:
mapping semantics (a written lpn stays mapped until trimmed), NAND state
consistency, and bounded physical usage.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flash.constants import FlashConfig
from repro.flash.ftl_block import BlockMappingFTL
from repro.flash.ftl_dftl import DFTL
from repro.flash.ftl_fast import FastFTL
from repro.flash.ftl_page import PageMappingFTL

CFG = FlashConfig(num_blocks=16, pages_per_block=8, overprovision=0.25)

# (op, lpn) where op: 0=read, 1=write, 2=trim
ops_strategy = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, CFG.logical_pages - 1)),
    min_size=1,
    max_size=200,
)

FTLS = [
    lambda: PageMappingFTL(CFG),
    lambda: BlockMappingFTL(CFG),
    lambda: FastFTL(CFG),
    lambda: DFTL(CFG, cmt_entries=6),
]


def _run(ftl, ops):
    live = set()
    for op, lpn in ops:
        if op == 0:
            latency = ftl.read(lpn)
            assert latency >= 0
        elif op == 1:
            latency = ftl.write(lpn)
            assert latency >= CFG.write_us
            live.add(lpn)
        else:
            ftl.trim(lpn)
            live.discard(lpn)
    return live


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_page_mapping_invariants(ops):
    ftl = PageMappingFTL(CFG)
    live = _run(ftl, ops)
    assert ftl.mapped_lpn_count() == len(live)
    ftl.nand.check_invariants()
    for lpn in live:
        assert ftl.ppn_of(lpn) >= 0


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_block_mapping_invariants(ops):
    ftl = BlockMappingFTL(CFG)
    live = _run(ftl, ops)
    assert ftl.mapped_lpn_count() == len(live)
    ftl.nand.check_invariants()


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_fast_invariants(ops):
    ftl = FastFTL(CFG)
    live = _run(ftl, ops)
    assert ftl.mapped_lpn_count() == len(live)
    ftl.nand.check_invariants()


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_dftl_invariants(ops):
    ftl = DFTL(CFG, cmt_entries=6)
    live = _run(ftl, ops)
    assert ftl.mapped_lpn_count() == len(live)
    assert ftl.cmt_size <= ftl.cmt_entries
    ftl.nand.check_invariants()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_valid_pages_never_exceed_logical_capacity(ops):
    """Physical valid pages = mapped lpns (+ DFTL translation pages)."""
    ftl = PageMappingFTL(CFG)
    live = _run(ftl, ops)
    total_valid = int(ftl.nand.valid_counts.sum())
    assert total_valid == len(live)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    spans=st.lists(
        st.tuples(
            st.integers(0, CFG.logical_pages - 2),
            st.integers(1, 16),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_span_and_scalar_paths_agree(spans):
    """write_span/trim_span must leave the same mapping as scalar loops."""
    span_ftl = PageMappingFTL(CFG)
    loop_ftl = PageMappingFTL(CFG)
    for start, count in spans:
        count = min(count, CFG.logical_pages - start)
        span_ftl.write_span(start, count)
        for lpn in range(start, start + count):
            loop_ftl.write(lpn)
    assert span_ftl.mapped_lpn_count() == loop_ftl.mapped_lpn_count()
    for lpn in range(0, CFG.logical_pages, 3):
        assert (span_ftl.ppn_of(lpn) >= 0) == (loop_ftl.ppn_of(lpn) >= 0)
    span_ftl.nand.check_invariants()
