"""End-to-end telemetry: attach, run, reconcile, export, validate."""

import json

import pytest

from repro.core.config import CacheConfig, Policy
from repro.core.events import EventCounter
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.query import Query
from repro.obs import (
    Telemetry,
    format_stage_breakdown,
    format_stage_comparison,
    stage_summary,
    validate_telemetry_dir,
    write_telemetry_dir,
)

KB = 1024


def make_manager(small_index, telemetry=None, policy=Policy.CBLRU):
    cfg = CacheConfig(
        mem_result_bytes=100 * KB, mem_list_bytes=384 * KB,
        ssd_result_bytes=512 * KB, ssd_list_bytes=2048 * KB,
        policy=policy,
    )
    return CacheManager(cfg, build_hierarchy_for(cfg, small_index), small_index,
                        telemetry=telemetry)


def replay(mgr, n=200):
    outcomes = []
    for i in range(n):
        out = mgr.process_query(Query(i % 60, (1 + i % 25, 26 + i % 20)))
        outcomes.append((out.situation, out.result_hit_level, out.response_us))
    return outcomes


# -- the acceptance bound: stage sums reconcile with total response ----------

def test_stage_sums_reconcile_with_total_response(small_index):
    tel = Telemetry()
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr)
    summary = stage_summary(tel.registry)
    assert summary, "no stage telemetry recorded"
    staged_us = sum(d["sum_us"] for d in summary.values())
    total_us = mgr.stats.total_response_us
    assert total_us > 0
    assert staged_us == pytest.approx(total_us, rel=0.01)


def test_query_latency_histogram_matches_stats(small_index):
    tel = Telemetry()
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr)
    hists = [inst for name, tags, inst in tel.registry.items()
             if name == "query_latency_us"]
    assert sum(h.count for h in hists) == mgr.stats.queries
    assert sum(h.sum for h in hists) == pytest.approx(
        mgr.stats.total_response_us, rel=1e-9)


# -- telemetry is an observer: attaching it changes nothing ------------------

def test_telemetry_does_not_change_outcomes(small_index):
    bare = replay(make_manager(small_index))
    observed = replay(make_manager(small_index, telemetry=Telemetry()))
    assert bare == observed


def test_registry_only_mode_records_no_spans(small_index):
    tel = Telemetry(trace=False)
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr, n=50)
    assert tel.tracer.spans == ()
    assert stage_summary(tel.registry)  # metrics still flow


# -- spans cover the hot path ------------------------------------------------

def test_spans_nest_under_query_spans(small_index):
    tel = Telemetry()
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr, n=100)
    spans = tel.tracer.spans
    by_name = {}
    for s in spans:
        by_name.setdefault(s.name, []).append(s)
    assert len(by_name["query"]) == mgr.stats.queries
    assert "result.lookup" in by_name
    assert "list.fetch" in by_name
    assert any(name.startswith("index-hdd.") for name in by_name)
    # Every lookup/fetch span is parented by a query span.
    query_ids = {s.span_id for s in by_name["query"]}
    for s in by_name["result.lookup"] + by_name["list.fetch"]:
        assert s.parent_id in query_ids


def test_query_span_durations_match_response_times(small_index):
    tel = Telemetry()
    mgr = make_manager(small_index, telemetry=tel)
    outcomes = replay(mgr, n=100)
    durs = [s.dur_us for s in tel.tracer.spans if s.name == "query"]
    assert durs == pytest.approx([o[2] for o in outcomes])


# -- cache events become registry counters -----------------------------------

def test_cache_event_metrics_agree_with_event_counter(small_index):
    tel = Telemetry()
    mgr = make_manager(small_index, telemetry=tel)
    counter = EventCounter(mgr.events)
    replay(mgr)
    for kind in ("result", "list"):
        flushes = tel.registry.get("cache_flushes_total", kind=kind)
        assert (flushes.value if flushes else 0) == counter.get("flush", kind)
        admits = sum(
            inst.value for name, tags, inst in tel.registry.items()
            if name == "cache_admits_total" and tags["kind"] == kind
        )
        assert admits == counter.get("admit", kind)


# -- export and validation ---------------------------------------------------

def test_write_and_validate_telemetry_dir(tmp_path, small_index):
    tel = Telemetry()
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr)
    out = tmp_path / "t"
    written = write_telemetry_dir(tel, out)
    assert written["spans"] > 0
    assert written["metrics"] > 0
    assert written["dropped_spans"] == 0
    counts = validate_telemetry_dir(out)
    assert counts == {"spans": written["spans"], "metrics": written["metrics"],
                      "audit_records": written["audit_records"]}
    assert written["audit_records"] > 0


def test_validate_rejects_missing_and_malformed(tmp_path, small_index):
    with pytest.raises(ValueError, match="missing"):
        validate_telemetry_dir(tmp_path / "nowhere")
    tel = Telemetry()
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr, n=50)
    out = tmp_path / "t"
    write_telemetry_dir(tel, out)
    bad = {"span_id": 1, "parent_id": None, "name": "x",
           "start_us": 5.0, "end_us": 1.0, "dur_us": -4.0, "attrs": {}}
    (out / "spans.jsonl").write_text(json.dumps(bad) + "\n")
    with pytest.raises(ValueError, match="ends before"):
        validate_telemetry_dir(out)
    (out / "spans.jsonl").write_text('{"span_id": 1}\n')
    with pytest.raises(ValueError, match="missing fields"):
        validate_telemetry_dir(out)


# -- breakdown tables --------------------------------------------------------

def test_stage_breakdown_table_lists_stages(small_index):
    tel = Telemetry()
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr)
    table = format_stage_breakdown(tel.registry)
    for stage in ("l2", "hdd", "cpu"):
        assert stage in table
    # Rendering a snapshot gives the same table as the live registry.
    assert format_stage_breakdown(tel.registry.snapshot()) == table


def test_stage_comparison_table(small_index):
    tables = {}
    for policy in (Policy.LRU, Policy.CBLRU):
        tel = Telemetry(trace=False)
        replay(make_manager(small_index, telemetry=tel, policy=policy))
        tables[policy.value] = tel.registry
    text = format_stage_comparison(tables)
    assert "lru" in text and "cblru" in text
    assert "l2" in text
    with pytest.raises(ValueError):
        format_stage_comparison({})
