"""Data selection: Formula 1, Formula 2, and the TEV filter."""

import pytest

from repro.core.selection import (
    SelectionPolicy,
    efficiency_value,
    ssd_cache_blocks,
)

KB = 1024
SB = 128 * KB


def test_formula1_paper_example():
    """The paper's worked example: SI=1000KB, PU=50%, SB=128KB -> 4 blocks."""
    assert ssd_cache_blocks(1000 * KB, 0.5, SB) == 4


def test_formula1_rounds_up():
    assert ssd_cache_blocks(SB + 1, 1.0, SB) == 2
    assert ssd_cache_blocks(SB, 1.0, SB) == 1
    assert ssd_cache_blocks(1, 1.0, SB) == 1


def test_formula1_zero_size():
    assert ssd_cache_blocks(0, 0.5, SB) == 0


def test_formula1_validation():
    with pytest.raises(ValueError):
        ssd_cache_blocks(-1, 0.5, SB)
    with pytest.raises(ValueError):
        ssd_cache_blocks(100, 0.0, SB)
    with pytest.raises(ValueError):
        ssd_cache_blocks(100, 1.5, SB)
    with pytest.raises(ValueError):
        ssd_cache_blocks(100, 0.5, 0)


def test_formula2_ev():
    assert efficiency_value(100, 4) == pytest.approx(25.0)
    assert efficiency_value(0, 4) == 0.0


def test_formula2_validation():
    with pytest.raises(ValueError):
        efficiency_value(-1, 4)
    with pytest.raises(ValueError):
        efficiency_value(1, 0)


def test_cost_based_selection_quantises():
    policy = SelectionPolicy(block_bytes=SB, tev=0.0, cost_based=True)
    d = policy.select_list(si_bytes=1000 * KB, pu=0.5, freq=10)
    assert d.admit
    assert d.sc_blocks == 4
    assert d.ev == pytest.approx(2.5)


def test_tev_filters_low_value_lists():
    policy = SelectionPolicy(block_bytes=SB, tev=5.0, cost_based=True)
    cold = policy.select_list(si_bytes=1000 * KB, pu=0.5, freq=10)  # EV=2.5
    hot = policy.select_list(si_bytes=1000 * KB, pu=0.5, freq=100)  # EV=25
    assert not cold.admit
    assert hot.admit


def test_baseline_admits_everything_at_full_size():
    policy = SelectionPolicy(block_bytes=SB, tev=100.0, cost_based=False)
    d = policy.select_list(si_bytes=1000 * KB, pu=0.5, freq=1)
    assert d.admit  # TEV ignored by the baseline
    assert d.sc_blocks == 8  # full 1000 KB, no PU discount


def test_zero_size_never_admitted():
    policy = SelectionPolicy(block_bytes=SB)
    assert not policy.select_list(si_bytes=0, pu=0.5, freq=5).admit


def test_policy_validation():
    with pytest.raises(ValueError):
        SelectionPolicy(block_bytes=0)
    with pytest.raises(ValueError):
        SelectionPolicy(block_bytes=SB, tev=-1.0)
