"""Discrete-event kernel: scheduling, lanes, joins, admission, queueing laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.clock import VirtualClock
from repro.sim.kernel import AdmissionControl, Kernel, KernelError, Resource
from repro.sim.queueing import mm1_mean_wait_us, simulate_fifo_queue
from repro.sim.rng import make_rng


def fresh_kernel():
    return Kernel(VirtualClock())


# -- resources ---------------------------------------------------------------

def test_resource_validation():
    with pytest.raises(ValueError):
        Resource("x", lanes=0)
    with pytest.raises(ValueError):
        fresh_kernel().add_resource("x", lanes=0)


def test_add_resource_redeclares_lanes():
    k = fresh_kernel()
    res = k.add_resource("ssd", lanes=2)
    assert k.add_resource("ssd", lanes=4) is res
    assert res.lanes == 4
    # resource() auto-creates with one lane.
    assert k.resource("hdd").lanes == 1


def test_utilization_is_lane_normalised():
    res = Resource("ssd", lanes=2)
    res.busy_us = 50.0
    assert res.utilization(100.0) == pytest.approx(0.25)
    assert res.utilization(0.0) == 0.0
    # A degenerate (negative) horizon reports idle, not a nonsense ratio.
    assert res.utilization(-10.0) == 0.0


def test_depth_area_integrates_queue_occupancy():
    """FIFO burst of three 10us jobs: depth steps 3 -> 2 -> 1, so the
    depth-time integral is 30 + 20 + 10 = 60 exactly."""
    k = fresh_kernel()
    for name in ("a", "b", "c"):
        k.spawn(lambda: k.serve("dev", 10.0), name=name)
    k.run()
    res = k.resource("dev")
    res.accrue_depth(k.clock.now_us)
    assert res.depth_area_us == pytest.approx(60.0)
    # Accruing again without time passing adds nothing.
    res.accrue_depth(k.clock.now_us)
    assert res.depth_area_us == pytest.approx(60.0)


# -- scheduling and service --------------------------------------------------

def test_single_lane_is_fifo():
    k = fresh_kernel()
    ends = {}
    for name in ("a", "b", "c"):
        def body(n=name):
            k.serve("dev", 10.0)
            ends[n] = k.now_us
        k.spawn(body, name=name)
    k.run()
    assert ends == {"a": 10.0, "b": 20.0, "c": 30.0}
    res = k.resource("dev")
    assert res.served == 3
    assert res.peak_depth == 3
    assert res.depth == 0


def test_lanes_serve_in_parallel():
    k = fresh_kernel()
    k.add_resource("dev", lanes=2)
    ends = []
    for i in range(3):
        def body():
            k.serve("dev", 10.0)
            ends.append(k.now_us)
        k.spawn(body, name=f"t{i}")
    k.run()
    # Two proceed together; the third waits for a free lane.
    assert ends == [10.0, 10.0, 20.0]


def test_deterministic_replay():
    def script():
        k = fresh_kernel()
        trace = []
        for i, service in enumerate((7.0, 3.0, 5.0)):
            def body(i=i, s=service):
                k.serve("dev", s)
                trace.append((i, k.now_us))
            k.spawn(body, name=f"t{i}")
        k.run()
        return trace

    assert script() == script()


def test_serve_charges_clock_at_completion():
    clock = VirtualClock()
    k = Kernel(clock)
    k.spawn(lambda: clock.consume("ssd", 25.0), name="io")
    k.spawn(lambda: clock.consume("cpu", 5.0, charge=False), name="cpu")
    k.run()
    assert clock.busy_us("ssd") == pytest.approx(25.0)
    assert clock.busy_us("cpu") == 0.0  # charge=False: time passes unattributed


def test_sleep_advances_only_the_sleeper():
    k = fresh_kernel()
    wake = []
    k.spawn(lambda: (k.sleep(40.0), wake.append(k.now_us)), name="sleeper")
    k.run()
    assert wake == [40.0]


def test_past_event_rejected():
    k = fresh_kernel()
    k.clock.advance(10.0)
    with pytest.raises(KernelError):
        k.at(5.0, lambda: None)
    with pytest.raises(KernelError):
        k.after(-1.0, lambda: None)


def test_serve_outside_task_rejected():
    k = fresh_kernel()
    with pytest.raises(KernelError):
        k.serve("dev", 1.0)
    with pytest.raises(KernelError):
        k.sleep(1.0)


def test_consume_outside_task_falls_back_to_closed_loop():
    clock = VirtualClock()
    Kernel(clock)  # bound, but the call below is not inside a task
    clock.consume("ssd", 12.0)
    assert clock.now_us == 12.0
    assert clock.busy_us("ssd") == 12.0


def test_join_fans_in_at_slowest_subtask():
    k = fresh_kernel()
    done = []

    def parent():
        subs = [k.spawn(lambda s=s: k.serve(f"dev{s}", s), name=f"s{s}")
                for s in (30.0, 10.0)]
        for t in subs:
            t.join()
        done.append(k.now_us)

    k.spawn(parent, name="parent")
    k.run()
    assert done == [30.0]


def test_join_finished_task_returns_result():
    k = fresh_kernel()
    got = []

    def parent():
        t = k.spawn(lambda: 42, name="quick")
        k.sleep(5.0)  # let the subtask finish first
        got.append(t.join())

    k.spawn(parent, name="parent")
    k.run()
    assert got == [42]


def test_mutual_join_deadlock_raises():
    k = fresh_kernel()
    tasks = {}

    def a():
        tasks["b"].join()

    def b():
        tasks["a"].join()

    tasks["a"] = k.spawn(a, name="a")
    tasks["b"] = k.spawn(b, name="b")
    with pytest.raises(KernelError, match="deadlock"):
        k.run()


def test_task_error_propagates_and_unwinds():
    k = fresh_kernel()

    def boom():
        k.serve("dev", 1.0)
        raise ValueError("broken task")

    k.spawn(boom, name="boom")
    k.spawn(lambda: k.serve("dev", 100.0), name="bystander")
    with pytest.raises(ValueError, match="broken task"):
        k.run()
    # The bystander thread was unwound; a fresh run is possible.
    assert not k._alive


# -- admission control -------------------------------------------------------

def test_admission_sheds_beyond_queue():
    k = fresh_kernel()
    admission = AdmissionControl(k, max_inflight=1, max_queue=1)
    outcomes = [admission.submit(lambda: k.serve("dev", 10.0), name=f"j{i}")
                for i in range(3)]
    assert outcomes == [True, True, False]
    admission.check_invariants()
    k.run()
    admission.check_invariants()
    s = admission.stats
    assert (s.arrived, s.admitted, s.completed, s.rejected) == (3, 2, 2, 1)
    assert admission.inflight == 0
    assert admission.queue_depth == 0
    assert admission.peak_depth == 2


def test_admission_validation():
    k = fresh_kernel()
    with pytest.raises(ValueError):
        AdmissionControl(k, max_inflight=0)
    with pytest.raises(ValueError):
        AdmissionControl(k, max_inflight=1, max_queue=-1)


@settings(max_examples=25, deadline=None)
@given(
    jobs=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=30.0),
                  st.floats(min_value=0.1, max_value=40.0)),
        min_size=1, max_size=25,
    ),
    max_inflight=st.integers(min_value=1, max_value=4),
    max_queue=st.integers(min_value=0, max_value=4),
)
def test_admission_conserves_every_arrival(jobs, max_inflight, max_queue):
    """Property: after a drained run, completed + rejected == arrived."""
    k = fresh_kernel()
    admission = AdmissionControl(k, max_inflight=max_inflight,
                                 max_queue=max_queue)
    t = 0.0
    for i, (gap, service) in enumerate(jobs):
        t += gap

        def job(s=service):
            k.serve("dev", s)

        k.at(t, lambda fn=job, i=i: admission.submit(fn, name=f"j{i}"))
    k.run()
    admission.check_invariants()
    s = admission.stats
    assert s.arrived == len(jobs)
    assert s.completed + s.rejected == s.arrived
    assert admission.inflight == 0 and admission.queue_depth == 0


# -- queueing-theory validation ----------------------------------------------

def test_kernel_reproduces_fifo_reference_exactly():
    """Same arrival and service draws -> the kernel's single-lane timeline
    is the post-hoc FIFO model's timeline, not just statistically close."""
    n, rate_qps, seed = 300, 3000.0, 9
    service = make_rng(11).exponential(250.0, size=n)
    ref = simulate_fifo_queue(service, rate_qps, seed=seed)
    # Replicate the reference's internal arrival draws.
    arrivals = np.cumsum(make_rng(seed).exponential(1e6 / rate_qps, size=n))

    clock = VirtualClock()
    k = Kernel(clock)
    responses = []
    waits = []
    for i in range(n):
        def body(a=float(arrivals[i]), s=float(service[i])):
            k.serve("dev", s)
            responses.append(clock.now_us - a)
            waits.append(clock.now_us - a - s)  # queueing happens inside serve

        k.at(float(arrivals[i]),
             lambda fn=body, i=i: k.spawn(fn, name=f"q{i}"))
    k.run()

    assert len(responses) == ref.completed
    assert np.mean(responses) == pytest.approx(ref.mean_response_us, rel=1e-9)
    assert np.mean(waits) == pytest.approx(ref.mean_wait_us, rel=1e-9)


def test_kernel_mean_wait_matches_mm1():
    """M/M/1 at rho=0.7: the emergent mean wait lands on Wq = rho/(mu-lam)."""
    n, mean_service, rho = 6000, 100.0, 0.7
    rate_qps = rho * 1e6 / mean_service
    rng = make_rng(42)
    arrivals = np.cumsum(rng.exponential(mean_service / rho, size=n))
    services = rng.exponential(mean_service, size=n)

    clock = VirtualClock()
    k = Kernel(clock)
    waits = []
    for i in range(n):
        def body(a=float(arrivals[i]), s=float(services[i])):
            k.serve("dev", s)
            waits.append(clock.now_us - a - s)

        k.at(float(arrivals[i]), lambda fn=body, i=i: k.spawn(fn, name=f"q{i}"))
    k.run()

    expected = mm1_mean_wait_us(rate_qps, mean_service)
    assert np.mean(waits) == pytest.approx(expected, rel=0.15)


def test_mm1_mean_wait_validation():
    with pytest.raises(ValueError):
        mm1_mean_wait_us(0.0, 100.0)
    with pytest.raises(ValueError, match="unstable"):
        mm1_mean_wait_us(10_000.0, 100.0)  # rho = 1
    # Sanity: rho=0.5 with mu=1/100us -> Wq = 100us.
    assert mm1_mean_wait_us(5_000.0, 100.0) == pytest.approx(100.0)
