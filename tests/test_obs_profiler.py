"""Host profiler: subsystem mapping, schema, folded stacks, hot-counter
reconciliation, and the observe-never-perturb contract."""

import json

import pytest

from repro.core.config import CacheConfig, Policy
from repro.obs import (
    HOT,
    PROFILE_SCHEMA,
    HotCounters,
    Profiler,
    Telemetry,
    baseline_wall_ns_per_op,
    format_profile,
    format_wall_ns_delta,
    func_label,
    load_folded,
    load_profile,
    measure_obs_tax,
    subsystem_of,
    validate_profile,
    write_folded,
    write_profile,
)
from repro.workloads.retrieval import run_cached
from repro.workloads.sweep import make_log_for, make_scaled_index

MB = 1024 * 1024


def small_run(telemetry=None, seed=7):
    index = make_scaled_index(20_000)
    log = make_log_for(120, seed=3)
    cfg = CacheConfig.paper_split(2 * MB, 8 * MB, policy=Policy.CBLRU)
    return run_cached(index, log, cfg, seed=seed, telemetry=telemetry)


def sim_fingerprint(result):
    stats = result.stats
    return (result.queries, result.mean_response_ms, result.throughput_qps,
            stats.result_hit_ratio, stats.list_hit_ratio,
            stats.combined_hit_ratio, result.ssd_erases,
            result.ssd_mean_access_us)


@pytest.fixture()
def profiled():
    profiler = Profiler()
    with profiler.profile():
        result = small_run()
    return profiler, result


# -- frame -> subsystem mapping ----------------------------------------------

@pytest.mark.parametrize("filename,subsystem", [
    ("/root/repo/src/repro/core/manager.py", "repro.core"),
    ("/root/repo/src/repro/flash/ftl_page.py", "repro.flash"),
    ("/root/repo/src/repro/engine/codec.py", "repro.engine"),
    ("/root/repo/src/repro/sim/kernel.py", "repro.sim"),
    ("/root/repo/src/repro/obs/telemetry.py", "repro.obs"),
    ("/root/repo/src/repro/storage/hierarchy.py", "repro.storage"),
    ("/root/repo/src/repro/hdd/disk.py", "repro.hdd"),
    ("/root/repo/src/repro/cli.py", "repro.cli"),
    ("src\\repro\\core\\lru.py", "repro.core"),
    ("~", "stdlib"),
    ("<frozen importlib._bootstrap>", "stdlib"),
    ("/usr/lib/python3.11/heapq.py", "stdlib"),
    ("/usr/lib64/python3.11/json/decoder.py", "stdlib"),
    ("/usr/lib/python3/dist-packages/numpy/core/fromnumeric.py", "other"),
    ("/venv/lib/python3.11/site-packages/numpy/random/_generator.py",
     "other"),
    ("/home/user/somewhere/script.py", "other"),
])
def test_subsystem_of(filename, subsystem):
    assert subsystem_of(filename) == subsystem


def test_func_label_compact_forms():
    assert func_label(("~", 0, "<built-in method heapq.heappop>")) \
        == "<built-in method heapq.heappop>"
    assert func_label(("/x/src/repro/core/lru.py", 40, "touch")) \
        == "repro.core.lru:touch"
    assert func_label(("/x/src/repro/obs/__init__.py", 1, "f")) \
        == "repro.obs:f"
    assert func_label(("/usr/lib/python3.11/heapq.py", 1, "heappop")) \
        == "heapq:heappop"


# -- summary schema ----------------------------------------------------------

def test_summary_schema_and_shares(profiled):
    profiler, _ = profiled
    doc = profiler.summary(top=10)
    validate_profile(doc)  # raises on malformed output
    assert doc["schema"] == PROFILE_SCHEMA
    assert doc["wall_s"] > 0
    assert 0 < doc["cpu_s"]
    assert sum(e["share"] for e in doc["subsystems"].values()) \
        == pytest.approx(1.0)
    # The run went through the cache manager, so the core subsystem must
    # have been on-stack.
    assert "repro.core" in doc["subsystems"]
    assert len(doc["top"]) <= 10
    assert doc["top"] == sorted(doc["top"], key=lambda r: r["self_s"],
                                reverse=True)
    for op, n in doc["counters"].items():
        assert op in HotCounters.OPS
        assert n >= 0
    for op, ns in doc["wall_ns_per_op"].items():
        assert doc["counters"][op] > 0
        assert ns == pytest.approx(
            doc["wall_s"] * 1e9 / doc["counters"][op])


def test_profile_json_roundtrip(tmp_path, profiled):
    profiler, _ = profiled
    doc = profiler.summary(top=5)
    doc["suite"] = "test"
    path = tmp_path / "profile.json"
    write_profile(doc, path)
    assert load_profile(path) == json.loads(path.read_text())
    assert load_profile(path)["suite"] == "test"


def test_validate_profile_rejects_malformed(profiled):
    profiler, _ = profiled
    good = profiler.summary()
    with pytest.raises(ValueError, match="not a"):
        validate_profile({"schema": "other/v1"})
    for field in ("wall_s", "subsystems", "top", "counters"):
        bad = dict(good)
        del bad[field]
        with pytest.raises(ValueError, match=field):
            validate_profile(bad)
    bad = json.loads(json.dumps(good))
    next(iter(bad["subsystems"].values()))["share"] += 0.5
    with pytest.raises(ValueError, match="sum"):
        validate_profile(bad)
    bad = json.loads(json.dumps(good))
    bad["counters"]["ftl_map_lookups"] = -1
    with pytest.raises(ValueError, match="non-negative"):
        validate_profile(bad)


def test_format_profile_renders(profiled):
    profiler, _ = profiled
    doc = profiler.summary(top=5)
    doc["obs_tax"] = {"wall_s_obs_on": 0.2, "wall_s_obs_off": 0.18,
                      "fraction": 0.1, "simulated_match": True}
    text = format_profile(doc)
    assert "wall-clock by subsystem" in text
    assert "repro.core" in text
    assert "obs tax" in text
    assert "identical" in text


def test_profiler_requires_a_section():
    profiler = Profiler()
    with pytest.raises(RuntimeError, match="nothing profiled"):
        profiler.summary()


def test_profiler_sections_accumulate_and_cannot_nest():
    profiler = Profiler()
    with profiler.profile():
        sum(range(1000))
    with profiler.profile():
        sum(range(1000))
    assert profiler.sections == 2
    with pytest.raises(RuntimeError, match="nest"):
        with profiler.profile():
            with profiler.profile():
                pass  # pragma: no cover


# -- folded stacks -----------------------------------------------------------

def test_folded_output_well_formed(tmp_path, profiled):
    profiler, _ = profiled
    lines = profiler.folded_lines()
    assert lines, "profiled run produced no stacks"
    path = tmp_path / "profile.folded"
    write_folded(lines, path)
    stacks = load_folded(path)  # raises on malformed lines
    assert len(stacks) == len(lines)
    for stack, count in stacks:
        assert count >= 1
        frames = stack.split(";")
        assert all(frames)
        assert all(" " not in f for f in frames)
    # Stacks must reach into the simulation, not just the harness.
    assert any("repro.core" in s for s, _ in stacks)


def test_load_folded_rejects_malformed(tmp_path):
    path = tmp_path / "bad.folded"
    for content, msg in [
        ("", "no stacks"),
        ("frame-without-count\n", "malformed"),
        ("a;b notanumber\n", "malformed"),
        ("a;b 0\n", "malformed"),
        ("a;;b 5\n", "empty frame"),
    ]:
        path.write_text(content)
        with pytest.raises(ValueError):
            load_folded(path)


# -- hot-counter reconciliation ----------------------------------------------

def test_lru_moves_count_exactly():
    from repro.core.lru import LruList

    before = HOT.snapshot()
    lru = LruList(replace_window=2)
    lru.insert("a", 1)   # 1 move
    lru.insert("b", 2)   # 1
    lru.touch("a")       # 1
    lru.pop("b")         # 1
    lru.insert("c", 3)   # 1
    lru.pop_lru()        # 1
    assert HOT.delta(before)["lru_node_moves"] == 6


def test_kernel_heap_pops_match_handled():
    from repro.sim.clock import VirtualClock
    from repro.sim.kernel import Kernel

    clock = VirtualClock()
    kernel = Kernel(clock)
    for i in range(5):
        kernel.at(float(i), lambda: None)
    before = HOT.snapshot()
    handled = kernel.run()
    assert HOT.delta(before)["kernel_heap_pops"] == handled == 5


def test_histogram_records_match_counts():
    from repro.obs.instruments import Histogram

    before = HOT.snapshot()
    h1, h2 = Histogram(), Histogram()
    for v in (1.0, 2.0, 3.0):
        h1.record(v)
    h2.record(10.0)
    assert HOT.delta(before)["histogram_records"] == h1.count + h2.count == 4


def test_postings_decoded_matches_codec():
    import numpy as np

    from repro.engine.codec import decode_posting_list, encode_posting_list
    from repro.engine.postings import PostingList

    plist = PostingList(3, np.array([1, 5, 9], dtype=np.int64),
                        np.array([2, 2, 1], dtype=np.int32))
    blob = encode_posting_list(plist)
    before = HOT.snapshot()
    decoded = decode_posting_list(blob)
    assert HOT.delta(before)["postings_decoded"] == len(decoded) == 3


def test_ftl_lookups_cover_host_ops():
    """Every host read/write/trim the SSD serves does >= 1 map lookup."""
    from repro.flash.constants import FlashConfig
    from repro.flash.ftl_page import PageMappingFTL

    ftl = PageMappingFTL(
        FlashConfig(num_blocks=16, pages_per_block=8, overprovision=0.25))
    before = HOT.snapshot()
    ftl.write(0)
    ftl.write(1)
    ftl.read(0)
    ftl.trim(1)
    ftl.write_span(4, 3)
    ftl.read_span(4, 3)
    delta = HOT.delta(before)["ftl_map_lookups"]
    stats = ftl.stats
    host_ops = stats.host_page_reads + stats.host_page_writes + 1  # + trim
    assert delta == host_ops == 10


def test_run_counters_reconcile_with_ftl_stats():
    """In a full cached run, map lookups cover the FTL's host ops."""
    index = make_scaled_index(20_000)
    log = make_log_for(120, seed=3)
    cfg = CacheConfig.paper_split(2 * MB, 8 * MB, policy=Policy.CBLRU)
    from repro.workloads.retrieval import prepare_cached_manager

    mgr = prepare_cached_manager(index, log, cfg, seed=7)
    before = HOT.snapshot()
    run_cached(index, log, cfg, seed=7, manager=mgr)
    lookups = HOT.delta(before)["ftl_map_lookups"]
    stats = mgr.ssd.ftl.stats
    assert lookups >= stats.host_page_reads + stats.host_page_writes > 0


# -- observe, never perturb --------------------------------------------------

def test_profiling_does_not_change_simulated_metrics():
    baseline = sim_fingerprint(small_run())
    profiler = Profiler()
    with profiler.profile():
        profiled = sim_fingerprint(small_run())
    assert profiled == baseline


def test_telemetry_off_runs_stay_byte_identical():
    tel = Telemetry(trace=False, audit=False)
    with_obs = sim_fingerprint(small_run(telemetry=tel))
    without_obs = sim_fingerprint(small_run(telemetry=None))
    assert with_obs == without_obs


def test_measure_obs_tax_reports_fraction_and_match():
    tax = measure_obs_tax(
        lambda: sim_fingerprint(
            small_run(telemetry=Telemetry(trace=False, audit=False))),
        lambda: sim_fingerprint(small_run(telemetry=None)),
    )
    assert tax["simulated_match"] is True
    assert 0.0 <= tax["fraction"] <= 1.0
    assert tax["wall_s_obs_on"] > 0 and tax["wall_s_obs_off"] > 0


def test_measure_obs_tax_flags_divergence():
    tax = measure_obs_tax(lambda: {"m": 1}, lambda: {"m": 2})
    assert tax["simulated_match"] is False


# -- before/after comparison against a BENCH document ------------------------

def _bench_doc():
    return {
        "scenarios": {
            "a": {
                "config": {"arrival": "closed", "queries": 1000},
                "host": {
                    "wall_us_per_query": 100.0,   # 0.1 s total serve wall
                    "counters": {"ftl_map_lookups": 50_000,
                                 "idle_op": 0},
                },
            },
            "b": {
                "config": {"arrival": "closed", "queries": 500},
                "host": {
                    "wall_us_per_query": 200.0,   # 0.1 s total serve wall
                    "counters": {"ftl_map_lookups": 50_000,
                                 "lru_node_moves": 2_000},
                },
            },
            "open": {  # open-loop scenarios are excluded from the pool
                "config": {"arrival": "open", "queries": 10_000},
                "host": {
                    "wall_us_per_query": 999.0,
                    "counters": {"ftl_map_lookups": 1},
                },
            },
        },
    }


def test_baseline_wall_ns_per_op_pools_closed_loop_scenarios():
    base = baseline_wall_ns_per_op(_bench_doc())
    # 0.2 s pooled wall over 100k lookups = 2000 ns/op.
    assert base["ftl_map_lookups"] == pytest.approx(2000.0)
    # 0.2 s over 2k moves = 100_000 ns/op.
    assert base["lru_node_moves"] == pytest.approx(100_000.0)
    # Zero-count ops never divide.
    assert "idle_op" not in base


def test_format_wall_ns_delta_reports_improvements():
    doc = {"wall_ns_per_op": {"ftl_map_lookups": 1000.0,
                              "new_op": 5.0}}
    table = format_wall_ns_delta(doc, _bench_doc(), label="BENCH_X")
    assert "ftl_map_lookups" in table
    assert "-50.0%" in table          # 2000 -> 1000 ns/op
    assert "new_op" in table          # present now, absent in baseline
    assert "cProfile overhead" in table
