"""The flight recorder: incident lifecycle, bundles, never-perturb."""

import filecmp
import json
import os

import pytest

from repro.cli import main
from repro.obs import (
    FlightRecorder,
    Telemetry,
    list_incidents,
    load_incident,
    validate_incident_dir,
    validate_telemetry_dir,
)


def _window(i, **derived):
    return {"type": "window", "window": i, "start_us": i * 100.0,
            "end_us": (i + 1) * 100.0, "counters": {}, "gauges": {},
            "histograms": {}, "derived": derived}


def _armed(tmp_path, **kwargs):
    tel = Telemetry(trace=False, audit=False)
    tel.attach_timeline(window_us=100.0)
    return FlightRecorder(tel, out_dir=str(tmp_path),
                          config={"policy": "lru"}, **kwargs).arm()


def test_arm_requires_timeline():
    tel = Telemetry(trace=False, audit=False)
    with pytest.raises(RuntimeError, match="timeline"):
        FlightRecorder(tel).arm()


def test_sustained_overload_is_one_incident(tmp_path):
    flight = _armed(tmp_path)
    # queue_depth rising every window: queue_buildup goes critical at
    # the 6th consecutive rise and re-fires every window after — the
    # re-trigger must keep extending one open incident, not open more.
    for i in range(20):
        flight._on_window(_window(i, queue_depth=float(i)))
    assert flight.incidents == []  # still open: trigger keeps re-firing
    assert flight.finish() == 1
    assert flight.finish() == 1  # idempotent
    [bundle] = list_incidents(tmp_path)
    counts = validate_incident_dir(bundle)
    manifest = load_incident(bundle)["manifest"]
    assert manifest["trigger"]["detector"] == "queue_buildup"
    assert manifest["trigger"]["severity"] == "critical"
    assert manifest["trigger_window"] in manifest["windows"]
    # pre_windows=4 context before the trigger, then every later window.
    assert manifest["windows"][0] == manifest["trigger_window"] - 4
    assert counts["windows"] == len(manifest["windows"])
    assert manifest["config"]["policy"] == "lru"
    assert len(manifest["config"]["fingerprint"]) == 16


def test_incident_closes_after_quiet_windows(tmp_path):
    flight = _armed(tmp_path, post_windows=2)
    for i in range(8):
        flight._on_window(_window(i, queue_depth=float(i)))
    # Depth flat: the buildup run resets, countdown drains, dump happens
    # while the run is still going.
    for i in range(8, 12):
        flight._on_window(_window(i, queue_depth=0.0))
    assert len(flight.incidents) == 1
    assert flight._open is None
    # A later, separate overload opens a second incident.
    for i in range(12, 32):
        flight._on_window(_window(i, queue_depth=float(i)))
    assert flight.finish() == 2
    assert [os.path.basename(b) for b in list_incidents(tmp_path)] == \
        ["incident-1", "incident-2"]


def test_counting_mode_writes_nothing(tmp_path):
    tel = Telemetry(trace=False, audit=False)
    tel.attach_timeline(window_us=100.0)
    flight = FlightRecorder(tel, out_dir=None).arm()
    for i in range(20):
        flight._on_window(_window(i, queue_depth=float(i)))
    assert flight.finish() == 1
    assert flight.incidents[0]["trigger"]["detector"] == "queue_buildup"
    assert list(tmp_path.iterdir()) == []


def test_warn_severity_triggers_earlier(tmp_path):
    flight = _armed(tmp_path, trigger_severity="warn", post_windows=1)
    for i in range(5):
        flight._on_window(_window(i, queue_depth=float(i)))
    # queue_buildup warns at the 3rd consecutive rise.
    assert flight._open is not None or flight.incidents


def test_max_incidents_caps_bundles(tmp_path):
    flight = _armed(tmp_path, max_incidents=1, post_windows=1)
    for burst in range(3):
        base = burst * 12
        for i in range(base, base + 8):
            flight._on_window(_window(i, queue_depth=float(i - base)))
        for i in range(base + 8, base + 12):
            flight._on_window(_window(i, queue_depth=0.0))
    assert flight.finish() == 1
    assert flight.truncated_incidents >= 1


_KNEE_ARGS = ["run", "--policy", "cbslru", "--docs", "20000",
              "--queries", "600", "--mem-mb", "2", "--ssd-mb", "8",
              "--arrival", "poisson", "--rate-qps", "3000",
              "--concurrency", "2", "--max-queue", "64",
              "--timeline", "--window-ms", "10"]


def test_past_knee_run_emits_valid_bundle(tmp_path, capsys):
    out = tmp_path / "tel"
    assert main(_KNEE_ARGS + ["--telemetry", str(out)]) == 0
    capsys.readouterr()
    bundles = list_incidents(out)
    assert bundles, "past-knee run must trigger at least one incident"
    counts = validate_telemetry_dir(out)
    assert counts["incidents"] == len(bundles)
    incident = load_incident(bundles[0])
    man = incident["manifest"]
    # The bundle is self-contained evidence for the triggering window:
    # captured windows bracket it, and the affected qids resolve to
    # blame critical paths and/or span trees inside the bundle.
    assert man["trigger_window"] in man["windows"]
    assert man["qids"], "a saturated capture should name affected qids"
    blame_qids = {q["qid"] for q in incident["blame"]["queries"]}
    span_qids = {s["attrs"].get("qid") for s in incident["spans"]}
    for qid in man["qids"]:
        assert qid in blame_qids or qid in span_qids
    assert man["resources"], "critical paths should name resources"
    assert man["capacity"]["bottleneck"] in man["resources"]


def test_recorder_never_perturbs_the_run(tmp_path, capsys):
    """Armed vs --no-flight: every simulated artifact byte-identical."""
    with_flight = tmp_path / "armed"
    without = tmp_path / "bare"
    assert main(_KNEE_ARGS + ["--telemetry", str(with_flight)]) == 0
    assert main(_KNEE_ARGS + ["--telemetry", str(without),
                              "--no-flight"]) == 0
    capsys.readouterr()
    assert list_incidents(with_flight) and not list_incidents(without)
    for name in ("timeline.jsonl", "blame.jsonl", "spans.jsonl",
                 "metrics.json"):
        assert filecmp.cmp(with_flight / name, without / name,
                           shallow=False), f"{name} diverged"


def test_validate_rejects_tampered_bundle(tmp_path):
    flight = _armed(tmp_path)
    for i in range(20):
        flight._on_window(_window(i, queue_depth=float(i)))
    flight.finish()
    [bundle] = list_incidents(tmp_path)
    manifest_path = os.path.join(bundle, "incident.json")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    manifest["windows"] = manifest["windows"][:-1]
    with open(manifest_path, "w") as fh:
        json.dump(manifest, fh)
    with pytest.raises(ValueError, match="windows"):
        validate_incident_dir(bundle)
