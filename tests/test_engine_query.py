"""Query objects and the query-log generator."""

import numpy as np
import pytest

from repro.analysis.zipf import fit_zipf_exponent
from repro.engine.query import Query
from repro.engine.querylog import QueryLogConfig, generate_query_log


def test_query_key_is_sorted_unique():
    q = Query(query_id=0, terms=(5, 3, 5, 1))
    assert q.key == (1, 3, 5)
    assert len(q) == 4


def test_query_requires_terms():
    with pytest.raises(ValueError):
        Query(query_id=0, terms=())


def test_query_equality_by_terms():
    a = Query(0, (1, 2), text="one two")
    b = Query(0, (1, 2), text="different text")
    assert a == b  # text excluded from comparison


def test_log_config_validation():
    with pytest.raises(ValueError):
        QueryLogConfig(num_queries=0)
    with pytest.raises(ValueError):
        QueryLogConfig(min_terms=3, max_terms=2)
    with pytest.raises(ValueError):
        QueryLogConfig(vocab_size=2, max_terms=5)


def test_log_length_and_iteration(small_log):
    assert len(small_log) == 600
    queries = list(small_log)
    assert len(queries) == 600
    assert all(isinstance(q, Query) for q in queries)


def test_log_head(small_log):
    head = small_log.head(10)
    assert len(head) == 10
    assert head[0] == small_log[0]


def test_log_term_lengths_within_bounds(small_log):
    cfg = small_log.config
    for q in small_log.pool:
        assert cfg.min_terms <= len(q.terms) <= cfg.max_terms
        assert len(set(q.terms)) == len(q.terms)  # no duplicate terms


def test_log_terms_within_vocab(small_log):
    vocab = small_log.config.vocab_size
    for q in small_log.pool:
        assert all(0 <= t < vocab for t in q.terms)


def test_log_determinism():
    cfg = QueryLogConfig(num_queries=200, distinct_queries=50, vocab_size=100, seed=4)
    a = generate_query_log(cfg)
    b = generate_query_log(cfg)
    assert np.array_equal(a.stream_ids, b.stream_ids)
    assert a.pool[0].terms == b.pool[0].terms


def test_log_repetition_exists(small_log):
    """Result caching only works if queries repeat."""
    assert small_log.distinct_fraction() < 0.5


def test_log_query_popularity_is_zipf_like():
    log = generate_query_log(
        QueryLogConfig(num_queries=20_000, distinct_queries=2_000,
                       vocab_size=1_000, seed=1)
    )
    _, counts = np.unique(log.stream_ids, return_counts=True)
    s = fit_zipf_exponent(counts, head_fraction=0.3)
    assert 0.5 < s < 1.5  # the paper cites a Zipf-like law


def test_log_term_frequencies_consistent(small_log):
    freqs = small_log.term_frequencies()
    total_terms = sum(len(q.terms) for q in small_log)
    assert sum(freqs.values()) == total_terms


def test_same_key_queries_share_id():
    log = generate_query_log(
        QueryLogConfig(num_queries=100, distinct_queries=2000,
                       vocab_size=30, seed=2, min_terms=1, max_terms=2)
    )
    by_key: dict = {}
    for q in log.pool:
        if q.key in by_key:
            assert q.query_id == by_key[q.key]
        else:
            by_key[q.key] = q.query_id
