"""DAAT query processing."""

import numpy as np
import pytest

from repro.core.config import CacheConfig
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.daat import DaatQueryProcessor
from repro.engine.postings import POSTING_BYTES
from repro.engine.processor import QueryProcessor
from repro.engine.query import Query


@pytest.fixture
def daat(small_index):
    return DaatQueryProcessor(small_index, seed=2)


def _rare_and_common(index):
    df = index.stats.doc_freqs
    rare = int(np.argmin(df))
    common = int(np.argmax(df))
    return rare, common


def test_driving_list_fully_traversed(daat, small_index):
    rare, common = _rare_and_common(small_index)
    plan = daat.plan(Query(0, (rare, common)))
    by_term = {d.term_id: d for d in plan.demands}
    assert by_term[rare].pu == pytest.approx(1.0)
    assert by_term[rare].postings == small_index.stats.doc_freqs[rare]


def test_common_list_barely_touched(daat, small_index):
    rare, common = _rare_and_common(small_index)
    df_rare = int(small_index.stats.doc_freqs[rare])
    df_common = int(small_index.stats.doc_freqs[common])
    if df_common < 40 * df_rare:
        pytest.skip("corpus too uniform for a meaningful skip ratio")
    plan = daat.plan(Query(0, (rare, common)))
    by_term = {d.term_id: d for d in plan.demands}
    assert by_term[common].pu < 1.0
    assert by_term[common].postings < df_common


def test_single_term_query_is_full_scan(daat, small_index):
    term = 5
    plan = daat.plan(Query(0, (term,)))
    assert plan.demands[0].postings == small_index.stats.doc_freqs[term]


def test_demands_consistent(daat, small_log):
    for q in small_log.head(40):
        for d in daat.plan(q).demands:
            assert 0 < d.needed_bytes <= d.list_bytes
            assert d.postings == d.needed_bytes // POSTING_BYTES
            assert 0 < d.pu <= 1.0


def test_top_k_validation(small_index):
    with pytest.raises(ValueError):
        DaatQueryProcessor(small_index, top_k=0)


def test_materialized_scoring_is_exact_conjunction_biased(daat, small_index):
    rare, common = _rare_and_common(small_index)
    plan = daat.plan(Query(0, (rare, common)))
    entry = daat.execute(plan, materialize=True)
    assert len(entry) > 0
    scores = [r.score for r in entry.results]
    assert scores == sorted(scores, reverse=True)
    # Every result contains the driving (rare) term.
    rare_docs = set(small_index.postings(rare).doc_ids.tolist())
    assert all(r.doc_id in rare_docs for r in entry.results)


def test_daat_scores_match_taat_on_driving_term_docs(small_index):
    """For docs containing the rare term, DAAT's score equals the exact
    two-term tf-idf score (it probes the common list exactly)."""
    daat = DaatQueryProcessor(small_index, top_k=5, seed=1)
    rare, common = _rare_and_common(small_index)
    plan = daat.plan(Query(0, (rare, common)))
    entry = daat.execute(plan, materialize=True)
    top = entry.results[0]
    # Recompute by hand.
    expected = 0.0
    for term in (rare, common):
        plist = small_index.postings(term)
        mask = plist.doc_ids == top.doc_id
        if mask.any():
            expected += float(np.sqrt(plist.tfs[mask][0])) * small_index.idf(term)
    assert top.score == pytest.approx(expected)


def test_surrogate_mode_deterministic(daat, small_log):
    plan = daat.plan(small_log[0])
    a = daat.execute(plan)
    b = daat.execute(plan)
    assert [r.doc_id for r in a.results] == [r.doc_id for r in b.results]


def test_daat_works_with_cache_manager(small_index, small_log):
    """The cache manager accepts the DAAT processor unchanged."""
    cfg = CacheConfig.paper_split(mem_bytes=1 << 20, ssd_bytes=8 << 20,
                                  policy="cblru")
    h = build_hierarchy_for(cfg, small_index)
    mgr = CacheManager(cfg, h, small_index,
                       processor=DaatQueryProcessor(small_index, top_k=cfg.top_k))
    for q in small_log.head(100):
        mgr.process_query(q)
    assert mgr.stats.queries == 100
    assert mgr.stats.combined_hit_ratio > 0


def test_daat_and_taat_agree_on_exhaustive_single_term(small_index):
    """With one term both engines traverse the whole list, so the exact
    rankings coincide."""
    term = int(np.argmin(small_index.stats.doc_freqs))
    q = Query(0, (term,))
    taat = QueryProcessor(small_index, top_k=10, seed=1)
    daat = DaatQueryProcessor(small_index, top_k=10, seed=1)
    # Force TAAT to traverse fully by using the plan's full-list demand.
    t_entry = taat.execute(
        type(taat.plan(q))(query=q, demands=(
            taat.plan(q).demands[0].__class__(
                term_id=term,
                list_bytes=small_index.lexicon.list_bytes(term),
                needed_bytes=small_index.lexicon.list_bytes(term),
                pu=1.0,
                postings=int(small_index.stats.doc_freqs[term]),
            ),
        )),
        materialize=True,
    )
    d_entry = daat.execute(daat.plan(q), materialize=True)
    assert {r.doc_id for r in t_entry.results} == {r.doc_id for r in d_entry.results}
