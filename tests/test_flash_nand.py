"""NAND array state machine."""

import numpy as np
import pytest

from repro.flash.constants import FlashConfig
from repro.flash.nand import NandArray, PageState


@pytest.fixture
def nand():
    return NandArray(FlashConfig(num_blocks=8, overprovision=0.0))


def test_all_pages_start_free(nand):
    assert nand.state(0) is PageState.FREE
    assert nand.state(nand.config.total_pages - 1) is PageState.FREE
    assert nand.is_block_free(0)


def test_program_is_sequential_within_block(nand):
    p0 = nand.program_page(0)
    p1 = nand.program_page(0)
    assert (p0, p1) == (0, 1)
    assert nand.state(0) is PageState.VALID
    assert nand.valid_count(0) == 2
    assert nand.free_pages_in(0) == nand.config.pages_per_block - 2


def test_program_full_block_raises(nand):
    for _ in range(nand.config.pages_per_block):
        nand.program_page(3)
    with pytest.raises(RuntimeError):
        nand.program_page(3)


def test_program_page_at_fixed_offset(nand):
    ppn = nand.program_page_at(2, 5)
    assert ppn == 2 * nand.config.pages_per_block + 5
    assert nand.state(ppn) is PageState.VALID
    with pytest.raises(RuntimeError):
        nand.program_page_at(2, 5)  # already programmed


def test_program_page_at_bad_offset(nand):
    with pytest.raises(IndexError):
        nand.program_page_at(0, nand.config.pages_per_block)


def test_read_free_page_rejected(nand):
    with pytest.raises(RuntimeError):
        nand.read_page(0)


def test_read_counts(nand):
    ppn = nand.program_page(0)
    nand.read_page(ppn)
    nand.read_page(ppn)
    assert nand.reads == 2


def test_invalidate_transitions(nand):
    ppn = nand.program_page(0)
    nand.invalidate_page(ppn)
    assert nand.state(ppn) is PageState.INVALID
    assert nand.valid_count(0) == 0
    assert nand.invalid_count(0) == 1


def test_invalidate_twice_rejected(nand):
    ppn = nand.program_page(0)
    nand.invalidate_page(ppn)
    with pytest.raises(RuntimeError):
        nand.invalidate_page(ppn)


def test_erase_requires_no_valid_pages(nand):
    nand.program_page(1)
    with pytest.raises(RuntimeError):
        nand.erase_block(1)


def test_erase_resets_block_and_counts_wear(nand):
    ppn = nand.program_page(1)
    nand.invalidate_page(ppn)
    nand.erase_block(1)
    assert nand.state(ppn) is PageState.FREE
    assert nand.is_block_free(1)
    assert nand.erase_counts[1] == 1
    assert nand.erases == 1


def test_valid_ppns_in(nand):
    kept = nand.program_page(0)
    dropped = nand.program_page(0)
    nand.invalidate_page(dropped)
    assert nand.valid_ppns_in(0) == [kept]


def test_vectorised_ops_match_counters(nand):
    ppns = nand.program_run(0, 10)
    assert len(ppns) == 10
    assert nand.valid_count(0) == 10
    nand.read_pages(ppns)
    assert nand.reads == 10
    nand.invalidate_pages(ppns[:4])
    assert nand.invalid_count(0) == 4
    assert nand.valid_count(0) == 6
    nand.check_invariants()


def test_program_run_overflow_rejected(nand):
    with pytest.raises(RuntimeError):
        nand.program_run(0, nand.config.pages_per_block + 1)


def test_invalidate_pages_rejects_non_valid(nand):
    ppns = nand.program_run(0, 2)
    nand.invalidate_pages(ppns)
    with pytest.raises(RuntimeError):
        nand.invalidate_pages(ppns)


def test_read_pages_rejects_free(nand):
    with pytest.raises(RuntimeError):
        nand.read_pages(np.array([0, 1]))


def test_out_of_range_ppn(nand):
    with pytest.raises(IndexError):
        nand.state(nand.config.total_pages)
    with pytest.raises(IndexError):
        nand.erase_block(nand.config.num_blocks)


def test_check_invariants_passes_after_mixed_history(nand):
    for _ in range(30):
        nand.program_page(0)
    for ppn in nand.valid_ppns_in(0)[:10]:
        nand.invalidate_page(ppn)
    nand.check_invariants()
