"""Idle-time (background) garbage collection."""

import numpy as np
import pytest

from repro.core.config import CacheConfig, Policy
from repro.flash.constants import FlashConfig
from repro.flash.ftl_block import BlockMappingFTL
from repro.flash.ftl_page import PageMappingFTL
from repro.flash.ssd import SimulatedSSD
from repro.workloads.retrieval import run_cached
from repro.workloads.sweep import make_log_for, make_scaled_index

MB = 1024 * 1024


def churn(ftl, rng, ops):
    span = ftl.num_lpns // 2
    for _ in range(ops):
        ftl.write(int(rng.integers(0, span)))


def test_budget_validation(tiny_flash):
    ftl = PageMappingFTL(tiny_flash)
    with pytest.raises(ValueError):
        ftl.background_collect(-1.0)


def test_background_gc_stocks_free_pool(tiny_flash):
    ftl = PageMappingFTL(tiny_flash)
    churn(ftl, np.random.default_rng(0), tiny_flash.total_pages)
    before = ftl.free_block_count
    used = ftl.background_collect(budget_us=10**7)
    assert used > 0
    assert ftl.free_block_count > before
    ftl.nand.check_invariants()


def test_background_gc_respects_budget(tiny_flash):
    ftl = PageMappingFTL(tiny_flash)
    churn(ftl, np.random.default_rng(1), tiny_flash.total_pages)
    used = ftl.background_collect(budget_us=1.0)  # enough for ~one victim
    assert used <= 1.0 + tiny_flash.erase_us + 64 * (
        tiny_flash.read_us + tiny_flash.write_us
    )


def test_background_gc_skips_expensive_victims(tiny_flash):
    """A freshly filled device (all-valid blocks) offers nothing worth
    collecting in the background."""
    ftl = PageMappingFTL(tiny_flash)
    for lpn in range(ftl.num_lpns // 2):
        ftl.write(lpn)
    assert ftl.background_collect(budget_us=10**7) == 0.0


def test_background_gc_reduces_foreground_latency(tiny_flash):
    """With a stocked pool, foreground writes skip inline GC."""
    rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
    inline = PageMappingFTL(tiny_flash)
    background = PageMappingFTL(tiny_flash)
    churn(inline, rng_a, tiny_flash.total_pages)
    churn(background, rng_b, tiny_flash.total_pages)

    t_inline = t_background = 0.0
    rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
    for _ in range(30):
        for _ in range(8):
            t_inline += inline.write(int(rng_a.integers(0, inline.num_lpns // 2)))
            t_background += background.write(
                int(rng_b.integers(0, background.num_lpns // 2))
            )
        background.background_collect(budget_us=10**6)
    assert t_background < t_inline


def test_ssd_idle_collect_charges_bg_channel(tiny_flash):
    ssd = SimulatedSSD(tiny_flash)
    rng = np.random.default_rng(4)
    span = ssd.capacity_bytes // 4
    for _ in range(2500):  # heavy overwrite churn leaves invalid pages
        off = int(rng.integers(0, span - 4096)) // 512 * 512
        ssd.write(off // 512, 2048)
    now_before = ssd.clock.now_us
    used = ssd.idle_collect(10**6)
    assert used > 0
    assert ssd.clock.now_us == now_before  # idle time does not advance now
    assert ssd.clock.busy_us("ssd-bg") == pytest.approx(used)
    assert ssd.counters.total("bg_gc_us") == pytest.approx(used)


def test_idle_collect_noop_for_ftls_without_bg(tiny_flash):
    ssd = SimulatedSSD(tiny_flash, ftl=BlockMappingFTL(tiny_flash))
    assert ssd.idle_collect(10**6) == 0.0


def test_run_cached_with_idle_gc_is_not_slower():
    index = make_scaled_index(200_000)
    log = make_log_for(800, distinct_queries=250, seed=44)
    cfg = CacheConfig.paper_split(4 * MB, 16 * MB, policy=Policy.CBLRU)
    plain = run_cached(index, log, cfg)
    assisted = run_cached(index, log, cfg, idle_gc_us=50_000.0)
    assert assisted.mean_response_ms <= plain.mean_response_ms * 1.02
    assert assisted.stats.queries == plain.stats.queries
