"""MSR Cambridge trace format."""

import numpy as np
import pytest

from repro.trace.generator import WebSearchTraceConfig, generate_websearch_trace
from repro.trace.msr import parse_msr, write_msr


@pytest.fixture
def sample():
    return generate_websearch_trace(WebSearchTraceConfig(num_requests=150, seed=9))


def test_roundtrip(tmp_path, sample):
    path = tmp_path / "t.csv"
    write_msr(sample, path, hostname="websrv", disk=2)
    parsed = parse_msr(path)
    assert len(parsed) == len(sample)
    assert np.array_equal(parsed.lbas, sample.lbas)
    assert np.array_equal(parsed.nbytes, sample.nbytes)
    assert np.array_equal(parsed.is_read, sample.is_read)
    # Timestamps are rebased to the first request.
    assert parsed.timestamps_s[0] == 0.0


def test_parse_lines_directly():
    lines = [
        "128166372003061629,web0,0,Read,8192,4096,151",
        "128166372013061629,web0,1,Write,0,512,99",
    ]
    t = parse_msr(lines)
    assert len(t) == 2
    assert t[0].lba == 16
    assert t[0].is_read and not t[1].is_read
    assert t[1].timestamp_s == pytest.approx(1.0)


def test_filters():
    lines = [
        "0,hostA,0,Read,0,512,0",
        "0,hostB,0,Read,512,512,0",
        "0,hostA,1,Read,1024,512,0",
    ]
    assert len(parse_msr(lines, hostname_filter="hostA")) == 2
    assert len(parse_msr(lines, disk_filter=1)) == 1


def test_malformed():
    with pytest.raises(ValueError, match="line 1"):
        parse_msr(["too,few,fields"])
    with pytest.raises(ValueError, match="bad type"):
        parse_msr(["0,h,0,Erase,0,512,0"])
    with pytest.raises(ValueError, match="offset/size"):
        parse_msr(["0,h,0,Read,0,0,0"])


def test_comments_and_blanks_skipped():
    t = parse_msr(["# header", "", "0,h,0,Read,512,512,0"])
    assert len(t) == 1
