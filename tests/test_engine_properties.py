"""Property-based tests over the engine substrate."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.corpus import CorpusConfig, build_corpus_stats, zipf_mandelbrot_probs
from repro.engine.layout import SECTOR_BYTES, IndexLayout
from repro.engine.postings import generate_posting_list
from repro.engine.querylog import QueryLogConfig, generate_query_log


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 3000),
    s=st.floats(0.3, 2.0),
    q=st.floats(0.0, 10.0),
)
def test_zipf_probs_always_valid(n, s, q):
    p = zipf_mandelbrot_probs(n, s, q)
    assert p.shape == (n,)
    assert abs(p.sum() - 1.0) < 1e-9
    assert (p > 0).all()
    assert (np.diff(p) <= 1e-15).all()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    num_docs=st.integers(100, 20_000),
    vocab=st.integers(10, 400),
    seed=st.integers(0, 10**6),
)
def test_corpus_stats_always_consistent(num_docs, vocab, seed):
    stats = build_corpus_stats(
        CorpusConfig(num_docs=num_docs, vocab_size=vocab, avg_doc_len=50,
                     seed=seed)
    )
    stats.validate()
    layout = IndexLayout(stats)
    # Extents tile the index without overlap.
    prev_end = 0
    for term in range(vocab):
        ext = layout.extent(term)
        assert ext.lba == prev_end
        assert ext.nbytes <= ext.sectors * SECTOR_BYTES
        prev_end = ext.lba + ext.sectors
    assert layout.total_sectors == prev_end


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    df=st.integers(1, 2000),
    num_docs=st.integers(2000, 50_000),
    seed=st.integers(0, 10**6),
)
def test_posting_lists_always_wellformed(df, num_docs, seed):
    plist = generate_posting_list(1, df, num_docs, seed=seed)
    assert len(plist) == df
    assert len(np.unique(plist.doc_ids)) == df
    assert (np.diff(plist.tfs) <= 0).all()
    assert (plist.tfs >= 1).all()
    assert plist.doc_ids.max() < num_docs


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    nq=st.integers(20, 400),
    dq=st.integers(5, 100),
    singleton=st.floats(0.0, 0.9),
    seed=st.integers(0, 10**5),
)
def test_query_log_properties(nq, dq, singleton, seed):
    log = generate_query_log(QueryLogConfig(
        num_queries=nq, distinct_queries=dq, vocab_size=200,
        singleton_fraction=singleton, seed=seed,
    ))
    assert len(log) == nq
    # Stream ids always index into the pool.
    assert log.stream_ids.max() < len(log.pool)
    # Term constraints hold for every pooled query.
    for q in log.pool:
        assert 1 <= len(q.terms) <= log.config.max_terms
        assert all(0 <= t < 200 for t in q.terms)
    # The realized singleton share is in the right neighbourhood: the
    # distinct fraction grows with the singleton parameter.
    if singleton >= 0.5 and nq >= 100:
        assert log.distinct_fraction() >= 0.3
