"""Streaming SLO/detector verdicts provably match the post-hoc pass.

The flight recorder triggers off the *streaming* evaluators, so any
divergence from ``run_detectors``/``evaluate_slos`` would make incident
bundles lie about the run they came from.  These are property tests:
arbitrary window sequences (sparse series, missing windows, extreme
values) must produce verdict-for-verdict identical output both ways.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_SLOS,
    StreamingDetectors,
    StreamingShardSkew,
    StreamingSloEvaluator,
    detect_shard_skew,
    evaluate_slos,
    run_detectors,
    window_point,
)

_SERIES = ("hit_ratio", "write_amp", "queue_depth", "wait_fraction",
           "p99_response_us", "queries")

_value = st.one_of(
    st.none(),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
)


@st.composite
def window_seqs(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    start = draw(st.integers(min_value=0, max_value=5))
    gaps = draw(st.lists(st.integers(min_value=1, max_value=3),
                         min_size=n, max_size=n))
    out = []
    w = start
    for gap in gaps:
        derived = {}
        for series in _SERIES:
            v = draw(_value)
            if v is not None:
                derived[series] = v
        out.append({"type": "window", "window": w, "start_us": w * 100.0,
                    "end_us": (w + 1) * 100.0, "counters": {}, "gauges": {},
                    "histograms": {}, "derived": derived})
        w += gap
    return out


@settings(max_examples=60, deadline=None)
@given(window_seqs())
def test_streaming_detectors_match_posthoc(windows):
    streaming = StreamingDetectors()
    for rec in windows:
        streaming.update(rec)
    got = [a.to_dict() for a in streaming.anomalies]
    want = [a.to_dict() for a in run_detectors(windows)]
    assert got == want


@settings(max_examples=60, deadline=None)
@given(window_seqs())
def test_streaming_slo_matches_posthoc(windows):
    streaming = StreamingSloEvaluator(DEFAULT_SLOS)
    for rec in windows:
        streaming.update(rec)
    got = [r.to_dict() for r in streaming.results()]
    want = [r.to_dict() for r in evaluate_slos(DEFAULT_SLOS, windows)]
    assert got == want


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
    max_size=60))
def test_streaming_shard_skew_matches_posthoc(points):
    per_shard: dict = {}
    streaming = StreamingShardSkew()
    for i, (shard, ratio) in enumerate(points):
        rec = {"type": "window", "window": i, "start_us": i * 100.0,
               "end_us": (i + 1) * 100.0, "counters": {}, "gauges": {},
               "histograms": {}, "derived": {"hit_ratio": ratio}}
        per_shard.setdefault(f"shard{shard}", []).append(rec)
        streaming.update(f"shard{shard}", rec)
    got = [a.to_dict() for a in streaming.anomalies()]
    want = [a.to_dict() for a in detect_shard_skew(per_shard)]
    assert got == want


def test_window_point_prefers_derived():
    rec = {"type": "window", "window": 7, "start_us": 0.0, "end_us": 1.0,
           "counters": {}, "gauges": {}, "histograms": {},
           "derived": {"hit_ratio": 0.5}}
    assert window_point(rec, "hit_ratio") == (7, 0.5)
    assert window_point(rec, "write_amp") is None


def test_streaming_detectors_update_returns_fresh_batch():
    streaming = StreamingDetectors()
    batches = []
    for i in range(12):
        rec = {"type": "window", "window": i, "start_us": i * 100.0,
               "end_us": (i + 1) * 100.0, "counters": {}, "gauges": {},
               "histograms": {}, "derived": {"queue_depth": float(i)}}
        batches.append(streaming.update(rec))
    flat = [a for batch in batches for a in batch]
    assert flat == streaming.anomalies
    assert any(a.detector == "queue_buildup" for a in flat)
