"""GC victim choices must be faithfully reflected in the audit trail.

Property tests: whatever churn the host generates and whichever victim
policy is installed, every erase corresponds to exactly one ``gc.victim``
audit record carrying the right policy name, device tag and candidate
evidence.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flash.constants import FlashConfig
from repro.flash.ftl_page import PageMappingFTL
from repro.flash.gc import (
    CostBenefitVictimPolicy,
    GreedyVictimPolicy,
    RandomVictimPolicy,
)
from repro.flash.ssd import SimulatedSSD
from repro.obs import AuditLog

CFG = FlashConfig(num_blocks=16, pages_per_block=8, overprovision=0.25)

POLICIES = {
    "GreedyVictimPolicy": GreedyVictimPolicy,
    "CostBenefitVictimPolicy": CostBenefitVictimPolicy,
    "RandomVictimPolicy": RandomVictimPolicy,
}


def audited_ftl(policy):
    ftl = PageMappingFTL(CFG, victim_policy=policy)
    log = AuditLog()
    ftl.audit = log
    ftl.audit_device = "dev0"
    return ftl, log


def churn(ftl, lpns):
    for lpn in lpns:
        ftl.write(int(lpn))


churn_strategy = st.lists(
    st.integers(0, CFG.logical_pages - 1),
    min_size=CFG.total_pages,
    max_size=CFG.total_pages * 3,
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(policy_name=st.sampled_from(sorted(POLICIES)), lpns=churn_strategy)
def test_every_erase_leaves_one_victim_record(policy_name, lpns):
    ftl, log = audited_ftl(POLICIES[policy_name]())
    churn(ftl, lpns)
    victims = [r for r in log.records if r.type == "gc.victim"]
    assert len(victims) == ftl.stats.block_erases
    for r in victims:
        assert r.kind == "gc"
        assert 0 <= r.key < CFG.num_blocks
        assert r.data["device"] == "dev0"
        assert r.data["policy"] == policy_name
        assert r.data["origin"] in ("foreground", "background")
        assert 1 <= r.data["candidates"] <= CFG.num_blocks
        assert 0 <= r.data["valid_pages"] <= CFG.pages_per_block
        # The score sample lists (block, valid_pages) pairs at choice time.
        for block, valid in r.data["scores"]:
            assert 0 <= block < CFG.num_blocks
            assert 0 <= valid <= CFG.pages_per_block


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(lpns=churn_strategy)
def test_greedy_victim_minimises_valid_pages_over_sample(lpns):
    """Greedy's recorded choice is never beaten by any sampled candidate."""
    ftl, log = audited_ftl(GreedyVictimPolicy())
    churn(ftl, lpns)
    victims = [r for r in log.records if r.type == "gc.victim"]
    for r in victims:
        sampled = {block: valid for block, valid in r.data["scores"]}
        # The chosen block's count is the record's valid_pages...
        if r.key in sampled:
            assert sampled[r.key] == r.data["valid_pages"]
        # ...and no sampled candidate had fewer valid pages.
        assert r.data["valid_pages"] <= min(sampled.values())


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16))
def test_random_victims_stay_within_candidates_and_replay(seed):
    rng = np.random.default_rng(seed)
    lpns = rng.integers(0, CFG.logical_pages, size=CFG.total_pages * 2)

    def run():
        ftl, log = audited_ftl(RandomVictimPolicy(seed=seed))
        churn(ftl, lpns)
        return [(r.key, r.data["valid_pages"]) for r in log.records
                if r.type == "gc.victim"]

    first, second = run(), run()
    assert first, "churn past capacity must trigger GC"
    assert first == second  # seeded policy + same workload replays exactly


def test_cost_benefit_records_policy_name():
    ftl, log = audited_ftl(CostBenefitVictimPolicy())
    rng = np.random.default_rng(3)
    churn(ftl, rng.integers(0, CFG.logical_pages, size=CFG.total_pages * 2))
    victims = [r for r in log.records if r.type == "gc.victim"]
    assert victims
    assert {r.data["policy"] for r in victims} == {"CostBenefitVictimPolicy"}


def test_ssd_attachment_tags_device_name():
    ssd = SimulatedSSD(CFG, name="ssd-cache")
    log = AuditLog()
    ssd.audit = log
    assert ssd.ftl.audit is log
    assert ssd.ftl.audit_device == "ssd-cache"
    sectors = CFG.sectors_per_page
    rng = np.random.default_rng(1)
    for lpn in rng.integers(0, CFG.logical_pages, size=CFG.total_pages * 2):
        ssd.write(int(lpn) * sectors, CFG.page_bytes)
    victims = [r for r in log.records if r.type == "gc.victim"]
    assert len(victims) == ssd.erase_count > 0
    assert {r.data["device"] for r in victims} == {"ssd-cache"}


def test_unaudited_ftl_records_nothing():
    ftl = PageMappingFTL(CFG)
    assert ftl.audit is None
    rng = np.random.default_rng(2)
    churn(ftl, rng.integers(0, CFG.logical_pages, size=CFG.total_pages * 2))
    assert ftl.stats.block_erases > 0  # GC ran fine without an audit sink
