"""CLI subcommands (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_corpus_command(capsys):
    rc = main(["corpus", "--docs", "20000", "--vocab", "2000"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "corpus statistics" in out
    assert "20,000" in out


def test_trace_command_writes_spc(tmp_path, capsys):
    path = tmp_path / "t.spc"
    rc = main(["trace", "--requests", "500", "--out", str(path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert path.exists()
    assert "reads=" in out


def test_trace_command_writes_msr_and_diskmon(tmp_path, capsys):
    for ext in ("csv", "dmn"):
        path = tmp_path / f"t.{ext}"
        assert main(["trace", "--requests", "200", "--out", str(path)]) == 0
        assert path.exists()
    capsys.readouterr()


def test_trace_command_rejects_unknown_extension(tmp_path):
    with pytest.raises(SystemExit):
        main(["trace", "--requests", "100", "--out", str(tmp_path / "t.xyz")])


def test_analyze_command_all_formats(tmp_path, capsys):
    main(["trace", "--requests", "300", "--out", str(tmp_path / "t.spc")])
    main(["trace", "--requests", "300", "--out", str(tmp_path / "t.csv")])
    main(["trace", "--requests", "300", "--out", str(tmp_path / "t.dmn")])
    capsys.readouterr()
    for fmt, ext in (("spc", "spc"), ("msr", "csv"), ("diskmon", "dmn")):
        rc = main(["analyze", str(tmp_path / f"t.{ext}"), "--format", fmt])
        out = capsys.readouterr().out
        assert rc == 0
        assert "n=300" in out


def test_run_command_basic(capsys):
    rc = main(["run", "--policy", "cblru", "--docs", "100000",
               "--queries", "150", "--mem-mb", "2", "--ssd-mb", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "CBLRU" in out
    assert "mean response" in out


def test_run_command_three_level_and_ttl(capsys):
    rc = main(["run", "--policy", "lru", "--docs", "100000",
               "--queries", "150", "--mem-mb", "2", "--ssd-mb", "8",
               "--three-level", "--ttl-ms", "1.0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "intersection hits" in out
    assert "expired" in out


def test_run_command_cbslru_warms_static(capsys):
    rc = main(["run", "--policy", "cbslru", "--docs", "100000",
               "--queries", "200", "--mem-mb", "2", "--ssd-mb", "8"])
    assert rc == 0
    capsys.readouterr()


def test_run_command_telemetry_writes_valid_dir(tmp_path, capsys):
    from repro.obs import validate_telemetry_dir

    out_dir = tmp_path / "tel"
    rc = main(["run", "--policy", "cbslru", "--docs", "100000",
               "--queries", "200", "--mem-mb", "2", "--ssd-mb", "8",
               "--telemetry", str(out_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "per-stage latency" in out
    assert "wrote" in out
    counts = validate_telemetry_dir(out_dir)
    assert counts["spans"] > 0
    assert counts["metrics"] > 0


def test_report_command_reads_telemetry_dir(tmp_path, capsys):
    out_dir = tmp_path / "tel"
    main(["run", "--policy", "lru", "--docs", "100000", "--queries", "150",
          "--mem-mb", "2", "--ssd-mb", "8", "--telemetry", str(out_dir)])
    capsys.readouterr()
    rc = main(["report", str(out_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "per-stage latency" in out
    assert "spans" in out


def test_report_command_fails_cleanly_on_missing_dir(tmp_path, capsys):
    rc = main(["report", str(tmp_path / "nothing")])
    captured = capsys.readouterr()
    assert rc == 2
    assert captured.out == ""
    assert "not a usable telemetry directory" in captured.err
    assert len(captured.err.strip().splitlines()) == 1  # one line, no traceback


def test_report_command_fails_cleanly_on_empty_dir(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    rc = main(["report", str(empty)])
    captured = capsys.readouterr()
    assert rc == 2
    assert "not a usable telemetry directory" in captured.err


def test_compare_dirs_fails_cleanly_on_bad_dir(tmp_path, capsys):
    rc = main(["compare", str(tmp_path / "nothing")])
    captured = capsys.readouterr()
    assert rc == 2
    assert "not a usable telemetry directory" in captured.err
    assert len(captured.err.strip().splitlines()) == 1


def test_compare_command_prints_stage_breakdown(capsys):
    rc = main(["compare", "--docs", "100000", "--queries", "150",
               "--mem-mb", "2", "--ssd-mb", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "per-stage latency by policy" in out
    stage_section = out.split("per-stage latency by policy", 1)[1]
    for stage in ("l1", "l2", "hdd"):
        assert stage in stage_section
    assert "hit ratio over time" in out  # the per-policy timeline table


def test_compare_command_json_payload(capsys):
    import json

    rc = main(["compare", "--json", "--docs", "100000", "--queries", "150",
               "--mem-mb", "2", "--ssd-mb", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    payload = json.loads(out.split("wrote report", 1)[0])
    assert payload["schema"] == "repro.compare/v1"
    assert set(payload["policies"]) == {"lru", "cblru", "cbslru"}
    for entry in payload["policies"].values():
        assert entry["queries"] == 150
        assert "stage_latency_us" in entry
        assert "ssd-cache" in entry["flash"]
        assert entry["flash"]["ssd-cache"]["flash_erases_total"] >= 0
    assert set(payload["timeline"]) == {"lru", "cblru", "cbslru"}
    for entry in payload["timeline"].values():
        assert entry["windows"] > 0
        assert entry["hit_ratio"] and entry["p99_response_us"]


def test_run_telemetry_reports_flash_and_streams_spans(tmp_path, capsys):
    out_dir = tmp_path / "tel"
    rc = main(["run", "--policy", "cblru", "--docs", "100000",
               "--queries", "200", "--mem-mb", "2", "--ssd-mb", "8",
               "--telemetry", str(out_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "flash devices" in out
    assert "audit records" in out
    # Spans were streamed to disk during the run, not buffered.
    spans = (out_dir / "spans.jsonl").read_text().splitlines()
    assert len(spans) > 0
    assert (out_dir / "audit.jsonl").exists()


def test_explain_command_reconstructs_a_term(tmp_path, capsys):
    from repro.obs import load_audit_jsonl

    out_dir = tmp_path / "tel"
    main(["run", "--policy", "cblru", "--docs", "100000", "--queries", "200",
          "--mem-mb", "2", "--ssd-mb", "8", "--telemetry", str(out_dir)])
    capsys.readouterr()
    records = load_audit_jsonl(out_dir / "audit.jsonl")
    term = next(r["key"] for r in records if r["type"] == "list.select")
    rc = main(["explain", str(out_dir), "--term", str(term)])
    out = capsys.readouterr().out
    assert rc == 0
    assert f"audit trail for list {term}" in out
    assert "EV=" in out
    assert "verdict:" in out


def test_explain_command_unknown_subject_exits_nonzero(tmp_path, capsys):
    out_dir = tmp_path / "tel"
    main(["run", "--policy", "cblru", "--docs", "100000", "--queries", "150",
          "--mem-mb", "2", "--ssd-mb", "8", "--telemetry", str(out_dir)])
    capsys.readouterr()
    rc = main(["explain", str(out_dir), "--gc-block", "99999999"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "no records" in out


def test_explain_command_requires_audit_file(tmp_path, capsys):
    rc = main(["explain", str(tmp_path), "--term", "1"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "no audit trail" in err


def _run_with_timeline(tmp_path, queries="400"):
    out_dir = tmp_path / "tel"
    main(["run", "--policy", "cblru", "--docs", "100000",
          "--queries", queries, "--mem-mb", "2", "--ssd-mb", "8",
          "--telemetry", str(out_dir), "--timeline", "--window-ms", "20"])
    return out_dir


def test_run_timeline_requires_telemetry(capsys):
    rc = main(["run", "--queries", "10", "--timeline"])
    captured = capsys.readouterr()
    assert rc == 2
    assert "--timeline requires --telemetry" in captured.err


def test_run_timeline_streams_schema_valid_jsonl(tmp_path, capsys):
    from repro.obs import load_timeline_jsonl, validate_telemetry_dir

    out_dir = _run_with_timeline(tmp_path)
    out = capsys.readouterr().out
    assert "timeline:" in out
    counts = validate_telemetry_dir(out_dir)
    assert counts["timeline_windows"] > 0
    tl = load_timeline_jsonl(out_dir / "timeline.jsonl")
    assert tl.window_us == 20_000.0
    assert tl.windows


def test_timeline_command_renders_sparklines_and_verdicts(tmp_path, capsys):
    out_dir = _run_with_timeline(tmp_path)
    capsys.readouterr()
    rc = main(["timeline", str(out_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "timeline:" in out
    assert "hit_ratio" in out
    assert "SLOs:" in out
    assert "anomalies" in out
    # Custom SLO specs flow through the grammar.
    rc = main(["timeline", str(out_dir), "--slo", "queries > 0 @ 50%"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "queries > 0 @ 50%" in out


def test_timeline_command_fails_cleanly_without_timeline(tmp_path, capsys):
    rc = main(["timeline", str(tmp_path)])
    captured = capsys.readouterr()
    assert rc == 2
    assert "not a usable timeline" in captured.err


def test_timeline_command_rejects_bad_slo(tmp_path, capsys):
    out_dir = _run_with_timeline(tmp_path)
    capsys.readouterr()
    rc = main(["timeline", str(out_dir), "--slo", "not an slo"])
    captured = capsys.readouterr()
    assert rc == 2
    assert "bad SLO spec" in captured.err


def test_compare_dirs_mode_tabulates_saved_runs(tmp_path, capsys):
    out_dir = _run_with_timeline(tmp_path)
    capsys.readouterr()
    rc = main(["compare", str(out_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "telemetry dirs" in out
    assert str(out_dir) in out


def test_explain_query_chains_exemplar_to_span_and_audit(tmp_path, capsys):
    import json

    out_dir = _run_with_timeline(tmp_path, queries="600")
    capsys.readouterr()
    exemplars = [
        json.loads(line)
        for line in (out_dir / "timeline.jsonl").read_text().splitlines()
        if json.loads(line).get("type") == "exemplar"
    ]
    tied = [e for e in exemplars if e.get("query_id") is not None]
    assert tied, "run produced no query-tied exemplars"
    qid = tied[-1]["query_id"]
    rc = main(["explain", str(out_dir), "--query", str(qid)])
    out = capsys.readouterr().out
    assert rc == 0
    assert f"query {qid}:" in out
    assert "exemplar:" in out
    assert "query [" in out  # the span tree, rooted at the query span

    rc = main(["explain", str(out_dir), "--query", "999999"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "no tail exemplars" in out


def test_explain_query_requires_timeline_dir(tmp_path, capsys):
    rc = main(["explain", str(tmp_path / "nope"), "--query", "1"])
    captured = capsys.readouterr()
    assert rc == 2
    assert "telemetry directory" in captured.err


def _run_open_loop_telemetry(tmp_path):
    out_dir = tmp_path / "tel"
    rc = main(["run", "--policy", "cblru", "--docs", "100000",
               "--queries", "200", "--mem-mb", "2", "--ssd-mb", "8",
               "--arrival", "poisson", "--rate-qps", "60",
               "--concurrency", "4", "--telemetry", str(out_dir)])
    assert rc == 0
    return out_dir


def test_run_open_loop_streams_blame_and_blame_command(tmp_path, capsys):
    from repro.obs import validate_blame_jsonl

    out_dir = _run_open_loop_telemetry(tmp_path)
    out = capsys.readouterr().out
    assert "blame" in out
    counts = validate_blame_jsonl(out_dir / "blame.jsonl")
    assert counts["task"] >= 200  # every admitted query left a record
    assert counts["footer"] == 1

    rc = main(["blame", str(out_dir), "--top", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "capacity model" in out
    assert "Little's-law self-check: ok" in out
    assert "slowest 2 queries" in out

    rc = main(["blame", str(out_dir), "--query", "0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "qid 0" in out
    assert "residual 0.000 us" in out


def test_blame_command_fails_cleanly_without_blame_file(tmp_path, capsys):
    rc = main(["blame", str(tmp_path / "nothing")])
    captured = capsys.readouterr()
    assert rc == 2
    assert "not a usable blame file" in captured.err


def test_report_command_openmetrics_format(tmp_path, capsys):
    out_dir = tmp_path / "tel"
    main(["run", "--policy", "lru", "--docs", "100000", "--queries", "150",
          "--mem-mb", "2", "--ssd-mb", "8", "--telemetry", str(out_dir)])
    capsys.readouterr()
    rc = main(["report", str(out_dir), "--format", "openmetrics"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "# TYPE queries counter" in out
    assert "queries_total" in out
    assert out.endswith("# EOF\n")


def test_bench_command_writes_document_and_gates(tmp_path, capsys):
    import json

    from repro.bench import load_bench

    out = tmp_path / "BENCH_test.json"
    rc = main(["bench", "--suite", "smoke", "--out", str(out)])
    stdout = capsys.readouterr().out
    assert rc == 0
    assert "wrote" in stdout
    doc = load_bench(out)
    assert set(doc["scenarios"]) == {"lru-smoke", "cblru-smoke",
                                     "cbslru-smoke"}

    # Inject a regression into the baseline: pretend it was much faster.
    tampered = tmp_path / "tampered.json"
    bad = json.loads(out.read_text())
    for entry in bad["scenarios"].values():
        entry["metrics"]["mean_response_ms"] *= 0.5
    tampered.write_text(json.dumps(bad))
    rc = main(["bench", "--suite", "smoke", "--out",
               str(tmp_path / "BENCH_again.json"), "--against",
               str(tampered)])
    stdout = capsys.readouterr().out
    assert rc == 1
    assert "regression" in stdout
    assert "mean_response_ms rose" in stdout
