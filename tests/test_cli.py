"""CLI subcommands (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_corpus_command(capsys):
    rc = main(["corpus", "--docs", "20000", "--vocab", "2000"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "corpus statistics" in out
    assert "20,000" in out


def test_trace_command_writes_spc(tmp_path, capsys):
    path = tmp_path / "t.spc"
    rc = main(["trace", "--requests", "500", "--out", str(path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert path.exists()
    assert "reads=" in out


def test_trace_command_writes_msr_and_diskmon(tmp_path, capsys):
    for ext in ("csv", "dmn"):
        path = tmp_path / f"t.{ext}"
        assert main(["trace", "--requests", "200", "--out", str(path)]) == 0
        assert path.exists()
    capsys.readouterr()


def test_trace_command_rejects_unknown_extension(tmp_path):
    with pytest.raises(SystemExit):
        main(["trace", "--requests", "100", "--out", str(tmp_path / "t.xyz")])


def test_analyze_command_all_formats(tmp_path, capsys):
    main(["trace", "--requests", "300", "--out", str(tmp_path / "t.spc")])
    main(["trace", "--requests", "300", "--out", str(tmp_path / "t.csv")])
    main(["trace", "--requests", "300", "--out", str(tmp_path / "t.dmn")])
    capsys.readouterr()
    for fmt, ext in (("spc", "spc"), ("msr", "csv"), ("diskmon", "dmn")):
        rc = main(["analyze", str(tmp_path / f"t.{ext}"), "--format", fmt])
        out = capsys.readouterr().out
        assert rc == 0
        assert "n=300" in out


def test_run_command_basic(capsys):
    rc = main(["run", "--policy", "cblru", "--docs", "100000",
               "--queries", "150", "--mem-mb", "2", "--ssd-mb", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "CBLRU" in out
    assert "mean response" in out


def test_run_command_three_level_and_ttl(capsys):
    rc = main(["run", "--policy", "lru", "--docs", "100000",
               "--queries", "150", "--mem-mb", "2", "--ssd-mb", "8",
               "--three-level", "--ttl-ms", "1.0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "intersection hits" in out
    assert "expired" in out


def test_run_command_cbslru_warms_static(capsys):
    rc = main(["run", "--policy", "cbslru", "--docs", "100000",
               "--queries", "200", "--mem-mb", "2", "--ssd-mb", "8"])
    assert rc == 0
    capsys.readouterr()


def test_run_command_telemetry_writes_valid_dir(tmp_path, capsys):
    from repro.obs import validate_telemetry_dir

    out_dir = tmp_path / "tel"
    rc = main(["run", "--policy", "cbslru", "--docs", "100000",
               "--queries", "200", "--mem-mb", "2", "--ssd-mb", "8",
               "--telemetry", str(out_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "per-stage latency" in out
    assert "wrote" in out
    counts = validate_telemetry_dir(out_dir)
    assert counts["spans"] > 0
    assert counts["metrics"] > 0


def test_report_command_reads_telemetry_dir(tmp_path, capsys):
    out_dir = tmp_path / "tel"
    main(["run", "--policy", "lru", "--docs", "100000", "--queries", "150",
          "--mem-mb", "2", "--ssd-mb", "8", "--telemetry", str(out_dir)])
    capsys.readouterr()
    rc = main(["report", str(out_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "per-stage latency" in out
    assert "spans" in out


def test_report_command_rejects_bad_dir(tmp_path):
    with pytest.raises(ValueError):
        main(["report", str(tmp_path / "nothing")])


def test_compare_command_prints_stage_breakdown(capsys):
    rc = main(["compare", "--docs", "100000", "--queries", "150",
               "--mem-mb", "2", "--ssd-mb", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "per-stage latency by policy" in out
    stage_section = out.split("per-stage latency by policy", 1)[1]
    for stage in ("l1", "l2", "hdd"):
        assert stage in stage_section


def test_compare_command_json_payload(capsys):
    import json

    rc = main(["compare", "--json", "--docs", "100000", "--queries", "150",
               "--mem-mb", "2", "--ssd-mb", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    payload = json.loads(out.split("wrote report", 1)[0])
    assert payload["schema"] == "repro.compare/v1"
    assert set(payload["policies"]) == {"lru", "cblru", "cbslru"}
    for entry in payload["policies"].values():
        assert entry["queries"] == 150
        assert "stage_latency_us" in entry
        assert "ssd-cache" in entry["flash"]
        assert entry["flash"]["ssd-cache"]["flash_erases_total"] >= 0


def test_run_telemetry_reports_flash_and_streams_spans(tmp_path, capsys):
    out_dir = tmp_path / "tel"
    rc = main(["run", "--policy", "cblru", "--docs", "100000",
               "--queries", "200", "--mem-mb", "2", "--ssd-mb", "8",
               "--telemetry", str(out_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "flash devices" in out
    assert "audit records" in out
    # Spans were streamed to disk during the run, not buffered.
    spans = (out_dir / "spans.jsonl").read_text().splitlines()
    assert len(spans) > 0
    assert (out_dir / "audit.jsonl").exists()


def test_explain_command_reconstructs_a_term(tmp_path, capsys):
    from repro.obs import load_audit_jsonl

    out_dir = tmp_path / "tel"
    main(["run", "--policy", "cblru", "--docs", "100000", "--queries", "200",
          "--mem-mb", "2", "--ssd-mb", "8", "--telemetry", str(out_dir)])
    capsys.readouterr()
    records = load_audit_jsonl(out_dir / "audit.jsonl")
    term = next(r["key"] for r in records if r["type"] == "list.select")
    rc = main(["explain", str(out_dir), "--term", str(term)])
    out = capsys.readouterr().out
    assert rc == 0
    assert f"audit trail for list {term}" in out
    assert "EV=" in out
    assert "verdict:" in out


def test_explain_command_unknown_subject_exits_nonzero(tmp_path, capsys):
    out_dir = tmp_path / "tel"
    main(["run", "--policy", "cblru", "--docs", "100000", "--queries", "150",
          "--mem-mb", "2", "--ssd-mb", "8", "--telemetry", str(out_dir)])
    capsys.readouterr()
    rc = main(["explain", str(out_dir), "--gc-block", "99999999"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "no records" in out


def test_explain_command_requires_audit_file(tmp_path):
    with pytest.raises(SystemExit):
        main(["explain", str(tmp_path), "--term", "1"])


def test_bench_command_writes_document_and_gates(tmp_path, capsys):
    import json

    from repro.bench import load_bench

    out = tmp_path / "BENCH_test.json"
    rc = main(["bench", "--suite", "smoke", "--out", str(out)])
    stdout = capsys.readouterr().out
    assert rc == 0
    assert "wrote" in stdout
    doc = load_bench(out)
    assert set(doc["scenarios"]) == {"lru-smoke", "cblru-smoke",
                                     "cbslru-smoke"}

    # Inject a regression into the baseline: pretend it was much faster.
    tampered = tmp_path / "tampered.json"
    bad = json.loads(out.read_text())
    for entry in bad["scenarios"].values():
        entry["metrics"]["mean_response_ms"] *= 0.5
    tampered.write_text(json.dumps(bad))
    rc = main(["bench", "--suite", "smoke", "--out",
               str(tmp_path / "BENCH_again.json"), "--against",
               str(tampered)])
    stdout = capsys.readouterr().out
    assert rc == 1
    assert "regression" in stdout
    assert "mean_response_ms rose" in stdout
