"""CLI subcommands (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_corpus_command(capsys):
    rc = main(["corpus", "--docs", "20000", "--vocab", "2000"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "corpus statistics" in out
    assert "20,000" in out


def test_trace_command_writes_spc(tmp_path, capsys):
    path = tmp_path / "t.spc"
    rc = main(["trace", "--requests", "500", "--out", str(path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert path.exists()
    assert "reads=" in out


def test_trace_command_writes_msr_and_diskmon(tmp_path, capsys):
    for ext in ("csv", "dmn"):
        path = tmp_path / f"t.{ext}"
        assert main(["trace", "--requests", "200", "--out", str(path)]) == 0
        assert path.exists()
    capsys.readouterr()


def test_trace_command_rejects_unknown_extension(tmp_path):
    with pytest.raises(SystemExit):
        main(["trace", "--requests", "100", "--out", str(tmp_path / "t.xyz")])


def test_analyze_command_all_formats(tmp_path, capsys):
    main(["trace", "--requests", "300", "--out", str(tmp_path / "t.spc")])
    main(["trace", "--requests", "300", "--out", str(tmp_path / "t.csv")])
    main(["trace", "--requests", "300", "--out", str(tmp_path / "t.dmn")])
    capsys.readouterr()
    for fmt, ext in (("spc", "spc"), ("msr", "csv"), ("diskmon", "dmn")):
        rc = main(["analyze", str(tmp_path / f"t.{ext}"), "--format", fmt])
        out = capsys.readouterr().out
        assert rc == 0
        assert "n=300" in out


def test_run_command_basic(capsys):
    rc = main(["run", "--policy", "cblru", "--docs", "100000",
               "--queries", "150", "--mem-mb", "2", "--ssd-mb", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "CBLRU" in out
    assert "mean response" in out


def test_run_command_three_level_and_ttl(capsys):
    rc = main(["run", "--policy", "lru", "--docs", "100000",
               "--queries", "150", "--mem-mb", "2", "--ssd-mb", "8",
               "--three-level", "--ttl-ms", "1.0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "intersection hits" in out
    assert "expired" in out


def test_run_command_cbslru_warms_static(capsys):
    rc = main(["run", "--policy", "cbslru", "--docs", "100000",
               "--queries", "200", "--mem-mb", "2", "--ssd-mb", "8"])
    assert rc == 0
    capsys.readouterr()


def test_run_command_telemetry_writes_valid_dir(tmp_path, capsys):
    from repro.obs import validate_telemetry_dir

    out_dir = tmp_path / "tel"
    rc = main(["run", "--policy", "cbslru", "--docs", "100000",
               "--queries", "200", "--mem-mb", "2", "--ssd-mb", "8",
               "--telemetry", str(out_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "per-stage latency" in out
    assert "wrote" in out
    counts = validate_telemetry_dir(out_dir)
    assert counts["spans"] > 0
    assert counts["metrics"] > 0


def test_report_command_reads_telemetry_dir(tmp_path, capsys):
    out_dir = tmp_path / "tel"
    main(["run", "--policy", "lru", "--docs", "100000", "--queries", "150",
          "--mem-mb", "2", "--ssd-mb", "8", "--telemetry", str(out_dir)])
    capsys.readouterr()
    rc = main(["report", str(out_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "per-stage latency" in out
    assert "spans" in out


def test_report_command_rejects_bad_dir(tmp_path):
    with pytest.raises(ValueError):
        main(["report", str(tmp_path / "nothing")])


def test_compare_command_prints_stage_breakdown(capsys):
    rc = main(["compare", "--docs", "100000", "--queries", "150",
               "--mem-mb", "2", "--ssd-mb", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "per-stage latency by policy" in out
    stage_section = out.split("per-stage latency by policy", 1)[1]
    for stage in ("l1", "l2", "hdd"):
        assert stage in stage_section
