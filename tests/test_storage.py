"""Device protocol, DRAM model, and hierarchy assembly."""

import pytest

from repro.flash.constants import FlashConfig
from repro.flash.ssd import SimulatedSSD
from repro.hdd.disk import SimulatedHDD
from repro.sim.clock import VirtualClock
from repro.storage.device import BlockDevice, DramModel, NullDevice
from repro.storage.hierarchy import HierarchyConfig, StorageHierarchy


def test_devices_satisfy_protocol(tiny_flash):
    assert isinstance(DramModel(), BlockDevice)
    assert isinstance(NullDevice(), BlockDevice)
    assert isinstance(SimulatedSSD(tiny_flash), BlockDevice)
    assert isinstance(SimulatedHDD(), BlockDevice)


def test_dram_cost_model():
    clock = VirtualClock()
    dram = DramModel(access_overhead_us=0.5, bandwidth_gb_s=10.0, clock=clock)
    t = dram.read(0, 10_000_000)  # 10 MB at 10 GB/s = 1000 us + overhead
    assert t == pytest.approx(0.5 + 1000.0)
    assert clock.now_us == pytest.approx(t)


def test_dram_validation():
    with pytest.raises(ValueError):
        DramModel(capacity_bytes=0)
    with pytest.raises(ValueError):
        DramModel(bandwidth_gb_s=0)
    with pytest.raises(ValueError):
        DramModel().read(0, -1)


def test_dram_is_much_faster_than_ssd(tiny_flash):
    dram = DramModel()
    ssd = SimulatedSSD(tiny_flash)
    ssd.write(0, 128 * 1024)
    assert dram.read(0, 128 * 1024) < ssd.read(0, 128 * 1024) / 10


def test_null_device_counts():
    dev = NullDevice()
    assert dev.read(0, 100) == 0.0
    assert dev.write(0, 100) == 0.0
    assert dev.trim(0, 100) == 0.0
    assert dev.counters.count("read_ops") == 1


def test_hierarchy_two_level_default():
    h = StorageHierarchy()
    assert h.levels == 2
    assert h.describe() == "2LC-HDD"
    assert h.memory.clock is h.clock
    assert h.ssd.clock is h.clock


def test_hierarchy_one_level():
    h = StorageHierarchy(HierarchyConfig(ssd_cache=False))
    assert h.levels == 1
    assert h.ssd is None
    assert h.describe() == "1LC-HDD"


def test_hierarchy_index_on_ssd():
    cfg = HierarchyConfig(index_on="ssd", ssd_config=FlashConfig(num_blocks=32))
    h = StorageHierarchy(cfg)
    assert h.describe() == "2LC-SSD"
    assert isinstance(h.index_store, SimulatedSSD)


def test_hierarchy_validation():
    with pytest.raises(ValueError):
        HierarchyConfig(index_on="tape")
    with pytest.raises(ValueError):
        HierarchyConfig(memory_bytes=0)


def test_busy_breakdown_accumulates():
    h = StorageHierarchy(HierarchyConfig(ssd_config=FlashConfig(num_blocks=32)))
    h.ssd.write(0, 4096)
    h.index_store.read(0, 4096)
    h.memory.read(0, 4096)
    busy = h.busy_breakdown_us()
    assert set(busy) == {"ssd-cache", "index-hdd", "dram"}
    assert all(v > 0 for v in busy.values())
