"""Cache configuration and statistics."""

import pytest

from repro.core.config import CacheConfig, Policy, Scheme
from repro.core.stats import CacheStats, Situation

MB = 1024 * 1024


# -- config ---------------------------------------------------------------

def test_defaults_match_paper_constants():
    cfg = CacheConfig()
    assert cfg.block_bytes == 128 * 1024          # SB
    assert cfg.result_entry_bytes == 20 * 1024    # ~20 KB result entry
    assert cfg.top_k == 50                        # K
    assert cfg.replace_window == 5                # W
    assert cfg.entries_per_rb == 6                # floor(128/20)


def test_validation():
    with pytest.raises(ValueError):
        CacheConfig(mem_result_bytes=-1)
    with pytest.raises(ValueError):
        CacheConfig(result_entry_bytes=256 * 1024)  # > block
    with pytest.raises(ValueError):
        CacheConfig(replace_window=0)
    with pytest.raises(ValueError):
        CacheConfig(static_fraction=1.0)
    with pytest.raises(ValueError):
        CacheConfig(tev=-0.5)


def test_derived_block_counts():
    cfg = CacheConfig(ssd_result_bytes=10 * MB, ssd_list_bytes=100 * MB)
    assert cfg.ssd_result_blocks == 80
    assert cfg.ssd_list_blocks == 800
    assert cfg.ssd_cache_bytes == 110 * MB
    assert cfg.uses_ssd


def test_paper_split_proportions():
    cfg = CacheConfig.paper_split(mem_bytes=10 * MB, ssd_bytes=100 * MB)
    assert cfg.mem_result_bytes == 2 * MB           # 20%
    assert cfg.mem_list_bytes == 8 * MB             # 80%
    assert cfg.ssd_result_bytes == 20 * MB          # 10x mem RC
    assert cfg.ssd_list_bytes == 80 * MB
    # Fig. 16's caps: SSD RC never exceeds 10x memory RC.
    big = CacheConfig.paper_split(mem_bytes=1 * MB, ssd_bytes=1000 * MB)
    assert big.ssd_result_bytes == 10 * big.mem_result_bytes


def test_paper_split_memory_only():
    cfg = CacheConfig.paper_split(mem_bytes=10 * MB)
    assert not cfg.uses_ssd


def test_one_level_strips_ssd():
    cfg = CacheConfig.paper_split(mem_bytes=10 * MB, ssd_bytes=100 * MB,
                                  policy=Policy.CBLRU)
    one = cfg.one_level()
    assert not one.uses_ssd
    assert one.mem_result_bytes == cfg.mem_result_bytes
    assert one.policy is Policy.CBLRU


def test_write_buffer_entries_override():
    cfg = CacheConfig(write_buffer_entries=4)
    assert cfg.entries_per_rb == 4


# -- situations ----------------------------------------------------------------

def test_situation_classification_all_combinations():
    assert Situation.for_lists(True, False, False) is Situation.S2
    assert Situation.for_lists(True, True, False) is Situation.S4
    assert Situation.for_lists(False, True, False) is Situation.S5
    assert Situation.for_lists(True, False, True) is Situation.S6
    assert Situation.for_lists(False, True, True) is Situation.S7
    assert Situation.for_lists(False, False, True) is Situation.S8
    assert Situation.for_lists(True, True, True) is Situation.S9


def test_situation_no_source_rejected():
    with pytest.raises(ValueError):
        Situation.for_lists(False, False, False)


# -- stats ----------------------------------------------------------------------

def test_hit_ratios():
    s = CacheStats()
    s.result_l1_hits = 6
    s.result_l2_hits = 2
    s.result_misses = 2
    s.list_l1_hits = 3
    s.list_l2_hits = 1
    s.list_partial_hits = 2
    s.list_misses = 4
    assert s.result_hit_ratio == pytest.approx(0.8)
    assert s.list_hit_ratio == pytest.approx(0.4)
    assert s.combined_hit_ratio == pytest.approx(12 / 20)


def test_empty_stats_are_zero():
    s = CacheStats()
    assert s.result_hit_ratio == 0.0
    assert s.list_hit_ratio == 0.0
    assert s.mean_response_us == 0.0
    assert s.throughput_qps == 0.0


def test_record_query_accumulates():
    s = CacheStats()
    s.record_query(Situation.S1, 1000.0)
    s.record_query(Situation.S8, 3000.0)
    assert s.queries == 2
    assert s.mean_response_us == pytest.approx(2000.0)
    assert s.throughput_qps == pytest.approx(2 / (4000.0 / 1e6))
    assert s.situation_counts[Situation.S1] == 1


def test_situation_table_rows():
    s = CacheStats()
    s.record_query(Situation.S1, 2000.0)
    s.record_query(Situation.S1, 4000.0)
    rows = s.situation_table()
    assert len(rows) == 9
    name, prob, mean_ms = rows[0]
    assert name == "S1"
    assert prob == pytest.approx(1.0)
    assert mean_ms == pytest.approx(3.0)


def test_reset():
    s = CacheStats()
    s.record_query(Situation.S1, 1.0)
    s.reset()
    assert s.queries == 0
    assert s.situation_counts[Situation.S1] == 0
