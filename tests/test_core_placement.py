"""Write buffer and RB assembly (data placement, Section VI.B)."""

import pytest

from repro.core.entries import CachedResult
from repro.core.placement import WriteBuffer


def entry(i):
    return CachedResult(query_key=(i,), nbytes=20480)


def test_validation():
    with pytest.raises(ValueError):
        WriteBuffer(entries_per_rb=0)


def test_accumulates_until_full():
    wb = WriteBuffer(entries_per_rb=3)
    assert wb.add(entry(1), already_on_ssd=False) is None
    assert wb.add(entry(2), already_on_ssd=False) is None
    batch = wb.add(entry(3), already_on_ssd=False)
    assert batch is not None
    assert [e.query_key for e in batch] == [(1,), (2,), (3,)]
    assert len(wb) == 0
    assert wb.flushes == 1


def test_replaceable_entries_dropped():
    """Section VI.C: entries still on SSD in replaceable state skip rewrite."""
    wb = WriteBuffer(entries_per_rb=2)
    assert wb.add(entry(1), already_on_ssd=True) is None
    assert len(wb) == 0
    assert wb.dropped_replaceable == 1


def test_take_pulls_staged_entry_back():
    wb = WriteBuffer(entries_per_rb=3)
    wb.add(entry(1), already_on_ssd=False)
    wb.add(entry(2), already_on_ssd=False)
    taken = wb.take((1,))
    assert taken is not None and taken.query_key == (1,)
    assert len(wb) == 1
    assert wb.take((1,)) is None  # gone now
    # The buffer needs two more entries to flush again.
    assert wb.add(entry(3), already_on_ssd=False) is None
    assert wb.add(entry(4), already_on_ssd=False) is not None


def test_duplicate_key_replaces_staged_entry():
    wb = WriteBuffer(entries_per_rb=3)
    wb.add(entry(1), already_on_ssd=False)
    newer = CachedResult(query_key=(1,), nbytes=20480, freq=9)
    wb.add(newer, already_on_ssd=False)
    assert len(wb) == 1
    assert wb.take((1,)).freq == 9


def test_contains():
    wb = WriteBuffer(entries_per_rb=4)
    wb.add(entry(1), already_on_ssd=False)
    assert (1,) in wb
    assert (2,) not in wb


def test_drain():
    wb = WriteBuffer(entries_per_rb=10)
    for i in range(4):
        wb.add(entry(i), already_on_ssd=False)
    drained = wb.drain()
    assert len(drained) == 4
    assert len(wb) == 0


def test_fifo_batch_order_preserves_eviction_order():
    wb = WriteBuffer(entries_per_rb=2)
    wb.add(entry(5), already_on_ssd=False)
    batch = wb.add(entry(3), already_on_ssd=False)
    assert [e.query_key for e in batch] == [(5,), (3,)]
