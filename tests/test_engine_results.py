"""Result entries and search results."""

import pytest

from repro.engine.results import (
    DEFAULT_TOP_K,
    DOC_SUMMARY_BYTES,
    ResultEntry,
    SearchResult,
)


def test_paper_constants():
    assert DEFAULT_TOP_K == 50
    assert DOC_SUMMARY_BYTES == 400


def test_entry_size_is_fixed_length():
    """The paper treats result entries as fixed-length (~20 KB for K=50)."""
    full = ResultEntry(query_key=(1,), results=tuple(
        SearchResult(doc_id=i, score=float(50 - i)) for i in range(50)
    ))
    sparse = ResultEntry(query_key=(2,), results=(SearchResult(0, 1.0),))
    assert full.nbytes == 50 * 400 == 20_000
    assert sparse.nbytes == full.nbytes  # size independent of hit count


def test_entry_len_counts_actual_results():
    entry = ResultEntry(query_key=(1,), results=(SearchResult(3, 2.0),),
                        top_k=10)
    assert len(entry) == 1
    assert entry.nbytes == 10 * DOC_SUMMARY_BYTES


def test_entries_are_immutable():
    entry = ResultEntry(query_key=(1,), results=())
    with pytest.raises(AttributeError):
        entry.top_k = 5
    result = SearchResult(doc_id=1, score=0.5)
    with pytest.raises(AttributeError):
        result.score = 1.0
