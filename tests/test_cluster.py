"""Sharded cluster: partitioning, fan-out, merging, accounting."""

import pytest

from repro.cluster.broker import Broker
from repro.cluster.shard import IndexShard, partition_corpus
from repro.core.config import CacheConfig, Policy
from repro.engine.corpus import CorpusConfig
from repro.engine.query import Query
from repro.engine.querylog import QueryLogConfig, generate_query_log

KB = 1024
BASE = CorpusConfig(num_docs=8000, vocab_size=120, seed=19)


def cache_cfg(policy=Policy.CBLRU):
    return CacheConfig(
        mem_result_bytes=100 * KB, mem_list_bytes=256 * KB,
        ssd_result_bytes=512 * KB, ssd_list_bytes=2048 * KB,
        policy=policy,
    )


@pytest.fixture(scope="module")
def log():
    return generate_query_log(QueryLogConfig(
        num_queries=300, distinct_queries=90, vocab_size=120, seed=3))


# -- partitioning ------------------------------------------------------------

def test_partition_counts_and_seeds():
    parts = partition_corpus(BASE, 4)
    assert len(parts) == 4
    for p in parts:
        assert p.config.num_docs == 2000
        assert p.config.vocab_size == BASE.vocab_size
    # Different shards hold different data (derived seeds).
    assert not (parts[0].doc_freqs == parts[1].doc_freqs).all()


def test_partition_validation():
    with pytest.raises(ValueError):
        partition_corpus(BASE, 0)


def test_single_shard_partition_keeps_whole_collection():
    parts = partition_corpus(BASE, 1)
    assert parts[0].config.num_docs == BASE.num_docs


# -- shard -------------------------------------------------------------------------

def test_shard_runs_queries():
    shard = IndexShard(0, partition_corpus(BASE, 2)[0], cache_cfg())
    out = shard.process_query(Query(0, (3, 7)))
    assert out.response_us > 0
    assert shard.stats.queries == 1
    assert "shard 0" in shard.describe()


def test_shard_validation():
    with pytest.raises(ValueError):
        IndexShard(-1, partition_corpus(BASE, 2)[0], cache_cfg())


def test_shard_observes_cache_activity_via_events(log):
    """Shards consume the event-hook seam instead of manager internals."""
    shard = IndexShard(0, partition_corpus(BASE, 2)[0], cache_cfg())
    for query in log.head(200):
        shard.process_query(query)
    assert shard.ssd_flush_count == (shard.stats.ssd_result_writes
                                     + shard.stats.ssd_list_writes)
    assert shard.ssd_flush_count > 0
    assert shard.cache_events.get("admit", "result") > 0
    assert shard.cache_events.get("evict", "list") > 0


# -- broker ------------------------------------------------------------------------

def test_broker_build_and_fanout(log):
    broker = Broker.build(BASE, num_shards=3, cache_config=cache_cfg())
    assert broker.num_shards == 3
    out = broker.process_query(log[0])
    assert len(out.shard_times_us) == 3
    # Fan-out latency = slowest shard + merge overhead.
    assert out.response_us == pytest.approx(
        max(out.shard_times_us) + broker.merge_overhead_us
    )


def test_broker_validation():
    with pytest.raises(ValueError):
        Broker([])
    shard = IndexShard(0, partition_corpus(BASE, 2)[0], cache_cfg())
    with pytest.raises(ValueError):
        Broker([shard, shard])  # duplicate ids
    with pytest.raises(ValueError):
        Broker([shard], merge_overhead_us=-1.0)


def test_broker_stats_accumulate(log):
    broker = Broker.build(BASE, num_shards=2, cache_config=cache_cfg())
    for q in log.head(50):
        broker.process_query(q)
    stats = broker.stats
    assert stats.queries == 50
    assert stats.mean_response_us > 0
    assert stats.throughput_qps > 0
    assert all(b > 0 for b in stats.per_shard_busy_us)
    assert stats.mean_straggler_us >= 0
    assert 0 <= broker.combined_hit_ratio() <= 1


def test_every_shard_sees_every_query(log):
    broker = Broker.build(BASE, num_shards=3, cache_config=cache_cfg())
    for q in log.head(40):
        broker.process_query(q)
    for shard in broker.shards:
        assert shard.stats.queries == 40


def test_repeat_queries_hit_all_shard_result_caches(log):
    broker = Broker.build(BASE, num_shards=2, cache_config=cache_cfg())
    q = log[0]
    broker.process_query(q)
    out = broker.process_query(q)
    assert out.shard_result_hits == 2


def test_sharding_reduces_per_query_latency(log):
    """Each shard scans 1/N of the postings, so fan-out latency drops
    with shard count (until merge overhead dominates)."""
    results = {}
    for n in (1, 4):
        broker = Broker.build(BASE, num_shards=n, cache_config=cache_cfg())
        for q in log.head(60):
            broker.process_query(q)
        results[n] = broker.stats.mean_response_us
    assert results[4] < results[1]


def test_broker_result_cache_hits_skip_fanout(log):
    broker = Broker.build(BASE, num_shards=2, cache_config=cache_cfg())
    broker.result_cache_entries = 64
    q = log[0]
    first = broker.process_query(q)
    assert first.shard_times_us  # fan-out happened
    second = broker.process_query(q)
    assert second.shard_times_us == ()  # answered at the broker
    assert second.response_us == pytest.approx(broker.broker_hit_us)
    assert broker.stats.broker_cache_hits == 1
    # Shards never saw the second query.
    for shard in broker.shards:
        assert shard.stats.queries == 1


def test_broker_result_cache_evicts_lru():
    broker = Broker.build(BASE, num_shards=1, cache_config=cache_cfg(),
                          )
    broker.result_cache_entries = 2
    qs = [Query(i, (1 + i,)) for i in range(3)]
    for q in qs:
        broker.process_query(q)
    broker.process_query(qs[0])  # evicted: full fan-out again
    assert broker.stats.broker_cache_hits == 0
    broker.process_query(qs[2])  # still cached
    assert broker.stats.broker_cache_hits == 1


def test_broker_cache_validation():
    shard = IndexShard(0, partition_corpus(BASE, 2)[0], cache_cfg())
    with pytest.raises(ValueError):
        Broker([shard], result_cache_entries=-1)
    with pytest.raises(ValueError):
        Broker([shard], broker_hit_us=-1.0)


def test_broker_cache_lowers_mean_response(log):
    plain = Broker.build(BASE, num_shards=2, cache_config=cache_cfg())
    cached = Broker.build(BASE, num_shards=2, cache_config=cache_cfg())
    cached.result_cache_entries = 256
    for q in log.head(120):
        plain.process_query(q)
        cached.process_query(q)
    assert cached.stats.mean_response_us < plain.stats.mean_response_us
    assert cached.stats.broker_cache_hits > 0


def test_cbslru_cluster_warmup(log):
    broker = Broker.build(BASE, num_shards=2,
                          cache_config=cache_cfg(Policy.CBSLRU))
    broker.warmup_static(log, analyze_queries=150)
    for shard in broker.shards:
        assert shard.manager.static_results or shard.manager.static_lists
    for q in log.head(30):
        broker.process_query(q)
    assert broker.total_ssd_erases() >= 0


# -- cluster-wide observability ----------------------------------------------

def test_broker_event_totals_equal_sum_of_shard_counts(log):
    broker = Broker.build(BASE, num_shards=3, cache_config=cache_cfg())
    for q in log.head(150):
        broker.process_query(q)
    total = broker.cache_event_totals()
    keys = set(total.counts)
    for shard in broker.shards:
        keys |= set(shard.cache_events.counts)
    assert keys, "no cache events observed"
    for key in keys:
        assert total.counts.get(key, 0) == sum(
            s.cache_events.counts.get(key, 0) for s in broker.shards
        )


def test_broker_aggregated_registry_sums_shard_registries(log):
    broker = Broker.build(BASE, num_shards=2, cache_config=cache_cfg(),
                          telemetry=True)
    for q in log.head(120):
        broker.process_query(q)
    merged = broker.aggregated_registry()
    queries = [inst for name, tags, inst in merged.items()
               if name == "queries_total"]
    assert sum(c.value for c in queries) == sum(
        s.stats.queries for s in broker.shards
    )
    per_shard = sum(
        inst.count
        for shard in broker.shards
        for name, tags, inst in shard.telemetry.registry.items()
        if name == "query_latency_us"
    )
    merged_hist = sum(inst.count for name, tags, inst in merged.items()
                      if name == "query_latency_us")
    assert merged_hist == per_shard > 0


def test_broker_without_telemetry_aggregates_empty_registry(log):
    broker = Broker.build(BASE, num_shards=2, cache_config=cache_cfg())
    for q in log.head(20):
        broker.process_query(q)
    assert len(broker.aggregated_registry()) == 0
    assert broker.shard_timelines() == {}


def _gauges(registry, name):
    """All (tags, value, merge_mode) for one gauge name."""
    return [(tags, inst.value, inst.merge_mode)
            for n, tags, inst in registry.items() if n == name]


def test_broker_gauge_merge_modes_across_shards(log):
    broker = Broker.build(BASE, num_shards=3, cache_config=cache_cfg(),
                          telemetry=True)
    for q in log:
        broker.process_query(q)
    for shard in broker.shards:
        shard.telemetry.collect()
    merged = broker.aggregated_registry()

    # Occupancy-style gauges sum across shards: cluster capacity is the
    # sum of per-shard capacity.
    for name in ("cache_write_buffer_entries", "flash_free_blocks"):
        per_shard = [v for s in broker.shards
                     for _, v, _ in _gauges(s.telemetry.registry, name)]
        assert per_shard, f"no {name} gauge on any shard"
        (tags, value, mode), = _gauges(merged, name)
        assert mode == "sum"
        assert value == sum(per_shard)

    # Ratio gauges must NOT sum — write amplification 1.1 on each of
    # three shards is 1.1, not 3.3.  Mode "last" keeps the final
    # shard's reading.
    wa = [v for s in broker.shards
          for _, v, _ in _gauges(s.telemetry.registry,
                                 "flash_write_amplification")]
    assert wa
    (_, merged_wa, mode), = _gauges(merged, "flash_write_amplification")
    assert mode == "last"
    assert merged_wa == wa[-1]
    assert merged_wa < sum(wa)

    # Wear projections take the worst shard (mode "max").
    worst = [v for s in broker.shards
             for _, v, _ in _gauges(s.telemetry.registry,
                                    "flash_wear_max_erases")]
    assert worst, "workload produced no SSD erases"
    (_, merged_wear, mode), = _gauges(merged, "flash_wear_max_erases")
    assert mode == "max"
    assert merged_wear == max(worst)


def test_broker_shard_timelines_and_skew(log):
    broker = Broker.build(BASE, num_shards=2, cache_config=cache_cfg(),
                          timeline_window_us=5_000.0)
    for q in log.head(200):
        broker.process_query(q)
    timelines = broker.shard_timelines()
    assert set(timelines) == {0, 1}
    for windows in timelines.values():
        assert len(windows) > 1
        # Every shard sees every query, and windowed deltas account
        # for each one exactly.
        assert sum(w["derived"].get("queries", 0) for w in windows) == 200
    # shard_timelines is stable across calls (finish is idempotent).
    again = broker.shard_timelines()
    assert {sid: len(w) for sid, w in again.items()} == \
        {sid: len(w) for sid, w in timelines.items()}
    # Document-partitioned twins see the same query stream: no skew.
    assert broker.detect_skew() == []
    # A generous tolerance never fires; a zero tolerance flags any
    # difference at all (shards hold different partitions).
    assert broker.detect_skew(rel_tol=10.0) == []
