"""Cache-manager robustness: the policy x scheme x TTL grid, edge-case
capacities, and property-based random query streams."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import CacheConfig, Policy, Scheme
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.query import Query

KB = 1024


@pytest.fixture(scope="module")
def index():
    return InvertedIndex(CorpusConfig(num_docs=3000, vocab_size=60, seed=17))


def build(index, policy, scheme, ttl_us=0.0, **overrides):
    kwargs = dict(
        mem_result_bytes=100 * KB,
        mem_list_bytes=384 * KB,
        ssd_result_bytes=512 * KB,
        ssd_list_bytes=2048 * KB,
        policy=policy,
        scheme=scheme,
        ttl_us=ttl_us,
    )
    kwargs.update(overrides)
    cfg = CacheConfig(**kwargs)
    return CacheManager(cfg, build_hierarchy_for(cfg, index), index)


@pytest.mark.parametrize("policy", list(Policy))
@pytest.mark.parametrize("scheme", list(Scheme))
@pytest.mark.parametrize("ttl_us", [0.0, 20_000.0])
def test_grid_runs_clean_and_consistent(index, policy, scheme, ttl_us):
    mgr = build(index, policy, scheme, ttl_us)
    for i in range(150):
        mgr.process_query(Query(i % 40, (1 + i % 25, 26 + i % 20)))
        if i % 30 == 29:
            mgr.check_invariants()
            mgr.ssd.ftl.nand.check_invariants()
    assert mgr.stats.queries == 150
    assert mgr.stats.mean_response_us > 0
    probs = [p for _, p, _ in mgr.stats.situation_table()]
    assert sum(probs) == pytest.approx(1.0)


def test_zero_result_cache(index):
    mgr = build(index, Policy.CBLRU, Scheme.HYBRID, mem_result_bytes=0,
                ssd_result_bytes=0)
    for i in range(40):
        mgr.process_query(Query(i % 10, (1 + i % 10,)))
    assert mgr.stats.result_l1_hits == 0
    assert mgr.stats.result_misses == 40
    mgr.check_invariants()


def test_zero_list_cache(index):
    mgr = build(index, Policy.CBLRU, Scheme.HYBRID, mem_list_bytes=0,
                ssd_list_bytes=0)
    for i in range(40):
        mgr.process_query(Query(i % 10, (1 + i % 10,)))
    assert mgr.stats.list_l1_hits == 0
    mgr.check_invariants()


def test_single_entry_caches(index):
    mgr = build(index, Policy.CBLRU, Scheme.HYBRID,
                mem_result_bytes=20 * KB, mem_list_bytes=128 * KB,
                ssd_result_bytes=128 * KB, ssd_list_bytes=128 * KB)
    for i in range(60):
        mgr.process_query(Query(i % 15, (1 + i % 12,)))
    mgr.check_invariants()


def test_tiny_window(index):
    mgr = build(index, Policy.CBLRU, Scheme.HYBRID, replace_window=1)
    for i in range(80):
        mgr.process_query(Query(i % 20, (1 + i % 15, 20 + i % 10)))
    mgr.check_invariants()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(
    stream=st.lists(
        st.tuples(st.integers(0, 30), st.integers(1, 55), st.integers(1, 55)),
        min_size=5,
        max_size=120,
    ),
    policy=st.sampled_from(list(Policy)),
)
def test_random_streams_preserve_invariants(index, stream, policy):
    mgr = build(index, policy, Scheme.HYBRID)
    for qid, a, b in stream:
        terms = (a,) if a == b else (a, b)
        mgr.process_query(Query(qid, terms))
    mgr.check_invariants()
    mgr.ssd.ftl.nand.check_invariants()
    stats = mgr.stats
    assert stats.queries == len(stream)
    assert (stats.result_l1_hits + stats.result_l2_hits + stats.result_misses
            == stats.queries)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(
    stream=st.lists(
        st.tuples(st.integers(0, 20), st.integers(1, 50)),
        min_size=5,
        max_size=80,
    ),
)
def test_random_streams_with_ttl(index, stream):
    mgr = build(index, Policy.CBLRU, Scheme.HYBRID, ttl_us=5_000.0)
    for qid, term in stream:
        mgr.process_query(Query(qid, (term,)))
    mgr.check_invariants()
    s = mgr.stats
    assert s.queries == len(stream)
