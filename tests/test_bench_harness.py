"""The bench harness: document shape, determinism, and the regression gate."""

import copy
import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    HOST_WALL_METRIC,
    SUITES,
    BenchScenario,
    DEFAULT_THRESHOLDS,
    compare_benches,
    format_regressions,
    format_wall_report,
    load_bench,
    next_bench_path,
    write_bench,
)
from repro.bench.harness import run_scenario
from repro.bench.regression import Threshold

TINY = BenchScenario("tiny", "cblru", docs=50_000, queries=120,
                     mem_mb=2, ssd_mb=8)


@pytest.fixture(scope="module")
def tiny_entry():
    return run_scenario(TINY)


def make_doc(entry):
    return {"schema": BENCH_SCHEMA, "suite": "tiny",
            "scenarios": {"tiny": copy.deepcopy(entry)}}


# -- running -----------------------------------------------------------------

def test_scenario_metrics_shape(tiny_entry):
    assert tiny_entry["config"] == TINY.to_dict()
    m = tiny_entry["metrics"]
    for key in ("mean_response_ms", "throughput_qps", "result_hit_ratio",
                "list_hit_ratio", "combined_hit_ratio", "ssd_erases",
                "wall_clock_s", "write_amplification"):
        assert key in m, key
    assert m["mean_response_ms"] > 0
    assert 0.0 <= m["combined_hit_ratio"] <= 1.0
    assert m["write_amplification"] >= 1.0
    stage_keys = [k for k in m if k.startswith("stage_")]
    assert stage_keys, "stage-latency percentiles missing"
    assert all(m[k] >= 0 for k in stage_keys)


def test_scenario_is_deterministic_except_wall_clock(tiny_entry):
    again = run_scenario(TINY)["metrics"]
    first = dict(tiny_entry["metrics"])
    first.pop("wall_clock_s")
    again.pop("wall_clock_s")
    assert first == again


def test_scenario_host_block_shape(tiny_entry):
    host = tiny_entry["host"]
    assert host["wall_us_per_query"] > 0
    assert host["build_wall_s"] >= 0
    assert sum(host["subsystem_shares"].values()) == pytest.approx(1.0)
    assert "repro.core" in host["subsystem_shares"]
    assert 0.0 <= host["obs_tax_fraction"] <= 1.0
    assert host["counters"]["ftl_map_lookups"] > 0
    assert host["counters"]["lru_node_moves"] > 0
    for op, ns in host["wall_ns_per_op"].items():
        assert host["counters"][op] > 0 and ns > 0


def test_host_profile_can_be_disabled():
    entry = run_scenario(TINY, host_profile=False)
    host = entry["host"]
    assert host["wall_us_per_query"] > 0
    assert "subsystem_shares" not in host


def test_scenario_records_measurement_methodology(tiny_entry):
    meas = tiny_entry["measurement"]
    assert meas["windows_total"] > 0
    assert 0 < meas["windows_measured"] <= meas["windows_total"]
    if meas["steady_window"] is not None:
        assert isinstance(meas["steady_window"], int)


def test_suites_are_registered():
    assert set(SUITES) == {"smoke", "full", "saturation"}
    names = [s.name for s in SUITES["smoke"]]
    assert len(names) == len(set(names))
    assert {s.policy for s in SUITES["smoke"]} == {"lru", "cblru", "cbslru"}
    # The saturation ladder is open-loop by construction.
    for s in SUITES["saturation"]:
        assert s.arrival in ("poisson", "diurnal")
        assert s.rate_qps > 0
        assert s.concurrency > 1


TINY_OPEN = BenchScenario("tiny-open", "cblru", docs=50_000, queries=150,
                          mem_mb=2, ssd_mb=8, arrival="poisson",
                          rate_qps=200.0, concurrency=4, max_queue=16,
                          warmup_queries=50)


@pytest.fixture(scope="module")
def tiny_open_entry():
    return run_scenario(TINY_OPEN)


def test_open_loop_scenario_metrics_shape(tiny_open_entry):
    m = tiny_open_entry["metrics"]
    for key in ("mean_response_ms", "throughput_qps", "p99_response_ms",
                "p999_response_ms", "mean_wait_ms", "reject_fraction",
                "peak_queue_depth", "bottleneck_utilization",
                "combined_hit_ratio", "wall_clock_s"):
        assert key in m, key
    assert m["mean_response_ms"] > 0
    assert m["p999_response_ms"] >= m["p99_response_ms"] > 0
    assert 0.0 <= m["reject_fraction"] <= 1.0
    assert 0.0 <= m["bottleneck_utilization"] <= 1.0
    meas = tiny_open_entry["measurement"]
    assert meas["arrival"] == "poisson"
    assert meas["offered_qps"] == 200.0
    assert meas["warmup_queries"] == 50
    assert meas["completed"] + meas["rejected"] == meas["measured_queries"]
    assert isinstance(meas["bottleneck"], str) and meas["bottleneck"]


def test_open_loop_host_block_is_timing_only(tiny_open_entry):
    # cProfile is per-thread and kernel tasks run on OS threads, so
    # open-loop scenarios get wall timing without attribution.
    host = tiny_open_entry["host"]
    assert host["wall_us_per_query"] > 0
    assert host["build_wall_s"] >= 0
    assert "subsystem_shares" not in host


def test_closed_loop_entry_has_no_blame_block(tiny_entry):
    # Blame requires the concurrency kernel; closed-loop replays never
    # grow the block, so pre-existing baselines stay byte-identical.
    assert "blame" not in tiny_entry


def test_open_loop_entry_has_blame_block(tiny_open_entry):
    blame = tiny_open_entry["blame"]
    assert 0.0 <= blame["wait_fraction"] <= 1.0
    assert isinstance(blame["bottleneck"], str) and blame["bottleneck"]
    assert blame["knee_qps"] > 0
    assert blame["little_law_ok"]
    assert blame["little_law_max_rel_err"] < 0.05
    per = blame["per_resource"]
    assert blame["bottleneck"] in per
    for entry in per.values():
        assert 0.0 <= entry["utilization"] <= 1.0
        assert entry["mean_wait_us"] >= 0.0
        assert entry["mean_service_us"] >= 0.0


def test_open_loop_scenario_is_deterministic(tiny_open_entry):
    again = run_scenario(TINY_OPEN)["metrics"]
    first = dict(tiny_open_entry["metrics"])
    first.pop("wall_clock_s")
    again.pop("wall_clock_s")
    assert first == again


# -- document io -------------------------------------------------------------

def test_write_load_roundtrip(tmp_path, tiny_entry):
    doc = make_doc(tiny_entry)
    path = tmp_path / "BENCH_0000.json"
    write_bench(doc, path)
    assert load_bench(path) == doc
    # The file is plain sorted JSON (reviewable in a diff).
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == doc


def test_load_rejects_bad_documents(tmp_path):
    path = tmp_path / "bad.json"
    for payload, msg in [
        ({"schema": "other/v9", "scenarios": {"a": {}}}, "not a"),
        ({"schema": BENCH_SCHEMA, "scenarios": {}}, "no scenarios"),
        ({"schema": BENCH_SCHEMA,
          "scenarios": {"a": {"metrics": {"x": 1}}}}, "missing 'config'"),
        ({"schema": BENCH_SCHEMA,
          "scenarios": {"a": {"config": {}, "metrics": {}}}}, "no metrics"),
    ]:
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match=msg):
            load_bench(path)


def test_next_bench_path_numbering(tmp_path):
    assert next_bench_path(tmp_path).endswith("BENCH_0000.json")
    (tmp_path / "BENCH_0003.json").write_text("{}")
    (tmp_path / "BENCH_0001.json").write_text("{}")
    (tmp_path / "not-a-bench.json").write_text("{}")
    assert next_bench_path(tmp_path).endswith("BENCH_0004.json")


# -- the gate ----------------------------------------------------------------

def test_identical_documents_pass(tiny_entry):
    doc = make_doc(tiny_entry)
    assert compare_benches(doc, doc) == []
    assert format_regressions([]) == "no regressions"


def test_methodology_mismatch_is_refused(tiny_entry):
    from repro.bench.harness import METHODOLOGY

    cur = make_doc(tiny_entry)
    cur["methodology"] = dict(METHODOLOGY)
    base = make_doc(tiny_entry)  # pre-methodology baseline
    with pytest.raises(ValueError, match="pre-methodology"):
        compare_benches(cur, base)
    # Different window widths measure different things.
    base["methodology"] = dict(METHODOLOGY, window_us=1.0)
    with pytest.raises(ValueError, match="methodologies"):
        compare_benches(cur, base)
    # Matching methodologies gate normally.
    base["methodology"] = dict(METHODOLOGY)
    assert compare_benches(cur, base) == []


def test_upward_regression_is_caught(tiny_entry):
    base = make_doc(tiny_entry)
    cur = make_doc(tiny_entry)
    m = cur["scenarios"]["tiny"]["metrics"]
    m["mean_response_ms"] *= 1.5
    regs = compare_benches(cur, base)
    assert [r.metric for r in regs] == ["mean_response_ms"]
    assert regs[0].rel_change == pytest.approx(0.5)
    assert "mean_response_ms rose" in format_regressions(regs)


def test_downward_regression_is_caught(tiny_entry):
    base = make_doc(tiny_entry)
    cur = make_doc(tiny_entry)
    m = cur["scenarios"]["tiny"]["metrics"]
    m["throughput_qps"] *= 0.5
    m["combined_hit_ratio"] *= 0.5
    regs = compare_benches(cur, base)
    assert {r.metric for r in regs} == {"throughput_qps",
                                        "combined_hit_ratio"}


def test_improvements_and_tolerated_drift_pass(tiny_entry):
    base = make_doc(tiny_entry)
    cur = make_doc(tiny_entry)
    m = cur["scenarios"]["tiny"]["metrics"]
    m["mean_response_ms"] *= 0.5      # faster: fine
    m["throughput_qps"] *= 2.0        # more throughput: fine
    m["ssd_erases"] += 1              # within abs_tol slack
    assert compare_benches(cur, base) == []


def test_wall_clock_never_gates(tiny_entry):
    base = make_doc(tiny_entry)
    cur = make_doc(tiny_entry)
    cur["scenarios"]["tiny"]["metrics"]["wall_clock_s"] *= 1000
    assert compare_benches(cur, base) == []


def test_host_wall_ratchet_fails_injected_regression(tiny_entry):
    base = make_doc(tiny_entry)
    cur = make_doc(tiny_entry)
    host = cur["scenarios"]["tiny"]["host"]
    host["wall_us_per_query"] = \
        base["scenarios"]["tiny"]["host"]["wall_us_per_query"] * 1.5 + 300
    regs = compare_benches(cur, base)
    assert [r.metric for r in regs] == [HOST_WALL_METRIC]
    assert regs[0].rel_change > 0.30
    report = format_wall_report(cur, base)
    assert "FAILS ratchet" in report


def test_host_wall_within_ratchet_passes(tiny_entry):
    base = make_doc(tiny_entry)
    cur = make_doc(tiny_entry)
    host = cur["scenarios"]["tiny"]["host"]
    # +20% is machine noise, not an algorithmic slip.
    host["wall_us_per_query"] *= 1.2
    assert compare_benches(cur, base) == []


def test_host_wall_improvement_passes_and_is_flagged(tiny_entry):
    base = make_doc(tiny_entry)
    base["scenarios"]["tiny"]["host"]["wall_us_per_query"] = 10_000.0
    cur = make_doc(tiny_entry)
    cur["scenarios"]["tiny"]["host"]["wall_us_per_query"] = 5_000.0
    assert compare_benches(cur, base) == []
    report = format_wall_report(cur, base)
    assert "re-baseline candidate" in report


def test_pre_host_baseline_skips_ratchet(tiny_entry):
    base = make_doc(tiny_entry)
    del base["scenarios"]["tiny"]["host"]
    cur = make_doc(tiny_entry)
    cur["scenarios"]["tiny"]["host"]["wall_us_per_query"] = 1e9
    assert compare_benches(cur, base) == []
    # The wall report still shows the ungated wall_clock_s delta.
    assert "ungated" in format_wall_report(cur, base)


def test_wall_report_always_shows_delta(tiny_entry):
    base = make_doc(tiny_entry)
    cur = make_doc(tiny_entry)
    cur["scenarios"]["tiny"]["metrics"]["wall_clock_s"] *= 2
    report = format_wall_report(cur, base)
    assert "tiny: wall" in report
    assert "+100.0%" in report
    assert "ungated" in report
    empty = {"schema": BENCH_SCHEMA, "suite": "x", "scenarios": {}}
    assert "no shared scenarios" in format_wall_report(empty, base)


def test_stage_percentiles_gate_by_prefix(tiny_entry):
    base = make_doc(tiny_entry)
    cur = make_doc(tiny_entry)
    m = cur["scenarios"]["tiny"]["metrics"]
    stage_key = next(k for k in m if k.startswith("stage_"))
    m[stage_key] = m[stage_key] * 2 + 10
    regs = compare_benches(cur, base)
    assert [r.metric for r in regs] == [stage_key]


def test_vanished_gated_metric_is_a_regression(tiny_entry):
    base = make_doc(tiny_entry)
    cur = make_doc(tiny_entry)
    del cur["scenarios"]["tiny"]["metrics"]["combined_hit_ratio"]
    regs = compare_benches(cur, base)
    assert [(r.metric, r.current) for r in regs] == [("combined_hit_ratio",
                                                      0.0)]


def test_unshared_scenarios_are_skipped(tiny_entry):
    base = make_doc(tiny_entry)
    cur = {"schema": BENCH_SCHEMA, "suite": "tiny",
           "scenarios": {"renamed": copy.deepcopy(tiny_entry)}}
    assert compare_benches(cur, base) == []


def make_open_doc(entry):
    return {"schema": BENCH_SCHEMA, "suite": "tiny-open",
            "scenarios": {"tiny-open": copy.deepcopy(entry)}}


def test_blame_gate_fails_injected_regressions(tiny_open_entry):
    base = make_open_doc(tiny_open_entry)
    cur = make_open_doc(tiny_open_entry)
    blame = cur["scenarios"]["tiny-open"]["blame"]
    blame["knee_qps"] = \
        base["scenarios"]["tiny-open"]["blame"]["knee_qps"] * 0.5 - 5
    blame["wait_fraction"] = \
        base["scenarios"]["tiny-open"]["blame"]["wait_fraction"] * 2 + 0.2
    blame["little_law_max_rel_err"] = 0.5
    regs = compare_benches(cur, base)
    assert {r.metric for r in regs} >= {"blame.knee_qps",
                                        "blame.wait_fraction",
                                        "blame.little_law_max_rel_err"}
    assert "blame.knee_qps fell" in format_regressions(regs)


def test_blame_drift_within_tolerance_passes(tiny_open_entry):
    base = make_open_doc(tiny_open_entry)
    cur = make_open_doc(tiny_open_entry)
    blame = cur["scenarios"]["tiny-open"]["blame"]
    blame["knee_qps"] *= 0.95          # a 5% dip is within the 15% gate
    blame["wait_fraction"] += 0.01     # inside the absolute slack
    assert compare_benches(cur, base) == []


def test_pre_blame_baseline_skips_blame_gate(tiny_open_entry):
    base = make_open_doc(tiny_open_entry)
    del base["scenarios"]["tiny-open"]["blame"]
    cur = make_open_doc(tiny_open_entry)
    cur["scenarios"]["tiny-open"]["blame"]["knee_qps"] = 0.1
    assert not [r for r in compare_benches(cur, base)
                if r.metric.startswith("blame.")]


def test_custom_thresholds_override_defaults(tiny_entry):
    base = make_doc(tiny_entry)
    cur = make_doc(tiny_entry)
    cur["scenarios"]["tiny"]["metrics"]["mean_response_ms"] *= 1.5
    lax = dict(DEFAULT_THRESHOLDS)
    lax["mean_response_ms"] = Threshold("up", rel_tol=1.0)
    assert compare_benches(cur, base, thresholds=lax) == []
