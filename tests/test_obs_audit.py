"""The decision audit trail: recording, explain, parity with unaudited runs."""

import json

import pytest

from repro.core.config import CacheConfig, Policy
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.query import Query
from repro.obs import (
    NULL_AUDIT,
    AuditLog,
    Telemetry,
    explain_subject,
    format_explanation,
    load_audit_jsonl,
)
from repro.sim.clock import VirtualClock

KB = 1024


def make_manager(small_index, telemetry=None, policy=Policy.CBLRU):
    cfg = CacheConfig(
        mem_result_bytes=100 * KB, mem_list_bytes=384 * KB,
        ssd_result_bytes=512 * KB, ssd_list_bytes=2048 * KB,
        policy=policy,
    )
    return CacheManager(cfg, build_hierarchy_for(cfg, small_index), small_index,
                        telemetry=telemetry)


def replay(mgr, n=200):
    for i in range(n):
        mgr.process_query(Query(i % 60, (1 + i % 25, 26 + i % 20)))


# -- the log itself ----------------------------------------------------------

def test_record_stamps_clock_and_sequences():
    clock = VirtualClock()
    log = AuditLog(clock=clock)
    log.record("list.select", "list", 7, ev=1.5)
    clock.advance(100.0)
    log.record("evict", "list", 7, level="l1")
    assert [r.seq for r in log.records] == [1, 2]
    assert log.records[0].t_us == 0.0
    assert log.records[1].t_us == 100.0
    assert log.records[0].data == {"ev": 1.5}


def test_ring_drops_oldest_past_capacity():
    log = AuditLog(capacity=3)
    for i in range(5):
        log.record("admit", "list", i)
    assert len(log) == 3
    assert log.dropped == 2
    assert [r.key for r in log.records] == [2, 3, 4]
    # Sequence numbers keep counting across drops.
    assert [r.seq for r in log.records] == [3, 4, 5]


def test_records_for_matches_tuple_and_list_keys():
    log = AuditLog()
    log.record("admit", "result", (1, 2))
    log.record("admit", "result", (3, 4))
    assert [r.key for r in log.records_for("result", (1, 2))] == [(1, 2)]
    # JSON round-trips tuples as lists; querying with a list still works.
    assert [r.key for r in log.records_for("result", [1, 2])] == [(1, 2)]


def test_export_load_roundtrip_and_validation(tmp_path):
    log = AuditLog()
    log.record("list.select", "list", 5, ev=2.0, tev=0.5, admit=True)
    log.record("admit", "result", (1, 2), level="l2")
    path = tmp_path / "audit.jsonl"
    assert log.export_jsonl(path) == 2
    loaded = load_audit_jsonl(path)
    assert [r["key"] for r in loaded] == [5, [1, 2]]
    with open(path, "w") as fh:
        fh.write(json.dumps({"seq": 1, "type": "x"}) + "\n")
    with pytest.raises(ValueError, match="missing fields"):
        load_audit_jsonl(path)


def test_null_audit_is_inert():
    NULL_AUDIT.record("list.select", "list", 1, ev=1.0)
    assert not NULL_AUDIT.enabled
    assert len(NULL_AUDIT) == 0
    assert NULL_AUDIT.records_for("list", 1) == []


# -- decision sites through a real run ---------------------------------------

def test_run_produces_decision_records(small_index):
    tel = Telemetry(trace=False)
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr)
    types = {r.type for r in tel.audit.records}
    assert "list.select" in types
    assert "list.l1-victim" in types
    assert "admit" in types and "evict" in types
    selects = [r for r in tel.audit.records if r.type == "list.select"]
    for r in selects:
        data = r.data
        assert data["branch"] == ("admit" if data["admit"] else "tev-discard")
        assert data["admit"] == (data["ev"] >= data["tev"]) or not data["sc_blocks"]
        if data["sc_blocks"]:
            assert data["ev"] == pytest.approx(data["freq"] / data["sc_blocks"])


def test_l1_victim_walk_records_min_ev_choice(small_index):
    tel = Telemetry(trace=False)
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr)
    walks = [r for r in tel.audit.records
             if r.type == "list.l1-victim" and r.data["branch"] == "rfr-min-ev"]
    assert walks, "no replace-first-region victim walks recorded"
    for r in walks:
        evs = dict(r.data["candidates"])
        assert r.key in evs
        assert r.data["ev"] == pytest.approx(min(evs.values()))


def test_lru_policy_records_lru_branch(small_index):
    tel = Telemetry(trace=False)
    mgr = make_manager(small_index, telemetry=tel, policy=Policy.LRU)
    replay(mgr)
    walks = [r for r in tel.audit.records if r.type == "list.l1-victim"]
    assert walks
    assert {r.data["branch"] for r in walks} == {"lru"}


def test_audit_disabled_leaves_null_everywhere(small_index):
    tel = Telemetry(trace=False, audit=False)
    mgr = make_manager(small_index, telemetry=tel)
    assert mgr.policy.audit is NULL_AUDIT
    assert mgr.ssd.audit is None
    replay(mgr, n=50)
    assert len(tel.audit) == 0


# -- the paper's acceptance bar: observing must not perturb ------------------

def test_audit_parity_with_unobserved_run(small_index):
    """An audited run makes byte-identical decisions to a bare one."""
    from dataclasses import asdict

    bare = make_manager(small_index)
    observed = make_manager(small_index, telemetry=Telemetry())
    replay(bare)
    replay(observed)
    assert asdict(bare.stats) == asdict(observed.stats)
    assert bare.ssd.erase_count == observed.ssd.erase_count
    assert bare.occupancy() == observed.occupancy()
    assert bare.clock.now_us == observed.clock.now_us


# -- explain -----------------------------------------------------------------

def test_explain_reconstructs_admission_verdict(small_index):
    tel = Telemetry(trace=False)
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr)
    admitted = [r for r in tel.audit.records
                if r.type == "list.select" and r.data["admit"]]
    assert admitted
    term = admitted[-1].key
    exp = explain_subject(tel.audit.records, "list", term)
    assert exp["events"]
    text = format_explanation(exp)
    assert f"audit trail for list {term!r}" in text
    assert "EV=" in text and "TEV=" in text  # the Formula 2 story is visible


def test_explain_tev_discard_verdict():
    log = AuditLog()
    log.record("list.select", "list", 9, si_bytes=1024, pu=0.5, freq=1,
               sc_blocks=4, ev=0.25, tev=0.5, admit=False,
               branch="tev-discard")
    exp = explain_subject(log.records, "list", 9)
    assert exp["on_ssd"] is False
    assert "TEV" in exp["verdict"]


def test_explain_at_us_cuts_later_history():
    clock = VirtualClock()
    log = AuditLog(clock=clock)
    log.record("admit", "list", 3, level="l2", nbytes=1, reason="insert")
    clock.advance(1000.0)
    log.record("evict", "list", 3, level="l2", nbytes=1, reason="replaced")
    now = explain_subject(log.records, "list", 3)
    past = explain_subject(log.records, "list", 3, at_us=500.0)
    assert now["on_ssd"] is False
    assert past["on_ssd"] is True
    assert len(past["events"]) == 1


def test_explain_unknown_subject():
    exp = explain_subject([], "list", 42)
    assert exp["events"] == []
    assert exp["on_ssd"] is None
    assert "no records" in exp["verdict"]


# -- telemetry dir export ----------------------------------------------------

def test_telemetry_dir_contains_audit_jsonl(tmp_path, small_index):
    from repro.obs import validate_telemetry_dir, write_telemetry_dir

    tel = Telemetry()
    mgr = make_manager(small_index, telemetry=tel)
    replay(mgr)
    out = tmp_path / "t"
    written = write_telemetry_dir(tel, out)
    assert written["audit_records"] == len(tel.audit)
    counts = validate_telemetry_dir(out)
    assert counts["audit_records"] == written["audit_records"]
    loaded = load_audit_jsonl(out / "audit.jsonl")
    assert {r["type"] for r in loaded} >= {"list.select", "admit", "evict"}
