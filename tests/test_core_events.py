"""The cache event-hook seam: subscription mechanics and stats wiring."""

import pytest

from repro.core.config import CacheConfig, Policy, Scheme
from repro.core.events import AdmitEvent, CacheEvents, EventCounter, FlushEvent
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.core.stats import CacheStats, StatsRecorder
from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.query import Query

KB = 1024


@pytest.fixture(scope="module")
def index():
    return InvertedIndex(CorpusConfig(num_docs=3000, vocab_size=60, seed=23))


def make_manager(index, policy=Policy.CBLRU, scheme=Scheme.HYBRID, **overrides):
    kwargs = dict(
        mem_result_bytes=100 * KB,
        mem_list_bytes=384 * KB,
        ssd_result_bytes=512 * KB,
        ssd_list_bytes=2048 * KB,
        policy=policy,
        scheme=scheme,
    )
    kwargs.update(overrides)
    cfg = CacheConfig(**kwargs)
    return CacheManager(cfg, build_hierarchy_for(cfg, index), index)


# -- bus mechanics -----------------------------------------------------------

def test_subscribe_and_unsubscribe():
    events = CacheEvents()
    seen = []
    unsubscribe = events.subscribe(on_admit=seen.append)
    event = AdmitEvent(kind="result", key=(1,), level="l1", nbytes=10)
    events.admit(event)
    assert seen == [event]
    unsubscribe()
    events.admit(event)
    assert len(seen) == 1


def test_partial_subscription_only_receives_requested_hooks():
    events = CacheEvents()
    flushes = []
    events.subscribe(on_flush=flushes.append)
    events.admit(AdmitEvent(kind="result", key=(1,), level="l1"))
    events.flush(FlushEvent(kind="list", lba=0, nbytes=128 * KB))
    assert len(flushes) == 1 and flushes[0].kind == "list"


def test_failing_subscriber_does_not_starve_later_subscribers():
    """Dispatch contract: every hook runs, then the first error surfaces."""
    events = CacheEvents()
    calls = []

    def boom(event):
        calls.append("boom")
        raise RuntimeError("observer bug")

    events.subscribe(on_admit=boom)
    events.subscribe(on_admit=lambda e: calls.append("late"))
    with pytest.raises(RuntimeError, match="observer bug"):
        events.admit(AdmitEvent(kind="result", key=(1,), level="l1"))
    assert calls == ["boom", "late"]


def test_first_of_several_exceptions_is_reraised():
    events = CacheEvents()
    events.subscribe(on_flush=lambda e: (_ for _ in ()).throw(ValueError("first")))
    events.subscribe(on_flush=lambda e: (_ for _ in ()).throw(KeyError("second")))
    with pytest.raises(ValueError, match="first"):
        events.flush(FlushEvent(kind="result", lba=0, nbytes=1))


def test_event_counter_merge_sums_key_wise():
    a_bus, b_bus = CacheEvents(), CacheEvents()
    a, b = EventCounter(a_bus), EventCounter(b_bus)
    a_bus.flush(FlushEvent(kind="result", lba=0, nbytes=1))
    b_bus.flush(FlushEvent(kind="result", lba=0, nbytes=1))
    b_bus.flush(FlushEvent(kind="list", lba=0, nbytes=1))  # key a never saw
    total = EventCounter()  # detached aggregator, no bus
    assert total.merge(a).merge(b) is total
    assert total.get("flush", "result") == 2
    assert total.get("flush", "list") == 1
    assert a.get("flush", "result") == 1  # merge does not mutate sources


def test_event_counter_counts_by_hook_and_kind():
    events = CacheEvents()
    counter = EventCounter(events)
    events.flush(FlushEvent(kind="result", lba=0, nbytes=1))
    events.flush(FlushEvent(kind="result", lba=0, nbytes=1))
    events.flush(FlushEvent(kind="list", lba=0, nbytes=1))
    assert counter.get("flush", "result") == 2
    assert counter.get("flush", "list") == 1
    assert counter.get("evict", "result") == 0
    counter.close()
    events.flush(FlushEvent(kind="result", lba=0, nbytes=1))
    assert counter.get("flush", "result") == 2


# -- the manager emits a faithful event stream -------------------------------

def test_flush_events_match_ssd_write_counters(index):
    mgr = make_manager(index)
    counter = EventCounter(mgr.events)
    for i in range(250):
        mgr.process_query(Query(i % 60, (1 + i % 25, 26 + i % 20)))
    assert mgr.stats.ssd_result_writes > 0
    assert mgr.stats.ssd_list_writes > 0
    assert counter.get("flush", "result") == mgr.stats.ssd_result_writes
    assert counter.get("flush", "list") == mgr.stats.ssd_list_writes


def test_tev_discards_and_revalidations_flow_through_events(index):
    mgr = make_manager(index, tev=2.0)
    tev_discards = []
    revalidations = []
    mgr.events.subscribe(
        on_evict=lambda e: tev_discards.append(e) if e.reason == "tev" else None,
        on_admit=lambda e: revalidations.append(e) if e.reason == "revalidate" else None,
    )
    for i in range(250):
        mgr.process_query(Query(i % 60, (1 + i % 25, 26 + i % 20)))
    assert len(tev_discards) == mgr.stats.discarded_by_tev
    assert len(revalidations) == mgr.stats.ssd_writes_avoided
    assert mgr.stats.discarded_by_tev > 0


def test_victim_stage_events_match_stage_counters(index):
    mgr = make_manager(index, ssd_list_bytes=512 * KB)  # tight region forces victims
    stages = []
    mgr.events.subscribe(on_l2_victim=lambda e: stages.append(e.stage))
    for i in range(300):
        mgr.process_query(Query(i, (1 + i % 30, 31 + i % 25)))
    staged = (mgr.stats.evict_stage_replaceable + mgr.stats.evict_stage_size_match
              + mgr.stats.evict_stage_assemble + mgr.stats.evict_stage_fallback)
    counted = sum(1 for s in stages
                  if s in ("replaceable", "size-match", "assemble", "fallback"))
    assert staged > 0
    assert counted == staged


def test_stats_recorder_is_reusable_on_a_bare_bus():
    events = CacheEvents()
    stats = CacheStats()
    recorder = StatsRecorder(stats, events)
    events.flush(FlushEvent(kind="result", lba=0, nbytes=1))
    events.flush(FlushEvent(kind="list", lba=0, nbytes=1))
    events.admit(AdmitEvent(kind="list", key=3, level="l2", reason="revalidate"))
    assert stats.ssd_result_writes == 1
    assert stats.ssd_list_writes == 1
    assert stats.ssd_writes_avoided == 1
    recorder.close()
    events.flush(FlushEvent(kind="result", lba=0, nbytes=1))
    assert stats.ssd_result_writes == 1


def test_observers_cannot_break_parity(index):
    """Subscribing observers must not change cache behaviour."""
    def replay(with_observer):
        mgr = make_manager(index, policy=Policy.CBSLRU)
        if with_observer:
            EventCounter(mgr.events)
        outcomes = []
        for i in range(150):
            out = mgr.process_query(Query(i % 40, (1 + i % 25, 26 + i % 20)))
            outcomes.append((out.situation, out.result_hit_level, out.response_us))
        return outcomes, mgr.occupancy()

    assert replay(False) == replay(True)
