"""Per-query blame: exact reconciliation, capacity model, JSONL schema."""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.broker import Broker
from repro.core.config import CacheConfig, Policy
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.querylog import QueryLogConfig, generate_query_log
from repro.obs import Telemetry
from repro.obs.blame import (
    ADMISSION,
    BLAME_SCHEMA,
    BlameRecorder,
    QueryBlame,
    assemble_queries,
    blame_profiles,
    capacity_model,
    format_blame_report,
    format_query_blame,
    load_blame_jsonl,
    validate_blame_jsonl,
)
from repro.obs.timeline import derive_window
from repro.sim.clock import VirtualClock
from repro.sim.kernel import AdmissionControl, Kernel
from repro.sim.queueing import mm1_mean_wait_us, simulate_fifo_queue
from repro.sim.rng import make_rng
from repro.workloads.openloop import PoissonArrivals, run_open_loop

KB = 1024


@pytest.fixture(scope="module")
def index():
    return InvertedIndex(CorpusConfig(num_docs=4000, vocab_size=120, seed=29))


@pytest.fixture(scope="module")
def log():
    return generate_query_log(QueryLogConfig(
        num_queries=120, distinct_queries=60, vocab_size=120, seed=5))


def make_manager(index, telemetry=None) -> CacheManager:
    cfg = CacheConfig(
        mem_result_bytes=100 * KB, mem_list_bytes=384 * KB,
        ssd_result_bytes=512 * KB, ssd_list_bytes=2048 * KB,
        policy=Policy.CBLRU,
    )
    return CacheManager(cfg, build_hierarchy_for(cfg, index), index,
                        telemetry=telemetry)


# -- exact reconciliation ----------------------------------------------------

def test_open_loop_reconciles_exactly(index, log):
    tel = Telemetry(trace=False, audit=False)
    manager = make_manager(index, telemetry=tel)
    result = run_open_loop(manager, list(log), PoissonArrivals(60.0, seed=2),
                           concurrency=4, max_queue=64, label="blame")
    rec = tel.blame
    assert rec is not None and rec.kernel is not None
    queries = assemble_queries(rec.records)
    assert len(queries) == result.completed == len(log)
    for q in queries:
        # The strict-handoff kernel makes the decomposition exact, not
        # approximate: admission + waits + services tile the lifetime.
        assert q.residual_us == 0.0
        assert q.total_us > 0
        assert q.admission_wait_us >= 0.0
        assert q.service_us, "every query must consume some resource"
    # Every query carries a qid tag with the manager's semantics (queries
    # completed before this one started): in range, and shared by at most
    # the inflight limit when starts overlap.
    qids = [q.qid for q in queries]
    assert all(qid is not None and 0 <= qid < len(log) for qid in qids)
    assert max(qids.count(v) for v in set(qids)) <= result.concurrency
    # The aggregate ledger agrees with the per-query decomposition.
    total_wait = sum(sum(q.wait_us.values()) for q in queries)
    ledger_wait = sum(t[1] for name, t in rec.totals.items()
                      if name != ADMISSION)
    assert total_wait == pytest.approx(ledger_wait, rel=1e-9)


def test_blame_recording_never_perturbs(index, log):
    """Simulated open-loop results are identical with blame on or off."""
    def run(telemetry):
        manager = make_manager(index, telemetry=telemetry)
        return run_open_loop(manager, list(log),
                             PoissonArrivals(60.0, seed=7),
                             concurrency=4, max_queue=64, label="p")

    bare = dataclasses.asdict(run(None))
    observed = dataclasses.asdict(run(Telemetry(trace=False, audit=False)))
    assert bare == observed


def test_cluster_fanout_reconciles_and_blames_straggler(log):
    base = CorpusConfig(num_docs=6000, vocab_size=120, seed=19)
    cfg = CacheConfig(
        mem_result_bytes=100 * KB, mem_list_bytes=256 * KB,
        ssd_result_bytes=512 * KB, ssd_list_bytes=2048 * KB,
        policy=Policy.CBLRU,
    )
    broker = Broker.build(base, num_shards=2, cache_config=cfg,
                          shared_clock=True)
    rec = BlameRecorder()
    queries = list(log)[:60]
    result = broker.run_open_loop(queries, PoissonArrivals(80.0, seed=3),
                                  concurrency=4, max_queue=32, blame=rec)
    blamed = assemble_queries(rec.records)
    assert len(blamed) == result.completed
    billed = set()
    for q in blamed:
        # Join windows recurse into shard subtasks; clipping at the join
        # bounds can leave float-rounding dust, but nothing structural.
        assert abs(q.residual_us) < 1e-6
        billed.update(q.wait_us)
        billed.update(q.service_us)
    # Per-shard suffixed resources show up in parent queries' bills.
    assert any(name.endswith("#0") for name in billed)
    assert any(name.endswith("#1") for name in billed)
    # At least some queries fanned out and name their straggler shard task.
    stragglers = [q.straggler for q in blamed if q.straggler]
    assert stragglers
    assert all(s.startswith("q") for s in stragglers)


# -- the property, on a synthetic kernel -------------------------------------

# Dyadic durations keep every timestamp exactly representable, so the
# "zero residual" claim is tested as an exact equality, not a tolerance.
_DYADIC_SERVICE = st.integers(min_value=1, max_value=80).map(lambda n: n * 0.5)
_DYADIC_GAP = st.integers(min_value=0, max_value=120).map(lambda n: n * 0.25)


@settings(max_examples=30, deadline=None)
@given(jobs=st.lists(
    st.tuples(
        _DYADIC_GAP,
        st.lists(st.tuples(st.sampled_from(["ssd", "hdd", "cpu"]),
                           _DYADIC_SERVICE), min_size=1, max_size=4),
        st.booleans(),  # fan out a joined child?
    ),
    min_size=1, max_size=12,
))
def test_component_sums_equal_end_to_end(jobs):
    """Property: every top-level task's blame components tile its lifetime."""
    k = Kernel(VirtualClock())
    rec = BlameRecorder().attach(k)
    t = 0.0
    for i, (gap, serves, fan) in enumerate(jobs):
        t += gap

        def body(serves=serves, fan=fan, i=i):
            for res, dur in serves:
                k.serve(res, dur)
            if fan:
                child = k.spawn(lambda: k.serve("shard", 8.0),
                                name=f"q{i}s0")
                child.join()

        k.at(t, lambda fn=body, i=i: k.spawn(fn, name=f"q{i}"))
    k.run()
    queries = assemble_queries(rec.records)
    assert len(queries) == len(jobs)
    for q in queries:
        assert q.total_us == q.components_us  # exactly, no tolerance
        assert q.residual_us == 0.0


# -- Little's law and the capacity model -------------------------------------

def test_little_law_matches_fifo_reference():
    """The recorder's capacity model reconciles with simulate_fifo_queue."""
    n, rate_qps, seed = 300, 3000.0, 9
    service = make_rng(11).exponential(250.0, size=n)
    ref = simulate_fifo_queue(service, rate_qps, seed=seed)
    arrivals = np.cumsum(make_rng(seed).exponential(1e6 / rate_qps, size=n))

    k = Kernel(VirtualClock())
    rec = BlameRecorder().attach(k)
    for i in range(n):
        def body(s=float(service[i])):
            k.serve("dev", s)

        k.at(float(arrivals[i]), lambda fn=body, i=i: k.spawn(fn, name=f"q{i}"))
    k.run()

    cap = rec.capacity(completed=n)
    assert cap["little_law_ok"], cap
    dev = cap["per_resource"]["dev"]
    # Depth-time integral L and lambda*W come from independent paths and
    # must agree almost exactly on a drained run.
    assert dev["little_rel_err"] < 1e-9
    assert dev["mean_wait_us"] == pytest.approx(ref.mean_wait_us, rel=1e-9)
    assert cap["bottleneck"] == "dev"
    assert cap["knee_qps"] > 0


def test_little_law_and_mean_wait_match_mm1():
    n, mean_service, rho = 6000, 100.0, 0.7
    rate_qps = rho * 1e6 / mean_service
    rng = make_rng(42)
    arrivals = np.cumsum(rng.exponential(mean_service / rho, size=n))
    services = rng.exponential(mean_service, size=n)

    k = Kernel(VirtualClock())
    rec = BlameRecorder().attach(k)
    for i in range(n):
        def body(s=float(services[i])):
            k.serve("dev", s)

        k.at(float(arrivals[i]), lambda fn=body, i=i: k.spawn(fn, name=f"q{i}"))
    k.run()

    cap = rec.capacity(completed=n)
    assert cap["little_law_ok"]
    dev = cap["per_resource"]["dev"]
    expected = mm1_mean_wait_us(rate_qps, mean_service)
    assert dev["mean_wait_us"] == pytest.approx(expected, rel=0.15)
    # rho = 0.7, so the knee estimate sits near rate/rho.
    assert cap["knee_qps"] == pytest.approx(rate_qps / rho, rel=0.15)


def test_capacity_model_edge_cases():
    rows = [{"name": "idle", "lanes": 1, "served": 0, "busy_us": 0.0,
             "wait_us": 0.0, "service_us": 0.0, "depth_area_us": 0.0,
             "peak_depth": 0},
            {"name": "hot", "lanes": 2, "served": 10, "busy_us": 150.0,
             "wait_us": 40.0, "service_us": 150.0, "depth_area_us": 190.0,
             "peak_depth": 3}]
    cap = capacity_model(rows, horizon_us=100.0, completed=10)
    assert cap["bottleneck"] == "hot"  # served=0 never wins the bottleneck
    assert cap["per_resource"]["hot"]["utilization"] == pytest.approx(0.75)
    assert cap["knee_qps"] == pytest.approx((10 / 100e-6) / 0.75)
    assert cap["little_law_ok"]
    # Zero horizon: no division, everything reports zero.
    zero = capacity_model(rows, horizon_us=0.0, completed=10)
    assert zero["knee_qps"] is None
    assert zero["per_resource"]["hot"]["utilization"] == 0.0


# -- differential blame ------------------------------------------------------

def _q(task, total, ssd_wait=0.0, adm=0.0):
    q = QueryBlame(task=task, name=f"q{task}", qid=task, start_us=0.0,
                   end_us=total - adm, admission_wait_us=adm)
    q.wait_us["ssd"] = ssd_wait
    q.service_us["cpu"] = total - adm - ssd_wait
    return q


def test_blame_profiles_names_the_growing_wait():
    fast = [_q(i, 100.0, ssd_wait=5.0) for i in range(98)]
    slow = [_q(98 + i, 1000.0, ssd_wait=800.0) for i in range(2)]
    prof = blame_profiles(fast + slow, tail_pct=99.0)
    assert prof["queries"] == 100
    assert prof["verdict"] == "ssd"
    assert prof["wait_growth_us"]["ssd"] > 700.0
    assert prof["tail_total_mean_us"] > prof["median_total_mean_us"]


def test_blame_profiles_empty_and_admission():
    assert blame_profiles([])["verdict"] is None
    # Admission wait is billed under the pseudo-resource in the cohorts.
    qs = [_q(i, 100.0) for i in range(50)] + \
        [_q(50 + i, 900.0, adm=850.0) for i in range(2)]
    prof = blame_profiles(qs, tail_pct=95.0)
    assert prof["verdict"] == ADMISSION


# -- ring, stream, schema ----------------------------------------------------

def _synthetic_run(rec, jobs=20, service=10.0):
    k = Kernel(VirtualClock())
    rec.attach(k)
    for i in range(jobs):
        k.at(float(i), lambda i=i: k.spawn(
            lambda: k.serve("dev", service), name=f"q{i}"))
    k.run()
    return k


def test_ring_drops_oldest_but_totals_survive():
    rec = BlameRecorder(capacity=8)
    _synthetic_run(rec, jobs=20)
    assert len(rec.records) == 8
    assert rec.dropped > 0
    # Aggregates are kept outside the ring: still exact after drops.
    assert rec.totals["dev"][0] == 20
    assert rec.totals["dev"][2] == pytest.approx(20 * 10.0)


def test_jsonl_stream_roundtrip_and_validation(tmp_path):
    path = str(tmp_path / "blame.jsonl")
    rec = BlameRecorder()
    rec.open_stream(path)
    _synthetic_run(rec, jobs=5)
    rec.finish()
    counts = validate_blame_jsonl(path)
    assert counts["serve"] == 5
    assert counts["task"] == 5
    assert counts["resource"] == 1
    assert counts["footer"] == 1
    log = load_blame_jsonl(path)
    assert log.header["schema"] == BLAME_SCHEMA
    assert log.footer["dropped"] == 0
    # Re-export to the streamed path is a no-op; a fresh path round-trips.
    assert rec.export_jsonl(path) == len(rec.records)
    other = str(tmp_path / "copy.jsonl")
    rec.export_jsonl(other)
    assert [q.residual_us for q in
            assemble_queries(load_blame_jsonl(other).records)] == [0.0] * 5


def test_validate_rejects_bad_files(tmp_path):
    bad_header = tmp_path / "bad1.jsonl"
    bad_header.write_text('{"schema": "nope/v9"}\n')
    with pytest.raises(ValueError, match="not a"):
        validate_blame_jsonl(str(bad_header))
    bad_type = tmp_path / "bad2.jsonl"
    bad_type.write_text(json.dumps({"schema": BLAME_SCHEMA}) + "\n"
                        + '{"type": "mystery"}\n')
    with pytest.raises(ValueError, match="unknown record type"):
        validate_blame_jsonl(str(bad_type))
    missing = tmp_path / "bad3.jsonl"
    missing.write_text(json.dumps({"schema": BLAME_SCHEMA}) + "\n"
                       + '{"type": "serve", "task": 0}\n')
    with pytest.raises(ValueError, match="missing field"):
        validate_blame_jsonl(str(missing))


def test_shed_and_footer_account_every_arrival():
    k = Kernel(VirtualClock())
    rec = BlameRecorder()
    admission = AdmissionControl(k, max_inflight=1, max_queue=1)
    rec.attach(k, admission=admission)
    for i in range(4):
        k.at(0.0, lambda i=i: admission.submit(
            lambda: k.serve("dev", 10.0), name=f"j{i}"))
    k.run()
    rec.finish()
    sheds = [r for r in rec.records if r.get("type") == "shed"]
    footer = [r for r in rec.records if r.get("type") == "footer"][0]
    assert len(sheds) == admission.stats.rejected == 2
    assert footer["arrived"] == 4
    assert footer["completed"] + footer["rejected"] == 4
    assert footer["shed"] == 2
    # Admission wait is billed under the pseudo-resource.
    assert rec.totals[ADMISSION][0] == admission.stats.admitted == 2
    # finish() is idempotent: no duplicate footer on a second call.
    rec.finish()
    assert sum(1 for r in rec.records if r.get("type") == "footer") == 1


# -- derived series and formatting -------------------------------------------

def test_wait_fraction_derived_from_blame_counters():
    rec = {"counters": {"blame_wait_us_total{resource=dev}": 75.0,
                        "blame_service_us_total{resource=dev}": 25.0},
           "gauges": {}, "histograms": {}}
    assert derive_window(rec)["wait_fraction"] == pytest.approx(0.75)
    # Without blame counters the series is simply absent.
    assert "wait_fraction" not in derive_window(
        {"counters": {}, "gauges": {}, "histograms": {}})


def test_format_renders_report_and_query(index, log):
    tel = Telemetry(trace=False, audit=False)
    manager = make_manager(index, telemetry=tel)
    run_open_loop(manager, list(log)[:40], PoissonArrivals(60.0, seed=2),
                  concurrency=4, label="fmt")
    rec = tel.blame
    queries = assemble_queries(rec.records)
    report = format_blame_report(queries, blame_profiles(queries),
                                 rec.capacity(completed=len(queries)))
    assert "capacity model" in report
    assert "Little's-law self-check: ok" in report
    assert "<- blame" in report
    text = format_query_blame(max(queries, key=lambda q: q.total_us))
    assert "total" in text and "residual 0.000 us" in text
