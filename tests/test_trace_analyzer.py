"""Trace analysis statistics."""

import numpy as np
import pytest

from repro.trace.analyzer import analyze_trace
from repro.trace.record import Trace


def make(lbas, sizes=None, reads=None):
    n = len(lbas)
    return Trace(
        np.array(lbas, dtype=np.int64),
        np.array(sizes if sizes is not None else [512] * n, dtype=np.int64),
        np.array(reads if reads is not None else [True] * n),
    )


def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        analyze_trace(make([]))


def test_parameter_validation():
    with pytest.raises(ValueError):
        analyze_trace(make([0]), region_sectors=0)


def test_read_fraction():
    t = make([0, 1, 2, 3], reads=[True, True, True, False])
    assert analyze_trace(t).read_fraction == pytest.approx(0.75)


def test_sequential_trace_not_random():
    # Back-to-back: each request starts where the previous ended.
    t = make([0, 8, 16, 24], sizes=[4096] * 4)
    a = analyze_trace(t)
    assert a.random_fraction == 0.0
    assert a.skipped_read_fraction == 0.0


def test_skipped_reads_detected():
    # Forward jumps smaller than the window but not contiguous.
    t = make([0, 100, 200, 300], sizes=[512] * 4)
    a = analyze_trace(t, skip_window_sectors=4096)
    assert a.skipped_read_fraction == 1.0
    assert a.random_fraction == 1.0  # skips are non-sequential too


def test_far_jumps_are_random_not_skipped():
    t = make([0, 10**6, 2 * 10**6])
    a = analyze_trace(t, skip_window_sectors=4096)
    assert a.skipped_read_fraction == 0.0
    assert a.random_fraction == 1.0


def test_backward_jumps_not_skipped():
    t = make([10**6, 0, 10**6])
    assert analyze_trace(t).skipped_read_fraction == 0.0


def test_locality_uniform_vs_hot():
    rng = np.random.default_rng(0)
    uniform = make(rng.integers(0, 10**6, 5000).tolist())
    hot = make(
        np.where(rng.random(5000) < 0.9,
                 rng.integers(0, 10**4, 5000),
                 rng.integers(0, 10**6, 5000)).tolist()
    )
    assert analyze_trace(hot).locality_top10 > analyze_trace(uniform).locality_top10


def test_mean_request_and_span():
    t = make([10, 1000], sizes=[512, 1536])
    a = analyze_trace(t)
    assert a.mean_request_bytes == pytest.approx(1024.0)
    assert a.lba_span == 990


def test_summary_is_printable():
    text = analyze_trace(make([0, 50, 100])).summary()
    assert "reads=" in text and "random=" in text
