"""Metric instruments, the registry, and text/JSON exposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_PERCENTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    openmetrics_text,
    prometheus_text,
)

# -- counters and gauges -----------------------------------------------------

def test_counter_increments_and_rejects_negative():
    c = Counter()
    c.inc()
    c.inc(5)
    assert c.value == 6
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_merge_sums():
    a, b = Counter(), Counter()
    a.inc(3)
    b.inc(4)
    a.merge(b)
    assert a.value == 7
    assert b.value == 4


def test_gauge_set_inc_dec_and_merge():
    g = Gauge()
    g.set(10.0)
    g.inc(2.0)
    g.dec(5.0)
    assert g.value == 7.0
    other = Gauge()
    other.set(99.0)
    g.merge(other)  # occupancy-style gauges sum across shards
    assert g.value == 106.0


def test_gauge_merge_modes():
    def pair(mode, a, b):
        x, y = Gauge(merge_mode=mode), Gauge(merge_mode=mode)
        x.set(a)
        y.set(b)
        x.merge(y)
        return x.value

    assert pair("sum", 7.0, 99.0) == 106.0
    assert pair("last", 7.0, 99.0) == 99.0  # merged-in reading wins
    assert pair("max", 7.0, 99.0) == 99.0
    assert pair("min", 7.0, 99.0) == 7.0
    with pytest.raises(ValueError):
        Gauge(merge_mode="average")


def test_registry_gauge_merge_mode_conflict_and_propagation():
    reg = MetricsRegistry()
    reg.gauge("wa", merge_mode="last").set(1.5)
    assert reg.gauge("wa").merge_mode == "last"  # omitted mode: no conflict
    with pytest.raises(ValueError):
        reg.gauge("wa", merge_mode="sum")
    # Registry merge preserves the source gauge's mode on first sight.
    other = MetricsRegistry()
    other.gauge("skew", merge_mode="max").set(3.0)
    reg.merge(other)
    assert reg.get("skew").merge_mode == "max"
    assert reg.get("skew").value == 3.0
    assert reg.get("wa").snapshot() == {"value": 1.5, "merge_mode": "last"}


# -- histogram mechanics -----------------------------------------------------

def test_histogram_validation():
    with pytest.raises(ValueError):
        Histogram(lo=0.0)
    with pytest.raises(ValueError):
        Histogram(growth=1.0)
    h = Histogram()
    with pytest.raises(ValueError):
        h.record(-1.0)
    with pytest.raises(ValueError):
        h.percentile(50.0)  # empty
    h.record(1.0)
    with pytest.raises(ValueError):
        h.percentile(101.0)


def test_histogram_bucket_bounds_contain_their_samples():
    h = Histogram(lo=0.5, growth=1.04)
    for v in (0.0, 0.3, 0.5, 1.0, 17.2, 1234.5, 1e6):
        lo, hi = h.bucket_bounds(h.bucket_index(v))
        assert lo <= v < hi or (v == 0.0 and lo == 0.0)


def test_histogram_tracks_count_sum_min_max():
    h = Histogram()
    h.record_many([5.0, 1.0, 9.0])
    assert h.count == 3
    assert h.sum == 15.0
    assert h.min == 1.0
    assert h.max == 9.0
    assert h.mean == 5.0


def test_histogram_percentiles_ordered_and_clamped():
    h = Histogram()
    h.record_many(float(i) for i in range(1, 101))
    p50, p90, p95, p99, p999 = h.percentiles()
    assert p50 <= p90 <= p95 <= p99 <= p999
    assert h.min <= p50 and p999 <= h.max
    assert h.percentile(0.0) == h.min
    assert h.percentile(100.0) == h.max


def test_histogram_merge_sums_buckets():
    a, b = Histogram(), Histogram()
    a.record_many([1.0, 2.0, 3.0])
    b.record_many([100.0, 200.0])
    a.merge(b)
    assert a.count == 5
    assert a.sum == 306.0
    assert a.min == 1.0
    assert a.max == 200.0


def test_histogram_merge_rejects_layout_mismatch():
    a = Histogram(lo=0.5, growth=1.04)
    b = Histogram(lo=1.0, growth=1.04)
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_snapshot_has_percentile_keys():
    h = Histogram()
    h.record_many([1.0, 10.0, 100.0])
    snap = h.snapshot()
    assert snap["count"] == 3
    for key in ("p50", "p90", "p95", "p99", "p999", "min", "max"):
        assert key in snap
    assert Histogram().snapshot()["count"] == 0


# -- the acceptance bound: within one bucket width of np.percentile ----------

@settings(max_examples=200, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=1e7,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=200,
    ),
    q=st.floats(min_value=0.0, max_value=100.0),
)
def test_histogram_percentile_within_one_bucket_of_numpy(samples, q):
    h = Histogram(lo=0.5, growth=1.04)
    h.record_many(samples)
    exact = float(np.percentile(samples, q))
    # The estimate interpolates between two order statistics, each located
    # inside its own bucket; the error is bounded by the wider bucket.
    lo_stat = float(np.percentile(samples, q, method="lower"))
    hi_stat = float(np.percentile(samples, q, method="higher"))
    tol = max(h.bucket_width_at(lo_stat), h.bucket_width_at(hi_stat)) + 1e-9
    assert abs(h.percentile(q) - exact) <= tol


def test_histogram_percentiles_accurate_on_latency_like_data():
    rng = np.random.default_rng(17)
    samples = rng.lognormal(mean=7.0, sigma=1.2, size=20_000)
    h = Histogram(lo=0.5, growth=1.04)
    h.record_many(samples.tolist())
    for q in DEFAULT_PERCENTILES:
        exact = float(np.percentile(samples, q))
        assert h.percentile(q) == pytest.approx(exact, rel=0.05)


# -- registry ----------------------------------------------------------------

def test_registry_returns_same_instrument_for_same_identity():
    reg = MetricsRegistry()
    a = reg.counter("hits", level="l1", kind="result")
    b = reg.counter("hits", kind="result", level="l1")  # tag order irrelevant
    assert a is b
    assert reg.counter("hits", level="l2", kind="result") is not a
    assert len(reg) == 2


def test_registry_rejects_kind_conflicts():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_registry_get_and_items():
    reg = MetricsRegistry()
    reg.counter("hits", level="l1").inc(3)
    assert reg.get("hits", level="l1").value == 3
    assert reg.get("hits", level="l9") is None
    entries = list(reg.items())
    assert entries[0][0] == "hits"
    assert entries[0][1] == {"level": "l1"}


def test_registry_snapshot_schema():
    reg = MetricsRegistry()
    reg.counter("queries").inc(2)
    reg.histogram("lat").record(5.0)
    snap = reg.snapshot()
    assert snap["schema"] == "repro.obs.metrics/v1"
    kinds = {m["name"]: m["kind"] for m in snap["metrics"]}
    assert kinds == {"queries": "counter", "lat": "histogram"}


def test_registry_merge_sums_counters_and_histograms():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("n", shard="0").inc(2)
    b.counter("n", shard="0").inc(3)
    b.counter("n", shard="1").inc(7)  # key only the other registry saw
    a.histogram("lat").record_many([1.0, 2.0])
    b.histogram("lat").record_many([3.0])
    b.gauge("occ").set(0.5)
    a.merge(b)
    assert a.get("n", shard="0").value == 5
    assert a.get("n", shard="1").value == 7
    assert a.get("lat").count == 3
    assert a.get("occ").value == 0.5


# -- prometheus text exposition ----------------------------------------------

def test_prometheus_text_renders_all_kinds():
    reg = MetricsRegistry()
    reg.counter("hits_total", level="l1").inc(4)
    reg.gauge("occupancy").set(0.75)
    reg.histogram("latency_us").record_many([10.0, 20.0])
    text = prometheus_text(reg)
    assert '# TYPE hits_total counter' in text
    assert 'hits_total{level="l1"} 4' in text
    assert '# TYPE occupancy gauge' in text
    assert '# TYPE latency_us summary' in text
    assert 'quantile="0.5"' in text
    assert 'latency_us_count 2' in text
    assert text.endswith("\n")


# -- openmetrics text exposition ---------------------------------------------

def test_openmetrics_text_renders_all_kinds():
    reg = MetricsRegistry()
    reg.counter("hits_total", level="l1").inc(4)
    reg.gauge("occupancy").set(0.75)
    reg.histogram("latency_us").record_many([10.0, 20.0])
    text = openmetrics_text(reg)
    # Counter families drop the _total suffix in TYPE; samples keep it.
    assert "# TYPE hits counter" in text
    assert 'hits_total{level="l1"} 4' in text
    assert "# TYPE occupancy gauge" in text
    assert "# TYPE latency_us summary" in text
    assert 'latency_us{quantile="0.5"}' in text
    assert "latency_us_count 2" in text
    assert text.endswith("# EOF\n")


def test_openmetrics_accepts_snapshot_and_matches_registry():
    reg = MetricsRegistry()
    reg.counter("ops_total", kind="read").inc(7)
    reg.gauge("depth", resource="ssd").set(3.0)
    reg.histogram("wait_us").record_many([5.0, 15.0, 25.0])
    assert openmetrics_text(reg.snapshot()) == openmetrics_text(reg)
    with pytest.raises(ValueError, match="snapshot"):
        openmetrics_text({"schema": "other/v1"})


def _om_unescape(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        c = value[i]
        if c == "\\":
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def test_openmetrics_label_escaping_round_trips():
    hostile = 'sla="p99<5ms"\nback\\slash'
    reg = MetricsRegistry()
    reg.counter("evil_total", note=hostile).inc(1)
    text = openmetrics_text(reg)
    line = next(ln for ln in text.splitlines()
                if ln.startswith("evil_total{"))
    # The exposition line is one physical line with a quoted label value.
    escaped = line[line.index('note="') + len('note="'):line.rindex('"')]
    assert "\n" not in escaped
    assert _om_unescape(escaped) == hostile
