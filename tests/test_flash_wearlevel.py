"""Static wear leveling."""

import numpy as np
import pytest

from repro.flash.constants import FlashConfig
from repro.flash.ftl_page import PageMappingFTL
from repro.flash.wear import wear_report
from repro.flash.wearlevel import WearLevelingFTL


@pytest.fixture
def cfg():
    return FlashConfig(num_blocks=64, overprovision=0.15)


def _hot_cold_workload(ftl, rng, rounds=3):
    """Fill everything once, then hammer a small hot region."""
    for lpn in range(ftl.num_lpns):
        ftl.write(lpn)
    hot = ftl.num_lpns // 10
    for _ in range(ftl.config.total_pages * rounds):
        ftl.write(int(rng.integers(0, hot)))


def test_validation(cfg):
    with pytest.raises(ValueError):
        WearLevelingFTL(cfg, wear_delta_threshold=0)
    with pytest.raises(ValueError):
        WearLevelingFTL(cfg, check_interval=0)


def test_levelling_reduces_skew(cfg):
    plain = PageMappingFTL(cfg)
    wl = WearLevelingFTL(cfg, wear_delta_threshold=5, check_interval=32)
    _hot_cold_workload(plain, np.random.default_rng(0))
    _hot_cold_workload(wl, np.random.default_rng(0))
    rp = wear_report(plain.nand.erase_counts)
    rw = wear_report(wl.nand.erase_counts)
    assert rw.skew < rp.skew
    assert rw.max_erases <= rp.max_erases
    assert wl.migrations > 0


def test_levelling_preserves_mapping(cfg):
    wl = WearLevelingFTL(cfg, wear_delta_threshold=4, check_interval=16)
    _hot_cold_workload(wl, np.random.default_rng(1), rounds=2)
    wl.nand.check_invariants()
    assert wl.mapped_lpn_count() == wl.num_lpns
    for lpn in range(0, wl.num_lpns, 37):
        assert wl.ppn_of(lpn) >= 0
        wl.read(lpn)


def test_no_migration_under_even_wear(cfg):
    """Uniform random traffic wears evenly: the trigger must stay quiet."""
    wl = WearLevelingFTL(cfg, wear_delta_threshold=50, check_interval=16)
    rng = np.random.default_rng(2)
    for _ in range(cfg.total_pages * 2):
        wl.write(int(rng.integers(0, wl.num_lpns)))
    assert wl.migrations == 0


def test_span_writes_also_trigger_checks(cfg):
    wl = WearLevelingFTL(cfg, wear_delta_threshold=3, check_interval=64)
    # Cold fill via spans, then hot span overwrites.
    ppb = cfg.pages_per_block
    for start in range(0, wl.num_lpns - ppb, ppb):
        wl.write_span(start, ppb)
    for _ in range(200):
        wl.write_span(0, ppb)
    assert wl.migrations > 0
    wl.nand.check_invariants()


def test_migration_charges_latency(cfg):
    wl = WearLevelingFTL(cfg, wear_delta_threshold=2, check_interval=8)
    rng = np.random.default_rng(3)
    total = 0.0
    for lpn in range(wl.num_lpns):
        total += wl.write(lpn)
    hot_total = 0.0
    for _ in range(cfg.total_pages):
        hot_total += wl.write(int(rng.integers(0, 16)))
    # Migrations include erase costs, so some writes must be expensive.
    assert hot_total > cfg.total_pages * cfg.write_us
