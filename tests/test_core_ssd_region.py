"""SSD cache-file allocators: whole-block and byte-granular."""

import pytest

from repro.core.ssd_region import BlockRegion, ByteRegion

SB = 128 * 1024


# -- BlockRegion ---------------------------------------------------------------

def test_block_region_geometry():
    r = BlockRegion(base_lba=1000, num_blocks=10, block_bytes=SB)
    assert r.sectors_per_block == 256
    assert r.free_count == 10
    assert r.lba_of(0) == 1000
    assert r.lba_of(3) == 1000 + 3 * 256


def test_block_region_validation():
    with pytest.raises(ValueError):
        BlockRegion(0, 4, 1000)  # not sector aligned
    with pytest.raises(ValueError):
        BlockRegion(-1, 4, SB)
    r = BlockRegion(0, 4, SB)
    with pytest.raises(IndexError):
        r.lba_of(4)


def test_block_alloc_initially_sequential():
    r = BlockRegion(0, 8, SB)
    assert r.alloc(3) == [0, 1, 2]
    assert r.alloc(2) == [3, 4]
    assert r.free_count == 3


def test_block_alloc_insufficient_returns_none():
    r = BlockRegion(0, 4, SB)
    assert r.alloc(5) is None
    assert r.free_count == 4  # nothing consumed on failure


def test_block_free_and_realloc():
    r = BlockRegion(0, 4, SB)
    blocks = r.alloc(4)
    r.free(blocks[:2])
    assert r.free_count == 2
    assert sorted(r.alloc(2)) == sorted(blocks[:2])


def test_block_free_validation():
    r = BlockRegion(0, 4, SB)
    with pytest.raises(IndexError):
        r.free([99])
    with pytest.raises(ValueError):
        r.alloc(-1)


# -- ByteRegion --------------------------------------------------------------------

def test_byte_region_first_fit():
    r = ByteRegion(base_lba=0, size_bytes=10 * 512)
    a = r.alloc(512)
    b = r.alloc(1024)
    assert a == 0 and b == 1
    assert r.free_sectors == 7


def test_byte_region_alloc_rounds_to_sectors():
    r = ByteRegion(0, 10 * 512)
    r.alloc(100)  # rounds to 1 sector
    assert r.free_sectors == 9


def test_byte_region_exhaustion_returns_none():
    r = ByteRegion(0, 2 * 512)
    assert r.alloc(2 * 512) == 0
    assert r.alloc(1) is None


def test_byte_region_free_coalesces():
    r = ByteRegion(0, 6 * 512)  # exactly three 2-sector extents
    a = r.alloc(2 * 512)
    b = r.alloc(2 * 512)
    c = r.alloc(2 * 512)
    r.free(a, 2 * 512)
    r.free(c, 2 * 512)
    # a and c are separated by b: no contiguous 4-sector run exists.
    assert r.alloc(4 * 512) is None
    r.free(b, 2 * 512)
    # Now everything coalesces: a full-region alloc must succeed.
    assert r.alloc(6 * 512) == 0


def test_byte_region_double_free_detected():
    r = ByteRegion(0, 8 * 512)
    a = r.alloc(4 * 512)
    r.free(a, 4 * 512)
    with pytest.raises(ValueError):
        r.free(a, 4 * 512)


def test_byte_region_out_of_range_free():
    r = ByteRegion(0, 4 * 512)
    with pytest.raises(ValueError):
        r.free(100, 512)


def test_byte_region_base_lba_offsets():
    r = ByteRegion(base_lba=5000, size_bytes=4 * 512)
    assert r.alloc(512) == 5000
    r.free(5000, 512)
    assert r.alloc(512) == 5000


def test_byte_region_validation():
    with pytest.raises(ValueError):
        ByteRegion(-1, 512)
    r = ByteRegion(0, 4 * 512)
    with pytest.raises(ValueError):
        r.alloc(0)
    with pytest.raises(ValueError):
        r.free(0, 0)


def test_byte_region_fragmentation_scenario():
    """Interleaved alloc/free produces fragments a big alloc cannot use."""
    r = ByteRegion(0, 100 * 512)
    allocs = [r.alloc(10 * 512) for _ in range(10)]
    assert None not in allocs
    for lba in allocs[::2]:  # free every other extent: 5 x 10 sectors
        r.free(lba, 10 * 512)
    assert r.free_sectors == 50
    assert r.alloc(20 * 512) is None  # no contiguous 20-sector run
    assert r.alloc(10 * 512) is not None
