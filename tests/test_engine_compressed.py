"""Compressed-index integration (d-gap + varbyte sizes end to end)."""

import numpy as np
import pytest

from repro.core.config import CacheConfig
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.builder import build_index
from repro.engine.codec import encoded_size, estimate_compressed_list_bytes
from repro.engine.corpus import CorpusConfig, build_corpus_stats
from repro.engine.documents import generate_documents
from repro.engine.index import InvertedIndex
from repro.engine.processor import QueryProcessor
from repro.engine.query import Query


@pytest.fixture(scope="module")
def raw_index():
    return InvertedIndex(CorpusConfig(num_docs=5000, vocab_size=300, seed=4))


@pytest.fixture(scope="module")
def compressed_index():
    return InvertedIndex(CorpusConfig(num_docs=5000, vocab_size=300, seed=4),
                         compressed=True)


def test_estimate_validation():
    with pytest.raises(ValueError):
        estimate_compressed_list_bytes(np.array([1]), 0)
    with pytest.raises(ValueError):
        estimate_compressed_list_bytes(np.array([0]), 100)


def test_estimate_tracks_exact_sizes():
    """The analytic estimate must be within ~25% of the true encoding."""
    from repro.engine.postings import generate_posting_list

    stats = build_corpus_stats(CorpusConfig(num_docs=5000, vocab_size=100, seed=1))
    est = estimate_compressed_list_bytes(stats.doc_freqs, 5000)
    for term in range(0, 100, 9):
        plist = generate_posting_list(term, int(stats.doc_freqs[term]), 5000,
                                      seed=stats.config.seed)
        if len(plist) < 8:
            continue
        exact = encoded_size(plist)
        assert est[term] == pytest.approx(exact, rel=0.25)


def test_compressed_index_is_smaller(raw_index, compressed_index):
    assert compressed_index.index_bytes < raw_index.index_bytes * 0.7


def test_compressed_lexicon_and_layout_agree(compressed_index):
    for term in range(0, 300, 13):
        assert (compressed_index.lexicon.list_bytes(term)
                == compressed_index.layout.extent(term).nbytes)


def test_compressed_plan_demands_scale(raw_index, compressed_index):
    """Same traversal depth costs fewer bytes on the compressed index."""
    q = Query(0, (0, 5))
    raw_plan = QueryProcessor(raw_index, seed=9).plan(q)
    comp_plan = QueryProcessor(compressed_index, seed=9).plan(q)
    for raw_d, comp_d in zip(raw_plan.demands, comp_plan.demands):
        assert raw_d.postings == comp_d.postings  # same work
        assert comp_d.needed_bytes < raw_d.needed_bytes  # less I/O
        assert 0 < comp_d.pu <= 1.0


def test_compressed_index_runs_through_cache(compressed_index):
    cfg = CacheConfig.paper_split(mem_bytes=1 << 20, ssd_bytes=8 << 20,
                                  policy="cblru")
    mgr = CacheManager(cfg, build_hierarchy_for(cfg, compressed_index),
                       compressed_index)
    for i in range(80):
        mgr.process_query(Query(i % 20, (1 + i % 40,)))
    mgr.check_invariants()
    assert mgr.stats.queries == 80


def test_compressed_reduces_uncached_io(raw_index, compressed_index):
    from repro.workloads.retrieval import run_uncached
    from repro.engine.querylog import QueryLogConfig, generate_query_log

    log = generate_query_log(QueryLogConfig(
        num_queries=150, distinct_queries=150, vocab_size=300, seed=5))
    raw = run_uncached(raw_index, log)
    comp = run_uncached(compressed_index, log)
    assert comp.mean_response_ms < raw.mean_response_ms


def test_built_index_compressed_exact_sizes():
    store = generate_documents(num_docs=400, vocab_size=150,
                               avg_doc_len=80, seed=12)
    built = build_index(store, vocab_size=150, compressed=True)
    from repro.engine.postings import PostingList

    for term in range(0, 150, 11):
        plist = built.postings(term)
        if len(plist):
            assert built.lexicon.list_bytes(term) == encoded_size(plist)


def test_layout_rejects_bad_sizes(raw_index):
    from repro.engine.layout import IndexLayout

    with pytest.raises(ValueError):
        IndexLayout(raw_index.stats, sizes_bytes=np.array([1, 2]))
    bad = np.zeros(raw_index.num_terms, dtype=np.int64)
    with pytest.raises(ValueError):
        IndexLayout(raw_index.stats, sizes_bytes=bad)
