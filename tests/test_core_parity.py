"""Golden-parity regression: the refactored cache must replay history exactly.

A seeded query log is replayed under every policy x scheme combination and
the full observable behaviour — the per-query :class:`QueryOutcome` stream,
the final ``occupancy()`` snapshot, and the :class:`CacheStats` counters —
is compared against fixtures recorded *before* the CacheManager decomposition
(``tests/fixtures/core_parity.json``).  Any byte-level behaviour drift in the
layered result/list caches or the pluggable policies fails this test.

Regenerate the fixtures (only legitimate after an intentional behaviour
change, with review) with::

    PARITY_REGEN=1 PYTHONPATH=src python -m pytest tests/test_core_parity.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.config import CacheConfig, Policy, Scheme
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.querylog import QueryLogConfig, generate_query_log

KB = 1024

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "core_parity.json"
NUM_QUERIES = 300

COMBOS = [(policy, scheme) for policy in Policy for scheme in Scheme]


@pytest.fixture(scope="module")
def parity_index() -> InvertedIndex:
    return InvertedIndex(CorpusConfig(num_docs=4000, vocab_size=120, seed=29))


@pytest.fixture(scope="module")
def parity_log():
    return generate_query_log(
        QueryLogConfig(
            num_queries=NUM_QUERIES,
            distinct_queries=90,
            vocab_size=120,
            seed=31,
        )
    )


def _build_manager(index, policy: Policy, scheme: Scheme) -> CacheManager:
    cfg = CacheConfig(
        mem_result_bytes=100 * KB,
        mem_list_bytes=384 * KB,
        ssd_result_bytes=512 * KB,
        ssd_list_bytes=2048 * KB,
        policy=policy,
        scheme=scheme,
    )
    return CacheManager(cfg, build_hierarchy_for(cfg, index), index)


def _stats_digest(stats) -> dict:
    digest = {
        name: getattr(stats, name)
        for name in (
            "queries",
            "total_response_us",
            "result_l1_hits",
            "result_l2_hits",
            "result_misses",
            "list_l1_hits",
            "list_l2_hits",
            "list_partial_hits",
            "list_misses",
            "ssd_result_writes",
            "ssd_list_writes",
            "ssd_writes_avoided",
            "discarded_by_tev",
            "evict_stage_replaceable",
            "evict_stage_size_match",
            "evict_stage_assemble",
            "evict_stage_fallback",
            "expired_results",
            "expired_lists",
            "static_refreshes",
        )
    }
    digest["situation_counts"] = {
        s.name: n for s, n in stats.situation_counts.items()
    }
    return digest


def _replay(index, log, policy: Policy, scheme: Scheme) -> dict:
    mgr = _build_manager(index, policy, scheme)
    record: dict = {}
    if policy is Policy.CBSLRU:
        record["warmup"] = mgr.warmup_static(log)
    outcomes = []
    for query in log:
        out = mgr.process_query(query)
        outcomes.append(
            [out.situation.name, out.result_hit_level, out.response_us]
        )
    mgr.check_invariants()
    record["outcomes"] = outcomes
    record["occupancy"] = mgr.occupancy()
    record["stats"] = _stats_digest(mgr.stats)
    return record


def _combo_key(policy: Policy, scheme: Scheme) -> str:
    return f"{policy.value}/{scheme.value}"


def _replay_kernel(index, log, policy: Policy, scheme: Scheme) -> dict:
    """The same replay, but run as a single task on the discrete-event
    kernel — closed-loop concurrency-1 must be byte-identical to the
    seed's inline accounting."""
    from repro.sim.kernel import Kernel

    mgr = _build_manager(index, policy, scheme)
    record: dict = {}
    if policy is Policy.CBSLRU:
        record["warmup"] = mgr.warmup_static(log)
    kernel = Kernel(mgr.clock)
    mgr.hierarchy.attach_kernel(kernel)
    outcomes = []

    def closed_loop():
        for query in log:
            out = mgr.process_query(query)
            outcomes.append(
                [out.situation.name, out.result_hit_level, out.response_us]
            )

    kernel.spawn(closed_loop, name="closed-loop")
    try:
        kernel.run()
    finally:
        mgr.clock.bind_kernel(None)
    mgr.check_invariants()
    record["outcomes"] = outcomes
    record["occupancy"] = mgr.occupancy()
    record["stats"] = _stats_digest(mgr.stats)
    return record


@pytest.mark.parametrize(
    "policy,scheme", COMBOS, ids=[_combo_key(p, s) for p, s in COMBOS]
)
def test_replay_matches_golden_fixture(parity_index, parity_log, policy, scheme):
    record = _replay(parity_index, parity_log, policy, scheme)
    key = _combo_key(policy, scheme)

    if os.environ.get("PARITY_REGEN"):
        FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
        existing = {}
        if FIXTURE_PATH.exists():
            existing = json.loads(FIXTURE_PATH.read_text())
        existing[key] = record
        FIXTURE_PATH.write_text(
            json.dumps(existing, indent=1, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated fixture for {key}")

    assert FIXTURE_PATH.exists(), (
        "golden fixture missing; regenerate with PARITY_REGEN=1 on a trusted "
        "revision"
    )
    golden = json.loads(FIXTURE_PATH.read_text())
    assert key in golden, f"no golden record for {key}; regenerate fixtures"
    expected = golden[key]

    # Compare piecewise for readable failure output.
    if "warmup" in expected or "warmup" in record:
        assert record.get("warmup") == expected.get("warmup")
    assert record["occupancy"] == expected["occupancy"]
    assert record["stats"] == expected["stats"]
    mismatches = [
        (i, got, want)
        for i, (got, want) in enumerate(zip(record["outcomes"], expected["outcomes"]))
        if got != want
    ]
    assert not mismatches, (
        f"{len(mismatches)} of {NUM_QUERIES} query outcomes diverged; "
        f"first: {mismatches[0]}"
    )
    assert len(record["outcomes"]) == len(expected["outcomes"])


@pytest.mark.parametrize(
    "policy,scheme", COMBOS, ids=[_combo_key(p, s) for p, s in COMBOS]
)
def test_kernel_closed_loop_matches_golden_fixture(
    parity_index, parity_log, policy, scheme
):
    """Concurrency-1 on the kernel reproduces the golden fixtures exactly:
    the event-driven service path is an accounting refactor, not a
    behaviour change, until real concurrency is requested."""
    if os.environ.get("PARITY_REGEN"):
        pytest.skip("fixtures are recorded from the inline closed-loop path")
    assert FIXTURE_PATH.exists(), (
        "golden fixture missing; regenerate with PARITY_REGEN=1 on a trusted "
        "revision"
    )
    record = _replay_kernel(parity_index, parity_log, policy, scheme)
    golden = json.loads(FIXTURE_PATH.read_text())
    expected = golden[_combo_key(policy, scheme)]

    assert record.get("warmup") == expected.get("warmup")
    assert record["occupancy"] == expected["occupancy"]
    assert record["stats"] == expected["stats"]
    mismatches = [
        (i, got, want)
        for i, (got, want) in enumerate(
            zip(record["outcomes"], expected["outcomes"])
        )
        if got != want
    ]
    assert not mismatches, (
        f"kernel closed-loop diverged from golden fixture on "
        f"{len(mismatches)} of {NUM_QUERIES} outcomes; first: {mismatches[0]}"
    )
    assert len(record["outcomes"]) == len(expected["outcomes"])
