"""Page-mapping FTL behaviour (the paper's baseline FTL)."""

import pytest

from repro.flash.constants import FlashConfig
from repro.flash.ftl_page import PageMappingFTL


@pytest.fixture
def ftl(tiny_flash):
    return PageMappingFTL(tiny_flash)


def test_write_then_read_maps(ftl):
    latency = ftl.write(0)
    assert latency >= ftl.config.write_us
    assert ftl.ppn_of(0) >= 0
    assert ftl.read(0) == ftl.config.read_us
    assert ftl.mapped_lpn_count() == 1


def test_read_unmapped_charges_one_read(ftl):
    assert ftl.read(5) == ftl.config.read_us
    assert ftl.stats.host_page_reads == 1


def test_overwrite_relocates_and_invalidates(ftl):
    ftl.write(3)
    first = ftl.ppn_of(3)
    ftl.write(3)
    second = ftl.ppn_of(3)
    assert second != first
    assert ftl.mapped_lpn_count() == 1  # still one logical page


def test_trim_unmaps(ftl):
    ftl.write(7)
    assert ftl.trim(7) == 0.0
    assert ftl.ppn_of(7) == -1
    assert ftl.mapped_lpn_count() == 0
    assert ftl.stats.trimmed_pages == 1


def test_trim_unmapped_is_noop(ftl):
    assert ftl.trim(9) == 0.0
    assert ftl.stats.trimmed_pages == 0


def test_lpn_bounds_checked(ftl):
    with pytest.raises(IndexError):
        ftl.read(ftl.num_lpns)
    with pytest.raises(IndexError):
        ftl.write(-1)


def test_gc_reclaims_space_under_churn(ftl):
    # Overwrite a small working set far beyond physical capacity.
    working_set = ftl.num_lpns // 4
    for i in range(ftl.config.total_pages * 2):
        ftl.write(i % working_set)
    assert ftl.stats.block_erases > 0
    assert ftl.mapped_lpn_count() == working_set
    ftl.nand.check_invariants()
    # Every mapped lpn still resolves to a VALID physical page.
    for lpn in range(working_set):
        assert ftl.ppn_of(lpn) >= 0


def test_gc_latency_charged_to_triggering_write(ftl):
    baseline = ftl.config.write_us
    saw_gc_cost = False
    for i in range(ftl.config.total_pages * 2):
        if ftl.write(i % 8) > baseline:
            saw_gc_cost = True
            break
    assert saw_gc_cost, "some write must absorb GC cost"


def test_write_amplification_grows_with_random_churn(tiny_flash):
    import numpy as np

    ftl = PageMappingFTL(tiny_flash)
    rng = np.random.default_rng(0)
    for lpn in rng.integers(0, ftl.num_lpns, size=tiny_flash.total_pages * 3):
        ftl.write(int(lpn))
    assert ftl.stats.write_amplification > 1.0


def test_sequential_block_overwrites_are_cheap(tiny_flash):
    """Block-aligned sequential overwrites should erase without copying."""
    ftl = PageMappingFTL(tiny_flash)
    ppb = tiny_flash.pages_per_block
    lblocks = ftl.num_lpns // ppb
    for round_ in range(4):
        for lb in range(lblocks):
            for off in range(ppb):
                ftl.write(lb * ppb + off)
    # Whole logical blocks are invalidated together, so GC victims are
    # fully invalid: copy-back should be (near) zero.
    assert ftl.stats.gc_page_writes <= ftl.stats.host_page_writes * 0.01


def test_span_write_equivalent_semantics(tiny_flash):
    span = PageMappingFTL(tiny_flash)
    loop = PageMappingFTL(tiny_flash)
    span.write_span(10, 40)
    for lpn in range(10, 50):
        loop.write(lpn)
    assert span.mapped_lpn_count() == loop.mapped_lpn_count()
    for lpn in range(10, 50):
        assert span.ppn_of(lpn) >= 0


def test_span_read_latency_striped_across_channels(ftl):
    ftl.write_span(0, 16)
    expected_pages = -(-16 // ftl.config.channels)
    assert ftl.read_span(0, 16) == pytest.approx(expected_pages * ftl.config.read_us)


def test_span_trim_unmaps_range(ftl):
    ftl.write_span(0, 32)
    ftl.trim_span(8, 16)
    assert ftl.mapped_lpn_count() == 16
    assert ftl.ppn_of(8) == -1
    assert ftl.ppn_of(0) >= 0
    assert ftl.ppn_of(24) >= 0


def test_span_bounds_checked(ftl):
    with pytest.raises(IndexError):
        ftl.write_span(ftl.num_lpns - 1, 2)
    with pytest.raises(ValueError):
        ftl.read_span(0, 0)


def test_out_of_space_without_gc_candidates():
    """Filling every logical page sequentially must not dead-lock GC."""
    cfg = FlashConfig(num_blocks=16, overprovision=0.2)
    ftl = PageMappingFTL(cfg)
    for lpn in range(ftl.num_lpns):
        ftl.write(lpn)
    assert ftl.mapped_lpn_count() == ftl.num_lpns
    ftl.nand.check_invariants()
