"""Block-mapping FTL behaviour."""

import pytest

from repro.flash.constants import FlashConfig
from repro.flash.ftl_block import BlockMappingFTL


@pytest.fixture
def ftl(tiny_flash):
    return BlockMappingFTL(tiny_flash)


def test_first_write_opens_block(ftl):
    ftl.write(0)
    lbn = 0
    assert ftl.physical_block_of(lbn) >= 0
    assert ftl.mapped_lpn_count() == 1


def test_in_place_fill_is_cheap(ftl):
    ppb = ftl.config.pages_per_block
    for off in range(ppb):
        latency = ftl.write(off)
        assert latency == pytest.approx(ftl.config.write_us)
    assert ftl.stats.block_erases == 0


def test_overwrite_triggers_copy_merge(ftl):
    ppb = ftl.config.pages_per_block
    for off in range(ppb):
        ftl.write(off)
    old_pb = ftl.physical_block_of(0)
    latency = ftl.write(0)  # overwrite
    assert latency > ftl.config.erase_us  # copy + erase + program
    assert ftl.physical_block_of(0) != old_pb
    assert ftl.stats.block_erases == 1
    assert ftl.stats.gc_page_writes == ppb - 1
    assert ftl.mapped_lpn_count() == ppb


def test_read_paths(ftl):
    assert ftl.read(0) == ftl.config.read_us  # unmapped block
    ftl.write(5)
    assert ftl.read(5) == ftl.config.read_us
    assert ftl.read(6) == ftl.config.read_us  # mapped block, free page


def test_trim_frees_whole_block_when_empty(ftl):
    ftl.write(0)
    ftl.write(1)
    free_before = ftl.free_block_count
    ftl.trim(0)
    assert ftl.free_block_count == free_before
    ftl.trim(1)
    assert ftl.free_block_count == free_before + 1
    assert ftl.physical_block_of(0) == -1


def test_trim_unmapped_noop(ftl):
    assert ftl.trim(0) == 0.0


def test_random_writes_are_expensive_vs_page_mapping(tiny_flash):
    from repro.flash.ftl_page import PageMappingFTL

    block_ftl = BlockMappingFTL(tiny_flash)
    page_ftl = PageMappingFTL(tiny_flash)
    lpns = [(i * 37) % (tiny_flash.pages_per_block * 4) for i in range(600)]
    for lpn in lpns:
        block_ftl.write(lpn)
        page_ftl.write(lpn)
    assert block_ftl.stats.block_erases > page_ftl.stats.block_erases
    assert block_ftl.stats.write_amplification > page_ftl.stats.write_amplification


def test_mapped_count_consistent_under_churn(ftl):
    seen = set()
    for i in range(500):
        lpn = (i * 13) % 100
        ftl.write(lpn)
        seen.add(lpn)
    assert ftl.mapped_lpn_count() == len(seen)
    ftl.nand.check_invariants()
