"""Seeded RNG helpers."""

import numpy as np
import pytest

from repro.sim.rng import make_rng, spawn_rngs


def test_same_seed_same_stream():
    a = make_rng(42).random(8)
    b = make_rng(42).random(8)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    assert not np.array_equal(make_rng(1).random(8), make_rng(2).random(8))


def test_existing_generator_passes_through():
    gen = np.random.default_rng(0)
    assert make_rng(gen) is gen


def test_none_seed_gives_generator():
    assert isinstance(make_rng(None), np.random.Generator)


def test_spawn_rngs_independent_and_deterministic():
    streams_a = [g.random(4) for g in spawn_rngs(7, 3)]
    streams_b = [g.random(4) for g in spawn_rngs(7, 3)]
    for a, b in zip(streams_a, streams_b):
        assert np.array_equal(a, b)
    # Streams must differ from each other.
    assert not np.array_equal(streams_a[0], streams_a[1])


def test_spawn_rngs_count():
    assert len(spawn_rngs(0, 5)) == 5
    assert spawn_rngs(0, 0) == []


def test_spawn_rngs_negative_rejected():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)
