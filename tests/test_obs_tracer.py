"""Span tracing over the virtual clock."""

import json

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.sim.clock import VirtualClock


@pytest.fixture()
def clock():
    return VirtualClock()


def test_nested_spans_get_parent_ids(clock):
    tr = Tracer(clock)
    with tr.span("query") as outer:
        clock.advance(10.0)
        with tr.span("probe"):
            clock.advance(5.0)
        outer.set(situation="S1")
    assert [s.name for s in tr.spans] == ["probe", "query"]  # finish order
    probe, query = tr.spans
    assert probe.parent_id == query.span_id
    assert query.parent_id is None
    assert query.start_us == 0.0 and query.end_us == 15.0
    assert probe.dur_us == 5.0
    assert query.attrs == {"situation": "S1"}


def test_record_leaf_span_under_open_parent(clock):
    tr = Tracer(clock)
    with tr.span("query") as q:
        tr.record("dram.read", start_us=1.0, end_us=2.0, nbytes=64)
    leaf = tr.spans[0]
    assert leaf.parent_id == q.span_id
    assert leaf.attrs == {"nbytes": 64}
    assert leaf.dur_us == 1.0
    tr.record("orphan", 0.0, 1.0)
    assert tr.spans[-1].parent_id is None


def test_span_ids_are_unique_and_increasing(clock):
    tr = Tracer(clock)
    for _ in range(5):
        with tr.span("a"):
            pass
    ids = [s.span_id for s in tr.spans]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5


def test_max_spans_cap_counts_drops(clock):
    tr = Tracer(clock, max_spans=2)
    for _ in range(5):
        with tr.span("x"):
            pass
    assert len(tr.spans) == 2
    assert tr.dropped == 3


def test_export_jsonl_roundtrip(tmp_path, clock):
    tr = Tracer(clock)
    with tr.span("query", qid=1):
        clock.advance(3.0)
    path = tmp_path / "spans.jsonl"
    assert tr.export_jsonl(path) == 1
    lines = path.read_text().splitlines()
    span = json.loads(lines[0])
    assert span == {
        "span_id": 1, "parent_id": None, "name": "query",
        "start_us": 0.0, "end_us": 3.0, "dur_us": 3.0, "attrs": {"qid": 1},
    }


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    assert isinstance(NULL_TRACER, NullTracer)
    with NULL_TRACER.span("anything", a=1) as sp:
        sp.set(b=2)
    NULL_TRACER.record("x", 0.0, 1.0)
    assert NULL_TRACER.spans == ()
    assert NULL_TRACER.dropped == 0
    # The disabled span is shared: no per-call allocation.
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
