"""Query planning and execution."""

import pytest

from repro.engine.postings import POSTING_BYTES
from repro.engine.processor import ProcessorCosts, QueryProcessor
from repro.engine.query import Query
from repro.engine.results import DOC_SUMMARY_BYTES


@pytest.fixture
def processor(small_index):
    return QueryProcessor(small_index, seed=1)


def test_plan_covers_all_unique_terms(processor, small_log):
    q = small_log[0]
    plan = processor.plan(q)
    assert {d.term_id for d in plan.demands} == set(q.key)


def test_plan_demands_are_consistent(processor, small_log):
    for q in small_log.head(50):
        for d in processor.plan(q).demands:
            assert 0 < d.needed_bytes <= d.list_bytes
            assert 0 < d.pu <= 1.0
            assert d.postings == d.needed_bytes // POSTING_BYTES
            info = processor.index.lexicon.term(d.term_id)
            assert d.list_bytes == info.list_bytes


def test_plan_totals(processor, small_log):
    plan = processor.plan(small_log[0])
    assert plan.total_postings == sum(d.postings for d in plan.demands)
    assert plan.total_needed_bytes == sum(d.needed_bytes for d in plan.demands)


def test_cpu_time_scales_with_postings(processor):
    q_small = Query(0, (processor.index.num_terms - 1,))
    q_big = Query(1, (0, 1))  # head terms have the longest lists
    t_small = processor.cpu_time_us(processor.plan(q_small))
    t_big = processor.cpu_time_us(processor.plan(q_big))
    assert t_big > t_small
    costs = processor.costs
    assert t_small >= costs.fixed_us + costs.per_result_us * processor.top_k


def test_execute_surrogate_is_deterministic(processor, small_log):
    plan = processor.plan(small_log[0])
    a = processor.execute(plan)
    b = processor.execute(plan)
    assert [r.doc_id for r in a.results] == [r.doc_id for r in b.results]
    assert a.nbytes == processor.top_k * DOC_SUMMARY_BYTES


def test_execute_materialized_scores_real_postings(processor, small_log):
    plan = processor.plan(small_log[0])
    entry = processor.execute(plan, materialize=True)
    assert len(entry) > 0
    scores = [r.score for r in entry.results]
    assert scores == sorted(scores, reverse=True)
    # Every returned doc must appear in some queried posting list.
    all_docs = set()
    for d in plan.demands:
        all_docs.update(processor.index.postings(d.term_id).doc_ids.tolist())
    assert all(r.doc_id in all_docs for r in entry.results)


def test_materialized_ranking_respects_prefix(processor):
    """Only the traversed prefix may contribute to scores."""
    term = 0
    plan = processor.plan(Query(0, (term,)))
    entry = processor.execute(plan, materialize=True)
    plist = processor.index.postings(term)
    prefix_docs = set(plist.doc_ids[: plan.demands[0].postings].tolist())
    assert all(r.doc_id in prefix_docs for r in entry.results)


def test_top_k_validation(small_index):
    with pytest.raises(ValueError):
        QueryProcessor(small_index, top_k=0)


def test_custom_costs(small_index):
    costs = ProcessorCosts(fixed_us=0.0, per_posting_us=1.0, per_result_us=0.0)
    proc = QueryProcessor(small_index, costs=costs, seed=2)
    plan = proc.plan(Query(0, (0,)))
    assert proc.cpu_time_us(plan) == pytest.approx(plan.total_postings)
