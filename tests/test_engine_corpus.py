"""Synthetic corpus statistics."""

import numpy as np
import pytest

from repro.engine.corpus import (
    CorpusConfig,
    build_corpus_stats,
    zipf_mandelbrot_probs,
)


def test_config_validation():
    with pytest.raises(ValueError):
        CorpusConfig(num_docs=0)
    with pytest.raises(ValueError):
        CorpusConfig(vocab_size=0)
    with pytest.raises(ValueError):
        CorpusConfig(zipf_s=0.0)


def test_zipf_probs_normalised_and_decreasing():
    p = zipf_mandelbrot_probs(100, 1.0, 2.7)
    assert p.sum() == pytest.approx(1.0)
    assert (np.diff(p) < 0).all()


def test_zipf_probs_validation():
    with pytest.raises(ValueError):
        zipf_mandelbrot_probs(0, 1.0, 2.7)


def test_stats_shapes_and_consistency(small_corpus):
    stats = small_corpus
    n = stats.config.vocab_size
    assert stats.num_terms == n
    assert stats.term_probs.shape == (n,)
    stats.validate()  # must not raise


def test_doc_freqs_bounded(small_corpus):
    cfg = small_corpus.config
    assert small_corpus.doc_freqs.min() >= 1
    assert small_corpus.doc_freqs.max() <= cfg.num_docs


def test_coll_freq_at_least_doc_freq(small_corpus):
    assert (small_corpus.coll_freqs >= small_corpus.doc_freqs).all()


def test_head_terms_have_larger_lists(small_corpus):
    """Zipf: the first 10% of term ids dominate the last 50%."""
    df = small_corpus.doc_freqs
    head = df[: len(df) // 10].mean()
    tail = df[len(df) // 2:].mean()
    assert head > 5 * tail


def test_determinism():
    a = build_corpus_stats(CorpusConfig(num_docs=1000, vocab_size=100, seed=1))
    b = build_corpus_stats(CorpusConfig(num_docs=1000, vocab_size=100, seed=1))
    assert np.array_equal(a.doc_freqs, b.doc_freqs)
    assert np.array_equal(a.utilization, b.utilization)


def test_seed_changes_output():
    a = build_corpus_stats(CorpusConfig(num_docs=1000, vocab_size=100, seed=1))
    b = build_corpus_stats(CorpusConfig(num_docs=1000, vocab_size=100, seed=2))
    assert not np.array_equal(a.doc_freqs, b.doc_freqs)


def test_utilization_in_unit_interval(small_corpus):
    u = small_corpus.utilization
    assert (u > 0).all() and (u <= 1).all()


def test_long_lists_are_partially_used(small_corpus):
    """Fig. 3a: early termination bites hardest on the longest lists."""
    df = small_corpus.doc_freqs
    u = small_corpus.utilization
    longest = np.argsort(-df)[:10]
    shortest = np.argsort(df)[:10]
    assert u[longest].mean() < u[shortest].mean()


def test_tiny_lists_fully_used(small_corpus):
    df = small_corpus.doc_freqs
    u = small_corpus.utilization
    assert (u[df <= 16] == 1.0).all()


def test_paper_scale_preset():
    cfg = CorpusConfig.paper_scale(2_000_000)
    assert cfg.num_docs == 2_000_000
    assert cfg.vocab_size == 50_000
