"""Trace replay against simulated devices."""

import numpy as np
import pytest

from repro.flash.constants import FlashConfig
from repro.flash.ssd import SimulatedSSD
from repro.hdd.disk import SimulatedHDD
from repro.storage.device import NullDevice
from repro.trace.record import Trace
from repro.trace.replay import replay_trace


def make_trace(n, span, seed=0, read_fraction=1.0, size=4096):
    rng = np.random.default_rng(seed)
    return Trace(
        rng.integers(0, span, n),
        np.full(n, size),
        rng.random(n) < read_fraction,
        name="synthetic",
    )


def test_replay_accumulates_latency():
    hdd = SimulatedHDD()
    t = make_trace(100, hdd.num_sectors // 2)
    result = replay_trace(t, hdd)
    assert result.num_requests == 100
    assert result.total_time_us > 0
    assert result.total_time_us == pytest.approx(
        result.read_time_us + result.write_time_us
    )
    assert result.mean_latency_us == pytest.approx(result.total_time_us / 100)


def test_replay_throughput():
    result = replay_trace(make_trace(10, 1000), NullDevice())
    assert result.throughput_iops == 0.0  # zero simulated time
    hdd = SimulatedHDD()
    result = replay_trace(make_trace(10, hdd.num_sectors // 2), hdd)
    assert result.throughput_iops > 0


def test_replay_read_write_split():
    hdd = SimulatedHDD()
    t = make_trace(200, hdd.num_sectors // 2, read_fraction=0.5)
    result = replay_trace(t, hdd)
    assert result.read_time_us > 0
    assert result.write_time_us > 0


def test_replay_clips_oversized_lbas(tiny_flash):
    ssd = SimulatedSSD(tiny_flash)
    t = make_trace(20, 10**9, size=2048)  # far beyond SSD capacity
    result = replay_trace(t, ssd)
    assert result.num_requests == 20


def test_replay_strict_capacity_raises(tiny_flash):
    ssd = SimulatedSSD(tiny_flash)
    t = make_trace(20, 10**9, size=2048)
    with pytest.raises(ValueError):
        replay_trace(t, ssd, clip_to_capacity=False)


def test_ssd_replays_random_reads_faster_than_hdd(tiny_flash):
    """The premise of the paper: SSD wins on random reads."""
    ssd = SimulatedSSD(tiny_flash)
    # Pre-fill so reads hit mapped pages.
    for off in range(0, ssd.capacity_bytes // 2, 128 * 1024):
        ssd.write(off // 512, 128 * 1024)
    span = ssd.capacity_bytes // 1024  # sectors in the filled half
    t = make_trace(300, span, seed=2)
    r_ssd = replay_trace(t, ssd)
    r_hdd = replay_trace(t, SimulatedHDD())
    assert r_ssd.read_time_us < r_hdd.read_time_us / 5
