"""Per-query critical-path attribution over the concurrency kernel.

The kernel (:mod:`repro.sim.kernel`) advances simulated time only while
every live task is blocked — in a resource queue (``serve``), joined on
a child, or parked behind admission control.  That strict-handoff rule
makes latency attribution *exact*: each task's lifetime is tiled,
gap-free, by its blocked intervals, so end-to-end latency decomposes as

    admission wait + sum(per-resource queue wait) + sum(service time)

with zero residual (see :func:`assemble_queries`).  Fan-out joins are
followed recursively: a join window ``[t0, t1]`` is re-attributed to
the *child's* blocked intervals clipped to that window, so a straggler
shard's SSD queue shows up by name in the parent query's bill.

Three consumers sit on top of the raw records:

* :func:`blame_profiles` — differential blame: which resource's *wait*
  grew between the median cohort and the tail cohort.
* :func:`capacity_model` — per-resource utilization, a Little's-law
  self-check (depth-time integral ``L`` vs ``lambda * W``; the two are
  computed from independent instrumentation paths, so agreement is a
  self-test, not a tautology), and a knee estimate
  ``knee_qps = completed throughput / bottleneck utilization``.
* ``repro blame DIR`` / ``repro explain DIR --query N`` — the CLI text
  renderings in :func:`format_blame_report` / :func:`format_query_blame`.

Records are ring-buffered (drop-oldest, counted) and optionally
streamed as JSONL with schema ``repro.obs.blame/v1``; recording is
observation-only — simulated metrics are byte-identical with a
recorder attached or not (enforced by tests/test_obs_blame.py).
"""

from __future__ import annotations

import json
import math
import os
from collections import deque
from dataclasses import dataclass, field

from repro.obs._jsonl import read_jsonl

BLAME_SCHEMA = "repro.obs.blame/v1"

#: Pseudo-resource name under which admission-queue wait is billed.
ADMISSION = "admission"

_RECORD_FIELDS = {
    "serve": ("task", "resource", "enqueue_us", "start_us", "end_us",
              "wait_us", "service_us"),
    "join": ("task", "child", "start_us", "end_us", "wait_us"),
    "task": ("task", "name", "start_us", "end_us"),
    "job": ("task", "name", "arrival_us", "start_us", "end_us", "wait_us"),
    "shed": ("name", "arrival_us"),
    "resource": ("name", "lanes", "served", "busy_us", "wait_us",
                 "service_us", "depth_area_us", "peak_depth"),
    "footer": ("records", "dropped", "start_us", "end_us"),
}


class BlameRecorder:
    """Structured per-request records from a kernel, ring-buffered.

    Attach with :meth:`attach`; the kernel and admission controller call
    the ``on_*`` hooks (all no-ops on the simulated schedule).  Records
    live in a bounded ring (oldest dropped first, ``dropped`` counts
    losses) and can be streamed to JSONL via :meth:`open_stream`.
    Per-resource wait/service aggregates are kept separately so
    :meth:`capacity` and the timeline's ``wait_fraction`` series stay
    exact even when the ring overflows.
    """

    def __init__(self, registry=None, capacity: int = 200_000) -> None:
        self.ring_capacity = capacity
        self.records: deque = deque(maxlen=capacity)
        self.dropped = 0
        self.registry = registry
        self.kernel = None
        self.admission = None
        self.start_us: float | None = None
        self.finished = False
        #: name -> [count, wait_us_sum, service_us_sum]; survives ring drops.
        self.totals: dict[str, list] = {}
        self.shed_count = 0
        self._stream = None
        self._stream_path: str | None = None
        self._max_stream_records: int | None = None
        self._stream_records = 0
        self._rotations = 0
        self._next_tid = 0
        # id(task) -> meta dict (holds a strong ref to the task so CPython
        # id() reuse cannot alias two tasks to one tid mid-run).
        self._meta: dict[int, dict] = {}
        self._jobs: dict[int, tuple] = {}
        self._counters: dict[str, tuple] = {}

    def __len__(self) -> int:
        return len(self.records)

    # -- wiring ------------------------------------------------------------

    def attach(self, kernel, admission=None) -> "BlameRecorder":
        """Point ``kernel`` (and optionally ``admission``) at this recorder."""
        kernel.blame = self
        self.kernel = kernel
        if admission is not None:
            admission.blame = self
            self.admission = admission
        if self.start_us is None:
            self.start_us = kernel.clock.now_us
        return self

    def open_stream(self, path: str, max_records: int | None = None) -> None:
        """Stream every future record to ``path`` as JSONL (header first).

        Records already in the ring are flushed so the file is complete
        regardless of when streaming started.  ``max_records`` bounds
        on-disk growth for long live runs: once that many records sit in
        the file it rotates to ``<path>.1`` (replacing any previous
        rotation), keeping at most two generations on disk;
        :func:`load_blame_jsonl` reads the rotation back in order.
        """
        self.close_stream()
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1")
        self._max_stream_records = max_records
        self._stream_path = path
        self._stream = open(path, "w", encoding="utf-8")
        self._stream.write(json.dumps({"schema": BLAME_SCHEMA}) + "\n")
        for rec in self.records:
            self._write_stream(rec)

    def _write_stream(self, rec: dict) -> None:
        self._stream.write(json.dumps(rec) + "\n")
        self._stream_records += 1
        if (self._max_stream_records is not None
                and self._stream_records >= self._max_stream_records):
            self._rotate_stream()

    def _rotate_stream(self) -> None:
        self._stream.close()
        os.replace(self._stream_path, str(self._stream_path) + ".1")
        self._rotations += 1
        self._stream = open(self._stream_path, "w", encoding="utf-8")
        self._stream.write(json.dumps({
            "schema": BLAME_SCHEMA, "continuation": True,
            "rotation": self._rotations,
        }) + "\n")
        self._stream_records = 0

    def close_stream(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    # -- hot-path hooks (called by the kernel; keep them lean) -------------

    def _emit(self, rec: dict) -> None:
        if len(self.records) == self.ring_capacity:
            self.dropped += 1
        self.records.append(rec)
        if self._stream is not None:
            self._write_stream(rec)

    def _tid(self, task) -> int:
        meta = self._meta.get(id(task))
        if meta is None:
            # Seen before its spawn hook (shouldn't happen, but stay safe).
            meta = self._register(task, None, 0.0)
        return meta["tid"]

    def _register(self, task, parent, now_us: float) -> dict:
        tid = self._next_tid
        self._next_tid += 1
        meta = {"tid": tid, "obj": task, "name": task.name,
                "parent": None if parent is None else self._tid(parent),
                "start_us": now_us, "tags": {}}
        self._meta[id(task)] = meta
        return meta

    def _counter_pair(self, resource: str):
        pair = self._counters.get(resource)
        if pair is None:
            reg = self.registry
            pair = (reg.counter("blame_wait_us_total", resource=resource),
                    reg.counter("blame_service_us_total", resource=resource))
            self._counters[resource] = pair
        return pair

    def _account(self, resource: str, wait_us: float,
                 service_us: float) -> None:
        tot = self.totals.get(resource)
        if tot is None:
            tot = self.totals[resource] = [0, 0.0, 0.0]
        tot[0] += 1
        tot[1] += wait_us
        tot[2] += service_us
        if self.registry is not None:
            waits, services = self._counter_pair(resource)
            if wait_us > 0:
                waits.inc(wait_us)
            if service_us > 0:
                services.inc(service_us)

    def on_spawn(self, task, parent, now_us: float) -> None:
        self._register(task, parent, now_us)

    def tag_current(self, **tags) -> None:
        """Merge ``tags`` into the currently running task's record."""
        kernel = self.kernel
        if kernel is None or kernel._current is None:
            return
        meta = self._meta.get(id(kernel._current))
        if meta is not None:
            meta["tags"].update(tags)

    def on_serve(self, task, resource: str, enqueue_us: float,
                 start_us: float, end_us: float) -> None:
        wait = start_us - enqueue_us
        service = end_us - start_us
        self._account(resource, wait, service)
        self._emit({"type": "serve", "task": self._tid(task),
                    "resource": resource, "enqueue_us": enqueue_us,
                    "start_us": start_us, "end_us": end_us,
                    "wait_us": wait, "service_us": service})

    def on_join(self, caller, child, start_us: float, end_us: float) -> None:
        if end_us <= start_us:
            return  # child already done: nothing to attribute
        self._emit({"type": "join", "task": self._tid(caller),
                    "child": self._tid(child), "start_us": start_us,
                    "end_us": end_us, "wait_us": end_us - start_us})

    def on_task_end(self, task, now_us: float) -> None:
        meta = self._meta.get(id(task))
        if meta is None:
            return
        rec = {"type": "task", "task": meta["tid"], "name": meta["name"],
               "parent": meta["parent"], "start_us": meta["start_us"],
               "end_us": now_us}
        rec.update(meta["tags"])
        self._emit(rec)

    def on_job_start(self, task, name: str, arrival_us: float,
                     now_us: float) -> None:
        self._jobs[self._tid(task)] = (name, arrival_us, now_us)
        self._account(ADMISSION, now_us - arrival_us, 0.0)

    def on_job_done(self, task, now_us: float) -> None:
        tid = self._tid(task)
        job = self._jobs.pop(tid, None)
        if job is None:
            return
        name, arrival, start = job
        self._emit({"type": "job", "task": tid, "name": name,
                    "arrival_us": arrival, "start_us": start,
                    "end_us": now_us, "wait_us": start - arrival})

    def on_shed(self, name: str, arrival_us: float) -> None:
        self.shed_count += 1
        self._emit({"type": "shed", "name": name, "arrival_us": arrival_us})

    # -- lifecycle ---------------------------------------------------------

    def resource_rows(self) -> list[dict]:
        """Live per-resource state merged with the recorder's aggregates."""
        rows = []
        if self.kernel is None:
            return rows
        now = self.kernel.clock.now_us
        for res in self.kernel.resources():
            res.accrue_depth(now)
            tot = self.totals.get(res.name, (0, 0.0, 0.0))
            rows.append({"name": res.name, "lanes": res.lanes,
                         "served": res.served, "busy_us": res.busy_us,
                         "wait_us": tot[1], "service_us": tot[2],
                         "depth_area_us": res.depth_area_us,
                         "peak_depth": res.peak_depth})
        return rows

    def finish(self) -> None:
        """Emit per-resource summaries and the footer; close the stream.

        Idempotent: the second call is a no-op.
        """
        if self.finished:
            return
        self.finished = True
        for row in self.resource_rows():
            self._emit(dict(row, type="resource"))
        end = self.kernel.clock.now_us if self.kernel is not None else 0.0
        footer = {"type": "footer", "records": len(self.records),
                  "dropped": self.dropped,
                  "start_us": self.start_us or 0.0, "end_us": end,
                  "shed": self.shed_count}
        adm = self.admission
        if adm is not None:
            footer["arrived"] = adm.stats.arrived
            footer["completed"] = adm.stats.completed
            footer["rejected"] = adm.stats.rejected
        self._emit(footer)
        self.close_stream()

    def export_jsonl(self, path: str) -> int:
        """Write header plus every retained record to ``path``.

        Calls :meth:`finish` first so resource summaries and the footer
        are present.  When the run already streamed to ``path`` the file
        is left as-is.  Returns the number of records written/retained.
        """
        self.finish()
        if self._stream_path == path:
            return len(self.records)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"schema": BLAME_SCHEMA}) + "\n")
            for rec in self.records:
                fh.write(json.dumps(rec) + "\n")
        return len(self.records)

    def capacity(self, completed: int | None = None,
                 tol: float = 0.05) -> dict:
        """Operational capacity model over the live kernel state."""
        if self.kernel is None:
            raise ValueError("recorder not attached to a kernel")
        horizon = self.kernel.clock.now_us - (self.start_us or 0.0)
        return capacity_model(self.resource_rows(), horizon,
                              completed=completed, tol=tol)


# ---------------------------------------------------------------------------
# Loading / validation


@dataclass
class BlameLog:
    """A parsed ``repro.obs.blame/v1`` JSONL file.

    ``torn_tail`` counts records lost to a mid-write cut (a live run
    killed mid-line); the loader skips such a tail rather than raise.
    """

    header: dict
    records: list = field(default_factory=list)
    resources: list = field(default_factory=list)
    footer: dict | None = None
    torn_tail: int = 0


def load_blame_jsonl(path: str) -> BlameLog:
    """Parse a blame JSONL file (see :data:`BLAME_SCHEMA`).

    When the stream was rotated (``open_stream(max_records=...)``), the
    previous generation lives at ``<path>.1``; it is read first so the
    returned records stay in emission order across the rotation.
    """
    rotated = str(path) + ".1"
    paths = ([rotated] if os.path.exists(rotated) else []) + [path]
    log = None
    torn_total = 0
    for part in paths:
        records, torn = read_jsonl(part)
        torn_total += torn
        lines = [rec for _, rec in records]
        if not lines or lines[0].get("schema") != BLAME_SCHEMA:
            raise ValueError(f"{part}: not a {BLAME_SCHEMA} file")
        if log is None:
            log = BlameLog(header=lines[0])
        for rec in lines[1:]:
            kind = rec.get("type")
            if kind == "resource":
                log.resources.append(rec)
            elif kind == "footer":
                log.footer = rec
            else:
                log.records.append(rec)
    log.torn_tail = torn_total
    return log


def validate_blame_jsonl(path: str) -> dict:
    """Schema-check a blame JSONL file; returns per-type record counts.

    Raises :class:`ValueError` on a bad header, an unknown record type,
    or a record missing a required field.
    """
    log = load_blame_jsonl(path)
    counts: dict[str, int] = {}
    for rec in log.records + log.resources + ([log.footer] if log.footer
                                              else []):
        kind = rec.get("type")
        fields = _RECORD_FIELDS.get(kind)
        if fields is None:
            raise ValueError(f"{path}: unknown record type {kind!r}")
        for name in fields:
            if name not in rec:
                raise ValueError(
                    f"{path}: {kind} record missing field {name!r}: {rec}")
        counts[kind] = counts.get(kind, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# Per-query critical-path assembly


@dataclass
class QueryBlame:
    """One query's exact latency decomposition."""

    task: int
    name: str
    qid: int | None
    start_us: float
    end_us: float
    admission_wait_us: float
    #: resource -> time spent waiting in its queue (admission excluded).
    wait_us: dict = field(default_factory=dict)
    #: resource -> time spent in service.
    service_us: dict = field(default_factory=dict)
    #: name of the fan-out child that finished last (None without fan-out).
    straggler: str | None = None

    @property
    def total_us(self) -> float:
        """End-to-end latency: admission wait + task lifetime."""
        return self.admission_wait_us + (self.end_us - self.start_us)

    @property
    def components_us(self) -> float:
        """Sum of every attributed component (== total_us, exactly)."""
        return (self.admission_wait_us + sum(self.wait_us.values())
                + sum(self.service_us.values()))

    @property
    def residual_us(self) -> float:
        """Unattributed time; zero up to float rounding by construction."""
        return self.total_us - self.components_us

    def to_dict(self) -> dict:
        return {
            "task": self.task,
            "name": self.name,
            "qid": self.qid,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "admission_wait_us": self.admission_wait_us,
            "wait_us": self.wait_us,
            "service_us": self.service_us,
            "straggler": self.straggler,
            "total_us": self.total_us,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "QueryBlame":
        return cls(task=d["task"], name=d["name"], qid=d.get("qid"),
                   start_us=d["start_us"], end_us=d["end_us"],
                   admission_wait_us=d["admission_wait_us"],
                   wait_us=dict(d.get("wait_us", {})),
                   service_us=dict(d.get("service_us", {})),
                   straggler=d.get("straggler"))


class _Index:
    """Record lookups keyed by task id, built once per assembly."""

    def __init__(self, records) -> None:
        self.serves: dict[int, list] = {}
        self.joins: dict[int, list] = {}
        self.tasks: dict[int, dict] = {}
        self.jobs: dict[int, dict] = {}
        for rec in records:
            kind = rec.get("type")
            if kind == "serve":
                self.serves.setdefault(rec["task"], []).append(rec)
            elif kind == "join":
                self.joins.setdefault(rec["task"], []).append(rec)
            elif kind == "task":
                self.tasks[rec["task"]] = rec
            elif kind == "job":
                self.jobs[rec["task"]] = rec


def _attribute(idx: _Index, tid: int, lo: float, hi: float,
               waits: dict, services: dict) -> None:
    """Attribute the task's blocked time clipped to ``[lo, hi]``.

    Serve intervals split into their wait ``[enqueue, start]`` and
    service ``[start, end]`` parts; join intervals recurse into the
    child.  Because simulated time only advances while *every* live
    task is blocked, the clipped intervals tile ``[lo, hi]`` exactly.
    """
    for rec in idx.serves.get(tid, ()):
        if rec["end_us"] <= lo or rec["enqueue_us"] >= hi:
            continue
        wait = (min(rec["start_us"], hi) - max(rec["enqueue_us"], lo))
        if wait > 0:
            res = rec["resource"]
            waits[res] = waits.get(res, 0.0) + wait
        service = (min(rec["end_us"], hi) - max(rec["start_us"], lo))
        if service > 0:
            res = rec["resource"]
            services[res] = services.get(res, 0.0) + service
    for rec in idx.joins.get(tid, ()):
        jlo = max(rec["start_us"], lo)
        jhi = min(rec["end_us"], hi)
        if jhi > jlo:
            _attribute(idx, rec["child"], jlo, jhi, waits, services)


def assemble_queries(records) -> list[QueryBlame]:
    """Build one :class:`QueryBlame` per top-level (parentless) task.

    ``records`` is an iterable of blame record dicts (a
    :attr:`BlameLog.records` list or a live recorder's ring).  Tasks
    still running when recording stopped are skipped — only completed
    task records decompose exactly.
    """
    idx = _Index(records)
    out = []
    for tid, trec in sorted(idx.tasks.items()):
        if trec.get("parent") is not None:
            continue
        job = idx.jobs.get(tid)
        adm_wait = job["wait_us"] if job else 0.0
        q = QueryBlame(task=tid, name=trec["name"], qid=trec.get("qid"),
                       start_us=trec["start_us"], end_us=trec["end_us"],
                       admission_wait_us=adm_wait)
        _attribute(idx, tid, trec["start_us"], trec["end_us"],
                   q.wait_us, q.service_us)
        joins = [j for j in idx.joins.get(tid, ()) if j["wait_us"] > 0]
        if joins:
            last = max(joins, key=lambda j: j["end_us"])
            child = idx.tasks.get(last["child"])
            if child is not None:
                q.straggler = child["name"]
        out.append(q)
    return out


# ---------------------------------------------------------------------------
# Differential blame: tail cohort vs median cohort


def _cohort_means(cohort) -> tuple[dict, dict]:
    waits: dict[str, float] = {}
    services: dict[str, float] = {}
    n = len(cohort)
    if n == 0:
        return waits, services
    for q in cohort:
        if q.admission_wait_us > 0:
            waits[ADMISSION] = waits.get(ADMISSION, 0.0) + q.admission_wait_us
        for res, us in q.wait_us.items():
            waits[res] = waits.get(res, 0.0) + us
        for res, us in q.service_us.items():
            services[res] = services.get(res, 0.0) + us
    return ({k: v / n for k, v in waits.items()},
            {k: v / n for k, v in services.items()})


def blame_profiles(queries, tail_pct: float = 99.0,
                   band: tuple = (25.0, 75.0)) -> dict:
    """Differential blame: which resource's *wait* grew in the tail.

    Splits queries (by end-to-end latency) into a tail cohort — at or
    above the ``tail_pct`` percentile — and a median cohort between the
    ``band`` percentiles, then reports each cohort's mean per-resource
    wait and the growth between them.  ``verdict`` names the resource
    whose wait grew most.
    """
    qs = sorted(queries, key=lambda q: q.total_us)
    n = len(qs)
    if n == 0:
        return {"queries": 0, "tail": [], "verdict": None}
    cut = min(n - 1, int(math.floor(n * tail_pct / 100.0)))
    tail = qs[cut:]
    lo = int(math.floor(n * band[0] / 100.0))
    hi = max(lo + 1, int(math.ceil(n * band[1] / 100.0)))
    median = qs[lo:hi]
    t_wait, t_service = _cohort_means(tail)
    m_wait, _m_service = _cohort_means(median)
    growth = {res: t_wait.get(res, 0.0) - m_wait.get(res, 0.0)
              for res in set(t_wait) | set(m_wait)}
    verdict = max(growth, key=growth.get) if growth else None
    return {
        "queries": n,
        "tail_pct": tail_pct,
        "tail_count": len(tail),
        "median_count": len(median),
        "tail_total_mean_us": sum(q.total_us for q in tail) / len(tail),
        "median_total_mean_us": (sum(q.total_us for q in median)
                                 / len(median)) if median else 0.0,
        "tail_wait_mean_us": t_wait,
        "tail_service_mean_us": t_service,
        "median_wait_mean_us": m_wait,
        "wait_growth_us": growth,
        "verdict": verdict,
    }


# ---------------------------------------------------------------------------
# Capacity model


def capacity_model(resources, horizon_us: float,
                   completed: int | None = None,
                   tol: float = 0.05) -> dict:
    """Per-resource operational laws over a measurement horizon.

    For each resource row (as written by the recorder's ``resource``
    records): utilization, served throughput, mean wait/service, and a
    Little's-law self-check — ``L`` measured as the queue's depth-time
    integral divided by the horizon vs ``lambda * W`` from the sojourn
    sums.  The two sides come from independent instrumentation (depth
    accounting vs per-request timestamps), so a mismatch beyond ``tol``
    flags a broken recorder, not a broken queue.  ``knee_qps``
    extrapolates the capacity knee by scaling completed throughput to
    100% bottleneck utilization.
    """
    per_resource: dict[str, dict] = {}
    bottleneck = None
    max_rel_err = 0.0
    for row in resources:
        served = row["served"]
        util = (min(1.0, row["busy_us"] / (horizon_us * row["lanes"]))
                if horizon_us > 0 else 0.0)
        l_measured = row["depth_area_us"] / horizon_us if horizon_us > 0 \
            else 0.0
        l_lambda_w = ((row["wait_us"] + row["service_us"]) / horizon_us
                      if horizon_us > 0 else 0.0)
        if l_lambda_w > 0:
            rel_err = abs(l_measured - l_lambda_w) / l_lambda_w
        else:
            rel_err = abs(l_measured)
        entry = {
            "lanes": row["lanes"],
            "served": served,
            "utilization": util,
            "throughput_qps": (served / (horizon_us / 1e6)
                               if horizon_us > 0 else 0.0),
            "mean_wait_us": row["wait_us"] / served if served else 0.0,
            "mean_service_us": row["service_us"] / served if served else 0.0,
            "little_L_measured": l_measured,
            "little_L_lambda_w": l_lambda_w,
            "little_rel_err": rel_err,
        }
        per_resource[row["name"]] = entry
        if served > 0:
            max_rel_err = max(max_rel_err, rel_err)
            if bottleneck is None or util > per_resource[bottleneck][
                    "utilization"]:
                bottleneck = row["name"]
    bu = per_resource[bottleneck]["utilization"] if bottleneck else 0.0
    knee = None
    if completed is not None and bu > 0 and horizon_us > 0:
        knee = (completed / (horizon_us / 1e6)) / bu
    return {
        "horizon_us": horizon_us,
        "per_resource": per_resource,
        "bottleneck": bottleneck,
        "bottleneck_utilization": bu,
        "knee_qps": knee,
        "little_law_max_rel_err": max_rel_err,
        "little_law_ok": max_rel_err <= tol,
        "little_law_tol": tol,
    }


# ---------------------------------------------------------------------------
# Formatting


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.2f} s"
    if us >= 1e3:
        return f"{us / 1e3:.2f} ms"
    return f"{us:.1f} us"


def format_query_blame(q: QueryBlame) -> str:
    """Render one query's decomposition as aligned text lines."""
    lines = [f"query task {q.task} ({q.name}"
             + (f", qid {q.qid}" if q.qid is not None else "") + "): "
             f"total {_fmt_us(q.total_us)}"]
    total = q.total_us or 1.0
    if q.admission_wait_us > 0:
        lines.append(f"  {'admission wait':<22s} "
                     f"{_fmt_us(q.admission_wait_us):>12s}  "
                     f"{q.admission_wait_us / total:6.1%}")
    for res in sorted(set(q.wait_us) | set(q.service_us)):
        w = q.wait_us.get(res, 0.0)
        s = q.service_us.get(res, 0.0)
        lines.append(f"  {res:<22s} wait {_fmt_us(w):>10s}  "
                     f"service {_fmt_us(s):>10s}  "
                     f"{(w + s) / total:6.1%}")
    if q.straggler:
        lines.append(f"  straggler: {q.straggler}")
    lines.append(f"  residual {q.residual_us:.3f} us")
    return "\n".join(lines)


def format_blame_report(queries, profiles: dict, capacity: dict) -> str:
    """The full ``repro blame DIR`` text report."""
    lines = [f"blame: {profiles.get('queries', len(queries))} queries"]
    if profiles.get("verdict") is not None:
        lines.append(
            f"\ntail (p{profiles['tail_pct']:g}, n={profiles['tail_count']}) "
            f"mean {_fmt_us(profiles['tail_total_mean_us'])} vs median "
            f"cohort (n={profiles['median_count']}) "
            f"{_fmt_us(profiles['median_total_mean_us'])}")
        lines.append("wait growth, tail minus median:")
        for res, us in sorted(profiles["wait_growth_us"].items(),
                              key=lambda kv: -kv[1]):
            mark = "  <- blame" if res == profiles["verdict"] else ""
            lines.append(f"  {res:<22s} {_fmt_us(us):>12s}{mark}")
    per = capacity.get("per_resource", {})
    if per:
        lines.append("\ncapacity model "
                     f"(horizon {_fmt_us(capacity['horizon_us'])}):")
        lines.append(f"  {'resource':<22s} {'util':>6s} {'qps':>9s} "
                     f"{'mean wait':>11s} {'mean svc':>11s} {'L meas':>8s} "
                     f"{'L=lam*W':>8s}")
        for name, e in sorted(per.items(),
                              key=lambda kv: -kv[1]["utilization"]):
            lines.append(
                f"  {name:<22s} {e['utilization']:6.1%} "
                f"{e['throughput_qps']:9.1f} "
                f"{_fmt_us(e['mean_wait_us']):>11s} "
                f"{_fmt_us(e['mean_service_us']):>11s} "
                f"{e['little_L_measured']:8.3f} "
                f"{e['little_L_lambda_w']:8.3f}")
        lines.append(
            f"  bottleneck: {capacity['bottleneck']} at "
            f"{capacity['bottleneck_utilization']:.1%}"
            + (f"; knee ~{capacity['knee_qps']:.1f} qps"
               if capacity.get("knee_qps") else ""))
        check = "ok" if capacity["little_law_ok"] else "FAILED"
        lines.append(
            f"  Little's-law self-check: {check} (max rel err "
            f"{capacity['little_law_max_rel_err']:.2e}, tol "
            f"{capacity['little_law_tol']:g})")
    return "\n".join(lines)
