"""Windowed time series over the simulated run: the timeline recorder.

Every metric the registry holds is an end-of-run aggregate; the
phenomena the paper argues about are *temporal* — SSD cache warmup
before CBLRU's split pays off, write-amplification spikes when the
Fig. 13 staged victim search degrades, hit-ratio drift as the query
mix shifts.  :class:`TimelineRecorder` samples every registry
instrument into fixed-width virtual-clock windows and produces true
time series from the same counters the end-of-run report uses:

* **counters** are recorded as per-window *deltas*, so the deltas of
  any counter sum exactly to its cumulative end-of-run value;
* **histograms** are recorded as per-window *sub-histograms* (bucket-
  wise deltas of the cumulative log-bucketed counts), so merging the
  sub-histograms bucket-wise reproduces the run-level histogram;
* **gauges** are sampled at each window close (recorded when changed).

Windows are closed *lazily*: the recorder checks the clock at each
:meth:`tick` (the cache manager ticks once per query) and closes every
window whose right edge has passed, attributing everything recorded
since the previous close to the closing window.  Activity is therefore
quantized at query granularity — a query's samples land in the window
containing its completion time — while the sum-over-windows identities
above hold exactly.  Windows with no activity are skipped (*sparse*);
retained records live in a bounded ring (``retain``), and streaming
mode writes each window to ``timeline.jsonl`` the moment it closes.

Timeline JSONL schema (``repro.obs.timeline/v1``), one object per line::

    {"type": "header", "schema": "repro.obs.timeline/v1", "window_us": 50000.0}
    {"type": "window", "window": 3, "start_us": 150000.0, "end_us": 200000.0,
     "counters": {"queries_total{situation=S1}": 12, ...},
     "gauges": {"flash_write_amplification{device=ssd-cache}": 1.31, ...},
     "histograms": {"stage_latency_us{stage=l2}":
                    {"count": 5, "sum": 123.4, "lo": 0.5, "growth": 1.04,
                     "buckets": {"17": 3, "18": 2}}, ...},
     "derived": {"queries": 12, "hit_ratio": 0.81, "p99_response_us": ...}}
    {"type": "exemplar", "metric": "query_latency_us{situation=S8}",
     "value_us": 5321.0, "query_id": 17, "span_id": 412, "window": 3,
     "t_us": 151234.5}
    {"type": "footer", "windows": 42, "dropped_windows": 0, ...}

**Exemplars** answer *why was this sample slow?*: an
:class:`ExemplarStore` hooks ``Histogram.record`` (via the instrument's
``exemplar_sink``) and captures ``(query_id, span_id, window)`` for
samples landing above a configurable percentile of their own histogram,
so ``repro explain --query`` can chain a tail latency to its tracer
span and the audit-trail decisions made inside it.

The **steady-state detector** (:func:`steady_state_window`) is a
sliding-window mean-stability test on the windowed hit ratio; the bench
harness uses it to exclude cache warmup from ``BENCH_*.json``
measurements.
"""

from __future__ import annotations

import json
import math
import os
from collections import deque
from dataclasses import dataclass

from repro.obs._jsonl import read_jsonl
from repro.obs.instruments import Histogram
from repro.obs.registry import MetricsRegistry

__all__ = [
    "TIMELINE_SCHEMA",
    "TimelineRecorder",
    "Timeline",
    "Exemplar",
    "ExemplarStore",
    "series_key",
    "parse_series_key",
    "derive_window",
    "merge_windows",
    "sub_histogram",
    "steady_state_window",
    "window_series",
    "load_timeline_jsonl",
    "validate_timeline_jsonl",
    "sparkline",
]

TIMELINE_SCHEMA = "repro.obs.timeline/v1"

#: Derived per-window series every consumer can rely on (when their
#: source instruments exist): see :func:`derive_window`.
DERIVED_SERIES = ("queries", "hit_ratio", "p50_response_us",
                  "p99_response_us", "p999_response_us", "write_amp",
                  "erases", "queue_depth", "wait_fraction")


def series_key(name: str, tags: dict) -> str:
    """``name{k=v,...}`` with sorted tags; just ``name`` when untagged."""
    if not tags:
        return name
    body = ",".join(f"{k}={v}" for k, v in sorted(tags.items()))
    return f"{name}{{{body}}}"


def parse_series_key(key: str) -> tuple[str, dict]:
    """Inverse of :func:`series_key`."""
    if "{" not in key:
        return key, {}
    name, _, body = key.partition("{")
    tags = {}
    for pair in body.rstrip("}").split(","):
        if pair:
            k, _, v = pair.partition("=")
            tags[k] = v
    return name, tags


# ---------------------------------------------------------------------------
# Exemplars
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Exemplar:
    """One tail sample worth explaining: value + the trail back to it."""

    metric: str
    value_us: float
    query_id: int | None
    span_id: int | None
    window: int
    t_us: float

    def to_dict(self) -> dict:
        return {
            "type": "exemplar",
            "metric": self.metric,
            "value_us": self.value_us,
            "query_id": self.query_id,
            "span_id": self.span_id,
            "window": self.window,
            "t_us": self.t_us,
        }


class ExemplarStore:
    """Captures tail samples from registered histograms.

    A histogram registered via :meth:`register` gets this store as its
    ``exemplar_sink``: every :meth:`~repro.obs.instruments.Histogram.
    record` above the ``threshold_q``-th percentile of *that* histogram
    captures the ambient context (query id, span id, timeline window)
    set by :meth:`set_context`.  The percentile threshold is cached per
    histogram and refreshed as the distribution grows, so the hot path
    is one comparison; the store itself is a bounded ring
    (``capacity``), counting what it drops.
    """

    def __init__(self, threshold_q: float = 99.0, min_count: int = 64,
                 capacity: int = 512) -> None:
        if not 0.0 < threshold_q < 100.0:
            raise ValueError("threshold_q must be in (0, 100)")
        self.threshold_q = threshold_q
        self.min_count = min_count
        self.exemplars: deque[Exemplar] = deque(maxlen=capacity)
        self.dropped = 0
        self._labels: dict[int, str] = {}
        self._thresholds: dict[int, tuple[int, float]] = {}
        self._ctx: tuple[int | None, int | None, int, float] = (None, None,
                                                                0, 0.0)

    def register(self, hist: Histogram, label: str) -> None:
        """Attach this store to ``hist`` as its exemplar sink."""
        hist.exemplar_sink = self
        self._labels[id(hist)] = label

    def set_context(self, query_id: int | None, span_id: int | None,
                    window: int, t_us: float) -> None:
        """The ambient context the next offered samples belong to."""
        self._ctx = (query_id, span_id, window, t_us)

    def clear_context(self) -> None:
        self._ctx = (None, None, self._ctx[2], self._ctx[3])

    def offer(self, hist: Histogram, value: float) -> None:
        """Called by ``Histogram.record``; captures tail samples."""
        if hist.count < self.min_count:
            return
        hid = id(hist)
        cached = self._thresholds.get(hid)
        if cached is None or hist.count >= cached[0] + max(64, cached[0] // 2):
            cached = (hist.count, hist.percentile(self.threshold_q))
            self._thresholds[hid] = cached
        if value < cached[1]:
            return
        qid, span_id, window, t_us = self._ctx
        if len(self.exemplars) == self.exemplars.maxlen:
            self.dropped += 1
        self.exemplars.append(Exemplar(
            metric=self._labels.get(hid, "histogram"),
            value_us=value,
            query_id=qid,
            span_id=span_id,
            window=window,
            t_us=t_us,
        ))

    def to_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self.exemplars]


# ---------------------------------------------------------------------------
# The recorder
# ---------------------------------------------------------------------------

class TimelineRecorder:
    """Samples a registry into fixed-width virtual-clock windows.

    Call :meth:`tick` at unit-of-work boundaries (the manager ticks
    once per query, before recording the query's own samples) and
    :meth:`finish` at the end of the run to close the final partial
    window.  ``collect`` is an optional callable sampled before every
    window close (the :class:`~repro.obs.telemetry.Telemetry` bundle
    passes its bridge-sampling ``collect`` so flash counters and cache
    hit/lookup counters are current per window).
    """

    def __init__(self, registry: MetricsRegistry, window_us: float,
                 clock=None, retain: int = 4096, collect=None,
                 exemplars: ExemplarStore | None = None) -> None:
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        self.registry = registry
        self.window_us = float(window_us)
        self.clock = clock
        self.collect = collect
        self.exemplars = exemplars
        self.windows: deque[dict] = deque(maxlen=retain)
        self.dropped_windows = 0
        self.emitted = 0
        self._open = 0
        self._finished = False
        self._stream = None
        self._stream_path = None
        self._max_stream_windows = None
        self._stream_windows = 0
        self._rotations = 0
        self._callbacks: list = []
        self._last_counters: dict[str, float] = {}
        self._last_gauges: dict[str, float] = {}
        self._last_hists: dict[str, tuple[int, float]] = {}
        # series_key(name, tags) per instrument, keyed by identity —
        # instruments are immortal within a registry, so the key never
        # needs recomputing once built.
        self._series_keys: dict[int, str] = {}

    # -- streaming -----------------------------------------------------------

    @property
    def streaming(self) -> bool:
        return self._stream_path is not None

    def open_stream(self, path, max_windows: int | None = None) -> None:
        """Write windows to ``path`` as they close (header first).

        ``max_windows`` bounds on-disk growth for long live runs: once
        that many windows sit in the file, it is rotated to
        ``<path>.1`` (replacing any previous rotation) and the stream
        continues in a fresh file, so at most two generations — about
        ``2 * max_windows`` windows — are ever on disk.
        :func:`load_timeline_jsonl` reads the rotation back in order.
        """
        if self._stream is not None:
            raise RuntimeError("timeline is already streaming")
        if max_windows is not None and max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        self._max_stream_windows = max_windows
        self._stream = open(path, "w")
        self._stream_path = path
        self._stream.write(json.dumps({
            "type": "header", "schema": TIMELINE_SCHEMA,
            "window_us": self.window_us,
        }) + "\n")
        for rec in self.windows:
            if "derived" not in rec:
                rec["derived"] = derive_window(rec)
            self._write_stream(rec)

    def _write_stream(self, rec: dict) -> None:
        self._stream.write(json.dumps(rec) + "\n")
        self._stream_windows += 1
        if (self._max_stream_windows is not None
                and self._stream_windows >= self._max_stream_windows):
            self._rotate_stream()

    def _rotate_stream(self) -> None:
        self._stream.close()
        os.replace(self._stream_path, str(self._stream_path) + ".1")
        self._rotations += 1
        self._stream = open(self._stream_path, "w")
        self._stream.write(json.dumps({
            "type": "header", "schema": TIMELINE_SCHEMA,
            "window_us": self.window_us, "continuation": True,
            "rotation": self._rotations,
        }) + "\n")
        self._stream_windows = 0

    # -- window callbacks ----------------------------------------------------

    def add_window_callback(self, fn) -> None:
        """Call ``fn(record)`` the moment each non-sparse window closes.

        This is the incremental seam the streaming SLO evaluator and the
        flight recorder hang off: the record passed is the exact dict
        that lands in :attr:`windows` (and on disk when streaming),
        ``derived`` block included, so per-window verdicts computed in
        the callback provably agree with post-hoc evaluation over the
        saved file.  Callbacks observe — mutating the record corrupts
        the stream.
        """
        self._callbacks.append(fn)

    # -- recording -----------------------------------------------------------

    def current_window(self) -> int:
        """The window index containing the clock's current time."""
        return int(self.clock.now_us // self.window_us)

    def tick(self) -> None:
        """Close every window whose right edge the clock has passed."""
        idx = int(self.clock.now_us // self.window_us)
        if idx > self._open:
            self._close_open_window()
            self._open = idx

    def finish(self) -> None:
        """Close the final partial window and the stream (idempotent)."""
        if self._finished:
            return
        self._finished = True
        self._close_open_window()
        for rec in self.windows:
            if "derived" not in rec:
                rec["derived"] = derive_window(rec)
        if self._stream is not None:
            if self.exemplars is not None:
                for rec in self.exemplars.to_dicts():
                    self._stream.write(json.dumps(rec) + "\n")
            self._stream.write(json.dumps(self._footer()) + "\n")
            self._stream.close()
            self._stream = None

    def _footer(self) -> dict:
        out = {"type": "footer", "windows": self.emitted,
               "dropped_windows": self.dropped_windows}
        if self._rotations:
            out["rotated"] = self._rotations
        if self.exemplars is not None:
            out["exemplars"] = len(self.exemplars.exemplars)
            out["dropped_exemplars"] = self.exemplars.dropped
        return out

    def _close_open_window(self) -> None:
        if self.collect is not None:
            self.collect()
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        hists: dict[str, dict] = {}
        skeys = self._series_keys
        for name, tags, inst in self.registry.items():
            key = skeys.get(id(inst))
            if key is None:
                key = skeys[id(inst)] = series_key(name, tags)
            if inst.kind == "counter":
                prev = self._last_counters.get(key, 0)
                if inst.value != prev:
                    counters[key] = inst.value - prev
                    self._last_counters[key] = inst.value
            elif inst.kind == "gauge":
                prev_g = self._last_gauges.get(key)
                if prev_g is None or inst.value != prev_g:
                    gauges[key] = inst.value
                    self._last_gauges[key] = inst.value
            else:
                prev_c, prev_s = self._last_hists.get(key, (0, 0.0))
                if inst.count != prev_c:
                    delta_b = inst.take_bucket_deltas()
                    hists[key] = {
                        "count": inst.count - prev_c,
                        "sum": inst.sum - prev_s,
                        "lo": inst.lo,
                        "growth": inst.growth,
                        "buckets": {str(b): c
                                    for b, c in sorted(delta_b.items())},
                    }
                    self._last_hists[key] = (inst.count, inst.sum)
        if not (counters or gauges or hists):
            return  # sparse: nothing happened in this window
        rec = {
            "type": "window",
            "window": self._open,
            "start_us": self._open * self.window_us,
            "end_us": (self._open + 1) * self.window_us,
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
        }
        if self._stream is not None or self._callbacks:
            # Streamed records leave the process now (and callbacks see
            # them now), so they must carry their derived block; retained
            # records defer derivation to finish() — pure post-processing
            # of the window's own deltas, with no reason to bill it to
            # the serving loop.
            rec["derived"] = derive_window(rec)
        self.emitted += 1
        if len(self.windows) == self.windows.maxlen:
            self.dropped_windows += 1
        self.windows.append(rec)
        if self._stream is not None:
            self._write_stream(rec)
        for cb in self._callbacks:
            cb(rec)

    # -- export --------------------------------------------------------------

    def export_jsonl(self, path) -> int:
        """Write the retained timeline as JSONL; returns the window count.

        In streaming mode the windows are already on disk; exporting
        just finalizes the stream (via :meth:`finish`).
        """
        self.finish()
        if self.streaming:
            return self.emitted
        with open(path, "w") as fh:
            fh.write(json.dumps({
                "type": "header", "schema": TIMELINE_SCHEMA,
                "window_us": self.window_us,
            }) + "\n")
            for rec in self.windows:
                fh.write(json.dumps(rec) + "\n")
            if self.exemplars is not None:
                for rec in self.exemplars.to_dicts():
                    fh.write(json.dumps(rec) + "\n")
            fh.write(json.dumps(self._footer()) + "\n")
        return len(self.windows)


# ---------------------------------------------------------------------------
# Derived series
# ---------------------------------------------------------------------------

def _sum_matching(mapping: dict, prefix: str) -> float:
    return sum(v for k, v in mapping.items()
               if k == prefix or k.startswith(prefix + "{"))


def sub_histogram(entry: dict) -> Histogram:
    """Reconstruct a :class:`Histogram` from a sub-histogram record.

    ``min``/``max`` are approximated by the occupied buckets' bounds,
    so percentile estimates stay within one bucket width of the values
    a live per-window histogram would have produced.
    """
    h = Histogram(lo=entry.get("lo", 0.5), growth=entry.get("growth", 1.04))
    buckets = {int(b): c for b, c in entry["buckets"].items()}
    h._counts = buckets
    h.count = entry["count"]
    h.sum = entry["sum"]
    if buckets:
        h.min = h.bucket_bounds(min(buckets))[0]
        h.max = h.bucket_bounds(max(buckets))[1]
    return h


def _merged_response_hist(hists: dict) -> Histogram | None:
    merged: Histogram | None = None
    for key, entry in hists.items():
        if not (key == "query_latency_us"
                or key.startswith("query_latency_us{")):
            continue
        h = sub_histogram(entry)
        if merged is None:
            merged = h
        else:
            merged.merge(h)
    return merged if merged is not None and merged.count else None


def derive_window(rec: dict) -> dict:
    """The standard derived series for one window record.

    Computed from the window's own deltas; series whose source
    instruments are absent are simply omitted.
    """
    counters = rec.get("counters", {})
    gauges = rec.get("gauges", {})
    hists = rec.get("histograms", {})
    out: dict = {}

    queries = _sum_matching(counters, "queries_total")
    if queries:
        out["queries"] = queries

    hits = lookups = 0.0
    for name in ("cache_result_lookups_total", "cache_list_lookups_total"):
        for key, v in counters.items():
            if not key.startswith(name + "{"):
                continue
            lookups += v
            _, tags = parse_series_key(key)
            if tags.get("outcome") in ("l1_hit", "l2_hit"):
                hits += v
    if lookups:
        out["hit_ratio"] = hits / lookups

    merged = _merged_response_hist(hists)
    if merged is not None:
        p50, p99, p999 = merged.percentiles((50.0, 99.0, 99.9))
        out["p50_response_us"] = p50
        out["p99_response_us"] = p99
        out["p999_response_us"] = p999

    host = _sum_matching(counters, "flash_host_page_writes_total")
    gc = _sum_matching(counters, "flash_gc_page_writes_total")
    if host:
        out["write_amp"] = (host + gc) / host

    erases = _sum_matching(counters, "flash_erases_total")
    if erases:
        out["erases"] = erases

    depth = None
    for prefix in ("queue_depth", "cache_write_buffer_entries"):
        matched = [v for k, v in gauges.items()
                   if k == prefix or k.startswith(prefix + "{")]
        if matched:
            depth = sum(matched) if depth is None else depth + sum(matched)
    if depth is not None:
        out["queue_depth"] = depth

    wait = _sum_matching(counters, "blame_wait_us_total")
    service = _sum_matching(counters, "blame_service_us_total")
    if wait + service > 0:
        out["wait_fraction"] = wait / (wait + service)
    return out


def merge_windows(windows, start_window: int | None = None) -> dict:
    """Fold window records into one aggregate record.

    Counters sum, sub-histograms merge bucket-wise, gauges keep the
    last observed reading.  ``start_window`` drops windows before it
    (how the bench harness excludes warmup).  Returns a record-shaped
    dict whose ``histograms`` values are :class:`Histogram` instances.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, Histogram] = {}
    first = last = None
    for rec in windows:
        if rec.get("type", "window") != "window":
            continue
        if start_window is not None and rec["window"] < start_window:
            continue
        first = rec["window"] if first is None else first
        last = rec["window"]
        for key, v in rec.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + v
        for key, v in rec.get("gauges", {}).items():
            gauges[key] = v
        for key, entry in rec.get("histograms", {}).items():
            h = sub_histogram(entry)
            if key in hists:
                hists[key].merge(h)
            else:
                hists[key] = h
    return {"counters": counters, "gauges": gauges, "histograms": hists,
            "first_window": first, "last_window": last}


def window_series(windows, series: str) -> list[tuple[int, float]]:
    """``(window, value)`` points for one derived (or raw) series."""
    out: list[tuple[int, float]] = []
    for rec in windows:
        if rec.get("type", "window") != "window":
            continue
        derived = rec.get("derived") or derive_window(rec)
        v = derived.get(series)
        if v is None:
            for mapping in (rec.get("counters", {}), rec.get("gauges", {})):
                if series in mapping:
                    v = mapping[series]
                    break
        if v is not None:
            out.append((rec["window"], v))
    return out


# ---------------------------------------------------------------------------
# Steady-state detection
# ---------------------------------------------------------------------------

def steady_state_window(windows, series: str = "hit_ratio", k: int = 5,
                        rel_tol: float = 0.05,
                        abs_tol: float = 0.02) -> int | None:
    """Earliest window index where ``series`` is mean-stable.

    The rule (the one the bench harness applies): slide a window of
    ``k`` consecutive observations over the series; the run is steady
    from the first position whose spread (max - min) is within
    ``max(abs_tol, rel_tol * |mean|)``.  Returns None when the series
    never settles (or has fewer than ``k`` observations).
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    pts = window_series(windows, series)
    for i in range(len(pts) - k + 1):
        chunk = [v for _, v in pts[i:i + k]]
        mean = sum(chunk) / k
        if max(chunk) - min(chunk) <= max(abs_tol, rel_tol * abs(mean)):
            return pts[i][0]
    return None


# ---------------------------------------------------------------------------
# Loading and validation
# ---------------------------------------------------------------------------

@dataclass
class Timeline:
    """A parsed ``timeline.jsonl``: header + windows + exemplars.

    ``torn_tail`` counts records lost to a mid-write cut (a live run
    killed mid-line); the loaders skip such a tail rather than raise.
    """

    window_us: float
    windows: list[dict]
    exemplars: list[dict]
    footer: dict | None = None
    torn_tail: int = 0

    def series(self, name: str) -> list[tuple[int, float]]:
        return window_series(self.windows, name)

    def steady_state(self, **kw) -> int | None:
        return steady_state_window(self.windows, **kw)


def load_timeline_jsonl(path) -> Timeline:
    """Load and schema-check a timeline file.

    When the stream was rotated (``open_stream(max_windows=...)``), the
    previous generation lives at ``<path>.1``; it is read first so the
    returned windows stay in order across the rotation boundary.
    """
    windows: list[dict] = []
    exemplars: list[dict] = []
    footer = None
    window_us = None
    torn_total = 0
    rotated = str(path) + ".1"
    paths = ([rotated] if os.path.exists(rotated) else []) + [path]
    for part in paths:
        records, torn = read_jsonl(part)
        torn_total += torn
        if not records:
            raise ValueError(f"{part}: empty timeline file")
        for pos, (lineno, rec) in enumerate(records):
            kind = rec.get("type")
            if pos == 0:
                if kind != "header" or rec.get("schema") != TIMELINE_SCHEMA:
                    raise ValueError(
                        f"{part}:{lineno}: not a {TIMELINE_SCHEMA} header")
                if window_us is None:
                    window_us = rec["window_us"]
                elif rec["window_us"] != window_us:
                    raise ValueError(
                        f"{part}:{lineno}: window_us changed across "
                        f"rotation")
            elif kind == "header":
                raise ValueError(
                    f"{part}:{lineno}: header after the first record")
            elif kind == "window":
                for fld in ("window", "start_us", "end_us", "counters",
                            "gauges", "histograms"):
                    if fld not in rec:
                        raise ValueError(
                            f"{part}:{lineno}: window missing {fld!r}")
                if rec["end_us"] <= rec["start_us"]:
                    raise ValueError(
                        f"{part}:{lineno}: window ends before it starts")
                if windows and rec["window"] <= windows[-1]["window"]:
                    raise ValueError(
                        f"{part}:{lineno}: window indices must increase")
                windows.append(rec)
            elif kind == "exemplar":
                for fld in ("metric", "value_us", "window"):
                    if fld not in rec:
                        raise ValueError(
                            f"{part}:{lineno}: exemplar missing {fld!r}")
                exemplars.append(rec)
            elif kind == "footer":
                footer = rec
            else:
                raise ValueError(
                    f"{part}:{lineno}: unknown record type {kind!r}")
    if window_us is None:
        raise ValueError(f"{path}: empty timeline file")
    return Timeline(window_us=window_us, windows=windows,
                    exemplars=exemplars, footer=footer,
                    torn_tail=torn_total)


def validate_timeline_jsonl(path) -> dict:
    """Schema check used by CI; returns summary counts."""
    tl = load_timeline_jsonl(path)
    if not tl.windows:
        raise ValueError(f"{path}: no windows recorded")
    if tl.footer is not None:
        claimed = tl.footer.get("windows")
        if tl.footer.get("rotated") or tl.torn_tail:
            # Rotation discards generations before <path>.1 and a torn
            # tail loses its record, so the file can hold fewer windows
            # than the run emitted — never more.
            if claimed is not None and len(tl.windows) > claimed:
                raise ValueError(
                    f"{path}: footer claims {claimed} windows, file "
                    f"holds {len(tl.windows)}")
        elif claimed != len(tl.windows):
            raise ValueError(
                f"{path}: footer claims {claimed} windows, "
                f"file holds {len(tl.windows)}")
    for rec in tl.windows:
        for key, v in rec["counters"].items():
            if v < 0:
                raise ValueError(
                    f"{path}: negative counter delta for {key} in window "
                    f"{rec['window']}")
        for key, entry in rec["histograms"].items():
            if entry["count"] != sum(entry["buckets"].values()):
                raise ValueError(
                    f"{path}: sub-histogram {key} count mismatch in window "
                    f"{rec['window']}")
    counts = {"windows": len(tl.windows), "exemplars": len(tl.exemplars)}
    if tl.torn_tail:
        counts["torn_tail"] = tl.torn_tail
    return counts


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 60) -> str:
    """An ASCII sparkline; None values render as gaps."""
    vals = list(values)
    if len(vals) > width:  # downsample by taking last of each bin
        step = len(vals) / width
        vals = [vals[min(len(vals) - 1, int((i + 1) * step) - 1)]
                for i in range(width)]
    present = [v for v in vals if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    out = []
    for v in vals:
        if v is None:
            out.append("·")
        elif span <= 0:
            out.append(_SPARK_CHARS[4])
        else:
            idx = int((v - lo) / span * (len(_SPARK_CHARS) - 2)) + 1
            out.append(_SPARK_CHARS[min(idx, len(_SPARK_CHARS) - 1)])
    return "".join(out)
