"""The live observability plane: scrape and stream a run while it runs.

:class:`LiveServer` exposes an in-progress ``repro run`` over HTTP on a
background daemon thread (stdlib only)::

    /metrics          the live registry as OpenMetrics text (the scrape
                      endpoint; content type per the OpenMetrics spec)
    /windows?since=K  NDJSON window stream: the timeline header followed
                      by every closed window with index > K (tail the
                      run by polling with the last index seen)
    /status           one JSON document (schema repro.obs.live/v1): run
                      info, recent windows' derived series, streaming
                      SLO verdicts, anomaly counts, open/dumped
                      incidents — everything ``repro top`` renders

The serve path stays untouched: the server reads shared structures the
telemetry layer maintains anyway (the registry, a bounded window deque
fed by the timeline's window callback, the flight recorder's streaming
verdicts when one is armed), and handler threads retry on the rare
``RuntimeError`` from reading a structure mid-mutation instead of
locking the hot path.

``repro top`` renders the same picture either from a live port
(:func:`fetch_status`) or post-hoc from a telemetry dir
(:func:`status_from_dir`); :func:`format_top_frame` is the shared
renderer.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse
from urllib.request import urlopen

from repro.obs.export import openmetrics_text
from repro.obs.slo import (DEFAULT_SLOS, StreamingDetectors,
                           StreamingSloEvaluator)
from repro.obs.timeline import TIMELINE_SCHEMA, sparkline

__all__ = [
    "LIVE_SCHEMA",
    "OPENMETRICS_CONTENT_TYPE",
    "LiveServer",
    "fetch_status",
    "status_from_dir",
    "format_top_frame",
]

LIVE_SCHEMA = "repro.obs.live/v1"

OPENMETRICS_CONTENT_TYPE = ("application/openmetrics-text; "
                            "version=1.0.0; charset=utf-8")

#: Derived series `repro top` draws sparklines for, in display order.
TOP_SERIES = ("queries", "hit_ratio", "p99_response_us", "write_amp",
              "queue_depth", "wait_fraction")


class LiveServer:
    """Serve a run's registry, window stream, and incident state."""

    def __init__(self, telemetry, port: int = 0, host: str = "127.0.0.1",
                 flight=None, max_windows: int = 512,
                 run_info: dict | None = None) -> None:
        self.telemetry = telemetry
        self.flight = flight
        self.run_info = run_info or {}
        self.windows: deque[dict] = deque(maxlen=max_windows)
        self.windows_seen = 0
        if flight is None:
            self._slo = StreamingSloEvaluator(DEFAULT_SLOS)
            self._detectors = StreamingDetectors()
        else:
            # The armed recorder already evaluates every window; reuse
            # its state instead of running a second evaluator.
            self._slo = flight.slo
            self._detectors = flight.detectors
        self._host = host
        self._port = port
        self._httpd = None
        self._thread = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "LiveServer":
        tl = self.telemetry.timeline
        if tl is None:
            raise RuntimeError("live server needs an attached timeline")
        tl.add_window_callback(self._on_window)
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self._host, self._port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-live", daemon=True)
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- the window seam -----------------------------------------------------

    def _on_window(self, rec: dict) -> None:
        if self.flight is None:
            self._slo.update(rec)
            self._detectors.update(rec)
        # With a flight recorder armed its own callback (registered
        # first) has already updated the shared evaluator state.
        self.windows.append(rec)
        self.windows_seen += 1

    # -- documents -----------------------------------------------------------

    def status(self) -> dict:
        tl = self.telemetry.timeline
        recent = [{"window": rec["window"],
                   "derived": rec.get("derived", {})}
                  for rec in list(self.windows)[-32:]]
        anomalies = self._detectors.anomalies
        doc = {
            "schema": LIVE_SCHEMA,
            "run": self.run_info,
            "now_us": (self.telemetry.clock.now_us
                       if self.telemetry.clock is not None else None),
            "window_us": tl.window_us if tl is not None else None,
            "windows_seen": self.windows_seen,
            "recent": recent,
            "slo": [r.to_dict() for r in self._slo.results()],
            "anomalies": {
                "total": len(anomalies),
                "critical": sum(1 for a in anomalies
                                if a.severity == "critical"),
                "recent": [a.to_dict() for a in anomalies[-8:]],
            },
        }
        if self.flight is not None:
            doc["incidents"] = {
                "open": self.flight._open is not None,
                "dumped": [
                    {"incident": m["incident"],
                     "trigger": m["trigger"],
                     "windows": m["windows"],
                     "qids": m["qids"]}
                    for m in self.flight.incidents],
            }
        else:
            doc["incidents"] = {"open": False, "dumped": []}
        return doc

    def windows_ndjson(self, since: int = -1) -> str:
        tl = self.telemetry.timeline
        lines = [json.dumps({
            "type": "header", "schema": TIMELINE_SCHEMA,
            "window_us": tl.window_us if tl is not None else None,
        })]
        for rec in list(self.windows):
            if rec["window"] > since:
                lines.append(json.dumps(rec))
        return "\n".join(lines) + "\n"


def _make_handler(live: LiveServer):
    class _Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):  # silence per-request stderr
            pass

        def _send(self, body: str, content_type: str,
                  code: int = 200) -> None:
            payload = body.encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _retrying(self, fn):
            # Handler threads read structures the serving thread
            # mutates; a rare mid-mutation RuntimeError is retried
            # rather than taking a lock on the hot path.
            for _ in range(8):
                try:
                    return fn()
                except RuntimeError:
                    continue
            return fn()

        def do_GET(self):  # noqa: N802 (stdlib handler naming)
            url = urlparse(self.path)
            if url.path == "/metrics":
                body = self._retrying(
                    lambda: openmetrics_text(live.telemetry.registry))
                self._send(body, OPENMETRICS_CONTENT_TYPE)
            elif url.path == "/windows":
                qs = parse_qs(url.query)
                try:
                    since = int(qs.get("since", ["-1"])[0])
                except ValueError:
                    self._send("bad since parameter\n", "text/plain", 400)
                    return
                body = self._retrying(lambda: live.windows_ndjson(since))
                self._send(body, "application/x-ndjson")
            elif url.path == "/status":
                body = self._retrying(
                    lambda: json.dumps(live.status(), indent=1))
                self._send(body + "\n", "application/json")
            else:
                self._send("not found\n", "text/plain", 404)

    return _Handler


# ---------------------------------------------------------------------------
# Consuming a plane: live or post-hoc
# ---------------------------------------------------------------------------

def fetch_status(target: str, timeout: float = 5.0) -> dict:
    """GET ``/status`` from ``PORT`` or ``HOST:PORT`` or a full URL."""
    if "://" not in target:
        target = (f"http://127.0.0.1:{target}" if ":" not in target
                  else f"http://{target}")
    with urlopen(target.rstrip("/") + "/status", timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def status_from_dir(telemetry_dir) -> dict:
    """Build the same status document post-hoc from a telemetry dir."""
    from repro.obs.flightrecorder import list_incidents
    from repro.obs.slo import evaluate_slos, run_detectors
    from repro.obs.timeline import derive_window, load_timeline_jsonl

    path = os.path.join(telemetry_dir, "timeline.jsonl")
    if not os.path.exists(path):
        raise ValueError(
            f"no timeline at {path} (run with --timeline to record one)")
    tl = load_timeline_jsonl(path)
    anomalies = run_detectors(tl.windows)
    recent = [{"window": rec["window"],
               "derived": rec.get("derived") or derive_window(rec)}
              for rec in tl.windows[-32:]]
    dumped = []
    for bundle in list_incidents(telemetry_dir):
        with open(os.path.join(bundle, "incident.json")) as fh:
            m = json.load(fh)
        dumped.append({"incident": m["incident"], "trigger": m["trigger"],
                       "windows": m["windows"], "qids": m["qids"]})
    return {
        "schema": LIVE_SCHEMA,
        "run": {"dir": str(telemetry_dir)},
        "now_us": tl.windows[-1]["end_us"] if tl.windows else None,
        "window_us": tl.window_us,
        "windows_seen": len(tl.windows),
        "recent": recent,
        "slo": [r.to_dict() for r in evaluate_slos(DEFAULT_SLOS,
                                                   tl.windows)],
        "anomalies": {
            "total": len(anomalies),
            "critical": sum(1 for a in anomalies
                            if a.severity == "critical"),
            "recent": [a.to_dict() for a in anomalies[-8:]],
        },
        "incidents": {"open": False, "dumped": dumped},
    }


def format_top_frame(status: dict, width: int = 60) -> str:
    """Render one ``repro top`` frame from a status document."""
    run = status.get("run", {})
    where = run.get("dir") or run.get("policy") or ""
    head = f"repro top — {where}" if where else "repro top"
    now = status.get("now_us")
    if now is not None:
        head += f"  t={now / 1e6:.2f}s"
    head += f"  windows={status.get('windows_seen', 0)}"
    lines = [head, ""]
    recent = status.get("recent", [])
    for series in TOP_SERIES:
        pts = [w["derived"].get(series) for w in recent]
        present = [v for v in pts if v is not None]
        if not present:
            continue
        spark = sparkline(pts, width=width)
        last = present[-1]
        if series == "hit_ratio" or series == "wait_fraction":
            label = f"{last:.1%}"
        elif series == "p99_response_us":
            label = (f"{last / 1e3:.1f}ms" if last >= 1e3
                     else f"{last:.0f}us")
        else:
            label = f"{last:g}"
        lines.append(f"  {series:<16s} {spark} {label}")
    lines.append("")
    for r in status.get("slo", []):
        mark = {"met": "ok  ", "violated": "FAIL",
                "no-data": "?   "}.get(r["verdict"], "?   ")
        lines.append(f"  {mark} {r['slo']} "
                     f"[{r['windows_passed']}/{r['windows_evaluated']}]")
    anom = status.get("anomalies", {})
    lines.append("")
    lines.append(f"  anomalies: {anom.get('total', 0)} "
                 f"({anom.get('critical', 0)} critical)")
    for a in anom.get("recent", [])[-4:]:
        lines.append(f"    [{a['severity']}] {a['detector']} "
                     f"@ {a['window']}: {a['detail']}")
    inc = status.get("incidents", {})
    dumped = inc.get("dumped", [])
    state = "OPEN" if inc.get("open") else "none open"
    lines.append("")
    lines.append(f"  incidents: {len(dumped)} dumped, {state}")
    for m in dumped[-4:]:
        t = m["trigger"]
        lines.append(f"    incident-{m['incident']}: [{t['severity']}] "
                     f"{t['detector']} @ window {t['window']}")
    return "\n".join(lines)
