"""Host-side profiling: where does *wall-clock* time go?

Everything else in ``repro.obs`` measures the simulated system on the
virtual clock.  This module measures the simulator itself on the real
clock, because the raw-speed arc (ROADMAP open item 2: >= 10x wall-clock
at byte-identical simulated metrics) needs a scoreboard before it needs
optimisations.  Three layers:

* :class:`Profiler` — a deterministic :mod:`cProfile` capture wrapped so
  repeated ``with profiler.profile():`` sections accumulate into one
  run.  The per-function table is mapped onto a *subsystem taxonomy*
  (``repro.core``, ``repro.flash``, ``repro.engine``, ``repro.sim``,
  ``repro.obs``, ``repro.storage``, ``repro.hdd``, ..., plus ``stdlib``
  and ``other``) whose self-time shares sum to 100% of profiled CPU
  time.
* hot-op counters (:data:`repro.obs.HOT`, incremented at the source in
  the hot modules) joined with wall time into ``wall_ns_per_op`` — the
  number a rewrite must move.
* collapsed-stack output (:meth:`Profiler.folded_lines`) in Brendan
  Gregg's ``frame;frame;frame count`` format, reconstructed from the
  cProfile caller graph by proportional attribution (the ``flameprof``
  technique), so ``flamegraph.pl``/speedscope render it directly.

The profiler observes, never perturbs: it touches no simulated state,
so simulated metrics are byte-identical with profiling on or off
(tested in ``tests/test_obs_profiler.py``).

Summary schema (``repro.obs.profile/v1``)::

    {"schema": "repro.obs.profile/v1",
     "wall_s": ..., "cpu_s": ..., "calls": ...,
     "subsystems": {"repro.core": {"self_s":, "share":, "calls":}, ...},
     "top": [{"func":, "subsystem":, "self_s":, "cum_s":, "calls":}, ...],
     "counters": {"ftl_map_lookups": ..., ...},
     "wall_ns_per_op": {"ftl_map_lookups": ..., ...}}

plus optional context keys callers add (``suite``, ``queries``,
``build_wall_s``, ``obs_tax``).
"""

from __future__ import annotations

import cProfile
import json
import pstats
import time
from contextlib import contextmanager

from repro._hot import HOT, HotCounters

__all__ = [
    "PROFILE_SCHEMA",
    "Profiler",
    "subsystem_of",
    "func_label",
    "measure_obs_tax",
    "write_folded",
    "load_folded",
    "write_profile",
    "load_profile",
    "validate_profile",
    "format_profile",
]

PROFILE_SCHEMA = "repro.obs.profile/v1"


def subsystem_of(filename: str) -> str:
    """Map a frame's filename onto the subsystem taxonomy.

    ``.../repro/<pkg>/...`` -> ``repro.<pkg>`` (``repro/cli.py`` ->
    ``repro.cli``); built-ins, frozen modules and stdlib files ->
    ``stdlib``; site-packages (numpy et al.) and anything unrecognised
    -> ``other``.  Purely path-based, so the mapping is deterministic
    and unit-testable with literal paths.
    """
    f = filename.replace("\\", "/")
    if "/repro/" in f:
        tail = f.rsplit("/repro/", 1)[1]
        pkg = tail.split("/", 1)[0]
        if pkg.endswith(".py"):
            pkg = pkg[:-3]
        return f"repro.{pkg}"
    if f == "~" or f.startswith("<"):
        # built-in functions ('~') and frozen/importlib/<string> frames
        return "stdlib"
    if "site-packages" in f or "dist-packages" in f:
        return "other"
    if "/lib/python" in f or "/lib64/python" in f:
        return "stdlib"
    return "other"


def func_label(func: tuple) -> str:
    """A compact ``module:name`` label for a pstats function key."""
    filename, _lineno, name = func
    if filename == "~":  # built-in: the name already says everything
        return name
    f = filename.replace("\\", "/")
    if "/repro/" in f:
        module = "repro." + f.rsplit("/repro/", 1)[1][:-3].replace("/", ".")
        module = module.removesuffix(".__init__")
    else:
        base = f.rsplit("/", 1)[-1]
        module = base[:-3] if base.endswith(".py") else base
    return f"{module}:{name}"


def _sanitize(label: str) -> str:
    """Folded-format frames may contain neither spaces nor semicolons."""
    return label.replace(";", ",").replace(" ", "_")


class Profiler:
    """Accumulating cProfile capture with subsystem attribution.

    Use as repeated non-nested sections around the code to attribute::

        profiler = Profiler()
        with profiler.profile():
            serve_queries()
        doc = profiler.summary(top=20)
        lines = profiler.folded_lines()

    Wall time (``time.perf_counter`` across sections) and hot-counter
    deltas (:data:`repro.obs.HOT`) are captured alongside the cProfile
    data, so ``summary()`` can derive ``wall_ns_per_op``.
    """

    def __init__(self) -> None:
        self._prof = cProfile.Profile()
        self.wall_s = 0.0
        self.sections = 0
        self.counters: dict[str, int] = {op: 0 for op in HotCounters.OPS}
        self._active = False

    @contextmanager
    def profile(self):
        """Profile one section; sections accumulate, nesting is an error."""
        if self._active:
            raise RuntimeError("Profiler.profile sections cannot nest")
        self._active = True
        before = HOT.snapshot()
        start = time.perf_counter()
        self._prof.enable()
        try:
            yield self
        finally:
            self._prof.disable()
            self.wall_s += time.perf_counter() - start
            for op, n in HOT.delta(before).items():
                self.counters[op] += n
            self.sections += 1
            self._active = False

    # -- extraction --------------------------------------------------------

    def _stats(self) -> dict:
        if not self.sections:
            raise RuntimeError("nothing profiled yet (no finished sections)")
        return pstats.Stats(self._prof).stats  # func -> (cc, nc, tt, ct, callers)

    def subsystem_totals(self) -> dict[str, dict]:
        """Self-time and call totals per subsystem (shares sum to 1.0)."""
        stats = self._stats()
        total_tt = sum(v[2] for v in stats.values()) or 1.0
        out: dict[str, dict] = {}
        for (filename, _l, _n), (_cc, nc, tt, _ct, _callers) in stats.items():
            entry = out.setdefault(subsystem_of(filename),
                                   {"self_s": 0.0, "calls": 0})
            entry["self_s"] += tt
            entry["calls"] += nc
        for entry in out.values():
            entry["share"] = entry["self_s"] / total_tt
        return out

    def summary(self, top: int = 20) -> dict:
        """The ``repro.obs.profile/v1`` document for this capture."""
        stats = self._stats()
        ranked = sorted(stats.items(), key=lambda kv: kv[1][2], reverse=True)
        top_rows = [
            {
                "func": func_label(func),
                "subsystem": subsystem_of(func[0]),
                "self_s": tt,
                "cum_s": ct,
                "calls": nc,
            }
            for func, (_cc, nc, tt, ct, _callers) in ranked[:top]
        ]
        counters = dict(self.counters)
        wall_ns = self.wall_s * 1e9
        return {
            "schema": PROFILE_SCHEMA,
            "wall_s": self.wall_s,
            "cpu_s": sum(v[2] for v in stats.values()),
            "calls": sum(v[1] for v in stats.values()),
            "subsystems": self.subsystem_totals(),
            "top": top_rows,
            "counters": counters,
            "wall_ns_per_op": {
                op: wall_ns / n for op, n in counters.items() if n > 0
            },
        }

    # -- collapsed stacks --------------------------------------------------

    def folded_lines(self, min_frac: float = 1e-4,
                     max_depth: int = 64) -> list[str]:
        """Collapsed call stacks, ``frame;frame;frame usec`` per line.

        cProfile keeps a caller graph, not full stacks, so stacks are
        reconstructed by walking callees from the roots and splitting
        each function's time across its callers proportionally to the
        per-edge cumulative time — the standard cProfile->flamegraph
        approximation.  Paths below ``min_frac`` of total time are
        pruned; recursion is cut at the first repeated frame.
        """
        stats = self._stats()
        children: dict[tuple, list[tuple[tuple, float]]] = {}
        roots: list[tuple] = []
        for func, (_cc, _nc, _tt, _ct, callers) in stats.items():
            if callers:
                for caller, edge in callers.items():
                    children.setdefault(caller, []).append((func, edge[3]))
            else:
                roots.append(func)
        total = sum(stats[r][3] for r in roots) or 1.0
        cutoff = total * min_frac
        acc: dict[tuple, float] = {}

        def walk(func: tuple, path: tuple, share_s: float) -> None:
            _cc, _nc, tt, ct, _callers = stats[func]
            if share_s < cutoff or ct <= 0:
                return
            self_s = share_s * (tt / ct)
            if self_s > 0:
                acc[path] = acc.get(path, 0.0) + self_s
            if len(path) >= max_depth:
                return
            for child, edge_ct in children.get(func, ()):
                if child in path_set:
                    continue
                path_set.add(child)
                walk(child, path + (child,), share_s * min(1.0, edge_ct / ct))
                path_set.discard(child)

        lines = []
        for root in roots:
            path_set = {root}
            walk(root, (root,), stats[root][3])
        for path, seconds in sorted(acc.items(),
                                    key=lambda kv: kv[1], reverse=True):
            usec = int(round(seconds * 1e6))
            if usec <= 0:
                continue
            stack = ";".join(_sanitize(func_label(f)) for f in path)
            lines.append(f"{stack} {usec}")
        return lines


# ---------------------------------------------------------------------------
# Observability self-overhead ("obs tax")
# ---------------------------------------------------------------------------

def measure_obs_tax(run_with_obs, run_without_obs) -> dict:
    """Time the same deterministic work with observability on vs off.

    Both callables must perform identical simulated work and return a
    dict of simulated metrics; the returned block reports the wall-time
    fraction spent on observability and whether the simulated metrics
    matched (the "observe, never perturb" contract — a mismatch means a
    telemetry hook leaked into the simulation).
    """
    t0 = time.perf_counter()
    on = run_with_obs()
    wall_on = time.perf_counter() - t0
    t1 = time.perf_counter()
    off = run_without_obs()
    wall_off = time.perf_counter() - t1
    fraction = max(0.0, (wall_on - wall_off) / wall_on) if wall_on > 0 else 0.0
    return {
        "wall_s_obs_on": wall_on,
        "wall_s_obs_off": wall_off,
        "fraction": fraction,
        "simulated_match": on == off,
    }


# ---------------------------------------------------------------------------
# File I/O + validation (what the CI artifact step checks)
# ---------------------------------------------------------------------------

def write_folded(lines: list[str], path) -> None:
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line)
            fh.write("\n")


def load_folded(path) -> list[tuple[str, int]]:
    """Load a ``profile.folded``, validating well-formedness.

    Every non-empty line must be ``stack count`` with a non-empty
    ``;``-separated stack (no spaces inside frames) and a positive
    integer count; an empty file is malformed too.
    """
    out: list[tuple[str, int]] = []
    with open(path) as fh:
        for i, raw in enumerate(fh, 1):
            line = raw.rstrip("\n")
            if not line:
                continue
            stack, sep, count = line.rpartition(" ")
            if not sep or not stack or not count.isdigit() or int(count) < 1:
                raise ValueError(f"{path}:{i}: malformed folded line {line!r}")
            if any(not frame for frame in stack.split(";")):
                raise ValueError(f"{path}:{i}: empty frame in {stack!r}")
            out.append((stack, int(count)))
    if not out:
        raise ValueError(f"{path}: no stacks recorded")
    return out


def write_profile(doc: dict, path) -> None:
    validate_profile(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_profile(path) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    validate_profile(doc)
    return doc


def validate_profile(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a usable profile summary."""
    if not isinstance(doc, dict) or doc.get("schema") != PROFILE_SCHEMA:
        raise ValueError(f"not a {PROFILE_SCHEMA} document")
    for field in ("wall_s", "cpu_s", "subsystems", "top", "counters"):
        if field not in doc:
            raise ValueError(f"profile summary missing {field!r}")
    subsystems = doc["subsystems"]
    if not subsystems:
        raise ValueError("profile summary has no subsystems")
    share = 0.0
    for name, entry in subsystems.items():
        if entry["self_s"] < 0:
            raise ValueError(f"subsystem {name!r} has negative self time")
        share += entry["share"]
    if abs(share - 1.0) > 1e-3:
        raise ValueError(f"subsystem shares sum to {share:.4f}, want 1.0")
    for row in doc["top"]:
        for field in ("func", "subsystem", "self_s", "cum_s", "calls"):
            if field not in row:
                raise ValueError(f"top-function row missing {field!r}")
    for op, n in doc["counters"].items():
        if not isinstance(n, int) or n < 0:
            raise ValueError(f"counter {op!r} is not a non-negative int")
    tax = doc.get("obs_tax")
    if tax is not None and not 0.0 <= tax["fraction"] <= 1.0:
        raise ValueError(f"obs-tax fraction {tax['fraction']} outside [0, 1]")


# ---------------------------------------------------------------------------
# The scoreboard (what `repro profile` prints)
# ---------------------------------------------------------------------------

def format_profile(doc: dict, top: int | None = None) -> str:
    """Render a profile summary as the host-time scoreboard."""
    from repro.analysis.tables import format_table

    parts = []
    context = f" ({doc['suite']} suite)" if "suite" in doc else ""
    head = (f"wall {doc['wall_s']:.2f} s profiled, cpu {doc['cpu_s']:.2f} s, "
            f"{doc.get('calls', 0):,} calls")
    if "queries" in doc and doc["queries"]:
        head += (f", {doc['queries']:,} queries "
                 f"({doc['wall_s'] * 1e6 / doc['queries']:,.0f} us/query)")
    if "build_wall_s" in doc:
        head += f"; build/warmup {doc['build_wall_s']:.2f} s unprofiled"
    parts.append(f"host profile{context}: {head}")

    rows = [
        [name, f"{e['self_s']:.3f}", f"{e['share']:.1%}", f"{e['calls']:,}"]
        for name, e in sorted(doc["subsystems"].items(),
                              key=lambda kv: kv[1]["self_s"], reverse=True)
    ]
    parts.append(format_table(["subsystem", "self s", "share", "calls"],
                              rows, title="wall-clock by subsystem"))

    ops = [[op, f"{n:,}",
            f"{doc['wall_ns_per_op'][op]:,.0f}" if op in doc.get(
                "wall_ns_per_op", {}) else "-"]
           for op, n in doc["counters"].items()]
    parts.append(format_table(["hot op", "count", "wall ns/op"], ops,
                              title="hot-path operations"))

    fn_rows = [
        [r["func"], r["subsystem"], f"{r['self_s']:.3f}", f"{r['cum_s']:.3f}",
         f"{r['calls']:,}"]
        for r in (doc["top"][:top] if top else doc["top"])
    ]
    parts.append(format_table(
        ["function", "subsystem", "self s", "cum s", "calls"], fn_rows,
        title=f"top {len(fn_rows)} functions by self time"))

    tax = doc.get("obs_tax")
    if tax:
        match = ("simulated metrics identical" if tax["simulated_match"]
                 else "SIMULATED METRICS DIVERGED — telemetry is perturbing "
                      "the run")
        parts.append(
            f"obs tax: {tax['wall_s_obs_on']:.2f} s with telemetry vs "
            f"{tax['wall_s_obs_off']:.2f} s without -> "
            f"{tax['fraction']:.1%} of wall is observability ({match})")
    return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Before/after comparison against a BENCH document
# ---------------------------------------------------------------------------

def baseline_wall_ns_per_op(bench_doc: dict) -> dict[str, float]:
    """Suite-level ``wall_ns_per_op`` from a BENCH document's host blocks.

    A BENCH document records one host block per scenario; the profiler
    covers a whole suite in one capture, so the per-scenario baselines
    must be pooled the way the profiler pools them: total serve wall
    divided by total op count.  Only closed-loop scenarios enter the
    pool — ``repro profile`` skips open-loop scenarios (cProfile is
    per-thread), so including them would skew the denominator.
    """
    total_wall_ns = 0.0
    counts: dict[str, int] = {}
    for sc in bench_doc.get("scenarios", {}).values():
        host = sc.get("host")
        config = sc.get("config", {})
        if not host or config.get("arrival") != "closed":
            continue
        total_wall_ns += (
            host.get("wall_us_per_query", 0.0) * config.get("queries", 0) * 1e3
        )
        for op, n in host.get("counters", {}).items():
            counts[op] = counts.get(op, 0) + int(n)
    return {op: total_wall_ns / n for op, n in counts.items() if n > 0}


def format_wall_ns_delta(doc: dict, bench_doc: dict,
                         label: str = "baseline") -> str:
    """The before/after ``wall_ns_per_op`` table vs a BENCH document.

    Current values come from a cProfile capture and therefore include
    instrumentation overhead the baseline walls do not; a real
    improvement shows up *despite* that handicap, so negative deltas
    understate the true gain (noted under the table).
    """
    from repro.analysis.tables import format_table

    baseline = baseline_wall_ns_per_op(bench_doc)
    current = doc.get("wall_ns_per_op", {})
    rows = []
    for op in sorted(set(baseline) | set(current)):
        before = baseline.get(op)
        now = current.get(op)
        delta = (f"{(now - before) / before:+.1%}"
                 if before and now is not None else "-")
        rows.append([
            op,
            f"{before:,.0f}" if before is not None else "-",
            f"{now:,.0f}" if now is not None else "-",
            delta,
        ])
    table = format_table(
        ["hot op", f"{label} ns/op", "now ns/op", "delta"], rows,
        title=f"wall ns/op vs {label}")
    return (table + "\n(current walls include cProfile overhead; "
            "negative deltas understate the real improvement)")
