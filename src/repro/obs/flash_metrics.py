"""Flash-device telemetry: FTL and wear counters bridged into a registry.

The flash layer already counts everything Fig. 19a's lifetime argument
needs — per-block erases, GC copy-backs, write amplification, the
:class:`~repro.flash.wear.WearReport` projections — but those counters
lived on the devices.  :class:`FlashDeviceMetrics` samples them into the
shared :class:`~repro.obs.registry.MetricsRegistry` as instruments
tagged ``device=<name>``:

========================================= ======= ===========================
metric                                    kind    source
========================================= ======= ===========================
``flash_erases_total``                    counter ``FtlStats.block_erases``
``flash_host_page_reads_total``           counter ``FtlStats.host_page_reads``
``flash_host_page_writes_total``          counter ``FtlStats.host_page_writes``
``flash_gc_page_reads_total``             counter ``FtlStats.gc_page_reads``
``flash_gc_page_writes_total``            counter ``FtlStats.gc_page_writes``
``flash_translation_page_writes_total``   counter ``FtlStats`` (DFTL)
``flash_trimmed_pages_total``             counter ``FtlStats.trimmed_pages``
``flash_full_merges_total``               counter ``FtlStats.full_merges``
``flash_write_amplification``             gauge   ``FtlStats.write_amplification``
``flash_free_blocks``                     gauge   free-block pool depth
``flash_wear_max_erases``                 gauge   ``WearReport.max_erases``
``flash_wear_skew``                       gauge   ``WearReport.skew``
``flash_lifetime_consumed``               gauge   ``WearReport.lifetime_consumed``
========================================= ======= ===========================

Counters are advanced by *delta* on every :meth:`collect`, so sampling
any number of times still yields cumulative totals and cluster merges
sum correctly across shards.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

__all__ = ["FlashDeviceMetrics"]

#: FtlStats attribute -> counter name.
_COUNTER_FIELDS = {
    "block_erases": "flash_erases_total",
    "host_page_reads": "flash_host_page_reads_total",
    "host_page_writes": "flash_host_page_writes_total",
    "gc_page_reads": "flash_gc_page_reads_total",
    "gc_page_writes": "flash_gc_page_writes_total",
    "translation_page_reads": "flash_translation_page_reads_total",
    "translation_page_writes": "flash_translation_page_writes_total",
    "trimmed_pages": "flash_trimmed_pages_total",
    "full_merges": "flash_full_merges_total",
}


class FlashDeviceMetrics:
    """Samples one :class:`~repro.flash.ssd.SimulatedSSD` into a registry.

    Purely observational: reading the counters never touches the device
    clock or NAND state, so attaching the bridge cannot perturb a run.
    """

    def __init__(self, registry: MetricsRegistry, ssd,
                 endurance_cycles: int = 5000) -> None:
        self.registry = registry
        self.ssd = ssd
        self.endurance_cycles = endurance_cycles
        self._last: dict[str, int] = {f: 0 for f in _COUNTER_FIELDS}

    @property
    def device(self) -> str:
        return self.ssd.name

    def collect(self) -> None:
        """Sample the device's current counters into the registry."""
        reg = self.registry
        dev = self.ssd.name
        stats = self.ssd.ftl.stats
        for fld, metric in _COUNTER_FIELDS.items():
            now = getattr(stats, fld, 0)
            delta = now - self._last[fld]
            if delta > 0:
                reg.counter(metric, device=dev).inc(delta)
                self._last[fld] = now
        # Ratio/projection gauges have no natural cross-shard sum, so
        # they declare their cluster-merge mode; free_blocks is
        # occupancy-style and keeps the "sum" default.
        reg.gauge("flash_write_amplification", merge_mode="last",
                  device=dev).set(stats.write_amplification)
        reg.gauge("flash_free_blocks", device=dev).set(
            self.ssd.ftl.free_block_count)
        # Wear projections (Fig. 19a / Griffin [3] lifetime argument).
        if self.ssd.ftl.nand.erase_counts.size:
            wear = self.ssd.wear(self.endurance_cycles)
            reg.gauge("flash_wear_max_erases", merge_mode="max",
                      device=dev).set(wear.max_erases)
            reg.gauge("flash_wear_skew", merge_mode="last",
                      device=dev).set(wear.skew)
            reg.gauge("flash_lifetime_consumed", merge_mode="max",
                      device=dev).set(wear.lifetime_consumed)
