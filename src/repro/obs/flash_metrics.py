"""Flash-device telemetry: FTL and wear counters bridged into a registry.

The flash layer already counts everything Fig. 19a's lifetime argument
needs — per-block erases, GC copy-backs, write amplification, the
:class:`~repro.flash.wear.WearReport` projections — but those counters
lived on the devices.  :class:`FlashDeviceMetrics` samples them into the
shared :class:`~repro.obs.registry.MetricsRegistry` as instruments
tagged ``device=<name>``:

========================================= ======= ===========================
metric                                    kind    source
========================================= ======= ===========================
``flash_erases_total``                    counter ``FtlStats.block_erases``
``flash_host_page_reads_total``           counter ``FtlStats.host_page_reads``
``flash_host_page_writes_total``          counter ``FtlStats.host_page_writes``
``flash_gc_page_reads_total``             counter ``FtlStats.gc_page_reads``
``flash_gc_page_writes_total``            counter ``FtlStats.gc_page_writes``
``flash_translation_page_writes_total``   counter ``FtlStats`` (DFTL)
``flash_trimmed_pages_total``             counter ``FtlStats.trimmed_pages``
``flash_full_merges_total``               counter ``FtlStats.full_merges``
``flash_write_amplification``             gauge   ``FtlStats.write_amplification``
``flash_free_blocks``                     gauge   free-block pool depth
``flash_wear_max_erases``                 gauge   ``WearReport.max_erases``
``flash_wear_skew``                       gauge   ``WearReport.skew``
``flash_lifetime_consumed``               gauge   ``WearReport.lifetime_consumed``
========================================= ======= ===========================

Counters are advanced by *delta* on every :meth:`collect`, so sampling
any number of times still yields cumulative totals and cluster merges
sum correctly across shards.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

__all__ = ["FlashDeviceMetrics"]

#: FtlStats attribute -> counter name.
_COUNTER_FIELDS = {
    "block_erases": "flash_erases_total",
    "host_page_reads": "flash_host_page_reads_total",
    "host_page_writes": "flash_host_page_writes_total",
    "gc_page_reads": "flash_gc_page_reads_total",
    "gc_page_writes": "flash_gc_page_writes_total",
    "translation_page_reads": "flash_translation_page_reads_total",
    "translation_page_writes": "flash_translation_page_writes_total",
    "trimmed_pages": "flash_trimmed_pages_total",
    "full_merges": "flash_full_merges_total",
}


class FlashDeviceMetrics:
    """Samples one :class:`~repro.flash.ssd.SimulatedSSD` into a registry.

    Purely observational: reading the counters never touches the device
    clock or NAND state, so attaching the bridge cannot perturb a run.
    """

    def __init__(self, registry: MetricsRegistry, ssd,
                 endurance_cycles: int = 5000) -> None:
        self.registry = registry
        self.ssd = ssd
        self.endurance_cycles = endurance_cycles
        self._last: dict[str, int] = {f: 0 for f in _COUNTER_FIELDS}
        # Instrument refs, cached because collect() runs per timeline
        # window.  Counters stay lazy (created on the first nonzero
        # delta, as always) so idle series never appear in dumps.
        self._counters: dict[str, object] = {}
        self._gauges: dict[str, object] = {}
        # nand.erases at the last wear sample: -1 forces the first
        # collect() to publish the wear gauges even on a pristine device.
        self._wear_erases = -1

    @property
    def device(self) -> str:
        return self.ssd.name

    def _gauge(self, name: str, merge_mode: str | None = None):
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = self.registry.gauge(
                name, merge_mode=merge_mode, device=self.ssd.name)
        return g

    def collect(self) -> None:
        """Sample the device's current counters into the registry."""
        dev = self.ssd.name
        stats = self.ssd.ftl.stats
        last = self._last
        counters = self._counters
        for fld, metric in _COUNTER_FIELDS.items():
            now = getattr(stats, fld, 0)
            delta = now - last[fld]
            if delta > 0:
                c = counters.get(fld)
                if c is None:
                    c = counters[fld] = self.registry.counter(
                        metric, device=dev)
                c.inc(delta)
                last[fld] = now
        # Ratio/projection gauges have no natural cross-shard sum, so
        # they declare their cluster-merge mode; free_blocks is
        # occupancy-style and keeps the "sum" default.
        self._gauge("flash_write_amplification", "last").set(
            stats.write_amplification)
        self._gauge("flash_free_blocks").set(self.ssd.ftl.free_block_count)
        # Wear projections (Fig. 19a / Griffin [3] lifetime argument).
        # The report is a pure function of nand.erase_counts, so windows
        # with no erase since the last sample skip the numpy reductions:
        # the gauges already hold the identical values.
        nand = self.ssd.ftl.nand
        if nand.erase_counts.size and nand.erases != self._wear_erases:
            self._wear_erases = nand.erases
            wear = self.ssd.wear(self.endurance_cycles)
            self._gauge("flash_wear_max_erases", "max").set(wear.max_erases)
            self._gauge("flash_wear_skew", "last").set(wear.skew)
            self._gauge("flash_lifetime_consumed", "max").set(
                wear.lifetime_consumed)
