"""Shared JSONL reading with torn-tail tolerance.

Every streamed telemetry file (``spans.jsonl``, ``timeline.jsonl``,
``blame.jsonl``, ``audit.jsonl``) is written one complete line at a
time, so the only malformed line a reader should ever meet is the
*last* one — a live run cut mid-record (crash, SIGKILL, disk full).
:func:`read_jsonl` therefore parses every line strictly except the
final one: a torn tail is skipped and *counted* (returned, never
silently swallowed), while a parse failure anywhere earlier still
raises — mid-file corruption is a real error, not an artifact of
being killed.
"""

from __future__ import annotations

import json

__all__ = ["read_jsonl"]


def read_jsonl(path) -> tuple[list[tuple[int, dict]], int]:
    """Parse ``path`` into ``([(lineno, record), ...], torn_tail)``.

    ``torn_tail`` is 1 when the file's last non-blank line failed to
    parse (a record cut mid-write) and was skipped, else 0.  A parse
    failure on any earlier line raises :class:`ValueError` with the
    offending line number.
    """
    with open(path, encoding="utf-8") as fh:
        lines = fh.readlines()
    numbered = [(i + 1, line.strip()) for i, line in enumerate(lines)
                if line.strip()]
    records: list[tuple[int, dict]] = []
    torn = 0
    for pos, (lineno, text) in enumerate(numbered):
        try:
            records.append((lineno, json.loads(text)))
        except ValueError:
            if pos == len(numbered) - 1:
                torn = 1
            else:
                raise ValueError(
                    f"{path}:{lineno}: corrupt JSONL record (not the "
                    f"final line, so not a torn tail)") from None
    return records, torn
