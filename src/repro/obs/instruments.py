"""Typed metric instruments: counters, gauges and log-bucketed histograms.

The simulation measures everything in microseconds over ranges spanning
sub-microsecond DRAM probes to multi-millisecond HDD seeks, so the
:class:`Histogram` uses geometrically growing buckets: constant *relative*
resolution across five orders of magnitude at a few hundred sparse
buckets.  Percentile extraction interpolates within the bucket holding
the requested order statistic, so estimates land within one bucket width
of the exact ``np.percentile`` value (property-tested in
``tests/test_obs_instruments.py``).
"""

from __future__ import annotations

import math
from bisect import bisect_right

from repro._hot import HOT

__all__ = ["Counter", "Gauge", "Histogram", "DEFAULT_PERCENTILES",
           "GAUGE_MERGE_MODES"]

#: The percentile set every latency summary reports.
DEFAULT_PERCENTILES = (50.0, 90.0, 95.0, 99.0, 99.9)


class Counter:
    """A monotonically increasing count (events, bytes, queries)."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got {n}")
        self.value += n

    def merge(self, other: "Counter") -> None:
        """Key-wise aggregation: counts from another registry add up."""
        self.value += other.value

    def snapshot(self) -> dict:
        return {"value": self.value}


#: Valid :class:`Gauge` cluster-merge modes.
GAUGE_MERGE_MODES = ("sum", "last", "max", "min")


class Gauge:
    """A point-in-time value (occupancy, utilization, queue depth).

    ``merge_mode`` decides what a cluster-level merge means for this
    gauge.  Occupancy-style gauges (bytes held, queue depth, free
    blocks) add up across shards, so ``"sum"`` is the default.  Ratio
    or projection gauges (write amplification, wear skew) have no
    natural sum; they opt into ``"last"`` (the merged-in reading wins),
    ``"max"`` or ``"min"``.
    """

    __slots__ = ("value", "merge_mode")

    kind = "gauge"

    def __init__(self, merge_mode: str = "sum") -> None:
        if merge_mode not in GAUGE_MERGE_MODES:
            raise ValueError(
                f"unknown gauge merge mode {merge_mode!r}; "
                f"choose from {GAUGE_MERGE_MODES}"
            )
        self.value = 0.0
        self.merge_mode = merge_mode

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def merge(self, other: "Gauge") -> None:
        """Fold another shard's reading in, per this gauge's merge mode."""
        if self.merge_mode == "sum":
            self.value += other.value
        elif self.merge_mode == "last":
            self.value = other.value
        elif self.merge_mode == "max":
            self.value = max(self.value, other.value)
        else:  # "min"
            self.value = min(self.value, other.value)

    def snapshot(self) -> dict:
        return {"value": self.value, "merge_mode": self.merge_mode}


class Histogram:
    """Log-bucketed distribution of non-negative samples.

    Bucket 0 holds ``[0, lo)``; bucket ``i >= 1`` holds
    ``[lo * growth**(i-1), lo * growth**i)``.  Counts live in a sparse
    dict, so the value range is unbounded at O(observed buckets) memory.
    ``growth=1.04`` keeps every bucket within 4% relative width — more
    than enough for latency percentiles, where run-to-run noise dwarfs it.
    """

    __slots__ = ("lo", "growth", "_log_growth", "_bounds", "_counts",
                 "count", "sum", "min", "max", "exemplar_sink", "_pending")

    kind = "histogram"

    def __init__(self, lo: float = 0.5, growth: float = 1.04) -> None:
        if lo <= 0:
            raise ValueError("lo must be positive")
        if growth <= 1.0:
            raise ValueError("growth must exceed 1.0")
        self.lo = lo
        self.growth = growth
        self._log_growth = math.log(growth)
        # Exact bucket-boundary table: _bounds[i] is the smallest float
        # whose reference bucket index is i+1, so bisect_right gives the
        # same index as the log formula (see bucket_index).  Grown lazily
        # as larger samples arrive.
        self._bounds: list[float] = [lo]
        self._counts: dict[int, int] = {}
        # Bucket increments since the last take_bucket_deltas() drain —
        # lets the timeline recorder emit per-window sub-histograms in
        # O(changed buckets) instead of re-diffing the whole dict.
        self._pending: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: Optional tail-exemplar capture (see repro.obs.timeline.
        #: ExemplarStore); None keeps the hot path to one attribute check.
        self.exemplar_sink = None

    # -- recording -----------------------------------------------------------

    def _reference_bucket_index(self, value: float) -> int:
        """The original log-formula index — the oracle the boundary
        table is built against (and that the property suite pins
        :meth:`bucket_index` to)."""
        if value < self.lo:
            return 0
        return 1 + int(math.log(value / self.lo) / self._log_growth)

    def _extend_bounds(self, value: float) -> None:
        """Grow the boundary table until it covers ``value``.

        Each new boundary starts at the analytic ``lo * growth**(i-1)``
        and is then walked by ulps (``math.nextafter``) to the exact
        float where the reference formula first reaches the new index —
        so bisecting the table reproduces the formula bit for bit,
        including its floating-point rounding at bucket edges.
        """
        bounds = self._bounds
        ref = self._reference_bucket_index
        while bounds[-1] <= value:
            idx = len(bounds) + 1  # reference index just past the new boundary
            c = self.lo * self.growth ** (idx - 1)
            if ref(c) >= idx:
                while True:
                    p = math.nextafter(c, 0.0)
                    if p > bounds[-1] and ref(p) >= idx:
                        c = p
                    else:
                        break
            else:
                while ref(c) < idx:
                    c = math.nextafter(c, math.inf)
            bounds.append(c)

    def bucket_index(self, value: float) -> int:
        bounds = self._bounds
        if value >= bounds[-1]:
            if value == math.inf:
                # The formula's behaviour for inf (OverflowError from
                # int(inf)) is part of the contract; the table can't
                # cover it.
                return self._reference_bucket_index(value)
            self._extend_bounds(value)
            bounds = self._bounds
        return bisect_right(bounds, value)

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """The ``[lower, upper)`` range of one bucket."""
        if index <= 0:
            return (0.0, self.lo)
        return (self.lo * self.growth ** (index - 1),
                self.lo * self.growth ** index)

    def bucket_width_at(self, value: float) -> float:
        lo, hi = self.bucket_bounds(self.bucket_index(value))
        return hi - lo

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram samples must be non-negative, got {value}")
        HOT.histogram_records += 1
        b = self.bucket_index(value)
        self._counts[b] = self._counts.get(b, 0) + 1
        self._pending[b] = self._pending.get(b, 0) + 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.exemplar_sink is not None:
            self.exemplar_sink.offer(self, value)

    def record_many(self, values) -> None:
        for v in values:
            self.record(v)

    # -- percentile extraction -----------------------------------------------

    def _order_stat(self, index: int, items: list[tuple[int, int]]) -> float:
        """Estimate the ``index``-th smallest sample (0-based).

        ``items`` is the bucket dict sorted by index — passed in so one
        sort serves every order statistic of a percentile batch.
        """
        remaining = index
        for b, c in items:
            if remaining < c:
                lo, hi = self.bucket_bounds(b)
                frac = (remaining + 0.5) / c
                return lo + frac * (hi - lo)
            remaining -= c
        return self.max

    def percentile(self, q: float, *,
                   _items: list[tuple[int, int]] | None = None) -> float:
        """The q-th percentile, within one bucket width of the exact value.

        Matches ``np.percentile``'s linear interpolation between order
        statistics, with each order statistic located by interpolating
        inside its bucket; the estimate is clamped to the observed
        ``[min, max]``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            raise ValueError("empty histogram has no percentiles")
        rank = q / 100.0 * (self.count - 1)
        i0 = math.floor(rank)
        i1 = math.ceil(rank)
        items = sorted(self._counts.items()) if _items is None else _items
        v0 = self._order_stat(i0, items)
        v = v0 if i1 == i0 else v0 + (rank - i0) * (self._order_stat(i1, items) - v0)
        return min(max(v, self.min), self.max)

    def percentiles(self, qs=DEFAULT_PERCENTILES) -> tuple[float, ...]:
        items = sorted(self._counts.items())
        return tuple(self.percentile(q, _items=items) for q in qs)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "Histogram") -> None:
        """Bucket-wise sum; both histograms must share a bucket layout."""
        if (self.lo, self.growth) != (other.lo, other.growth):
            raise ValueError(
                f"cannot merge histograms with different bucket layouts: "
                f"(lo={self.lo}, growth={self.growth}) vs "
                f"(lo={other.lo}, growth={other.growth})"
            )
        for b, c in other._counts.items():
            self._counts[b] = self._counts.get(b, 0) + c
            self._pending[b] = self._pending.get(b, 0) + c
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def take_bucket_deltas(self) -> dict[int, int]:
        """Drain the bucket increments since the previous drain.

        Single-consumer by design: the timeline recorder (at most one
        per registry) owns the drain.  Increments accumulate from
        construction, so the first drain equals the full bucket dict.
        """
        out = self._pending
        self._pending = {}
        return out

    def snapshot(self) -> dict:
        out = {
            "lo": self.lo,
            "growth": self.growth,
            "count": self.count,
            "sum": self.sum,
            "buckets": {str(b): c for b, c in sorted(self._counts.items())},
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
            for q, v in zip(DEFAULT_PERCENTILES, self.percentiles()):
                out[f"p{q:g}".replace(".", "")] = v
        return out
