"""Exposition: Prometheus-style text, JSON snapshots, telemetry dirs.

A telemetry directory (``repro run --telemetry DIR``) holds::

    spans.jsonl     one span object per line (see repro.obs.tracer)
    metrics.json    MetricsRegistry.snapshot() (schema repro.obs.metrics/v1)
    metrics.prom    the same registry as Prometheus text exposition
    audit.jsonl     the decision audit trail (present when auditing is on)
    timeline.jsonl  windowed time series (present when a timeline is
                    attached; schema repro.obs.timeline/v1)
    blame.jsonl     per-request kernel blame records (present for runs
                    under the concurrency kernel; repro.obs.blame/v1)
    incident-<n>/   flight-recorder incident bundles (present when the
                    recorder triggered; schema repro.obs.incident/v1)

:func:`validate_telemetry_dir` is the schema check used by both the CI
smoke job and ``repro report``.
"""

from __future__ import annotations

import json
import os

from repro.obs.registry import MetricsRegistry

__all__ = [
    "prometheus_text",
    "openmetrics_text",
    "write_metrics_json",
    "write_telemetry_dir",
    "load_metrics_json",
    "validate_telemetry_dir",
]

_SPAN_FIELDS = {"span_id", "parent_id", "name", "start_us", "end_us",
                "dur_us", "attrs"}


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _prom_labels(tags: dict, extra: dict | None = None) -> str:
    labels = dict(tags)
    if extra:
        labels.update(extra)
    if not labels:
        return ""
    body = ",".join(f'{_prom_name(k)}="{v}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Histograms are rendered summary-style: ``{quantile="0.5"}`` lines
    plus ``_sum`` and ``_count`` (quantiles are what the latency series
    mean; cumulative ``le`` buckets would just re-encode the log layout).
    """
    lines: list[str] = []
    typed: set[str] = set()
    for name, tags, inst in registry.items():
        pname = _prom_name(name)
        if inst.kind in ("counter", "gauge"):
            if pname not in typed:
                lines.append(f"# TYPE {pname} {inst.kind}")
                typed.add(pname)
            lines.append(f"{pname}{_prom_labels(tags)} {inst.value}")
        else:
            if pname not in typed:
                lines.append(f"# TYPE {pname} summary")
                typed.add(pname)
            if inst.count:
                for q, v in zip((0.5, 0.9, 0.95, 0.99, 0.999),
                                inst.percentiles()):
                    lines.append(
                        f"{pname}{_prom_labels(tags, {'quantile': q})} {v}"
                    )
            lines.append(f"{pname}_sum{_prom_labels(tags)} {inst.sum}")
            lines.append(f"{pname}_count{_prom_labels(tags)} {inst.count}")
    return "\n".join(lines) + "\n"


_OM_QUANTILES = ("0.5", "0.9", "0.95", "0.99", "0.999")


def _om_escape(value) -> str:
    """Escape a label value per the OpenMetrics ABNF."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _om_labels(tags: dict, extra: dict | None = None) -> str:
    labels = dict(tags)
    if extra:
        labels.update(extra)
    if not labels:
        return ""
    body = ",".join(f'{_prom_name(k)}="{_om_escape(v)}"'
                    for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _om_rows(source):
    """Normalize a registry or a metrics.json snapshot to exposition rows.

    Yields ``(name, tags, kind, data)`` where ``data`` is the scalar
    value for counters/gauges and a ``{count, sum, quantiles}`` dict for
    histograms.
    """
    if isinstance(source, MetricsRegistry):
        for name, tags, inst in source.items():
            if inst.kind == "histogram":
                qs = (dict(zip(_OM_QUANTILES, inst.percentiles()))
                      if inst.count else {})
                yield name, tags, "histogram", {
                    "count": inst.count, "sum": inst.sum, "quantiles": qs}
            else:
                yield name, tags, inst.kind, inst.value
        return
    if source.get("schema") != "repro.obs.metrics/v1":
        raise ValueError("openmetrics_text: not a repro.obs metrics snapshot")
    for m in source.get("metrics", []):
        if m["kind"] == "histogram":
            qs = (dict(zip(_OM_QUANTILES,
                           (m["p50"], m["p90"], m["p95"], m["p99"],
                            m["p999"])))
                  if m.get("count") else {})
            yield m["name"], m["tags"], "histogram", {
                "count": m.get("count", 0), "sum": m.get("sum", 0.0),
                "quantiles": qs}
        else:
            yield m["name"], m["tags"], m["kind"], m["value"]


def openmetrics_text(source) -> str:
    """Render a registry *or* a metrics.json snapshot as OpenMetrics text.

    Follows the OpenMetrics 1.0 exposition rules that differ from the
    legacy Prometheus format: counter metric families drop their
    ``_total`` suffix in the ``# TYPE`` line (samples keep it), label
    values escape ``\\``, ``"`` and newlines, histograms render as
    summaries (quantile series plus ``_sum``/``_count``), and the
    output terminates with ``# EOF``.  This is what
    ``repro report DIR --format openmetrics`` emits.
    """
    lines: list[str] = []
    typed: set[str] = set()
    for name, tags, kind, data in _om_rows(source):
        pname = _prom_name(name)
        if kind == "counter":
            family = pname[:-6] if pname.endswith("_total") else pname
            if family not in typed:
                lines.append(f"# TYPE {family} counter")
                typed.add(family)
            lines.append(f"{family}_total{_om_labels(tags)} {data}")
        elif kind == "gauge":
            if pname not in typed:
                lines.append(f"# TYPE {pname} gauge")
                typed.add(pname)
            lines.append(f"{pname}{_om_labels(tags)} {data}")
        else:
            if pname not in typed:
                lines.append(f"# TYPE {pname} summary")
                typed.add(pname)
            for q, v in data["quantiles"].items():
                lines.append(
                    f"{pname}{_om_labels(tags, {'quantile': q})} {v}")
            lines.append(f"{pname}_sum{_om_labels(tags)} {data['sum']}")
            lines.append(f"{pname}_count{_om_labels(tags)} {data['count']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_metrics_json(registry: MetricsRegistry, path) -> None:
    with open(path, "w") as fh:
        json.dump(registry.snapshot(), fh, indent=1)
        fh.write("\n")


def load_metrics_json(path) -> dict:
    with open(path) as fh:
        snapshot = json.load(fh)
    if snapshot.get("schema") != "repro.obs.metrics/v1":
        raise ValueError(f"{path}: not a repro.obs metrics snapshot")
    return snapshot


def write_telemetry_dir(telemetry, out_dir) -> dict:
    """Write spans.jsonl / metrics.json / metrics.prom / audit.jsonl.

    Flash-device bridges are sampled first (so wear/GC/WA gauges are
    current), and a tracer streaming to the directory is finalized in
    place instead of re-exported.  Returns a summary dict.
    """
    os.makedirs(out_dir, exist_ok=True)
    collect = getattr(telemetry, "collect", None)
    if collect is not None:
        collect()
    spans = telemetry.tracer.export_jsonl(os.path.join(out_dir, "spans.jsonl"))
    write_metrics_json(telemetry.registry, os.path.join(out_dir, "metrics.json"))
    with open(os.path.join(out_dir, "metrics.prom"), "w") as fh:
        fh.write(prometheus_text(telemetry.registry))
    audit = getattr(telemetry, "audit", None)
    audit_records = 0
    if audit is not None and audit.enabled:
        audit_records = audit.export_jsonl(os.path.join(out_dir, "audit.jsonl"))
    summary = {"spans": spans, "metrics": len(telemetry.registry),
               "dropped_spans": telemetry.tracer.dropped,
               "audit_records": audit_records}
    timeline = getattr(telemetry, "timeline", None)
    if timeline is not None:
        timeline.export_jsonl(os.path.join(out_dir, "timeline.jsonl"))
        summary["timeline_windows"] = timeline.emitted
    blame = getattr(telemetry, "blame", None)
    if blame is not None:
        summary["blame_records"] = blame.export_jsonl(
            os.path.join(out_dir, "blame.jsonl"))
    flight = getattr(telemetry, "flight", None)
    if flight is not None:
        # After the timeline export above: finishing the timeline closes
        # the final window, whose callbacks may open/extend an incident.
        summary["incidents"] = flight.finish()
    return summary


def validate_telemetry_dir(out_dir) -> dict:
    """Check a telemetry dir is non-empty and schema-valid.

    Raises ``ValueError`` on any violation; returns ``{"spans": n,
    "metrics": m}`` on success.  Used by the CI smoke job.
    """
    spans_path = os.path.join(out_dir, "spans.jsonl")
    metrics_path = os.path.join(out_dir, "metrics.json")
    for path in (spans_path, metrics_path):
        if not os.path.exists(path):
            raise ValueError(f"missing telemetry file: {path}")

    from repro.obs._jsonl import read_jsonl

    span_records, torn = read_jsonl(spans_path)
    n_spans = 0
    for lineno, span in span_records:
        missing = _SPAN_FIELDS - span.keys()
        if missing:
            raise ValueError(
                f"{spans_path}:{lineno}: span missing fields {sorted(missing)}"
            )
        if span["end_us"] < span["start_us"]:
            raise ValueError(f"{spans_path}:{lineno}: span ends before it starts")
        n_spans += 1
    if n_spans == 0:
        raise ValueError(f"{spans_path}: no spans recorded")

    snapshot = load_metrics_json(metrics_path)
    metrics = snapshot.get("metrics", [])
    if not metrics:
        raise ValueError(f"{metrics_path}: no metrics recorded")
    for m in metrics:
        for fld in ("name", "tags", "kind"):
            if fld not in m:
                raise ValueError(f"{metrics_path}: metric missing {fld!r}: {m}")
        if m["kind"] not in ("counter", "gauge", "histogram"):
            raise ValueError(f"{metrics_path}: unknown metric kind {m['kind']!r}")

    counts = {"spans": n_spans, "metrics": len(metrics)}
    audit_path = os.path.join(out_dir, "audit.jsonl")
    if os.path.exists(audit_path):
        from repro.obs.audit import load_audit_jsonl

        counts["audit_records"] = len(load_audit_jsonl(audit_path))
    timeline_path = os.path.join(out_dir, "timeline.jsonl")
    if os.path.exists(timeline_path):
        from repro.obs.timeline import validate_timeline_jsonl

        tl = validate_timeline_jsonl(timeline_path)
        counts["timeline_windows"] = tl["windows"]
        counts["exemplars"] = tl["exemplars"]
    blame_path = os.path.join(out_dir, "blame.jsonl")
    if os.path.exists(blame_path):
        from repro.obs.blame import validate_blame_jsonl

        counts["blame_records"] = sum(validate_blame_jsonl(blame_path)
                                      .values())
    if torn:
        counts["torn_tail"] = torn
    from repro.obs.flightrecorder import list_incidents, validate_incident_dir

    incident_dirs = list_incidents(out_dir)
    if incident_dirs:
        for inc_dir in incident_dirs:
            validate_incident_dir(inc_dir)
        counts["incidents"] = len(incident_dirs)
    return counts
