"""Nested spans over the simulated clock, exported as JSONL.

A :class:`Tracer` answers *where a query's microseconds went*: the cache
manager opens a ``query`` span, the cache layers open probe/fetch spans
inside it, and every device access lands as a leaf span — all stamped
with :class:`~repro.sim.clock.VirtualClock` time, so span durations
reconcile exactly with the simulation's latency accounting.

Span JSONL schema (one object per line)::

    {"span_id": 3, "parent_id": 1, "name": "ssd-cache.read",
     "start_us": 12.5, "end_us": 45.2, "dur_us": 32.7,
     "attrs": {"lba": 0, "nbytes": 131072}}

The hot path is zero-cost when tracing is off: components hold the
shared :data:`NULL_TRACER` (or a plain ``None`` device hook), whose
``span``/``record`` are constant no-ops that allocate nothing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.obs._jsonl import read_jsonl

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER",
           "load_spans_jsonl"]


@dataclass
class Span:
    """One finished span."""

    span_id: int
    parent_id: int | None
    name: str
    start_us: float
    end_us: float
    attrs: dict = field(default_factory=dict)

    @property
    def dur_us(self) -> float:
        return self.end_us - self.start_us

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "dur_us": self.dur_us,
            "attrs": self.attrs,
        }


class _SpanCtx:
    """An open span; a context manager that finishes it on exit."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "start_us")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach attributes to an in-flight span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_SpanCtx":
        t = self._tracer
        self.span_id = t._next_id
        t._next_id += 1
        self.parent_id = t._stack[-1] if t._stack else None
        t._stack.append(self.span_id)
        self.start_us = t.clock.now_us
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t = self._tracer
        t._stack.pop()
        t._append(Span(
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            start_us=self.start_us,
            end_us=t.clock.now_us,
            attrs=self.attrs,
        ))
        return False


class Tracer:
    """Collects nested spans stamped with a virtual clock.

    ``max_spans`` bounds memory on long runs: past the cap new spans are
    counted in :attr:`dropped` instead of stored (open-span nesting keeps
    working, so parent ids stay correct for what is kept).

    :meth:`open_stream` switches the tracer to **streaming mode**: each
    finished span is written to a JSONL file immediately instead of
    accumulating in memory, so an arbitrarily long ``repro run
    --telemetry`` holds zero spans resident.  ``max_spans`` does not
    apply while streaming (nothing is stored, nothing is dropped).
    """

    enabled = True

    def __init__(self, clock=None, max_spans: int = 1_000_000) -> None:
        self.clock = clock
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        #: optional callable fed every finished span *before* storage or
        #: streaming — the flight recorder's ring hangs off this, so it
        #: sees spans even when streaming mode retains nothing.
        self.span_sink = None
        self._stack: list[int] = []
        self._next_id = 1
        self._stream = None
        self._stream_path = None
        self._streamed = 0

    def span(self, name: str, **attrs) -> _SpanCtx:
        """Open a nested span: ``with tracer.span("query", qid=7) as sp:``."""
        return _SpanCtx(self, name, attrs)

    def record(self, name: str, start_us: float, end_us: float, **attrs) -> None:
        """Append a leaf span measured externally (e.g. a device access)."""
        span_id = self._next_id
        self._next_id += 1
        self._append(Span(
            span_id=span_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            start_us=start_us,
            end_us=end_us,
            attrs=attrs,
        ))

    def _append(self, span: Span) -> None:
        sink = self.span_sink
        if sink is not None:
            sink(span)
        if self._stream is not None:
            self._stream.write(json.dumps(span.to_dict()) + "\n")
            self._streamed += 1
            return
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    # -- streaming -----------------------------------------------------------

    @property
    def streaming(self) -> bool:
        return self._stream_path is not None

    @property
    def span_count(self) -> int:
        """Spans recorded so far (stored or already streamed to disk)."""
        return self._streamed if self.streaming else len(self.spans)

    def open_stream(self, path) -> None:
        """Start writing finished spans straight to ``path`` as JSONL.

        Spans already held in memory are flushed to the file first, so
        switching mid-run loses nothing.
        """
        if self._stream is not None:
            raise RuntimeError("tracer is already streaming")
        self._stream = open(path, "w")
        self._stream_path = path
        for span in self.spans:
            self._stream.write(json.dumps(span.to_dict()) + "\n")
        self._streamed = len(self.spans)
        self.spans = []

    def close_stream(self) -> None:
        """Flush and close the streaming file (path/count stay queryable)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    # -- export --------------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self.spans]

    def export_jsonl(self, path) -> int:
        """Write one JSON object per span; returns the span count.

        In streaming mode the spans are already on disk: exporting to
        the stream's own path just finalizes the file; exporting to a
        different path copies the streamed file there.
        """
        if self.streaming:
            self.close_stream()
            if os.path.abspath(str(path)) != os.path.abspath(str(self._stream_path)):
                with open(self._stream_path) as src, open(path, "w") as dst:
                    for line in src:
                        dst.write(line)
            return self._streamed
        with open(path, "w") as fh:
            for span in self.spans:
                fh.write(json.dumps(span.to_dict()) + "\n")
        return len(self.spans)


class NullTracer:
    """The disabled tracer: every operation is a constant no-op."""

    enabled = False

    class _NullSpan:
        __slots__ = ()

        def set(self, **attrs) -> None:
            pass

        def __enter__(self):
            return self

        def __exit__(self, exc_type, exc, tb) -> bool:
            return False

    _SPAN = _NullSpan()
    spans: tuple = ()
    dropped = 0
    streaming = False
    span_count = 0
    span_sink = None

    def span(self, name: str, **attrs):
        return self._SPAN

    def record(self, name: str, start_us: float, end_us: float, **attrs) -> None:
        pass

    def close_stream(self) -> None:
        pass

    def export_jsonl(self, path) -> int:
        with open(path, "w"):
            pass
        return 0


#: Shared do-nothing tracer; components default to this so tracing costs
#: one attribute access when disabled.
NULL_TRACER = NullTracer()


def load_spans_jsonl(path) -> tuple[list[dict], int]:
    """Load a ``spans.jsonl`` file; returns ``(spans, torn_tail)``.

    A torn final line (a live run cut mid-write) is skipped and counted
    rather than raised.
    """
    records, torn = read_jsonl(path)
    return [rec for _, rec in records], torn
