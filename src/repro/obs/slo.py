"""Declarative SLOs and built-in anomaly detectors over timeline windows.

An SLO is a one-line spec evaluated against the per-window derived
series the timeline records::

    p99_response_us < 100000 @ 95%
    hit_ratio >= 0.3 @ 90%
    write_amp < 3.0

Grammar: ``<series> <op> <threshold> [@ <fraction>%]``, where
``<series>`` is any derived or raw window series (see
:func:`~repro.obs.timeline.window_series`), ``<op>`` is one of
``< <= > >=``, and the optional ``@ N%`` is the *burn-rate budget*:
the fraction of evaluated windows that must satisfy the comparison for
the SLO to be met (100% when omitted).  Windows where the series has
no data are skipped, not failed.

The anomaly detectors are the monitoring playbook the paper's own
evaluation implies: hit-ratio drift (warmup regression or working-set
shift), write-amplification spikes (Fig. 13 staged victim search
degrading to multi-victim assembly), queue buildup (flush path not
keeping up), and — at the broker level — cross-shard skew (one shard's
windowed series diverging from the fleet's).
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass

from repro.obs.timeline import derive_window, window_series

__all__ = [
    "SloSpec",
    "SloResult",
    "Anomaly",
    "parse_slo",
    "evaluate_slo",
    "evaluate_slos",
    "detect_hit_ratio_drift",
    "detect_write_amp_spike",
    "detect_queue_buildup",
    "detect_wait_dominated",
    "detect_shard_skew",
    "run_detectors",
    "DEFAULT_SLOS",
    "window_point",
    "StreamingHitRatioDrift",
    "StreamingWriteAmpSpike",
    "StreamingQueueBuildup",
    "StreamingWaitDominated",
    "StreamingDetectors",
    "StreamingShardSkew",
    "StreamingSloEvaluator",
]

_SLO_RE = re.compile(
    r"^\s*(?P<series>[A-Za-z_][\w{}=,.\-]*)\s*"
    r"(?P<op><=|>=|<|>)\s*"
    r"(?P<threshold>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)"
    r"(?:\s*@\s*(?P<pct>\d+(?:\.\d+)?)\s*%)?\s*$"
)

_OPS = {
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
}


@dataclass(frozen=True)
class SloSpec:
    """One parsed SLO line."""

    series: str
    op: str
    threshold: float
    min_fraction: float  # fraction of windows that must pass (0..1]
    text: str

    def check(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)


@dataclass(frozen=True)
class SloResult:
    """Evaluation of one SLO over a window sequence."""

    spec: SloSpec
    windows_evaluated: int
    windows_passed: int
    verdict: str  # "met" | "violated" | "no-data"
    worst_window: int | None = None
    worst_value: float | None = None

    @property
    def fraction(self) -> float:
        if self.windows_evaluated == 0:
            return 0.0
        return self.windows_passed / self.windows_evaluated

    def to_dict(self) -> dict:
        return {
            "slo": self.spec.text,
            "series": self.spec.series,
            "verdict": self.verdict,
            "windows_evaluated": self.windows_evaluated,
            "windows_passed": self.windows_passed,
            "fraction": self.fraction,
            "worst_window": self.worst_window,
            "worst_value": self.worst_value,
        }

    def format(self) -> str:
        if self.verdict == "no-data":
            return f"?  {self.spec.text}  (no data)"
        mark = "ok" if self.verdict == "met" else "FAIL"
        line = (f"{mark:4s} {self.spec.text}  "
                f"[{self.windows_passed}/{self.windows_evaluated} windows]")
        if self.verdict == "violated" and self.worst_window is not None:
            line += (f"  worst: {self.worst_value:g} "
                     f"at window {self.worst_window}")
        return line


def parse_slo(text: str) -> SloSpec:
    """Parse one ``<series> <op> <threshold> [@ N%]`` line."""
    m = _SLO_RE.match(text)
    if m is None:
        raise ValueError(
            f"bad SLO spec {text!r}; expected "
            f"'<series> <op> <threshold> [@ <fraction>%]' "
            f"e.g. 'p99_response_us < 100000 @ 95%'"
        )
    pct = m.group("pct")
    frac = float(pct) / 100.0 if pct is not None else 1.0
    if not 0.0 < frac <= 1.0:
        raise ValueError(f"SLO fraction must be in (0, 100]%, got {pct}%")
    return SloSpec(
        series=m.group("series"),
        op=m.group("op"),
        threshold=float(m.group("threshold")),
        min_fraction=frac,
        text=" ".join(text.split()),
    )


def evaluate_slo(spec: SloSpec, windows) -> SloResult:
    """Evaluate one SLO against the window records."""
    pts = window_series(windows, spec.series)
    if not pts:
        return SloResult(spec, 0, 0, "no-data")
    passed = 0
    worst_window = worst_value = None
    for w, v in pts:
        if spec.check(v):
            passed += 1
        else:
            # "worst" = the failing value farthest past the threshold.
            miss = abs(v - spec.threshold)
            if worst_value is None or miss > abs(worst_value - spec.threshold):
                worst_window, worst_value = w, v
    verdict = "met" if passed / len(pts) >= spec.min_fraction else "violated"
    return SloResult(spec, len(pts), passed, verdict,
                     worst_window=worst_window, worst_value=worst_value)


def evaluate_slos(specs, windows) -> list[SloResult]:
    """Evaluate many SLOs; accepts specs or raw text lines."""
    out = []
    for spec in specs:
        if isinstance(spec, str):
            spec = parse_slo(spec)
        out.append(evaluate_slo(spec, windows))
    return out


#: A sane default verdict set for the simulated workloads: tail response
#: under 100 ms for 95% of windows, cache hit ratio at least 30% once
#: measurable, write amplification bounded.
DEFAULT_SLOS = (
    "p99_response_us < 100000 @ 95%",
    "hit_ratio >= 0.3 @ 90%",
    "write_amp < 4.0 @ 95%",
)


# ---------------------------------------------------------------------------
# Anomaly detectors
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Anomaly:
    """One detector firing at one window."""

    detector: str
    window: int
    severity: str  # "warn" | "critical"
    detail: str

    def format(self) -> str:
        return f"[{self.severity}] {self.detector} @ window {self.window}: {self.detail}"

    def to_dict(self) -> dict:
        return {"detector": self.detector, "window": self.window,
                "severity": self.severity, "detail": self.detail}


def detect_hit_ratio_drift(windows, k: int = 5,
                           drop: float = 0.15) -> list[Anomaly]:
    """Hit ratio falling ``drop`` (absolute) below its trailing-k mean."""
    pts = window_series(windows, "hit_ratio")
    out = []
    for i in range(k, len(pts)):
        trail = sum(v for _, v in pts[i - k:i]) / k
        w, v = pts[i]
        if trail - v >= drop:
            out.append(Anomaly(
                "hit_ratio_drift", w, "warn",
                f"hit ratio {v:.3f} dropped {trail - v:.3f} below "
                f"trailing-{k} mean {trail:.3f}"))
    return out


def detect_write_amp_spike(windows, factor: float = 2.0,
                           min_wa: float = 1.5) -> list[Anomaly]:
    """Write amplification jumping ``factor``x over its trailing median."""
    pts = window_series(windows, "write_amp")
    out = []
    for i in range(1, len(pts)):
        trail = sorted(v for _, v in pts[max(0, i - 5):i])
        median = trail[len(trail) // 2]
        w, v = pts[i]
        if v >= min_wa and median > 0 and v >= factor * median:
            out.append(Anomaly(
                "write_amp_spike", w, "critical",
                f"write amp {v:.2f} is {v / median:.1f}x trailing "
                f"median {median:.2f}"))
    return out


def detect_queue_buildup(windows, k: int = 3,
                         critical_k: int = 6) -> list[Anomaly]:
    """Queue depth strictly rising across ``k`` consecutive observations.

    A run of ``k`` flags a ``warn``; a run reaching ``critical_k``
    escalates to ``critical`` — the unbounded-backlog signature of an
    open-loop arrival rate past the capacity knee, which strict timeline
    gating (``repro timeline --strict``) turns into a failure.
    """
    pts = window_series(windows, "queue_depth")
    out = []
    run = 0
    for i in range(1, len(pts)):
        if pts[i][1] > pts[i - 1][1]:
            run += 1
            if run >= k:
                w, v = pts[i]
                severity = "critical" if run >= critical_k else "warn"
                out.append(Anomaly(
                    "queue_buildup", w, severity,
                    f"queue depth rose {run} windows in a row to {v:g}"))
        else:
            run = 0
    return out


def detect_wait_dominated(windows, frac: float = 0.75, k: int = 4,
                          critical_frac: float = 0.95,
                          critical_k: int = 8) -> list[Anomaly]:
    """Queueing wait crowding out service in the kernel's blame counters.

    Watches the derived ``wait_fraction`` series (queue wait / (wait +
    service), from the blame recorder's per-resource counters).  A run
    of ``k`` consecutive windows at or above ``frac`` flags a ``warn``
    — queries now spend most of their time waiting, the leading edge of
    tail inflation.  Only a run of ``critical_k`` windows at or above
    ``critical_frac`` escalates to ``critical``: sustained near-total
    wait domination is the past-the-knee signature, while merely-high
    fractions are expected when running close to (but under) capacity,
    so the strict CI gate doesn't fire on a healthy ~80%-load run.
    """
    pts = window_series(windows, "wait_fraction")
    out = []
    warn_run = crit_run = 0
    for w, v in pts:
        warn_run = warn_run + 1 if v >= frac else 0
        crit_run = crit_run + 1 if v >= critical_frac else 0
        if crit_run >= critical_k:
            out.append(Anomaly(
                "wait_dominated", w, "critical",
                f"wait fraction >= {critical_frac:.0%} for {crit_run} "
                f"windows (now {v:.1%})"))
        elif warn_run >= k:
            out.append(Anomaly(
                "wait_dominated", w, "warn",
                f"wait fraction >= {frac:.0%} for {warn_run} windows "
                f"(now {v:.1%})"))
    return out


def run_detectors(windows) -> list[Anomaly]:
    """All single-run detectors, ordered by window."""
    out = (detect_hit_ratio_drift(windows)
           + detect_write_amp_spike(windows)
           + detect_queue_buildup(windows)
           + detect_wait_dominated(windows))
    return sorted(out, key=lambda a: (a.window, a.detector))


def detect_shard_skew(shard_windows: dict, series: str = "hit_ratio",
                      rel_tol: float = 0.25) -> list[Anomaly]:
    """Cross-shard skew: one shard's windowed mean diverging from the fleet.

    ``shard_windows`` maps shard id -> window records.  A shard is
    skewed when its mean over ``series`` differs from the *median* of
    all shard means by more than ``rel_tol`` (relative) — the median,
    not the mean, so a single lagging shard doesn't drag the reference
    down and flag every healthy shard with it.
    """
    means = {}
    for sid, windows in shard_windows.items():
        pts = window_series(windows, series)
        if pts:
            means[sid] = sum(v for _, v in pts) / len(pts)
    if len(means) < 2:
        return []
    ranked = sorted(means.values())
    mid = len(ranked) // 2
    fleet = (ranked[mid] if len(ranked) % 2
             else (ranked[mid - 1] + ranked[mid]) / 2.0)
    out = []
    for sid, m in sorted(means.items()):
        if fleet != 0 and abs(m - fleet) / abs(fleet) > rel_tol:
            out.append(Anomaly(
                "shard_skew", -1, "warn",
                f"shard {sid} mean {series} {m:.3f} vs fleet "
                f"median {fleet:.3f} ({(m - fleet) / fleet:+.0%})"))
    return out


# ---------------------------------------------------------------------------
# Streaming (incremental) evaluation
# ---------------------------------------------------------------------------
#
# Each streaming class replicates its post-hoc counterpart's state
# machine point for point — same trailing structures, same comparison
# order, same detail formatting — so feeding every closed window through
# a streaming instance yields the *identical* anomaly/verdict list that
# the batch function produces over the saved file.  That agreement is
# what lets the flight recorder trigger in-run on the very verdicts CI
# later re-derives post-hoc (property-tested in
# tests/test_obs_slo_streaming.py).

def window_point(rec: dict, series: str) -> tuple[int, float] | None:
    """The single-record mirror of :func:`~repro.obs.timeline.window_series`.

    Returns ``(window, value)`` for one window record, falling back to
    raw counters/gauges when ``series`` is not a derived one; None when
    the record carries no data for the series.
    """
    if rec.get("type", "window") != "window":
        return None
    derived = rec.get("derived") or derive_window(rec)
    v = derived.get(series)
    if v is None:
        for mapping in (rec.get("counters", {}), rec.get("gauges", {})):
            if series in mapping:
                v = mapping[series]
                break
    if v is None:
        return None
    return rec["window"], v


class StreamingHitRatioDrift:
    """Incremental :func:`detect_hit_ratio_drift`."""

    name = "hit_ratio_drift"

    def __init__(self, k: int = 5, drop: float = 0.15) -> None:
        self.k = k
        self.drop = drop
        self._trail: deque[float] = deque(maxlen=k)

    def update(self, rec: dict) -> list[Anomaly]:
        pt = window_point(rec, "hit_ratio")
        if pt is None:
            return []
        w, v = pt
        out = []
        if len(self._trail) == self.k:
            trail = sum(self._trail) / self.k
            if trail - v >= self.drop:
                out.append(Anomaly(
                    self.name, w, "warn",
                    f"hit ratio {v:.3f} dropped {trail - v:.3f} below "
                    f"trailing-{self.k} mean {trail:.3f}"))
        self._trail.append(v)
        return out


class StreamingWriteAmpSpike:
    """Incremental :func:`detect_write_amp_spike`."""

    name = "write_amp_spike"

    def __init__(self, factor: float = 2.0, min_wa: float = 1.5) -> None:
        self.factor = factor
        self.min_wa = min_wa
        self._trail: deque[float] = deque(maxlen=5)

    def update(self, rec: dict) -> list[Anomaly]:
        pt = window_point(rec, "write_amp")
        if pt is None:
            return []
        w, v = pt
        out = []
        if self._trail:
            trail = sorted(self._trail)
            median = trail[len(trail) // 2]
            if v >= self.min_wa and median > 0 and v >= self.factor * median:
                out.append(Anomaly(
                    self.name, w, "critical",
                    f"write amp {v:.2f} is {v / median:.1f}x trailing "
                    f"median {median:.2f}"))
        self._trail.append(v)
        return out


class StreamingQueueBuildup:
    """Incremental :func:`detect_queue_buildup`."""

    name = "queue_buildup"

    def __init__(self, k: int = 3, critical_k: int = 6) -> None:
        self.k = k
        self.critical_k = critical_k
        self._prev: float | None = None
        self._run = 0

    def update(self, rec: dict) -> list[Anomaly]:
        pt = window_point(rec, "queue_depth")
        if pt is None:
            return []
        w, v = pt
        out = []
        if self._prev is not None:
            if v > self._prev:
                self._run += 1
                if self._run >= self.k:
                    severity = ("critical" if self._run >= self.critical_k
                                else "warn")
                    out.append(Anomaly(
                        self.name, w, severity,
                        f"queue depth rose {self._run} windows in a row "
                        f"to {v:g}"))
            else:
                self._run = 0
        self._prev = v
        return out


class StreamingWaitDominated:
    """Incremental :func:`detect_wait_dominated`."""

    name = "wait_dominated"

    def __init__(self, frac: float = 0.75, k: int = 4,
                 critical_frac: float = 0.95, critical_k: int = 8) -> None:
        self.frac = frac
        self.k = k
        self.critical_frac = critical_frac
        self.critical_k = critical_k
        self._warn_run = 0
        self._crit_run = 0

    def update(self, rec: dict) -> list[Anomaly]:
        pt = window_point(rec, "wait_fraction")
        if pt is None:
            return []
        w, v = pt
        self._warn_run = self._warn_run + 1 if v >= self.frac else 0
        self._crit_run = (self._crit_run + 1 if v >= self.critical_frac
                          else 0)
        out = []
        if self._crit_run >= self.critical_k:
            out.append(Anomaly(
                self.name, w, "critical",
                f"wait fraction >= {self.critical_frac:.0%} for "
                f"{self._crit_run} windows (now {v:.1%})"))
        elif self._warn_run >= self.k:
            out.append(Anomaly(
                self.name, w, "warn",
                f"wait fraction >= {self.frac:.0%} for {self._warn_run} "
                f"windows (now {v:.1%})"))
        return out


class StreamingDetectors:
    """All single-run detectors, fed one closed window at a time.

    :meth:`update` returns the anomalies this window produced (sorted
    the way :func:`run_detectors` sorts) and accumulates them on
    :attr:`anomalies` — because window indices strictly increase, the
    accumulated list is ordered exactly as the post-hoc
    ``run_detectors`` output over the same windows.
    """

    def __init__(self) -> None:
        self.detectors = [
            StreamingHitRatioDrift(),
            StreamingWriteAmpSpike(),
            StreamingQueueBuildup(),
            StreamingWaitDominated(),
        ]
        self.anomalies: list[Anomaly] = []

    def update(self, rec: dict) -> list[Anomaly]:
        batch: list[Anomaly] = []
        for det in self.detectors:
            batch.extend(det.update(rec))
        batch.sort(key=lambda a: (a.window, a.detector))
        self.anomalies.extend(batch)
        return batch


class StreamingShardSkew:
    """Incremental :func:`detect_shard_skew` over per-shard window feeds.

    Feed every shard's closed windows through :meth:`update`; the
    running per-shard sums accumulate in the same order the batch
    detector's ``window_series`` pass would visit them, so
    :meth:`anomalies` is float-for-float identical to
    ``detect_shard_skew`` over the full per-shard window lists.
    """

    def __init__(self, series: str = "hit_ratio",
                 rel_tol: float = 0.25) -> None:
        self.series = series
        self.rel_tol = rel_tol
        self._sums: dict = {}

    def update(self, shard_id, rec: dict) -> None:
        pt = window_point(rec, self.series)
        if pt is None:
            return
        acc = self._sums.get(shard_id)
        if acc is None:
            acc = self._sums[shard_id] = [0.0, 0]
        acc[0] += pt[1]
        acc[1] += 1

    def anomalies(self) -> list[Anomaly]:
        means = {sid: s / n for sid, (s, n) in self._sums.items() if n}
        if len(means) < 2:
            return []
        ranked = sorted(means.values())
        mid = len(ranked) // 2
        fleet = (ranked[mid] if len(ranked) % 2
                 else (ranked[mid - 1] + ranked[mid]) / 2.0)
        out = []
        for sid, m in sorted(means.items()):
            if fleet != 0 and abs(m - fleet) / abs(fleet) > self.rel_tol:
                out.append(Anomaly(
                    "shard_skew", -1, "warn",
                    f"shard {sid} mean {self.series} {m:.3f} vs fleet "
                    f"median {fleet:.3f} ({(m - fleet) / fleet:+.0%})"))
        return out


class StreamingSloEvaluator:
    """Incremental :func:`evaluate_slos`: one window at a time.

    :meth:`results` at any point equals ``evaluate_slos(specs,
    windows_so_far)`` — same pass counts, same worst-window selection
    (first value farthest past the threshold wins ties), same verdicts.
    """

    def __init__(self, specs) -> None:
        self.specs = [parse_slo(s) if isinstance(s, str) else s
                      for s in specs]
        self._state = [{"evaluated": 0, "passed": 0,
                        "worst_window": None, "worst_value": None}
                       for _ in self.specs]

    def update(self, rec: dict) -> None:
        for spec, st in zip(self.specs, self._state):
            pt = window_point(rec, spec.series)
            if pt is None:
                continue
            w, v = pt
            st["evaluated"] += 1
            if spec.check(v):
                st["passed"] += 1
            else:
                miss = abs(v - spec.threshold)
                if (st["worst_value"] is None
                        or miss > abs(st["worst_value"] - spec.threshold)):
                    st["worst_window"], st["worst_value"] = w, v

    def results(self) -> list[SloResult]:
        out = []
        for spec, st in zip(self.specs, self._state):
            if st["evaluated"] == 0:
                out.append(SloResult(spec, 0, 0, "no-data"))
                continue
            verdict = ("met" if st["passed"] / st["evaluated"]
                       >= spec.min_fraction else "violated")
            out.append(SloResult(
                spec, st["evaluated"], st["passed"], verdict,
                worst_window=st["worst_window"],
                worst_value=st["worst_value"]))
        return out
