"""The telemetry bundle: one registry + one tracer, attached as a unit.

``Telemetry()`` is what users hand to a :class:`~repro.core.manager.
CacheManager` (or an :class:`~repro.cluster.shard.IndexShard`)::

    tel = Telemetry()
    manager = CacheManager(cfg, hierarchy, index, telemetry=tel)
    ... run queries ...
    write_telemetry_dir(tel, "out/")

The manager binds the tracer to its virtual clock, subscribes the
registry to its :class:`~repro.core.events.CacheEvents` bus, hooks the
hierarchy's devices, and calls :meth:`Telemetry.record_query` after each
query with the per-channel busy-time deltas — which is where the
per-stage latency histograms (``stage_latency_us{stage=l1|l2|hdd|cpu}``)
come from.  Stage durations are exact busy-time attributions, so their
per-query sum equals the query's response time.
"""

from __future__ import annotations

from repro.obs.audit import NULL_AUDIT, AuditLog
from repro.obs.cache_metrics import CacheEventMetrics, CacheStatsMetrics
from repro.obs.flash_metrics import FlashDeviceMetrics
from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import ExemplarStore, TimelineRecorder
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["Telemetry", "stage_of_channel"]

#: Sentinel distinguishing "channel not seen yet" from the legitimate
#: None stage (background channels) in the per-channel stage cache.
_UNRESOLVED = object()


def stage_of_channel(channel: str) -> str | None:
    """Map a clock busy channel to a query stage.

    Background channels (``*-bg``, overlapped GC) are not part of any
    query's response time and map to None.  Cluster shards on a shared
    clock suffix their devices with ``#<shard>`` (``dram#2``); the
    suffix is stripped so every shard's channels land on the same
    stages.
    """
    if channel.endswith("-bg"):
        return None
    base = channel.split("#", 1)[0]
    return {
        "dram": "l1",
        "ssd-cache": "l2",
        "index-hdd": "hdd",
        "index-ssd": "store-ssd",
    }.get(base, base)


class Telemetry:
    """A metrics registry, a span tracer and an audit log travelling together.

    ``trace=False`` keeps the registry (counters, histograms, stage
    breakdown) but records no spans — the cheap mode for long sweeps.
    ``audit=False`` likewise disables the decision log, leaving the
    shared :data:`~repro.obs.audit.NULL_AUDIT` on every decision site.
    """

    def __init__(self, clock=None, trace: bool = True,
                 max_spans: int = 1_000_000, audit: bool = True,
                 audit_capacity: int = 200_000) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock, max_spans=max_spans) if trace else NULL_TRACER
        self.audit = (AuditLog(capacity=audit_capacity, clock=clock)
                      if audit else NULL_AUDIT)
        self.clock = clock
        self.timeline: TimelineRecorder | None = None
        self.exemplars: ExemplarStore | None = None
        self._bridges: list[CacheEventMetrics] = []
        self._flash: list[FlashDeviceMetrics] = []
        self._kernels: list = []
        self._stats: list[CacheStatsMetrics] = []
        self._occupancy: list = []
        self._exemplar_hists: set[int] = set()
        self.blame = None
        self._blame_stream_path: str | None = None
        self._blame_stream_max: int | None = None
        #: the armed :class:`~repro.obs.flightrecorder.FlightRecorder`,
        #: if any — flushed by close()/write_telemetry_dir.
        self.flight = None
        # Hot-path instrument caches: record_query runs once per query,
        # so channel->stage mapping and the per-stage / per-situation
        # instruments are resolved once and reused instead of going
        # through the registry's (name, tags) lookup every time.
        self._channel_stages: dict[str, str | None] = {}
        self._stage_hists: dict = {}
        self._situation_insts: dict = {}
        self._occupancy_gauges: dict = {}

    def bind_clock(self, clock) -> None:
        """Late-bind the tracer and audit log to a clock (managers own
        their clock)."""
        self.clock = clock
        if isinstance(self.tracer, Tracer) and self.tracer.clock is None:
            self.tracer.clock = clock
        self.audit.bind_clock(clock)
        if self.timeline is not None and self.timeline.clock is None:
            self.timeline.clock = clock

    def attach_timeline(self, window_us: float = 50_000.0,
                        stream_path=None, exemplar_q: float = 99.0,
                        retain: int = 4096,
                        max_windows: int | None = None) -> TimelineRecorder:
        """Attach a windowed recorder (and tail-exemplar capture).

        ``window_us`` is the fixed window width on the virtual clock;
        ``stream_path`` turns on streaming (each window written to
        ``timeline.jsonl`` the moment it closes); ``exemplar_q`` is the
        percentile above which query-latency samples capture exemplars;
        ``max_windows`` caps the streamed file's growth by rotation.
        Call before the run starts; the manager ticks the recorder once
        per query.
        """
        if self.timeline is not None:
            raise RuntimeError("a timeline is already attached")
        self.exemplars = ExemplarStore(threshold_q=exemplar_q)
        self.timeline = TimelineRecorder(
            self.registry, window_us, clock=self.clock, retain=retain,
            collect=self.collect, exemplars=self.exemplars,
        )
        if stream_path is not None:
            self.timeline.open_stream(stream_path, max_windows=max_windows)
        return self.timeline

    def observe_stats(self, stats) -> CacheStatsMetrics:
        """Register a :class:`~repro.core.stats.CacheStats` for windowed
        hit/lookup counters (collected with the other bridges)."""
        bridge = CacheStatsMetrics(self.registry, stats)
        self._stats.append(bridge)
        return bridge

    def observe_occupancy(self, fn) -> None:
        """Register an occupancy callable (``CacheManager.occupancy``)
        whose entry/byte counts become sum-merged gauges per collect."""
        self._occupancy.append(fn)

    def observe_cache_events(self, events) -> CacheEventMetrics:
        """Subscribe the registry (and the audit timeline) to a
        cache-event bus."""
        bridge = CacheEventMetrics(self.registry, events)
        self._bridges.append(bridge)
        if self.audit.enabled:
            self.audit.observe_events(events)
        return bridge

    def observe_kernel(self, kernel, admission=None):
        """Register a concurrency kernel (and optionally its admission
        control) for queue-depth gauges and served/shed counters.

        The resulting ``queue_depth{resource=...}`` gauges feed the
        timeline's derived ``queue_depth`` series, so the queue-buildup
        detector watches the kernel's real backlogs.  Returns the
        :class:`~repro.obs.kernel_metrics.KernelMetrics` bridge.
        """
        from repro.obs.kernel_metrics import KernelMetrics

        bridge = KernelMetrics(self.registry, kernel, admission=admission)
        self._kernels.append(bridge)
        if self.blame is None:
            from repro.obs.blame import BlameRecorder

            self.blame = BlameRecorder(registry=self.registry)
            if self._blame_stream_path is not None:
                self.blame.open_stream(self._blame_stream_path,
                                       max_records=self._blame_stream_max)
        self.blame.attach(kernel, admission=admission)
        return bridge

    def stream_blame(self, path: str,
                     max_records: int | None = None) -> None:
        """Stream blame records to ``path`` as they are emitted.

        May be called before any kernel exists; the stream opens as soon
        as :meth:`observe_kernel` creates the recorder.  ``max_records``
        caps the streamed file's growth by rotation.
        """
        self._blame_stream_path = path
        self._blame_stream_max = max_records
        if self.blame is not None:
            self.blame.open_stream(path, max_records=max_records)

    def observe_flash(self, ssd, endurance_cycles: int = 5000):
        """Register a flash device for wear/GC/WA collection.

        Returns the :class:`~repro.obs.flash_metrics.FlashDeviceMetrics`
        bridge (or None when ``ssd`` is None, so callers can pass an
        optional tier straight through).
        """
        if ssd is None:
            return None
        bridge = FlashDeviceMetrics(self.registry, ssd,
                                    endurance_cycles=endurance_cycles)
        self._flash.append(bridge)
        return bridge

    def collect(self) -> None:
        """Sample every registered bridge into the registry.

        Called by :func:`~repro.obs.export.write_telemetry_dir` before a
        dump and by the timeline before every window close; safe to call
        repeatedly (counters advance by delta).
        """
        for bridge in self._flash:
            bridge.collect()
        for kernel_bridge in self._kernels:
            kernel_bridge.collect()
        for stats_bridge in self._stats:
            stats_bridge.collect()
        gauges = self._occupancy_gauges
        for fn in self._occupancy:
            occ = fn()
            depth = occ.pop("write_buffer", None)
            if depth is not None:
                g = gauges.get("write_buffer")
                if g is None:
                    g = gauges["write_buffer"] = self.registry.gauge(
                        "cache_write_buffer_entries")
                g.set(depth)
            for slot, value in occ.items():
                g = gauges.get(slot)
                if g is None:
                    g = gauges[slot] = self.registry.gauge(
                        "cache_occupancy", slot=slot)
                g.set(value)

    def busy_snapshot(self, clock) -> dict[str, float]:
        """Per-channel busy time now; pass to :meth:`record_query` later."""
        snap = getattr(clock, "busy_snapshot", None)
        if snap is not None:
            return snap()
        return {ch: clock.busy_us(ch) for ch in clock.channels()}

    def record_query(self, situation: str, response_us: float,
                     busy_before: dict[str, float], clock,
                     qid: int | None = None,
                     span_id: int | None = None) -> None:
        """Attribute one query's response time to stages.

        Each device channel's busy-time delta over the query becomes a
        ``stage_latency_us`` sample; the remainder (scoring, software
        overhead) is the ``cpu`` stage, so the stage sums reconcile
        exactly with total response time.  When a timeline is attached,
        the recorder ticks *before* the samples land — a closing window
        only ever contains queries that completed within it — and tail
        samples capture ``(qid, span_id, window)`` exemplars.

        Stage attribution is exact only closed-loop: with concurrent
        queries under the kernel, busy-time deltas over a query's span
        include other queries' device work, and the ``cpu`` residual
        absorbs queueing wait.  End-to-end ``query_latency_us`` stays
        exact either way.
        """
        reg = self.registry
        store = self.exemplars
        if self.timeline is not None:
            self.timeline.tick()
            if store is not None:
                store.set_context(qid, span_id,
                                  self.timeline.current_window(),
                                  clock.now_us)
        stages = self._channel_stages
        stage_hists = self._stage_hists
        busy_items = getattr(clock, "busy_items", None)
        if busy_items is None:  # duck-typed clocks without the fast view
            busy_items = lambda: ((ch, clock.busy_us(ch))  # noqa: E731
                                  for ch in clock.channels())
        devices = 0.0
        for ch, busy in busy_items():
            stage = stages.get(ch, _UNRESOLVED)
            if stage is _UNRESOLVED:
                stage = stages[ch] = stage_of_channel(ch)
            if stage is None:
                continue
            delta = busy - busy_before.get(ch, 0.0)
            if delta > 0.0:
                h = stage_hists.get(stage)
                if h is None:
                    h = stage_hists[stage] = reg.histogram(
                        "stage_latency_us", stage=stage)
                h.record(delta)
                devices += delta
        cpu = response_us - devices
        if cpu > 1e-9:
            h = stage_hists.get("cpu")
            if h is None:
                h = stage_hists["cpu"] = reg.histogram(
                    "stage_latency_us", stage="cpu")
            h.record(cpu)
        insts = self._situation_insts.get(situation)
        if insts is None:
            insts = self._situation_insts[situation] = (
                reg.histogram("query_latency_us", situation=situation),
                reg.counter("queries_total", situation=situation),
            )
        hist, queries_total = insts
        if store is not None and id(hist) not in self._exemplar_hists:
            store.register(hist, f"query_latency_us{{situation={situation}}}")
            self._exemplar_hists.add(id(hist))
        hist.record(response_us)
        queries_total.inc()
        if store is not None:
            store.clear_context()

    def close(self) -> None:
        """Detach every event-bus subscription and finish the timeline."""
        for bridge in self._bridges:
            bridge.close()
        self._bridges.clear()
        if self.timeline is not None:
            self.timeline.finish()
        if self.blame is not None:
            self.blame.finish()
        if self.flight is not None:
            # After timeline.finish() so the final window's callbacks
            # have fired before any open incident is flushed.
            self.flight.finish()
        self.audit.close()
        self.tracer.close_stream()
