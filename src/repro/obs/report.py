"""Per-stage latency breakdown tables from metrics snapshots.

Consumes the ``stage_latency_us`` histograms a :class:`~repro.obs.
telemetry.Telemetry` collects and renders the tables ``repro run
--telemetry`` / ``repro report`` / ``repro compare`` print — where each
query's microseconds went, per tier.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

__all__ = ["stage_summary", "format_stage_breakdown", "format_stage_comparison"]

#: Render order; stages outside this list sort alphabetically after it.
STAGE_ORDER = ("l1", "l2", "hdd", "store-ssd", "cpu")


def _as_snapshot(source: MetricsRegistry | dict) -> dict:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def _ordered(stages) -> list[str]:
    known = [s for s in STAGE_ORDER if s in stages]
    return known + sorted(s for s in stages if s not in STAGE_ORDER)


def stage_summary(source: MetricsRegistry | dict) -> dict[str, dict]:
    """Stage -> summary dict from a registry or a metrics.json snapshot."""
    snapshot = _as_snapshot(source)
    out: dict[str, dict] = {}
    for m in snapshot.get("metrics", []):
        if (m.get("name") != "stage_latency_us" or m.get("kind") != "histogram"
                or not m.get("count")):
            continue
        stage = m.get("tags", {}).get("stage")
        if stage is None:
            continue
        out[stage] = {
            "count": m["count"],
            "sum_us": m["sum"],
            "mean_us": m["sum"] / m["count"],
            "p50_us": m.get("p50", 0.0),
            "p95_us": m.get("p95", 0.0),
            "p99_us": m.get("p99", 0.0),
        }
    return out


def format_stage_breakdown(source: MetricsRegistry | dict,
                           title: str = "per-stage latency breakdown") -> str:
    """One run's breakdown: where the total response time went."""
    # Imported lazily: repro.analysis pulls in the workloads package,
    # whose cache modules themselves import repro.obs.
    from repro.analysis.tables import format_table

    summary = stage_summary(source)
    if not summary:
        return f"{title}\n(no stage telemetry recorded)"
    total_us = sum(d["sum_us"] for d in summary.values())
    rows = []
    for stage in _ordered(summary):
        d = summary[stage]
        rows.append([
            stage,
            d["count"],
            f"{d['sum_us'] / 1000.0:.2f}",
            f"{d['sum_us'] / total_us:.1%}" if total_us else "n/a",
            f"{d['mean_us']:.1f}",
            f"{d['p50_us']:.1f}",
            f"{d['p95_us']:.1f}",
            f"{d['p99_us']:.1f}",
        ])
    return format_table(
        ["stage", "samples", "total ms", "share", "mean us", "p50 us",
         "p95 us", "p99 us"],
        rows,
        title=title,
    )


def format_stage_comparison(sources: dict[str, MetricsRegistry | dict],
                            title: str = "per-stage breakdown by policy") -> str:
    """Side-by-side stage totals for several runs (e.g. one per policy)."""
    from repro.analysis.tables import format_table

    if not sources:
        raise ValueError("sources must be non-empty")
    summaries = {label: stage_summary(src) for label, src in sources.items()}
    stages = _ordered({s for summary in summaries.values() for s in summary})
    if not stages:
        return f"{title}\n(no stage telemetry recorded)"
    totals = {label: sum(d["sum_us"] for d in summary.values())
              for label, summary in summaries.items()}
    rows = []
    for stage in stages:
        row: list[object] = [stage]
        for label, summary in summaries.items():
            d = summary.get(stage)
            if d is None:
                row.append("-")
            else:
                share = d["sum_us"] / totals[label] if totals[label] else 0.0
                row.append(f"{d['sum_us'] / 1000.0:.2f} ms ({share:.1%})")
        rows.append(row)
    return format_table(["stage", *summaries], rows, title=title)
