"""The flight recorder: in-run incident capture over the live seams.

A :class:`FlightRecorder` is the black box riding along a kernel-mode
serve.  It arms three observation seams that already exist for other
consumers — the timeline's window callback, the tracer's span sink, and
the blame recorder's ring — and keeps bounded rings over each.  Every
closed window is fed to the *streaming* SLO evaluator and anomaly
detectors (:mod:`repro.obs.slo`), whose verdicts provably match the
post-hoc ``run_detectors``/``evaluate_slos`` over the saved timeline;
when a fresh anomaly at or above the trigger severity fires, the
recorder opens an **incident**: it snapshots the ±K surrounding windows,
waits ``post_windows`` more closes (re-triggering resets the countdown,
so one sustained overload is one incident, not dozens), then dumps a
self-contained bundle::

    incident-<n>/
        incident.json   the manifest (schema repro.obs.incident/v1):
                        trigger verdict, anomaly list, SLO state at
                        capture, window indices, affected qids and
                        resources, capacity-model snapshot, run config
                        with fingerprint, per-file counts
        windows.jsonl   the captured windows as a valid (truncated)
                        repro.obs.timeline/v1 file — exact deltas,
                        loadable by every timeline tool
        spans.jsonl     span trees for the affected qids (roots plus
                        all descendants, from the span ring)
        blame.json      per-query critical-path decompositions
                        (QueryBlame dicts) for the affected qids and
                        the heaviest queries ending inside the capture
        audit.jsonl     decision records timestamped inside the capture

Everything is observe-never-perturb: the recorder reads rings the
telemetry layer populates anyway, computes on the host clock only at
window close, and writes only when an incident actually dumps.  With
``out_dir=None`` it runs in *counting mode* — incidents are detected
and manifests kept in memory, nothing touches disk — which is how the
bench harness reports incident counts on saturation entries without
perturbing the measured run.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from collections import deque

from repro.obs.blame import BLAME_SCHEMA, QueryBlame, assemble_queries
from repro.obs.slo import (DEFAULT_SLOS, StreamingDetectors,
                           StreamingSloEvaluator)
from repro.obs.timeline import TIMELINE_SCHEMA

__all__ = [
    "INCIDENT_SCHEMA",
    "FlightRecorder",
    "list_incidents",
    "load_incident",
    "validate_incident_dir",
    "format_incident",
]

INCIDENT_SCHEMA = "repro.obs.incident/v1"

_SEVERITY_RANK = {"warn": 0, "critical": 1}

_INCIDENT_DIR_RE = re.compile(r"^incident-(\d+)$")


class FlightRecorder:
    """Black-box recorder + incident dumper over a telemetry bundle.

    Parameters
    ----------
    telemetry:
        The :class:`~repro.obs.telemetry.Telemetry` bundle of the run;
        a timeline must be attached before :meth:`arm`.
    out_dir:
        Directory receiving ``incident-<n>/`` bundles; None switches to
        counting mode (manifests kept in memory, nothing written).
    slos:
        SLO spec lines evaluated incrementally (state is snapshotted
        into each manifest).
    pre_windows / post_windows:
        Context captured around the trigger: up to ``pre_windows``
        windows before it plus ``post_windows`` after.
    trigger_severity:
        "warn" opens incidents on any anomaly; "critical" (default)
        only on critical ones.
    max_incidents:
        Hard cap on bundles per run (a sustained pathology should not
        fill the disk).
    config:
        The run's configuration dict, embedded in each manifest under a
        SHA-256 fingerprint so a bundle is attributable to the exact
        run that produced it.
    """

    def __init__(self, telemetry, out_dir=None, slos=DEFAULT_SLOS,
                 pre_windows: int = 4, post_windows: int = 2,
                 trigger_severity: str = "critical",
                 max_incidents: int = 16, span_ring: int = 4096,
                 max_qids: int = 8, max_audit_records: int = 512,
                 config: dict | None = None) -> None:
        if trigger_severity not in _SEVERITY_RANK:
            raise ValueError("trigger_severity must be 'warn' or 'critical'")
        self.telemetry = telemetry
        self.out_dir = out_dir
        self.pre_windows = pre_windows
        self.post_windows = post_windows
        self.trigger_severity = trigger_severity
        self.max_incidents = max_incidents
        self.max_qids = max_qids
        self.max_audit_records = max_audit_records
        self.config = config or {}
        self.slo = StreamingSloEvaluator(slos)
        self.detectors = StreamingDetectors()
        #: manifests of dumped incidents, in trigger order.
        self.incidents: list[dict] = []
        self.truncated_incidents = 0
        self._window_ring: deque[dict] = deque(maxlen=pre_windows + 1)
        self._spans: deque[dict] = deque(maxlen=span_ring)
        self._open: dict | None = None
        self._armed = False
        self._finished = False

    # -- arming --------------------------------------------------------------

    def arm(self) -> "FlightRecorder":
        """Hook the telemetry seams; idempotent."""
        if self._armed:
            return self
        tl = self.telemetry.timeline
        if tl is None:
            raise RuntimeError(
                "flight recorder needs an attached timeline "
                "(Telemetry.attach_timeline before arm)")
        tl.add_window_callback(self._on_window)
        tracer = self.telemetry.tracer
        if getattr(tracer, "enabled", False):
            tracer.span_sink = self._on_span
        self.telemetry.flight = self
        self._armed = True
        return self

    # -- seam callbacks ------------------------------------------------------

    def _on_span(self, span) -> None:
        self._spans.append(span.to_dict())

    def _on_window(self, rec: dict) -> None:
        self.slo.update(rec)
        new = self.detectors.update(rec)
        self._window_ring.append(rec)
        triggers = [a for a in new
                    if _SEVERITY_RANK[a.severity]
                    >= _SEVERITY_RANK[self.trigger_severity]]
        inc = self._open
        if inc is None:
            if not triggers:
                return
            if (len(self.incidents) >= self.max_incidents):
                self.truncated_incidents += 1
                return
            self._open = {
                "trigger": triggers[0],
                "anomalies": list(new),
                "windows": list(self._window_ring),
                "post_remaining": self.post_windows,
            }
            return
        inc["windows"].append(rec)
        inc["anomalies"].extend(new)
        if triggers:
            # Still hot: restart the post-trigger countdown so one
            # sustained pathology collapses into one incident.
            inc["post_remaining"] = self.post_windows
        else:
            inc["post_remaining"] -= 1
            if inc["post_remaining"] <= 0:
                self._dump(inc)
                self._open = None

    # -- lifecycle -----------------------------------------------------------

    def finish(self) -> int:
        """Flush any open incident; returns the incident count.

        Idempotent — safe to call from both ``Telemetry.close`` and
        ``write_telemetry_dir``.
        """
        if not self._finished:
            self._finished = True
            if self._open is not None:
                self._dump(self._open)
                self._open = None
        return len(self.incidents)

    # -- bundle assembly -----------------------------------------------------

    def _dump(self, inc: dict) -> None:
        n = len(self.incidents) + 1
        windows = inc["windows"]
        window_ids = [rec["window"] for rec in windows]
        start_us = windows[0]["start_us"]
        end_us = windows[-1]["end_us"]
        window_set = set(window_ids)

        exemplar_qids: set[int] = set()
        exemplar_rows: list[dict] = []
        store = self.telemetry.exemplars
        if store is not None:
            for ex in store.exemplars:
                if ex.window in window_set and ex.query_id is not None:
                    exemplar_qids.add(ex.query_id)
                    exemplar_rows.append(ex.to_dict())

        blame_queries = self._blame_queries(start_us, end_us, exemplar_qids)
        qids = sorted(exemplar_qids
                      | {q.qid for q in blame_queries if q.qid is not None})
        resources = sorted({res for q in blame_queries
                            for res in (set(q.wait_us) | set(q.service_us))})
        span_rows = self._span_trees(qids)
        audit_rows = self._audit_rows(start_us, end_us)

        capacity = None
        blame = self.telemetry.blame
        if blame is not None and blame.kernel is not None:
            adm = blame.admission
            completed = adm.stats.completed if adm is not None else None
            capacity = blame.capacity(completed=completed)

        fingerprint = hashlib.sha256(
            json.dumps(self.config, sort_keys=True).encode()
        ).hexdigest()[:16]
        manifest = {
            "schema": INCIDENT_SCHEMA,
            "incident": n,
            "trigger": inc["trigger"].to_dict(),
            "anomalies": [a.to_dict() for a in inc["anomalies"]],
            "slo": [r.to_dict() for r in self.slo.results()],
            "window_us": self.telemetry.timeline.window_us,
            "trigger_window": inc["trigger"].window,
            "windows": window_ids,
            "start_us": start_us,
            "end_us": end_us,
            "qids": qids,
            "resources": resources,
            "capacity": capacity,
            "config": {"fingerprint": fingerprint, **self.config},
            "counts": {
                "windows": len(windows),
                "spans": len(span_rows),
                "blame_queries": len(blame_queries),
                "audit_records": len(audit_rows),
                "exemplars": len(exemplar_rows),
            },
        }
        self.incidents.append(manifest)
        if self.out_dir is None:
            return
        bundle = os.path.join(self.out_dir, f"incident-{n}")
        os.makedirs(bundle, exist_ok=True)
        with open(os.path.join(bundle, "windows.jsonl"), "w") as fh:
            fh.write(json.dumps({
                "type": "header", "schema": TIMELINE_SCHEMA,
                "window_us": self.telemetry.timeline.window_us,
            }) + "\n")
            for rec in windows:
                fh.write(json.dumps(rec) + "\n")
            for row in exemplar_rows:
                fh.write(json.dumps(row) + "\n")
            fh.write(json.dumps({
                "type": "footer", "windows": len(windows),
                "dropped_windows": 0,
            }) + "\n")
        with open(os.path.join(bundle, "spans.jsonl"), "w") as fh:
            for row in span_rows:
                fh.write(json.dumps(row) + "\n")
        with open(os.path.join(bundle, "blame.json"), "w") as fh:
            json.dump({"schema": BLAME_SCHEMA,
                       "queries": [q.to_dict() for q in blame_queries]},
                      fh, indent=1)
            fh.write("\n")
        with open(os.path.join(bundle, "audit.jsonl"), "w") as fh:
            for row in audit_rows:
                fh.write(json.dumps(row) + "\n")
        with open(os.path.join(bundle, "incident.json"), "w") as fh:
            json.dump(manifest, fh, indent=1)
            fh.write("\n")

    def _blame_queries(self, start_us: float, end_us: float,
                       exemplar_qids: set) -> list[QueryBlame]:
        blame = self.telemetry.blame
        if blame is None:
            return []
        queries = [q for q in assemble_queries(blame.records)
                   if start_us <= q.end_us <= end_us]
        queries.sort(key=lambda q: -q.total_us)
        kept = queries[:self.max_qids]
        kept_ids = {id(q) for q in kept}
        for q in queries[self.max_qids:]:
            if q.qid is not None and q.qid in exemplar_qids:
                kept.append(q)
                kept_ids.add(id(q))
        return kept

    def _span_trees(self, qids: list) -> list[dict]:
        """Roots whose ``attrs.qid`` is affected, plus all descendants."""
        if not qids:
            return []
        want = set(qids)
        keep_ids: set[int] = set()
        rows: list[dict] = []
        # The ring is append-ordered and parents finish *after* their
        # children under the context-manager discipline, so resolve
        # membership in two passes: roots first, then descendants by
        # walking parent links upward.
        spans = list(self._spans)
        for span in spans:
            if span["attrs"].get("qid") in want:
                keep_ids.add(span["span_id"])
        grew = True
        while grew:
            grew = False
            for span in spans:
                if (span["span_id"] not in keep_ids
                        and span["parent_id"] in keep_ids):
                    keep_ids.add(span["span_id"])
                    grew = True
        for span in spans:
            if span["span_id"] in keep_ids:
                rows.append(span)
        return rows

    def _audit_rows(self, start_us: float, end_us: float) -> list[dict]:
        audit = self.telemetry.audit
        if not getattr(audit, "enabled", False):
            return []
        rows = [r.to_dict() for r in audit.records
                if start_us <= r.t_us <= end_us]
        return rows[-self.max_audit_records:]


# ---------------------------------------------------------------------------
# Reading bundles back
# ---------------------------------------------------------------------------

def list_incidents(telemetry_dir) -> list[str]:
    """Paths of ``incident-<n>/`` bundles under a telemetry dir, by n."""
    if not os.path.isdir(telemetry_dir):
        return []
    found = []
    for name in os.listdir(telemetry_dir):
        m = _INCIDENT_DIR_RE.match(name)
        if m is None:
            continue
        path = os.path.join(telemetry_dir, name)
        if os.path.isfile(os.path.join(path, "incident.json")):
            found.append((int(m.group(1)), path))
    return [path for _, path in sorted(found)]


def load_incident(bundle_dir) -> dict:
    """Load one bundle: the manifest plus parsed evidence files."""
    with open(os.path.join(bundle_dir, "incident.json")) as fh:
        manifest = json.load(fh)
    if manifest.get("schema") != INCIDENT_SCHEMA:
        raise ValueError(f"{bundle_dir}: not a {INCIDENT_SCHEMA} bundle")
    from repro.obs.timeline import load_timeline_jsonl
    from repro.obs.tracer import load_spans_jsonl

    out = {"manifest": manifest, "dir": bundle_dir}
    out["timeline"] = load_timeline_jsonl(
        os.path.join(bundle_dir, "windows.jsonl"))
    out["spans"], _ = load_spans_jsonl(os.path.join(bundle_dir,
                                                    "spans.jsonl"))
    with open(os.path.join(bundle_dir, "blame.json")) as fh:
        out["blame"] = json.load(fh)
    from repro.obs.audit import load_audit_jsonl

    out["audit"] = load_audit_jsonl(os.path.join(bundle_dir, "audit.jsonl"))
    return out


_MANIFEST_FIELDS = ("schema", "incident", "trigger", "anomalies", "slo",
                    "window_us", "trigger_window", "windows", "start_us",
                    "end_us", "qids", "resources", "config", "counts")


def validate_incident_dir(bundle_dir) -> dict:
    """Schema-check one bundle; raises ValueError, returns its counts.

    Beyond field presence this checks the *cross-references* that make
    a bundle self-contained evidence: the captured windows are exactly
    the manifest's indices (and contain the trigger window), every
    affected qid appears in the span trees or the blame decompositions,
    each blame decomposition is residual-free, and the manifest's
    resource list is the union over the blame queries' resources.
    """
    with open(os.path.join(bundle_dir, "incident.json")) as fh:
        manifest = json.load(fh)
    if manifest.get("schema") != INCIDENT_SCHEMA:
        raise ValueError(f"{bundle_dir}: not a {INCIDENT_SCHEMA} bundle")
    for fld in _MANIFEST_FIELDS:
        if fld not in manifest:
            raise ValueError(f"{bundle_dir}: manifest missing {fld!r}")
    for fld in ("detector", "window", "severity", "detail"):
        if fld not in manifest["trigger"]:
            raise ValueError(
                f"{bundle_dir}: trigger missing {fld!r}")
    if "fingerprint" not in manifest["config"]:
        raise ValueError(f"{bundle_dir}: config missing fingerprint")

    from repro.obs.timeline import validate_timeline_jsonl, load_timeline_jsonl

    windows_path = os.path.join(bundle_dir, "windows.jsonl")
    validate_timeline_jsonl(windows_path)
    tl = load_timeline_jsonl(windows_path)
    indices = [rec["window"] for rec in tl.windows]
    if indices != manifest["windows"]:
        raise ValueError(
            f"{bundle_dir}: windows.jsonl holds {indices}, manifest "
            f"claims {manifest['windows']}")
    if manifest["trigger_window"] not in indices:
        raise ValueError(
            f"{bundle_dir}: trigger window {manifest['trigger_window']} "
            f"not captured")

    from repro.obs.tracer import load_spans_jsonl

    spans, _ = load_spans_jsonl(os.path.join(bundle_dir, "spans.jsonl"))
    span_qids = {s["attrs"].get("qid") for s in spans}
    with open(os.path.join(bundle_dir, "blame.json")) as fh:
        blame_doc = json.load(fh)
    if blame_doc.get("schema") != BLAME_SCHEMA:
        raise ValueError(f"{bundle_dir}: blame.json schema mismatch")
    blame_qids = set()
    for row in blame_doc.get("queries", []):
        q = QueryBlame.from_dict(row)
        if abs(q.residual_us) > 1e-6:
            raise ValueError(
                f"{bundle_dir}: blame for task {q.task} has residual "
                f"{q.residual_us:.3f} us")
        if q.qid is not None:
            blame_qids.add(q.qid)
    for qid in manifest["qids"]:
        if qid not in span_qids and qid not in blame_qids:
            raise ValueError(
                f"{bundle_dir}: qid {qid} in manifest but in neither "
                f"spans.jsonl nor blame.json")
    resources = sorted({res for row in blame_doc.get("queries", [])
                        for res in (set(row.get("wait_us", {}))
                                    | set(row.get("service_us", {})))})
    if resources != manifest["resources"]:
        raise ValueError(
            f"{bundle_dir}: blame resources {resources} != manifest "
            f"{manifest['resources']}")

    from repro.obs.audit import load_audit_jsonl

    audit = load_audit_jsonl(os.path.join(bundle_dir, "audit.jsonl"))
    return {
        "windows": len(tl.windows),
        "spans": len(spans),
        "blame_queries": len(blame_doc.get("queries", [])),
        "audit_records": len(audit),
        "qids": len(manifest["qids"]),
    }


def format_incident(incident: dict) -> str:
    """Render a loaded bundle as the ``repro explain --incident`` walk."""
    man = incident["manifest"]
    trig = man["trigger"]
    lines = [
        f"incident {man['incident']}: [{trig['severity']}] "
        f"{trig['detector']} @ window {trig['window']}",
        f"  {trig['detail']}",
        f"  capture: windows {man['windows'][0]}..{man['windows'][-1]} "
        f"({len(man['windows'])} windows, "
        f"{man['start_us']:.0f}..{man['end_us']:.0f} us)",
        f"  config fingerprint: {man['config']['fingerprint']}",
    ]
    extra = [a for a in man["anomalies"]
             if a != trig]
    if extra:
        lines.append(f"  {len(extra)} further anomalies during capture:")
        for a in extra[:8]:
            lines.append(f"    [{a['severity']}] {a['detector']} "
                         f"@ window {a['window']}: {a['detail']}")
        if len(extra) > 8:
            lines.append(f"    ... and {len(extra) - 8} more")
    lines.append("  SLO state at capture:")
    for r in man["slo"]:
        lines.append(f"    {r['verdict']:>8s}  {r['slo']} "
                     f"[{r['windows_passed']}/{r['windows_evaluated']}]")
    cap = man.get("capacity")
    if cap:
        knee = cap.get("knee_qps")
        lines.append(
            f"  capacity: bottleneck {cap.get('bottleneck')} at "
            f"{cap.get('bottleneck_utilization', 0.0):.1%}"
            + (f", knee ~{knee:.1f} qps" if knee else ""))
    if man["qids"]:
        lines.append(f"  affected qids: {man['qids']}")
    if man["resources"]:
        lines.append(f"  resources on the critical paths: "
                     f"{man['resources']}")
    from repro.obs.blame import QueryBlame, format_query_blame

    for row in incident.get("blame", {}).get("queries", [])[:3]:
        lines.append("")
        lines.append(format_query_blame(QueryBlame.from_dict(row)))
    counts = man["counts"]
    lines.append("")
    lines.append(
        f"  evidence: {counts['windows']} windows, {counts['spans']} "
        f"spans, {counts['blame_queries']} blame queries, "
        f"{counts['audit_records']} audit records")
    return "\n".join(lines)
