"""CacheEvents-bus subscriber that feeds a metrics registry.

Turns every admit/evict/flush/victim event into registry counters tagged
by tier, kind and reason, so policy behaviour — CBLRU window churn, TEV
discards, Section VI.C revalidations, Fig. 13 victim-search stages — is
quantifiable without touching cache internals.
"""

from __future__ import annotations

from repro.core.events import CacheEvents
from repro.obs.registry import MetricsRegistry

__all__ = ["CacheEventMetrics", "CacheStatsMetrics"]


class CacheEventMetrics:
    """Subscribes a registry to a :class:`~repro.core.events.CacheEvents` bus.

    Emitted series (all counters):

    * ``cache_admits_total{kind, level, reason}`` — ``reason`` is
      ``"insert"`` for plain admissions, ``"revalidate"`` for avoided
      SSD rewrites;
    * ``cache_evicts_total{kind, level, reason}`` — capacity / tev /
      expired / invalidate / ...;
    * ``cache_flushes_total{kind}`` and ``cache_flush_bytes_total{kind}``
      — physical SSD cache-file writes;
    * ``cache_l2_victims_total{kind, stage}`` — Fig. 11/13 victim-search
      stages.
    """

    def __init__(self, registry: MetricsRegistry, events: CacheEvents) -> None:
        self.registry = registry
        # Counter refs cached per tag combination — events fire for
        # every admit/evict on the serving path, so the (name, tags)
        # registry lookup is paid once per distinct series, not per event.
        self._counters: dict[tuple, object] = {}
        self._unsubscribe = events.subscribe(
            on_admit=self._on_admit,
            on_evict=self._on_evict,
            on_flush=self._on_flush,
            on_l2_victim=self._on_l2_victim,
        )

    def _on_admit(self, event) -> None:
        reason = event.reason or "insert"
        key = ("admit", event.kind, event.level, reason)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = self.registry.counter(
                "cache_admits_total", kind=event.kind, level=event.level,
                reason=reason,
            )
        c.inc()

    def _on_evict(self, event) -> None:
        reason = event.reason or "unspecified"
        key = ("evict", event.kind, event.level, reason)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = self.registry.counter(
                "cache_evicts_total", kind=event.kind, level=event.level,
                reason=reason,
            )
        c.inc()

    def _on_flush(self, event) -> None:
        key = ("flush", event.kind)
        pair = self._counters.get(key)
        if pair is None:
            pair = self._counters[key] = (
                self.registry.counter("cache_flushes_total", kind=event.kind),
                self.registry.counter("cache_flush_bytes_total",
                                      kind=event.kind),
            )
        pair[0].inc()
        pair[1].inc(event.nbytes)

    def _on_l2_victim(self, event) -> None:
        key = ("l2_victim", event.kind, event.stage)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = self.registry.counter(
                "cache_l2_victims_total", kind=event.kind, stage=event.stage
            )
        c.inc()

    def close(self) -> None:
        self._unsubscribe()


class CacheStatsMetrics:
    """Delta bridge from :class:`~repro.core.stats.CacheStats` to counters.

    The stats object tracks lookup outcomes as plain attributes; this
    bridge advances registry counters by the delta at each
    :meth:`collect`, giving the timeline a per-window hit/lookup series:

    * ``cache_result_lookups_total{outcome=l1_hit|l2_hit|miss}``
    * ``cache_list_lookups_total{outcome=l1_hit|l2_hit|partial_hit|miss}``

    A stats reset (warmup exclusion calls ``CacheStats.reset()``) drops
    the attribute values below the last sample; the bridge re-baselines,
    counting only activity after the reset.
    """

    _SERIES = (
        ("cache_result_lookups_total", "l1_hit", "result_l1_hits"),
        ("cache_result_lookups_total", "l2_hit", "result_l2_hits"),
        ("cache_result_lookups_total", "miss", "result_misses"),
        ("cache_list_lookups_total", "l1_hit", "list_l1_hits"),
        ("cache_list_lookups_total", "l2_hit", "list_l2_hits"),
        ("cache_list_lookups_total", "partial_hit", "list_partial_hits"),
        ("cache_list_lookups_total", "miss", "list_misses"),
    )

    def __init__(self, registry: MetricsRegistry, stats) -> None:
        self.registry = registry
        self.stats = stats
        self._last = {attr: 0 for _, _, attr in self._SERIES}
        # Lazily cached counter refs — created (as before) only on the
        # first nonzero delta, so no zero-valued series appear in dumps.
        self._counters: dict[str, object] = {}

    def collect(self) -> None:
        """Advance the counters to the stats object's current values."""
        for name, outcome, attr in self._SERIES:
            cur = getattr(self.stats, attr)
            last = self._last[attr]
            delta = cur - last if cur >= last else cur
            if delta:
                c = self._counters.get(attr)
                if c is None:
                    c = self._counters[attr] = self.registry.counter(
                        name, outcome=outcome)
                c.inc(delta)
            self._last[attr] = cur
