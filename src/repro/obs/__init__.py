"""repro.obs — the observability subsystem.

First-class telemetry for the reproduction: typed instruments
(:class:`Counter`, :class:`Gauge`, log-bucketed :class:`Histogram` with
exact percentile extraction), a :class:`MetricsRegistry` of tagged
instruments, a zero-cost-when-disabled :class:`Tracer` producing nested
spans on the simulated clock, a :class:`CacheEventMetrics` bridge from
the :class:`~repro.core.events.CacheEvents` bus, and exposition as
Prometheus text, JSON snapshots and JSONL span dumps.

Everything hangs off one :class:`Telemetry` object::

    from repro.obs import Telemetry, write_telemetry_dir

    tel = Telemetry()
    manager = CacheManager(cfg, hierarchy, index, telemetry=tel)
    for query in log:
        manager.process_query(query)
    write_telemetry_dir(tel, "telemetry/")
"""

from repro._hot import HOT, HotCounters
from repro.obs.audit import (
    NULL_AUDIT,
    AuditLog,
    AuditRecord,
    NullAudit,
    explain_subject,
    format_explanation,
    load_audit_jsonl,
)
from repro.obs.blame import (
    BLAME_SCHEMA,
    BlameLog,
    BlameRecorder,
    QueryBlame,
    assemble_queries,
    blame_profiles,
    capacity_model,
    format_blame_report,
    format_query_blame,
    load_blame_jsonl,
    validate_blame_jsonl,
)
from repro.obs.cache_metrics import CacheEventMetrics, CacheStatsMetrics
from repro.obs.export import (
    load_metrics_json,
    openmetrics_text,
    prometheus_text,
    validate_telemetry_dir,
    write_metrics_json,
    write_telemetry_dir,
)
from repro.obs.flash_metrics import FlashDeviceMetrics
from repro.obs.flightrecorder import (
    INCIDENT_SCHEMA,
    FlightRecorder,
    format_incident,
    list_incidents,
    load_incident,
    validate_incident_dir,
)
from repro.obs.kernel_metrics import KernelMetrics
from repro.obs.live import (
    LIVE_SCHEMA,
    LiveServer,
    fetch_status,
    format_top_frame,
    status_from_dir,
)
from repro.obs.instruments import (
    DEFAULT_PERCENTILES,
    GAUGE_MERGE_MODES,
    Counter,
    Gauge,
    Histogram,
)
from repro.obs.profiler import (
    PROFILE_SCHEMA,
    Profiler,
    baseline_wall_ns_per_op,
    format_profile,
    format_wall_ns_delta,
    func_label,
    load_folded,
    load_profile,
    measure_obs_tax,
    subsystem_of,
    validate_profile,
    write_folded,
    write_profile,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.report import (
    format_stage_breakdown,
    format_stage_comparison,
    stage_summary,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    Anomaly,
    SloResult,
    SloSpec,
    StreamingDetectors,
    StreamingShardSkew,
    StreamingSloEvaluator,
    detect_shard_skew,
    detect_wait_dominated,
    evaluate_slo,
    evaluate_slos,
    parse_slo,
    run_detectors,
    window_point,
)
from repro.obs.telemetry import Telemetry, stage_of_channel
from repro.obs.timeline import (
    TIMELINE_SCHEMA,
    Exemplar,
    ExemplarStore,
    Timeline,
    TimelineRecorder,
    load_timeline_jsonl,
    merge_windows,
    sparkline,
    steady_state_window,
    sub_histogram,
    validate_timeline_jsonl,
    window_series,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    load_spans_jsonl,
)
from repro.obs._jsonl import read_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_PERCENTILES",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "AuditLog",
    "AuditRecord",
    "NullAudit",
    "NULL_AUDIT",
    "load_audit_jsonl",
    "explain_subject",
    "format_explanation",
    "GAUGE_MERGE_MODES",
    "CacheEventMetrics",
    "CacheStatsMetrics",
    "FlashDeviceMetrics",
    "KernelMetrics",
    "Telemetry",
    "stage_of_channel",
    "TIMELINE_SCHEMA",
    "TimelineRecorder",
    "Timeline",
    "Exemplar",
    "ExemplarStore",
    "load_timeline_jsonl",
    "validate_timeline_jsonl",
    "merge_windows",
    "sub_histogram",
    "steady_state_window",
    "window_series",
    "sparkline",
    "SloSpec",
    "SloResult",
    "Anomaly",
    "parse_slo",
    "evaluate_slo",
    "evaluate_slos",
    "run_detectors",
    "detect_shard_skew",
    "detect_wait_dominated",
    "DEFAULT_SLOS",
    "window_point",
    "StreamingDetectors",
    "StreamingShardSkew",
    "StreamingSloEvaluator",
    "INCIDENT_SCHEMA",
    "FlightRecorder",
    "list_incidents",
    "load_incident",
    "validate_incident_dir",
    "format_incident",
    "LIVE_SCHEMA",
    "LiveServer",
    "fetch_status",
    "status_from_dir",
    "format_top_frame",
    "load_spans_jsonl",
    "read_jsonl",
    "BLAME_SCHEMA",
    "BlameRecorder",
    "BlameLog",
    "QueryBlame",
    "assemble_queries",
    "blame_profiles",
    "capacity_model",
    "format_blame_report",
    "format_query_blame",
    "load_blame_jsonl",
    "validate_blame_jsonl",
    "prometheus_text",
    "openmetrics_text",
    "write_metrics_json",
    "load_metrics_json",
    "write_telemetry_dir",
    "validate_telemetry_dir",
    "stage_summary",
    "format_stage_breakdown",
    "format_stage_comparison",
    "HOT",
    "HotCounters",
    "PROFILE_SCHEMA",
    "Profiler",
    "subsystem_of",
    "func_label",
    "measure_obs_tax",
    "baseline_wall_ns_per_op",
    "format_profile",
    "format_wall_ns_delta",
    "write_profile",
    "load_profile",
    "validate_profile",
    "write_folded",
    "load_folded",
]
