"""Kernel telemetry: service-queue and admission state bridged into a registry.

The discrete-event kernel (:mod:`repro.sim.kernel`) already tracks what
saturation analysis needs — per-resource queue depths, served counts,
busy time, admission shed counts — but on its own objects.
:class:`KernelMetrics` samples them into the shared
:class:`~repro.obs.registry.MetricsRegistry`:

================================== ======= ==============================
metric                             kind    source
================================== ======= ==============================
``queue_depth{resource=...}``      gauge   ``Resource.depth`` per resource
``queue_depth{resource=admission}`` gauge  jobs admitted but unfinished
``inflight_queries``               gauge   ``AdmissionControl.inflight``
``kernel_served_total{resource}``  counter ``Resource.served``
``kernel_busy_us_total{resource}`` counter ``Resource.busy_us``
``kernel_depth_area_us_total{..}`` counter ``Resource.depth_area_us``
                                           (depth-time integral; the
                                           measured ``L`` side of the
                                           blame layer's Little's-law
                                           self-check)
``arrivals_total``                 counter ``AdmissionStats.arrived``
``admission_rejected_total``       counter ``AdmissionStats.rejected``
``admission_completed_total``      counter ``AdmissionStats.completed``
================================== ======= ==============================

The ``queue_depth`` gauges matter most: the timeline recorder's derived
``queue_depth`` series sums every gauge with that prefix, so the
queue-buildup detector (:func:`repro.obs.slo.detect_queue_buildup`)
watches *emergent* backlogs instead of a model.  Counters advance by
delta per :meth:`collect`, matching the other bridges, so repeated
sampling and cluster merges stay correct.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

__all__ = ["KernelMetrics"]


class KernelMetrics:
    """Samples a kernel (and optional admission control) into a registry.

    Purely observational — reading depths and counts never perturbs the
    schedule.
    """

    def __init__(self, registry: MetricsRegistry, kernel,
                 admission=None) -> None:
        self.registry = registry
        self.kernel = kernel
        self.admission = admission
        self._served: dict[str, int] = {}
        self._busy: dict[str, float] = {}
        self._area: dict[str, float] = {}
        self._arrived = 0
        self._rejected = 0
        self._completed = 0

    def collect(self) -> None:
        reg = self.registry
        for res in self.kernel.resources():
            reg.gauge("queue_depth", resource=res.name).set(res.depth)
            prev = self._served.get(res.name, 0)
            if res.served > prev:
                reg.counter("kernel_served_total", resource=res.name).inc(
                    res.served - prev
                )
                self._served[res.name] = res.served
            prev_busy = self._busy.get(res.name, 0.0)
            if res.busy_us > prev_busy:
                reg.counter("kernel_busy_us_total", resource=res.name).inc(
                    res.busy_us - prev_busy
                )
                self._busy[res.name] = res.busy_us
            res.accrue_depth(self.kernel.clock.now_us)
            prev_area = self._area.get(res.name, 0.0)
            if res.depth_area_us > prev_area:
                reg.counter("kernel_depth_area_us_total",
                            resource=res.name).inc(
                    res.depth_area_us - prev_area
                )
                self._area[res.name] = res.depth_area_us
        ad = self.admission
        if ad is None:
            return
        reg.gauge("queue_depth", resource="admission").set(ad.depth)
        reg.gauge("inflight_queries").set(ad.inflight)
        s = ad.stats
        for attr, name in (("arrived", "arrivals_total"),
                           ("rejected", "admission_rejected_total"),
                           ("completed", "admission_completed_total")):
            value = getattr(s, attr)
            prev = getattr(self, f"_{attr}")
            if value > prev:
                reg.counter(name).inc(value - prev)
                setattr(self, f"_{attr}", value)
