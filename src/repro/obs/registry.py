"""The metrics registry: named, tagged instruments with aggregation.

One registry per observed component (a cache manager, an index shard);
:meth:`MetricsRegistry.merge` folds many registries into a cluster-level
view (the broker sums its shards').  Instruments are identified by
``(name, tags)``; asking for the same identity twice returns the same
instrument, so hot paths can keep a reference and skip the lookup.
"""

from __future__ import annotations

from typing import Iterator

from repro.obs.instruments import Counter, Gauge, Histogram

__all__ = ["MetricsRegistry"]

_TagKey = tuple[tuple[str, str], ...]


def _tag_key(tags: dict) -> _TagKey:
    if not tags:
        return ()
    return tuple(sorted((k, str(v)) for k, v in tags.items()))


class MetricsRegistry:
    """Registry of counters, gauges and histograms keyed by name + tags."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, _TagKey], Counter | Gauge | Histogram] = {}
        # Sorted-identity cache for items(): rebuilt only when an
        # instrument is created, so per-window timeline iteration skips
        # the full sort.
        self._sorted: list | None = None

    def __len__(self) -> int:
        return len(self._metrics)

    def _get_or_create(self, name: str, tags: dict, factory, kind: str):
        key = (name, _tag_key(tags))
        inst = self._metrics.get(key)
        if inst is None:
            inst = factory()
            self._metrics[key] = inst
            self._sorted = None
        elif inst.kind != kind:
            raise TypeError(
                f"metric {name!r} with tags {dict(tags)} already registered "
                f"as a {inst.kind}, not a {kind}"
            )
        return inst

    def counter(self, name: str, **tags) -> Counter:
        return self._get_or_create(name, tags, Counter, "counter")

    def gauge(self, name: str, merge_mode: str | None = None, **tags) -> Gauge:
        """A gauge at this identity.

        ``merge_mode`` fixes the cluster-merge semantics at creation
        ("sum" when omitted; see :class:`~repro.obs.instruments.Gauge`).
        Asking again with a conflicting mode raises.
        """
        gauge = self._get_or_create(
            name, tags, lambda: Gauge(merge_mode=merge_mode or "sum"), "gauge"
        )
        if merge_mode is not None and gauge.merge_mode != merge_mode:
            raise ValueError(
                f"gauge {name!r} with tags {dict(tags)} already registered "
                f"with merge_mode={gauge.merge_mode!r}, not {merge_mode!r}"
            )
        return gauge

    def histogram(self, name: str, lo: float = 0.5, growth: float = 1.04,
                  **tags) -> Histogram:
        return self._get_or_create(
            name, tags, lambda: Histogram(lo=lo, growth=growth), "histogram"
        )

    # -- iteration and export ------------------------------------------------

    def items(self) -> Iterator[tuple[str, dict, Counter | Gauge | Histogram]]:
        """Yield ``(name, tags, instrument)`` sorted by identity.

        The sorted view is cached between instrument creations; callers
        must treat the yielded tags dicts as read-only.
        """
        cache = self._sorted
        if cache is None:
            cache = self._sorted = [
                (name, dict(tag_key), inst)
                for (name, tag_key), inst in sorted(self._metrics.items())
            ]
        return iter(cache)

    def get(self, name: str, **tags):
        """The instrument at this identity, or None."""
        return self._metrics.get((name, _tag_key(tags)))

    def snapshot(self) -> dict:
        """A JSON-ready dump of every instrument."""
        metrics = []
        for name, tags, inst in self.items():
            entry = {"name": name, "tags": tags, "kind": inst.kind}
            entry.update(inst.snapshot())
            metrics.append(entry)
        return {"schema": "repro.obs.metrics/v1", "metrics": metrics}

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (counters/histograms sum,
        gauges follow their per-gauge merge mode — "sum" unless they
        opted into "last"/"max"/"min").  Returns self for chaining."""
        for (name, tag_key), inst in other._metrics.items():
            tags = dict(tag_key)
            if inst.kind == "counter":
                mine = self.counter(name, **tags)
            elif inst.kind == "gauge":
                mine = self.gauge(name, merge_mode=inst.merge_mode, **tags)
            else:
                mine = self.histogram(name, lo=inst.lo, growth=inst.growth,
                                      **tags)
            mine.merge(inst)
        return self
