"""Decision-level audit trail: *why* the caches did what they did.

PR 2's telemetry records *what happened* (latencies, counters, spans);
the audit log records the **inputs and chosen branch of every policy
decision** the paper's algorithms make:

* ``list.select`` — selection management (Section VI.A): the Formula-1
  placement size (``SC = ceil(SI*PU/SB)``), the Formula-2 efficiency
  value ``EV = Freq/SC``, and the EV-vs-TEV admission verdict;
* ``list.l1-victim`` — the Fig. 12 walk over CBLRU's replace-first
  region with each candidate's EV and the minimum-EV choice;
* ``rb.victim`` — the Fig. 11 walk picking the maximum-IREN result
  block;
* ``list.free-space`` — the Fig. 13 staged search context (blocks
  needed vs free) preceding the per-stage ``l2-victim`` records;
* ``gc.victim`` — a flash GC victim choice: policy name, candidate
  valid-page counts, the chosen block (Fig. 19a's erase story);
* ``admit`` / ``evict`` / ``flush`` / ``l2-victim`` — the cache
  life-cycle, mirrored off the :class:`~repro.core.events.CacheEvents`
  bus so the trail is a complete timeline.

Records live in a bounded ring (old decisions fall off, recent history
is always queryable), export as JSONL (``audit.jsonl`` in a telemetry
dir) and feed the ``repro explain`` CLI: *why is term X (not) on SSD at
t=T?*

The disabled path is :data:`NULL_AUDIT`, whose ``record`` is a constant
no-op; hot paths gate on ``audit.enabled`` exactly like the tracer, so
a run without an audit log takes one attribute check per decision.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs._jsonl import read_jsonl

__all__ = [
    "AuditRecord",
    "AuditLog",
    "NullAudit",
    "NULL_AUDIT",
    "load_audit_jsonl",
    "explain_subject",
    "format_explanation",
]

#: Record types emitted at decision sites (not via the event bridge).
DECISION_TYPES = (
    "list.select",
    "list.l1-victim",
    "list.free-space",
    "rb.victim",
    "gc.victim",
)


@dataclass(frozen=True)
class AuditRecord:
    """One audited decision (or mirrored life-cycle event)."""

    #: monotonically increasing sequence number (gap-free per log)
    seq: int
    #: virtual-clock timestamp of the decision
    t_us: float
    #: record type ("list.select", "gc.victim", "admit", "evict", ...)
    type: str
    #: subject kind: "list", "result", "rb", "gc"
    kind: str
    #: subject key: term id, query-key tuple, rb id, or block number
    key: Any
    #: decision inputs and the chosen branch
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        key = self.key
        if isinstance(key, tuple):
            key = list(key)
        return {
            "seq": self.seq,
            "t_us": self.t_us,
            "type": self.type,
            "kind": self.kind,
            "key": key,
            "data": self.data,
        }


class AuditLog:
    """Ring-buffered structured decision log.

    ``capacity`` bounds memory: past it the oldest records are dropped
    (``dropped`` counts them) — an audit trail is recent history, not an
    archive.  Bind a clock with :meth:`bind_clock` so records carry
    virtual-clock timestamps; without one they are stamped 0.0.
    """

    enabled = True

    def __init__(self, capacity: int = 200_000, clock=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock
        self.records: deque[AuditRecord] = deque(maxlen=capacity)
        self.dropped = 0
        self._seq = 0
        self._unsubscribes: list = []

    def __len__(self) -> int:
        return len(self.records)

    def bind_clock(self, clock) -> None:
        """Late-bind the virtual clock (managers own their clock)."""
        if self.clock is None:
            self.clock = clock

    # -- recording -----------------------------------------------------------

    def record(self, type: str, kind: str, key: Any, **data) -> None:
        """Append one decision record."""
        self._seq += 1
        if len(self.records) == self.capacity:
            self.dropped += 1
        self.records.append(AuditRecord(
            seq=self._seq,
            t_us=self.clock.now_us if self.clock is not None else 0.0,
            type=type,
            kind=kind,
            key=key,
            data=data,
        ))

    def observe_events(self, events) -> None:
        """Mirror a :class:`~repro.core.events.CacheEvents` bus into the
        trail, so decision records sit in a complete admit/evict/flush
        timeline."""
        unsubscribe = events.subscribe(
            on_admit=lambda e: self.record(
                "admit", e.kind, e.key, level=e.level, nbytes=e.nbytes,
                reason=e.reason or "insert"),
            on_evict=lambda e: self.record(
                "evict", e.kind, e.key, level=e.level, nbytes=e.nbytes,
                reason=e.reason or "unspecified"),
            on_flush=lambda e: self.record(
                "flush", e.kind, e.key if hasattr(e, "key") else None,
                lba=e.lba, nbytes=e.nbytes, entries=e.entries),
            on_l2_victim=lambda e: self.record(
                "l2-victim", e.kind, e.key, stage=e.stage),
        )
        self._unsubscribes.append(unsubscribe)

    def close(self) -> None:
        """Detach every event-bus subscription."""
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()

    # -- querying ------------------------------------------------------------

    def records_for(self, kind: str, key: Any) -> list[AuditRecord]:
        """All retained records about one subject, oldest first."""
        if isinstance(key, list):
            key = tuple(key)
        return [r for r in self.records if r.kind == kind and r.key == key]

    def to_dicts(self) -> list[dict]:
        return [r.to_dict() for r in self.records]

    # -- export --------------------------------------------------------------

    def export_jsonl(self, path) -> int:
        """Write one JSON object per record; returns the record count."""
        with open(path, "w") as fh:
            for r in self.records:
                fh.write(json.dumps(r.to_dict()) + "\n")
        return len(self.records)


class NullAudit:
    """The disabled audit log: every operation is a constant no-op."""

    enabled = False
    records: tuple = ()
    dropped = 0

    def __len__(self) -> int:
        return 0

    def bind_clock(self, clock) -> None:
        pass

    def record(self, type: str, kind: str, key: Any, **data) -> None:
        pass

    def observe_events(self, events) -> None:
        pass

    def close(self) -> None:
        pass

    def records_for(self, kind: str, key: Any) -> list:
        return []

    def to_dicts(self) -> list:
        return []

    def export_jsonl(self, path) -> int:
        return 0


#: Shared do-nothing audit log; decision sites default to this so an
#: unaudited run costs one attribute access per decision.
NULL_AUDIT = NullAudit()


# ---------------------------------------------------------------------------
# Reading a trail back: the `repro explain` machinery
# ---------------------------------------------------------------------------

_RECORD_FIELDS = {"seq", "t_us", "type", "kind", "key", "data"}


def load_audit_jsonl(path, return_torn: bool = False):
    """Load an ``audit.jsonl`` file, validating the record schema.

    A torn final line (a live run cut mid-write) is skipped, not fatal;
    pass ``return_torn=True`` to receive ``(records, torn_tail)``.
    """
    out: list[dict] = []
    records, torn = read_jsonl(path)
    for lineno, rec in records:
        missing = _RECORD_FIELDS - rec.keys()
        if missing:
            raise ValueError(
                f"{path}:{lineno}: audit record missing fields "
                f"{sorted(missing)}"
            )
        out.append(rec)
    return (out, torn) if return_torn else out


def _normalise_key(key: Any) -> Any:
    return tuple(key) if isinstance(key, list) else key


def explain_subject(
    records: Iterable[dict | AuditRecord],
    kind: str,
    key: Any,
    at_us: float | None = None,
) -> dict:
    """Reconstruct one subject's decision history from a trail.

    Returns ``{"kind", "key", "events": [...], "on_ssd", "verdict"}``
    where ``events`` is the subject's chronological record list (up to
    ``at_us`` when given) and ``verdict`` is a one-line answer to *why is
    this (not) on SSD?* derived from the latest placement-affecting
    record.
    """
    want = _normalise_key(key)
    rows: list[dict] = []
    for r in records:
        rec = r.to_dict() if isinstance(r, AuditRecord) else r
        if rec["kind"] != kind or _normalise_key(rec["key"]) != want:
            continue
        if at_us is not None and rec["t_us"] > at_us:
            continue
        rows.append(rec)
    rows.sort(key=lambda r: r["seq"])

    on_ssd: bool | None = None
    verdict = "no records retained for this subject"
    for rec in rows:
        t, data = rec["type"], rec["data"]
        if t == "admit" and data.get("level") in ("l2", "static"):
            on_ssd = True
            if data.get("reason") == "revalidate":
                verdict = ("on SSD: the REPLACEABLE flash copy was "
                           "re-validated in place (Section VI.C, no rewrite)")
            else:
                verdict = f"on SSD: admitted to the {data['level']} partition"
        elif t == "evict" and data.get("level") == "l2":
            on_ssd = False
            verdict = f"not on SSD: evicted from L2 ({data.get('reason')})"
        elif t == "list.select":
            if data.get("admit"):
                verdict = (f"selected for SSD: EV={data['ev']:.3f} >= "
                           f"TEV={data['tev']:.3f} at SC={data['sc_blocks']} "
                           "blocks (Formula 1/2)")
            else:
                on_ssd = False
                verdict = (f"not on SSD: discarded by the TEV filter "
                           f"(EV={data['ev']:.3f} < TEV={data['tev']:.3f})")
        elif t == "l2-victim":
            on_ssd = False
            verdict = (f"not on SSD: chosen as a replacement victim in the "
                       f"{data.get('stage')!r} stage (Fig. 11/13)")
    if kind == "gc" and rows:
        chosen = [r for r in rows if r["type"] == "gc.victim"]
        if chosen:
            last = chosen[-1]["data"]
            verdict = (f"erased {len(chosen)} time(s) by GC, most recently "
                       f"by {last.get('policy')} ({last.get('origin')}) with "
                       f"{last.get('valid_pages')} valid pages to copy back")
    return {
        "kind": kind,
        "key": key,
        "events": rows,
        "on_ssd": on_ssd,
        "verdict": verdict,
    }


def _describe(rec: dict) -> str:
    t, data = rec["type"], rec["data"]
    if t == "list.select":
        branch = "admit" if data.get("admit") else "tev-discard"
        return (f"selection: SI={data.get('si_bytes')} B, "
                f"PU={data.get('pu'):.2f}, freq={data.get('freq')} -> "
                f"SC={data.get('sc_blocks')} blocks, EV={data.get('ev'):.3f} "
                f"vs TEV={data.get('tev'):.3f} -> {branch}")
    if t == "list.l1-victim":
        n = len(data.get("candidates", []))
        return (f"L1 victim walk ({data.get('branch')}): {n} replace-first "
                f"candidates, chose min-EV")
    if t == "rb.victim":
        n = len(data.get("candidates", []))
        return (f"RB victim walk ({data.get('branch')}): {n} candidates, "
                f"chose IREN={data.get('iren')}")
    if t == "list.free-space":
        return (f"free-space search: need {data.get('sc_needed')} blocks, "
                f"{data.get('free_blocks')} free (Fig. 13)")
    if t == "gc.victim":
        return (f"GC victim ({data.get('policy')}, {data.get('origin')}): "
                f"{data.get('candidates')} candidates, chose block with "
                f"{data.get('valid_pages')} valid pages")
    if t in ("admit", "evict"):
        return (f"{t} {data.get('level')} ({data.get('reason')}, "
                f"{data.get('nbytes')} B)")
    if t == "flush":
        return f"flush to SSD (lba={data.get('lba')}, {data.get('nbytes')} B)"
    if t == "l2-victim":
        return f"picked as L2 victim (stage={data.get('stage')})"
    return t


def format_explanation(explanation: dict) -> str:
    """Render :func:`explain_subject` output as a readable report."""
    kind, key = explanation["kind"], explanation["key"]
    lines = [f"audit trail for {kind} {key!r}:"]
    if not explanation["events"]:
        lines.append("  (no records retained)")
    for rec in explanation["events"]:
        lines.append(f"  t={rec['t_us']:>12.1f} us  [{rec['type']:<15s}] "
                     f"{_describe(rec)}")
    lines.append(f"verdict: {explanation['verdict']}")
    return "\n".join(lines)
