"""MSR Cambridge block-trace format.

The other widely used public block-trace corpus besides UMass.  CSV rows:

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

Timestamp is a Windows filetime (100 ns ticks since 1601), Type is
``Read``/``Write``, Offset and Size are in bytes, ResponseTime in 100 ns
ticks.  Offsets are converted to 512 B LBAs on parse.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

import numpy as np

from repro.trace.record import Trace

__all__ = ["parse_msr", "write_msr"]

_SECTOR = 512
_TICKS_PER_SECOND = 10_000_000


def parse_msr(
    source: str | Path | Iterable[str],
    hostname_filter: str | None = None,
    disk_filter: int | None = None,
    name: str = "msr",
) -> Trace:
    """Parse an MSR Cambridge trace from a path or iterable of lines."""
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source
    lbas: list[int] = []
    sizes: list[int] = []
    reads: list[bool] = []
    stamps: list[float] = []
    t0: float | None = None
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) < 7:
            raise ValueError(f"MSR line {lineno}: expected 7 fields, got {len(parts)}")
        try:
            ticks = int(parts[0])
            hostname = parts[1].strip()
            disk = int(parts[2])
            op = parts[3].strip().lower()
            offset = int(parts[4])
            size = int(parts[5])
        except ValueError as exc:
            raise ValueError(f"MSR line {lineno}: {exc}") from None
        if op not in ("read", "write"):
            raise ValueError(f"MSR line {lineno}: bad type {parts[3]!r}")
        if size <= 0 or offset < 0:
            raise ValueError(f"MSR line {lineno}: bad offset/size")
        if hostname_filter is not None and hostname != hostname_filter:
            continue
        if disk_filter is not None and disk != disk_filter:
            continue
        seconds = ticks / _TICKS_PER_SECOND
        if t0 is None:
            t0 = seconds
        lbas.append(offset // _SECTOR)
        sizes.append(size)
        reads.append(op == "read")
        stamps.append(seconds - t0)
    return Trace(
        np.array(lbas, dtype=np.int64),
        np.array(sizes, dtype=np.int64),
        np.array(reads, dtype=bool),
        np.array(stamps, dtype=np.float64),
        name=name,
    )


def write_msr(
    trace: Trace,
    path: str | Path,
    hostname: str = "websrv",
    disk: int = 0,
) -> None:
    """Write a trace in MSR Cambridge format (inverse of :func:`parse_msr`)."""
    with open(path, "w") as fh:
        for rec in trace:
            ticks = int(rec.timestamp_s * _TICKS_PER_SECOND)
            op = "Read" if rec.is_read else "Write"
            fh.write(
                f"{ticks},{hostname},{disk},{op},"
                f"{rec.lba * _SECTOR},{rec.nbytes},0\n"
            )
