"""Live I/O capture on any simulated device.

Section VII.D: "we use DiskMon to collect the I/O access pattern in SSD"
— the paper inspects the *device-level* request stream its policies
generate.  :class:`TracingDevice` wraps any block device and records
every read/write/trim into a :class:`~repro.trace.record.Trace`, so the
same §III analyzer can quantify how CBLRU's placement turns the SSD's
write stream sequential.
"""

from __future__ import annotations

from repro.storage.device import BlockDevice
from repro.trace.record import Trace, TraceRecord

__all__ = ["TracingDevice"]


class TracingDevice:
    """A pass-through block device that records every request.

    Timestamps come from the wrapped device's clock when it has one, so
    the captured trace carries simulated time.
    """

    def __init__(self, device: BlockDevice, capture_reads: bool = True,
                 capture_writes: bool = True) -> None:
        self.device = device
        self.capture_reads = capture_reads
        self.capture_writes = capture_writes
        self._records: list[TraceRecord] = []

    # -- device interface -------------------------------------------------

    @property
    def name(self) -> str:
        return f"traced({self.device.name})"

    @property
    def counters(self):
        return self.device.counters

    @property
    def capacity_bytes(self) -> int:
        return self.device.capacity_bytes

    def _now_s(self) -> float:
        clock = getattr(self.device, "clock", None)
        return clock.now_s if clock is not None else 0.0

    def read(self, lba: int, nbytes: int) -> float:
        if self.capture_reads:
            self._records.append(
                TraceRecord(lba=lba, nbytes=nbytes, is_read=True,
                            timestamp_s=self._now_s())
            )
        return self.device.read(lba, nbytes)

    def write(self, lba: int, nbytes: int) -> float:
        if self.capture_writes:
            self._records.append(
                TraceRecord(lba=lba, nbytes=nbytes, is_read=False,
                            timestamp_s=self._now_s())
            )
        return self.device.write(lba, nbytes)

    def trim(self, lba: int, nbytes: int) -> float:
        return self.device.trim(lba, nbytes)

    # -- capture access ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def trace(self, name: str | None = None) -> Trace:
        """The captured request stream as a Trace."""
        return Trace.from_records(
            self._records, name=name or f"capture:{self.device.name}"
        )

    def clear(self) -> None:
        self._records.clear()


def __getattr__(name):  # pragma: no cover - module-level passthrough guard
    raise AttributeError(name)
