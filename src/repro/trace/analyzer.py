"""Trace analysis — measures the four Section III signatures.

The paper characterises search-engine I/O as *read-dominant*, showing
*locality*, *random reads* and *skipped reads*.  ``analyze_trace`` turns a
trace into numbers for each claim, plus the (sequence, LBA) series that
Fig. 1 plots, so the reproduction measures the properties instead of
asserting them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.record import Trace

__all__ = ["TraceAnalysis", "analyze_trace"]

_SECTOR = 512


@dataclass(frozen=True)
class TraceAnalysis:
    """Quantified I/O-pattern signatures of one trace."""

    name: str
    num_requests: int
    #: fraction of requests that are reads ("read-dominant": paper > 0.99)
    read_fraction: float
    #: fraction of accesses landing on the busiest 10 % of touched regions
    locality_top10: float
    #: fraction of requests that are NOT sequential continuations
    random_fraction: float
    #: fraction of reads that jump forward within a small window
    #: (the skip-list signature: forward, nearby, non-contiguous)
    skipped_read_fraction: float
    #: mean request size in bytes
    mean_request_bytes: float
    #: LBA span covered (max touched - min touched)
    lba_span: int

    def summary(self) -> str:
        return (
            f"{self.name}: n={self.num_requests} "
            f"reads={self.read_fraction:.1%} locality(top10%)={self.locality_top10:.1%} "
            f"random={self.random_fraction:.1%} skipped={self.skipped_read_fraction:.1%} "
            f"mean_req={self.mean_request_bytes / 1024:.1f}KB span={self.lba_span}"
        )


def figure1_series(trace: Trace) -> tuple[np.ndarray, np.ndarray]:
    """The (read sequence number, logical sector number) series of Fig. 1."""
    reads = trace.reads_only()
    return np.arange(len(reads)), reads.lbas.copy()


def analyze_trace(
    trace: Trace,
    region_sectors: int = 2048,
    skip_window_sectors: int = 4096,
) -> TraceAnalysis:
    """Compute the Section III statistics for ``trace``.

    Parameters
    ----------
    region_sectors:
        Granularity for the locality statistic: the LBA space is bucketed
        into regions of this many sectors and accesses are attributed to
        regions.
    skip_window_sectors:
        Maximum forward jump (beyond sequential) still counted as a
        *skipped* read rather than a random read.
    """
    if len(trace) == 0:
        raise ValueError("cannot analyze an empty trace")
    if region_sectors <= 0 or skip_window_sectors <= 0:
        raise ValueError("window parameters must be positive")

    read_fraction = float(trace.is_read.mean())

    # Locality: share of accesses hitting the hottest 10 % of touched regions.
    regions = trace.lbas // region_sectors
    _, counts = np.unique(regions, return_counts=True)
    counts_sorted = np.sort(counts)[::-1]
    top_n = max(1, int(np.ceil(counts_sorted.size * 0.10)))
    locality = float(counts_sorted[:top_n].sum() / counts_sorted.sum())

    # Sequentiality / randomness / skips over the read substream.
    reads = trace.reads_only()
    if len(reads) >= 2:
        end_lba = reads.lbas[:-1] + -(-reads.nbytes[:-1] // _SECTOR)
        delta = reads.lbas[1:] - end_lba
        sequential = delta == 0
        skipped = (delta > 0) & (delta <= skip_window_sectors)
        random_frac = float(1.0 - sequential.mean())
        skipped_frac = float(skipped.mean())
    else:
        random_frac = 0.0
        skipped_frac = 0.0

    touched = trace.lbas
    return TraceAnalysis(
        name=trace.name,
        num_requests=len(trace),
        read_fraction=read_fraction,
        locality_top10=locality,
        random_fraction=random_frac,
        skipped_read_fraction=skipped_frac,
        mean_request_bytes=float(trace.nbytes.mean()),
        lba_span=int(touched.max() - touched.min()),
    )
