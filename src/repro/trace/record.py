"""Columnar trace representation.

A trace is stored as parallel numpy arrays (struct-of-arrays), which keeps
million-request traces compact and makes the analyzer's statistics pure
vector operations — the idiom the HPC guides prescribe for hot data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One I/O request (scalar view of a trace row)."""

    lba: int
    nbytes: int
    is_read: bool
    timestamp_s: float = 0.0

    @property
    def op(self) -> str:
        return "R" if self.is_read else "W"


class Trace:
    """An ordered sequence of I/O requests."""

    def __init__(
        self,
        lbas: np.ndarray,
        nbytes: np.ndarray,
        is_read: np.ndarray,
        timestamps_s: np.ndarray | None = None,
        name: str = "trace",
    ) -> None:
        lbas = np.asarray(lbas, dtype=np.int64)
        nbytes = np.asarray(nbytes, dtype=np.int64)
        is_read = np.asarray(is_read, dtype=bool)
        n = lbas.size
        if nbytes.size != n or is_read.size != n:
            raise ValueError("trace columns must have equal length")
        if timestamps_s is None:
            timestamps_s = np.zeros(n, dtype=np.float64)
        else:
            timestamps_s = np.asarray(timestamps_s, dtype=np.float64)
            if timestamps_s.size != n:
                raise ValueError("timestamps column length mismatch")
        if n and ((lbas < 0).any() or (nbytes <= 0).any()):
            raise ValueError("lbas must be >= 0 and nbytes > 0")
        self.lbas = lbas
        self.nbytes = nbytes
        self.is_read = is_read
        self.timestamps_s = timestamps_s
        self.name = name

    def __len__(self) -> int:
        return int(self.lbas.size)

    def __getitem__(self, i: int) -> TraceRecord:
        return TraceRecord(
            lba=int(self.lbas[i]),
            nbytes=int(self.nbytes[i]),
            is_read=bool(self.is_read[i]),
            timestamp_s=float(self.timestamps_s[i]),
        )

    def __iter__(self) -> Iterator[TraceRecord]:
        for i in range(len(self)):
            yield self[i]

    def reads_only(self) -> "Trace":
        """Sub-trace of read requests (Fig. 1 plots reads)."""
        m = self.is_read
        return Trace(self.lbas[m], self.nbytes[m], self.is_read[m],
                     self.timestamps_s[m], name=f"{self.name}:reads")

    def slice(self, start: int, stop: int) -> "Trace":
        s = np.s_[start:stop]
        return Trace(self.lbas[s], self.nbytes[s], self.is_read[s],
                     self.timestamps_s[s], name=self.name)

    @classmethod
    def from_records(cls, records: list[TraceRecord], name: str = "trace") -> "Trace":
        if not records:
            return cls(np.empty(0, np.int64), np.empty(0, np.int64),
                       np.empty(0, bool), None, name=name)
        return cls(
            np.array([r.lba for r in records], dtype=np.int64),
            np.array([r.nbytes for r in records], dtype=np.int64),
            np.array([r.is_read for r in records], dtype=bool),
            np.array([r.timestamp_s for r in records], dtype=np.float64),
            name=name,
        )

    def concat(self, other: "Trace") -> "Trace":
        return Trace(
            np.concatenate([self.lbas, other.lbas]),
            np.concatenate([self.nbytes, other.nbytes]),
            np.concatenate([self.is_read, other.is_read]),
            np.concatenate([self.timestamps_s, other.timestamps_s]),
            name=self.name,
        )
