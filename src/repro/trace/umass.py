"""UMass Trace Repository SPC format.

The storage traces the paper downloads ("WebSearch1.spc" etc.) use the
SPC-1 trace format: one request per line,

    ASU,LBA,Size,Opcode,Timestamp

where ASU is the application storage unit, Size is in bytes, Opcode is
``R``/``W`` (case-insensitive) and Timestamp is seconds since trace start.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

import numpy as np

from repro.trace.record import Trace

__all__ = ["parse_spc", "write_spc"]


def parse_spc(
    source: str | Path | Iterable[str],
    asu_filter: int | None = None,
    name: str = "spc",
) -> Trace:
    """Parse an SPC trace from a path or an iterable of lines.

    Malformed lines raise ``ValueError`` with the offending line number —
    silent skipping hides corrupt downloads.
    """
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source
    lbas: list[int] = []
    sizes: list[int] = []
    reads: list[bool] = []
    stamps: list[float] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) < 5:
            raise ValueError(f"SPC line {lineno}: expected 5 fields, got {len(parts)}")
        try:
            asu = int(parts[0])
            lba = int(parts[1])
            size = int(parts[2])
            opcode = parts[3].strip().upper()
            ts = float(parts[4])
        except ValueError as exc:
            raise ValueError(f"SPC line {lineno}: {exc}") from None
        if opcode not in ("R", "W"):
            raise ValueError(f"SPC line {lineno}: bad opcode {opcode!r}")
        if asu_filter is not None and asu != asu_filter:
            continue
        lbas.append(lba)
        sizes.append(size)
        reads.append(opcode == "R")
        stamps.append(ts)
    return Trace(
        np.array(lbas, dtype=np.int64),
        np.array(sizes, dtype=np.int64),
        np.array(reads, dtype=bool),
        np.array(stamps, dtype=np.float64),
        name=name,
    )


def write_spc(trace: Trace, path: str | Path, asu: int = 0) -> None:
    """Write a trace in SPC format (inverse of :func:`parse_spc`)."""
    with open(path, "w") as fh:
        for rec in trace:
            fh.write(f"{asu},{rec.lba},{rec.nbytes},{rec.op},{rec.timestamp_s:.6f}\n")
