"""DiskMon capture format.

Sysinternals DiskMon (the tool the paper ran on Windows Server 2003) logs
one request per line with tab/space-separated columns:

    <seq> <time_s> <duration_s> <Read|Write> <sector> <length_sectors>

Length is in 512 B sectors.  We accept both tabs and runs of spaces.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

import numpy as np

from repro.trace.record import Trace

__all__ = ["parse_diskmon", "write_diskmon"]

_SECTOR = 512


def parse_diskmon(source: str | Path | Iterable[str], name: str = "diskmon") -> Trace:
    """Parse a DiskMon log from a path or an iterable of lines."""
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source
    lbas: list[int] = []
    sizes: list[int] = []
    reads: list[bool] = []
    stamps: list[float] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 6:
            raise ValueError(
                f"DiskMon line {lineno}: expected 6 fields, got {len(parts)}"
            )
        try:
            ts = float(parts[1])
            op = parts[3].strip().lower()
            sector = int(parts[4])
            length = int(parts[5])
        except ValueError as exc:
            raise ValueError(f"DiskMon line {lineno}: {exc}") from None
        if op not in ("read", "write"):
            raise ValueError(f"DiskMon line {lineno}: bad op {parts[3]!r}")
        if length <= 0:
            raise ValueError(f"DiskMon line {lineno}: non-positive length")
        lbas.append(sector)
        sizes.append(length * _SECTOR)
        reads.append(op == "read")
        stamps.append(ts)
    return Trace(
        np.array(lbas, dtype=np.int64),
        np.array(sizes, dtype=np.int64),
        np.array(reads, dtype=bool),
        np.array(stamps, dtype=np.float64),
        name=name,
    )


def write_diskmon(trace: Trace, path: str | Path) -> None:
    """Write a trace in DiskMon format (inverse of :func:`parse_diskmon`)."""
    with open(path, "w") as fh:
        for i, rec in enumerate(trace):
            sectors = -(-rec.nbytes // _SECTOR)
            op = "Read" if rec.is_read else "Write"
            fh.write(
                f"{i}\t{rec.timestamp_s:.6f}\t0.000100\t{op}\t{rec.lba}\t{sectors}\n"
            )
