"""I/O trace tooling (Section III of the paper).

Provides the trace representation, parsers for the two formats the paper
used (UMass SPC search-engine traces and DiskMon captures), a synthetic
web-search trace generator with the same four signatures the paper
identifies (read-dominant, locality, random reads, skipped reads), an
analyzer that *measures* those signatures, and a replayer that drives any
simulated block device with a trace.
"""

from repro.trace.record import Trace, TraceRecord
from repro.trace.generator import WebSearchTraceConfig, generate_websearch_trace, trace_from_engine
from repro.trace.umass import parse_spc, write_spc
from repro.trace.diskmon import parse_diskmon, write_diskmon
from repro.trace.msr import parse_msr, write_msr
from repro.trace.analyzer import TraceAnalysis, analyze_trace, figure1_series
from repro.trace.capture import TracingDevice
from repro.trace.replay import ReplayResult, replay_trace

__all__ = [
    "Trace",
    "TraceRecord",
    "WebSearchTraceConfig",
    "generate_websearch_trace",
    "trace_from_engine",
    "parse_spc",
    "write_spc",
    "parse_diskmon",
    "write_diskmon",
    "parse_msr",
    "write_msr",
    "TraceAnalysis",
    "analyze_trace",
    "figure1_series",
    "TracingDevice",
    "ReplayResult",
    "replay_trace",
]
