"""Synthetic trace generation.

Two generators reproduce the paper's two trace sources:

* :func:`generate_websearch_trace` — a UMass-WebSearch-style block trace
  (Fig. 1a): >99 % reads scattered across a wide LBA range with a
  Zipf-hot subset of "index hot spots".
* :func:`trace_from_engine` — the DiskMon-style capture of our own engine
  (Fig. 1b): replays a query log against the index layout and records
  every posting-list chunk read, naturally producing the locality, random
  reads and skipped reads of Section III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.index import InvertedIndex
from repro.engine.processor import QueryProcessor
from repro.engine.querylog import QueryLog
from repro.sim.rng import make_rng
from repro.trace.record import Trace

__all__ = ["WebSearchTraceConfig", "generate_websearch_trace", "trace_from_engine"]


@dataclass(frozen=True)
class WebSearchTraceConfig:
    """Parameters of the UMass-like synthetic web-search trace."""

    num_requests: int = 100_000
    #: LBA span of the device region the index occupies (Fig. 1a spans ~35e5)
    lba_span: int = 3_500_000
    #: fraction of requests that are reads (UMass WebSearch measures > 99 %)
    read_fraction: float = 0.995
    #: number of hot extents (frequently used posting lists)
    hot_spots: int = 400
    #: fraction of accesses that land on hot extents (locality)
    hot_fraction: float = 0.7
    #: request size draw: multiples of 512 B between 1 and this many sectors
    max_sectors: int = 256
    #: mean interarrival time in seconds
    mean_interarrival_s: float = 0.001
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_requests <= 0 or self.lba_span <= 0:
            raise ValueError("num_requests and lba_span must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.hot_spots <= 0 or self.max_sectors <= 0:
            raise ValueError("hot_spots and max_sectors must be positive")


def generate_websearch_trace(config: WebSearchTraceConfig | None = None) -> Trace:
    """Generate a block-level trace with web-search signatures."""
    config = config or WebSearchTraceConfig()
    rng = make_rng(config.seed)
    n = config.num_requests

    hot_centers = rng.integers(0, config.lba_span, size=config.hot_spots)
    hot_weights = 1.0 / np.arange(1, config.hot_spots + 1, dtype=np.float64)
    hot_weights /= hot_weights.sum()

    on_hot = rng.random(n) < config.hot_fraction
    chosen = rng.choice(config.hot_spots, size=n, p=hot_weights)
    jitter = rng.integers(0, 2048, size=n)  # within-extent skip offsets
    hot_lbas = (hot_centers[chosen] + jitter) % config.lba_span
    cold_lbas = rng.integers(0, config.lba_span, size=n)
    lbas = np.where(on_hot, hot_lbas, cold_lbas)

    sectors = rng.integers(1, config.max_sectors + 1, size=n)
    nbytes = sectors * 512
    is_read = rng.random(n) < config.read_fraction
    timestamps = np.cumsum(rng.exponential(config.mean_interarrival_s, size=n))
    return Trace(lbas, nbytes, is_read, timestamps, name="websearch-synthetic")


def trace_from_engine(
    index: InvertedIndex,
    log: QueryLog,
    max_queries: int | None = None,
    seed: int = 1234,
) -> Trace:
    """Capture the disk reads an uncached engine issues for a query log.

    This is the simulated equivalent of running DiskMon under the Lucene
    retrieval test: for each query, each term's traversed prefix turns
    into chunked reads at the term's extent (skip reads within extents,
    random jumps between terms).
    """
    processor = QueryProcessor(index, seed=seed)
    rng = make_rng(seed + 1)
    lbas: list[int] = []
    sizes: list[int] = []
    queries = log.head(max_queries) if max_queries is not None else list(log)
    for query in queries:
        plan = processor.plan(query)
        for demand in plan.demands:
            for lba, nb in index.layout.chunk_reads(demand.term_id, demand.needed_bytes):
                # Within a chunk, skip pointers make the engine jump over
                # low-tf runs: emit sub-reads separated by small forward
                # gaps instead of one contiguous read.
                pos = 0
                while pos < nb:
                    size = int(min(nb - pos, rng.integers(16, 129) * 512))
                    lbas.append(lba + pos // 512)
                    sizes.append(size)
                    pos += size
                    pos += int(rng.integers(0, 17)) * 512  # skipped run
    n = len(lbas)
    return Trace(
        np.array(lbas, dtype=np.int64),
        np.array(sizes, dtype=np.int64),
        np.ones(n, dtype=bool),
        np.arange(n, dtype=np.float64) * 1e-3,
        name="engine-diskmon",
    )
