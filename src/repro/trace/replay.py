"""Trace replay against simulated devices.

Closed-loop replay: each request is issued when the previous one
completes, so the result isolates device service time (the quantity the
paper's SSD-vs-HDD comparisons care about) from arrival-process effects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.device import BlockDevice
from repro.trace.record import Trace

__all__ = ["ReplayResult", "replay_trace"]


@dataclass(frozen=True)
class ReplayResult:
    """Latency outcome of replaying one trace on one device."""

    device_name: str
    trace_name: str
    num_requests: int
    total_time_us: float
    read_time_us: float
    write_time_us: float

    @property
    def mean_latency_us(self) -> float:
        return self.total_time_us / self.num_requests if self.num_requests else 0.0

    @property
    def throughput_iops(self) -> float:
        """Requests per second of simulated time."""
        if self.total_time_us <= 0:
            return 0.0
        return self.num_requests / (self.total_time_us / 1e6)


def replay_trace(
    trace: Trace,
    device: BlockDevice,
    clip_to_capacity: bool = True,
) -> ReplayResult:
    """Replay ``trace`` on ``device`` and report latency totals.

    ``clip_to_capacity`` wraps LBAs that exceed the device (traces were
    captured on different-sized disks); disable it to make overflow an
    error instead.
    """
    total = read_t = write_t = 0.0
    cap_sectors = device.capacity_bytes // 512
    for rec in trace:
        lba, nbytes = rec.lba, rec.nbytes
        if lba + (nbytes + 511) // 512 > cap_sectors:
            if not clip_to_capacity:
                raise ValueError(f"request at lba={lba} exceeds device capacity")
            span = (nbytes + 511) // 512
            lba = lba % max(1, cap_sectors - span)
        if rec.is_read:
            dt = device.read(lba, nbytes)
            read_t += dt
        else:
            dt = device.write(lba, nbytes)
            write_t += dt
        total += dt
    return ReplayResult(
        device_name=device.name,
        trace_name=trace.name,
        num_requests=len(trace),
        total_time_us=total,
        read_time_us=read_t,
        write_time_us=write_t,
    )
