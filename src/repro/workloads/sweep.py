"""Parameter-sweep helpers shared by the benchmarks.

The paper's x-axes are (a) total document count 1-5 M (Figs. 15-18) and
(b) query count 10-100 k (Fig. 19).  ``document_sweep`` builds one scaled
index per document count — memoised, because index construction is the
expensive step — and runs a caller-supplied experiment on each.
"""

from __future__ import annotations

from typing import Callable

from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.querylog import QueryLog, QueryLogConfig, generate_query_log

__all__ = ["make_scaled_index", "make_log_for", "document_sweep"]

_INDEX_CACHE: dict[tuple, InvertedIndex] = {}

#: Query terms are drawn from this many head terms of the vocabulary —
#: real query words are common words, whose lists are the large ones.
QUERY_VOCAB = 10_000


def make_scaled_index(num_docs: int, seed: int = 42) -> InvertedIndex:
    """A paper-scale index for ``num_docs`` documents (memoised)."""
    key = (num_docs, seed)
    index = _INDEX_CACHE.get(key)
    if index is None:
        index = InvertedIndex(CorpusConfig.paper_scale(num_docs, seed=seed))
        _INDEX_CACHE[key] = index
    return index


def make_log_for(
    num_queries: int,
    distinct_queries: int | None = None,
    seed: int = 7,
) -> QueryLog:
    """A standard query log for the sweeps.

    The distinct pool defaults to ~1/4 of the stream so both result-cache
    repetition and a long tail of fresh queries exist, as in web logs.
    """
    if distinct_queries is None:
        distinct_queries = max(100, num_queries // 4)
    return generate_query_log(
        QueryLogConfig(
            num_queries=num_queries,
            distinct_queries=distinct_queries,
            vocab_size=QUERY_VOCAB,
            seed=seed,
        )
    )


def document_sweep(
    doc_counts: list[int],
    experiment: Callable[[InvertedIndex, int], dict],
    seed: int = 42,
) -> list[dict]:
    """Run ``experiment(index, num_docs)`` for each document count.

    Returns the experiment dicts with ``num_docs`` added — the row format
    the benches print.
    """
    rows = []
    for num_docs in doc_counts:
        index = make_scaled_index(num_docs, seed=seed)
        row = experiment(index, num_docs)
        row.setdefault("num_docs", num_docs)
        rows.append(row)
    return rows
