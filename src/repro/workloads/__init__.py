"""Experiment drivers: retrieval runs, parameter sweeps and the cost model.

These are the harnesses the benchmarks call: closed-loop query replay with
and without caches (Figs. 14-17, 19), and the dollars-per-performance
arithmetic of Fig. 18.
"""

from repro.workloads.retrieval import (
    RunResult,
    run_cached,
    run_uncached,
    sample_flash_series,
)
from repro.workloads.cost import (
    PriceList,
    ServerConfig,
    cost_performance,
    server_cost_usd,
)
from repro.workloads.sweep import document_sweep, make_scaled_index, make_log_for

__all__ = [
    "RunResult",
    "run_cached",
    "run_uncached",
    "sample_flash_series",
    "PriceList",
    "ServerConfig",
    "cost_performance",
    "server_cost_usd",
    "document_sweep",
    "make_scaled_index",
    "make_log_for",
]
