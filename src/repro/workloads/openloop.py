"""Open-loop serving: arrival processes and the concurrent driver.

Two generations of open-loop analysis live here:

* **Analytic reference** — :func:`collect_service_times` +
  :func:`load_sweep` couple a closed-loop replay (pure service times)
  with the post-hoc FIFO queueing model of :mod:`repro.sim.queueing`.
  Response times are *derived*, not simulated; the model sees a single
  server and no cache-state feedback.  Kept as the reference curve the
  kernel path is validated against.
* **Emergent** — :class:`PoissonArrivals` / :class:`DiurnalArrivals`
  feed :func:`run_open_loop`, which schedules real arrival events on the
  discrete-event kernel (:mod:`repro.sim.kernel`) and runs up to N
  queries concurrently through the live cache manager.  Queueing delay,
  saturation, and tail growth emerge from per-device contention, and the
  cache state evolves under the same interleaving that produced the
  latencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import CacheConfig, Policy
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.index import InvertedIndex
from repro.engine.querylog import QueryLog
from repro.obs.instruments import Histogram
from repro.sim.kernel import AdmissionControl, Kernel
from repro.sim.queueing import QueueResult, simulate_fifo_queue
from repro.sim.rng import make_rng

__all__ = [
    "collect_service_times",
    "load_sweep",
    "PoissonArrivals",
    "DiurnalArrivals",
    "OpenLoopResult",
    "run_open_loop",
    "schedule_arrivals",
]


def collect_service_times(
    index: InvertedIndex,
    log: QueryLog,
    cache_config: CacheConfig,
    warmup_queries: int = 0,
    static_analyze_queries: int | None = None,
    seed: int = 1234,
    telemetry=None,
) -> np.ndarray:
    """Per-query service times (us) from a warm closed-loop replay.

    With a :class:`~repro.obs.Telemetry` attached, the replay records
    per-stage latency histograms plus a ``service_time_us`` histogram of
    the measured (post-warmup) sample, so the open-loop driver's inputs
    are inspectable through the same registry as everything else.
    """
    hierarchy = build_hierarchy_for(cache_config, index)
    manager = CacheManager(cache_config, hierarchy, index, telemetry=telemetry)
    if cache_config.policy is Policy.CBSLRU and cache_config.uses_ssd:
        manager.warmup_static(log, analyze_queries=static_analyze_queries)
    service_hist = (telemetry.registry.histogram("service_time_us")
                    if telemetry is not None else None)
    times: list[float] = []
    for i, query in enumerate(log):
        outcome = manager.process_query(query)
        if i >= warmup_queries:
            times.append(outcome.response_us)
            if service_hist is not None:
                service_hist.record(outcome.response_us)
    if not times:
        raise ValueError("no measured queries (warmup consumed the log)")
    return np.array(times, dtype=np.float64)


def load_sweep(
    service_times_us: np.ndarray,
    offered_rates_qps: list[float],
    seed: int = 0,
) -> list[QueueResult]:
    """Queue-simulate each offered rate over one service-time sample.

    Analytic reference: single post-hoc FIFO server, no cache feedback.
    :func:`run_open_loop` is the emergent equivalent.
    """
    if not offered_rates_qps:
        raise ValueError("offered_rates_qps must be non-empty")
    return [
        simulate_fifo_queue(service_times_us, rate, seed=seed)
        for rate in offered_rates_qps
    ]


# ---------------------------------------------------------------------------
# Arrival processes (event sources for the kernel)
# ---------------------------------------------------------------------------

class PoissonArrivals:
    """Homogeneous Poisson arrivals at ``rate_qps``.

    ``next_after(t_us)`` draws the next absolute arrival time after
    ``t_us`` — exponential gaps, seeded via :func:`repro.sim.rng.
    make_rng` so runs are reproducible.
    """

    kind = "poisson"

    def __init__(self, rate_qps: float, seed: int = 0) -> None:
        if rate_qps <= 0:
            raise ValueError(f"rate_qps must be positive: {rate_qps}")
        self.rate_qps = rate_qps
        self._mean_gap_us = 1e6 / rate_qps
        self._rng = make_rng(seed)

    def next_after(self, t_us: float) -> float:
        return t_us + float(self._rng.exponential(self._mean_gap_us))


class DiurnalArrivals:
    """Inhomogeneous Poisson arrivals tracking a compressed diurnal curve.

    The instantaneous rate swings sinusoidally between ``floor_fraction *
    peak_qps`` (night) and ``peak_qps`` (midday peak) with period
    ``period_s`` — compressed from 24 h to seconds so a short simulation
    sees whole cycles.  Sampling uses Lewis-Shedler thinning against the
    peak rate, which is exact for any bounded rate function.
    """

    kind = "diurnal"

    def __init__(
        self,
        peak_qps: float,
        period_s: float = 10.0,
        floor_fraction: float = 0.2,
        seed: int = 0,
    ) -> None:
        if peak_qps <= 0:
            raise ValueError(f"peak_qps must be positive: {peak_qps}")
        if period_s <= 0:
            raise ValueError(f"period_s must be positive: {period_s}")
        if not 0.0 < floor_fraction <= 1.0:
            raise ValueError(
                f"floor_fraction must be in (0, 1]: {floor_fraction}"
            )
        self.peak_qps = peak_qps
        self.period_us = period_s * 1e6
        self.floor_fraction = floor_fraction
        self._peak_gap_us = 1e6 / peak_qps
        self._rng = make_rng(seed)

    def rate_at(self, t_us: float) -> float:
        """Instantaneous arrival rate (qps) at simulated time ``t_us``."""
        phase = 2.0 * math.pi * (t_us / self.period_us)
        # -cos starts the cycle at the floor (night) and peaks mid-period.
        swing = 0.5 * (1.0 - math.cos(phase))
        lo = self.floor_fraction * self.peak_qps
        return lo + (self.peak_qps - lo) * swing

    def next_after(self, t_us: float) -> float:
        rng = self._rng
        t = t_us
        while True:
            t += float(rng.exponential(self._peak_gap_us))
            if rng.random() * self.peak_qps <= self.rate_at(t):
                return t


# ---------------------------------------------------------------------------
# The emergent open-loop driver
# ---------------------------------------------------------------------------

@dataclass
class OpenLoopResult:
    """Outcome of one emergent open-loop run (kernel-scheduled)."""

    label: str
    arrival: str
    offered_qps: float
    concurrency: int
    duration_us: float
    arrived: int
    completed: int
    rejected: int
    mean_response_us: float
    p50_us: float
    p90_us: float
    p99_us: float
    p999_us: float
    #: Mean admission wait (arrival -> query start); device queueing
    #: delay is inside the response times, not here.
    mean_wait_us: float
    peak_inflight: int
    #: Peak queued+in-service depth per kernel resource.
    peak_resource_depth: dict[str, int] = field(default_factory=dict)
    #: Busy fraction per kernel resource over the run (1.0 = saturated).
    utilization: dict[str, float] = field(default_factory=dict)

    @property
    def throughput_qps(self) -> float:
        if self.duration_us <= 0:
            return 0.0
        return self.completed / (self.duration_us / 1e6)

    @property
    def reject_fraction(self) -> float:
        return self.rejected / self.arrived if self.arrived else 0.0

    def row(self) -> str:
        """One printable table row for the CLI sweep output."""
        return (
            f"{self.offered_qps:>9.1f} {self.throughput_qps:>9.1f} "
            f"{self.mean_response_us / 1000.0:>9.2f} "
            f"{self.p99_us / 1000.0:>9.2f} {self.p999_us / 1000.0:>9.2f} "
            f"{self.mean_wait_us / 1000.0:>9.2f} "
            f"{self.rejected:>7d} {max(self.peak_resource_depth.values(), default=0):>6d}"
        )


def schedule_arrivals(kernel: Kernel, arrivals, count: int, submit) -> None:
    """Chain ``count`` arrival events on the kernel, one at a time.

    Each event calls ``submit(index, arrival_us)`` then schedules the
    next arrival — one event in flight keeps inhomogeneous processes
    (whose rate depends on the current time) exact.
    """
    remaining = iter(range(count))

    def arrive() -> None:
        i = next(remaining, None)
        if i is None:
            return
        now = kernel.clock.now_us
        submit(i, now)
        if i + 1 < count:
            kernel.at(arrivals.next_after(now), arrive)

    if count > 0:
        kernel.at(arrivals.next_after(kernel.clock.now_us), arrive)


def run_open_loop(
    manager: CacheManager,
    queries,
    arrivals,
    concurrency: int = 4,
    max_queue: int = 64,
    cpu_lanes: int = 1,
    label: str = "open-loop",
    kernel: Kernel | None = None,
) -> OpenLoopResult:
    """Serve ``queries`` under an open-loop arrival process.

    Each arrival event submits one query to admission control
    (``concurrency`` in flight, ``max_queue`` waiting, beyond that shed);
    admitted queries run as kernel tasks through the live ``manager``,
    contending for the hierarchy's device resources.  Response time is
    arrival to completion, so admission wait and device queueing are
    included — tails grow past the knee because of contention, not a
    model.

    The manager's cache state carries over: pre-warm with a closed-loop
    replay first when steady-state behaviour is wanted.  Detaches the
    kernel from the clock before returning so later closed-loop use of
    the same hierarchy is unaffected.
    """
    queries = list(queries)
    if not queries:
        raise ValueError("no queries to serve")
    clock = manager.clock
    own_kernel = kernel is None
    if kernel is None:
        kernel = Kernel(clock)
    manager.hierarchy.attach_kernel(kernel, cpu_lanes=cpu_lanes)
    admission = AdmissionControl(kernel, max_inflight=concurrency,
                                 max_queue=max_queue)
    tel = manager.telemetry
    if tel is not None and hasattr(tel, "observe_kernel"):
        tel.observe_kernel(kernel, admission)
    blame = getattr(tel, "blame", None)

    start_us = clock.now_us
    responses: list[float] = []
    waits: list[float] = []

    def submit(i: int, arrival_us: float) -> None:
        query = queries[i]

        def body():
            begin = clock.now_us
            if blame is not None:
                # No yield point between here and process_query's own
                # stats read (strict handoff), so this qid is exactly
                # the one the query's spans and exemplars will carry.
                blame.tag_current(qid=manager.stats.queries)
            manager.process_query(query)
            waits.append(begin - arrival_us)
            responses.append(clock.now_us - arrival_us)

        admission.submit(body, name=f"q{i}")

    schedule_arrivals(kernel, arrivals, len(queries), submit)
    try:
        kernel.run()
        admission.check_invariants()
    finally:
        if own_kernel:
            clock.bind_kernel(None)

    duration = clock.now_us - start_us
    if responses:
        hist = Histogram(lo=1.0, growth=1.02)
        hist.record_many(responses)
        p50, p90, p99, p999 = hist.percentiles((50.0, 90.0, 99.0, 99.9))
    else:
        p50 = p90 = p99 = p999 = 0.0
    offered = getattr(arrivals, "rate_qps", None)
    if offered is None:
        offered = getattr(arrivals, "peak_qps", 0.0)
    return OpenLoopResult(
        label=label,
        arrival=getattr(arrivals, "kind", type(arrivals).__name__),
        offered_qps=float(offered),
        concurrency=concurrency,
        duration_us=duration,
        arrived=admission.stats.arrived,
        completed=admission.stats.completed,
        rejected=admission.stats.rejected,
        mean_response_us=float(np.mean(responses)) if responses else 0.0,
        p50_us=p50,
        p90_us=p90,
        p99_us=p99,
        p999_us=p999,
        mean_wait_us=float(np.mean(waits)) if waits else 0.0,
        peak_inflight=admission.peak_depth,
        peak_resource_depth={r.name: r.peak_depth for r in kernel.resources()},
        utilization={r.name: r.utilization(duration)
                     for r in kernel.resources()},
    )
