"""Open-loop load sweeps over the cached retrieval engine.

Couples the closed-loop cache replay (which yields each query's service
time) with the FIFO queueing model: the result is the latency-vs-offered-
load curve of one index server under a given cache policy — where the
knee sits is the practical meaning of the paper's throughput numbers.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CacheConfig, Policy
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.engine.index import InvertedIndex
from repro.engine.querylog import QueryLog
from repro.sim.queueing import QueueResult, simulate_fifo_queue

__all__ = ["collect_service_times", "load_sweep"]


def collect_service_times(
    index: InvertedIndex,
    log: QueryLog,
    cache_config: CacheConfig,
    warmup_queries: int = 0,
    static_analyze_queries: int | None = None,
    seed: int = 1234,
    telemetry=None,
) -> np.ndarray:
    """Per-query service times (us) from a warm closed-loop replay.

    With a :class:`~repro.obs.Telemetry` attached, the replay records
    per-stage latency histograms plus a ``service_time_us`` histogram of
    the measured (post-warmup) sample, so the open-loop driver's inputs
    are inspectable through the same registry as everything else.
    """
    hierarchy = build_hierarchy_for(cache_config, index)
    manager = CacheManager(cache_config, hierarchy, index, telemetry=telemetry)
    if cache_config.policy is Policy.CBSLRU and cache_config.uses_ssd:
        manager.warmup_static(log, analyze_queries=static_analyze_queries)
    service_hist = (telemetry.registry.histogram("service_time_us")
                    if telemetry is not None else None)
    times: list[float] = []
    for i, query in enumerate(log):
        outcome = manager.process_query(query)
        if i >= warmup_queries:
            times.append(outcome.response_us)
            if service_hist is not None:
                service_hist.record(outcome.response_us)
    if not times:
        raise ValueError("no measured queries (warmup consumed the log)")
    return np.array(times, dtype=np.float64)


def load_sweep(
    service_times_us: np.ndarray,
    offered_rates_qps: list[float],
    seed: int = 0,
) -> list[QueueResult]:
    """Queue-simulate each offered rate over one service-time sample."""
    if not offered_rates_qps:
        raise ValueError("offered_rates_qps must be non-empty")
    return [
        simulate_fifo_queue(service_times_us, rate, seed=seed)
        for rate in offered_rates_qps
    ]
