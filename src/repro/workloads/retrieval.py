"""Closed-loop retrieval runs.

Every figure in the paper's evaluation is some projection of these two
loops:

* :func:`run_uncached` — queries hit the index store directly (Fig. 15's
  HDD-vs-SSD comparison, the "no cache" baseline);
* :func:`run_cached` — queries flow through a :class:`CacheManager`
  (Figs. 14, 16, 17); :func:`sample_flash_series` additionally samples
  the SSD's erase count and mean access time as the run progresses
  (Fig. 19).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import CacheConfig, Policy
from repro.core.manager import CacheManager, build_hierarchy_for
from repro.core.stats import CacheStats
from repro.engine.index import InvertedIndex
from repro.engine.processor import QueryProcessor
from repro.engine.querylog import QueryLog
from repro.storage.hierarchy import HierarchyConfig, StorageHierarchy

__all__ = ["RunResult", "run_uncached", "run_cached", "sample_flash_series",
           "prepare_cached_manager"]


@dataclass
class RunResult:
    """Outcome of one retrieval run."""

    label: str
    queries: int
    mean_response_ms: float
    throughput_qps: float
    stats: CacheStats | None = None
    ssd_erases: int = 0
    ssd_mean_access_us: float = 0.0
    busy_us: dict = field(default_factory=dict)

    def row(self) -> str:
        """One printable table row."""
        return (
            f"{self.label:<28s} {self.queries:>7d} "
            f"{self.mean_response_ms:>10.2f} {self.throughput_qps:>10.1f}"
        )


def run_uncached(
    index: InvertedIndex,
    log: QueryLog,
    index_on: str = "hdd",
    max_queries: int | None = None,
    seed: int = 1234,
) -> RunResult:
    """Replay a query log with no cache at all (Fig. 15)."""
    cache_cfg = CacheConfig(
        mem_result_bytes=0, mem_list_bytes=0,
        ssd_result_bytes=0, ssd_list_bytes=0,
    )
    hierarchy = build_hierarchy_for(cache_cfg, index, index_on=index_on)
    processor = QueryProcessor(index, seed=seed)
    clock = hierarchy.clock
    store = hierarchy.index_store
    n = 0
    queries = log.head(max_queries) if max_queries is not None else list(log)
    for query in queries:
        plan = processor.plan(query)
        for demand in plan.demands:
            for lba, nbytes in index.layout.chunk_reads(
                demand.term_id, demand.needed_bytes
            ):
                store.read(lba, nbytes)
        clock.advance(processor.cpu_time_us(plan))
        n += 1
    total_us = clock.now_us
    return RunResult(
        label=f"nocache-{index_on}",
        queries=n,
        mean_response_ms=(total_us / n / 1000.0) if n else 0.0,
        throughput_qps=(n / (total_us / 1e6)) if total_us > 0 else 0.0,
        busy_us=hierarchy.busy_breakdown_us(),
    )


def _build_manager(
    index: InvertedIndex,
    cache_config: CacheConfig,
    index_on: str,
    seed: int,
    hierarchy: StorageHierarchy | None = None,
    telemetry=None,
) -> CacheManager:
    if hierarchy is None:
        hierarchy = build_hierarchy_for(cache_config, index, index_on=index_on)
    processor = QueryProcessor(index, top_k=cache_config.top_k, seed=seed)
    return CacheManager(cache_config, hierarchy, index, processor,
                        telemetry=telemetry)


def prepare_cached_manager(
    index: InvertedIndex,
    log: QueryLog,
    cache_config: CacheConfig,
    index_on: str = "hdd",
    static_analyze_queries: int | None = None,
    seed: int = 1234,
    telemetry=None,
) -> CacheManager:
    """Build the manager exactly as :func:`run_cached` would, stopping
    just before serving: hierarchy, processor (same ``seed``, so query
    plans reproduce), and the CBSLRU static warmup.  Pass the result to
    ``run_cached(..., manager=...)`` to time serving without setup."""
    mgr = _build_manager(index, cache_config, index_on, seed,
                         telemetry=telemetry)
    if cache_config.policy is Policy.CBSLRU and cache_config.uses_ssd:
        mgr.warmup_static(log, analyze_queries=static_analyze_queries)
    return mgr


def run_cached(
    index: InvertedIndex,
    log: QueryLog,
    cache_config: CacheConfig,
    index_on: str = "hdd",
    warmup_queries: int = 0,
    max_queries: int | None = None,
    static_analyze_queries: int | None = None,
    idle_gc_us: float = 0.0,
    seed: int = 1234,
    label: str | None = None,
    telemetry=None,
    manager: CacheManager | None = None,
) -> RunResult:
    """Replay a query log through the two-level cache.

    ``warmup_queries`` leading queries populate the caches but are
    excluded from the reported statistics (their device traffic still
    ages the SSD, as it would in reality).  For CBSLRU the static
    partition is provisioned first by analysing the log prefix.
    ``idle_gc_us`` grants the SSD that much background-GC budget of
    host think time after every query.  ``telemetry`` attaches a
    :class:`~repro.obs.Telemetry` bundle to the manager for spans and
    per-stage latency histograms.  ``manager`` replays through an
    already-built (and already statically-warmed) manager instead —
    the bench harness uses this to time serving separately from setup;
    ``cache_config`` must be the config the manager was built with.
    """
    if manager is not None:
        mgr = manager
    else:
        mgr = _build_manager(index, cache_config, index_on, seed,
                             telemetry=telemetry)
        if cache_config.policy is Policy.CBSLRU and cache_config.uses_ssd:
            mgr.warmup_static(log, analyze_queries=static_analyze_queries)
    queries = log.head(max_queries) if max_queries is not None else list(log)
    erase_base = mgr.ssd.erase_count if mgr.ssd else 0
    for i, query in enumerate(queries):
        if i == warmup_queries:
            mgr.stats.reset()
            if mgr.ssd is not None:
                erase_base = mgr.ssd.erase_count
        mgr.process_query(query)
        if idle_gc_us > 0 and mgr.ssd is not None:
            mgr.ssd.idle_collect(idle_gc_us)
    s = mgr.stats
    return RunResult(
        label=label or f"{cache_config.policy.value}-{index_on}",
        queries=s.queries,
        mean_response_ms=s.mean_response_us / 1000.0,
        throughput_qps=s.throughput_qps,
        stats=s,
        ssd_erases=(mgr.ssd.erase_count - erase_base) if mgr.ssd else 0,
        ssd_mean_access_us=mgr.ssd.mean_access_time_us if mgr.ssd else 0.0,
        busy_us=mgr.hierarchy.busy_breakdown_us(),
    )


def sample_flash_series(
    index: InvertedIndex,
    log: QueryLog,
    cache_config: CacheConfig,
    sample_points: list[int],
    index_on: str = "hdd",
    static_analyze_queries: int | None = None,
    seed: int = 1234,
) -> list[dict]:
    """Fig. 19's series: (queries, erase count, flash mean access time).

    ``sample_points`` are cumulative query counts at which to sample; the
    run processes max(sample_points) queries total.
    """
    if not sample_points:
        raise ValueError("sample_points must be non-empty")
    if sorted(sample_points) != list(sample_points):
        raise ValueError("sample_points must be increasing")
    mgr = _build_manager(index, cache_config, index_on, seed)
    if mgr.ssd is None:
        raise ValueError("flash series needs an SSD tier")
    if cache_config.policy is Policy.CBSLRU:
        mgr.warmup_static(log, analyze_queries=static_analyze_queries)
    # Fig. 19 counts flash activity during the measured workload only.
    erase_base = mgr.ssd.erase_count
    mgr.ssd.reset_counters()

    out: list[dict] = []
    done = 0
    total = sample_points[-1]
    queries = log.head(total)
    if len(queries) < total:
        raise ValueError(f"log has only {len(queries)} queries, need {total}")
    for point in sample_points:
        while done < point:
            mgr.process_query(queries[done])
            done += 1
        out.append(
            {
                "queries": done,
                "erases": mgr.ssd.erase_count - erase_base,
                "mean_access_us": mgr.ssd.mean_access_time_us,
            }
        )
    return out
