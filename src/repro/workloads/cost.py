"""Server cost model (Section VII.C).

The paper's cost argument: DRAM is $14.5/GB and SSD $1.9/GB (2012
prices), so replacing most of the DRAM cache with a larger SSD cache cuts
server cost without hurting response time.  This module prices a server
configuration and combines it with measured performance into the
cost-performance numbers Fig. 18 argues from.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PriceList", "ServerConfig", "server_cost_usd", "cost_performance"]

GB = 1024**3


@dataclass(frozen=True)
class PriceList:
    """$ per GB for each medium (defaults: the paper's 2012 figures)."""

    dram_per_gb: float = 14.5
    ssd_per_gb: float = 1.9
    hdd_per_gb: float = 0.08

    def __post_init__(self) -> None:
        if min(self.dram_per_gb, self.ssd_per_gb, self.hdd_per_gb) < 0:
            raise ValueError("prices cannot be negative")


@dataclass(frozen=True)
class ServerConfig:
    """Storage bill of materials for one index server."""

    label: str
    dram_bytes: int
    ssd_bytes: int = 0
    hdd_bytes: int = 0

    def __post_init__(self) -> None:
        if min(self.dram_bytes, self.ssd_bytes, self.hdd_bytes) < 0:
            raise ValueError("capacities cannot be negative")


def server_cost_usd(config: ServerConfig, prices: PriceList | None = None) -> float:
    """Storage cost of one server configuration."""
    prices = prices or PriceList()
    return (
        config.dram_bytes / GB * prices.dram_per_gb
        + config.ssd_bytes / GB * prices.ssd_per_gb
        + config.hdd_bytes / GB * prices.hdd_per_gb
    )


def cost_performance(
    config: ServerConfig,
    throughput_qps: float,
    prices: PriceList | None = None,
) -> float:
    """Queries per second per storage dollar (higher is better)."""
    cost = server_cost_usd(config, prices)
    if cost <= 0:
        raise ValueError("configuration has zero storage cost")
    return throughput_qps / cost
