"""repro.bench — the continuous benchmark harness (``repro bench``).

Deterministic end-to-end runs over the simulated stack, summarised into
a ``BENCH_<n>.json`` document: per-stage latency percentiles, hit
ratios, write amplification, total erases and wall-clock time per
scenario.  Because the simulation is fully deterministic, every metric
except wall clock reproduces bit-for-bit on unchanged code — which is
what makes :func:`~repro.bench.regression.compare_benches` a usable
regression gate in CI rather than a noise detector.

Typical flow::

    repro bench --suite smoke --out BENCH_0005.json
    repro bench --suite smoke --against BENCH_0004.json   # exits 1 on regression
"""

from repro.bench.harness import (
    BENCH_SCHEMA,
    load_bench,
    next_bench_path,
    run_suite,
    write_bench,
)
from repro.bench.regression import (
    BLAME_THRESHOLDS,
    DEFAULT_THRESHOLDS,
    HOST_WALL_METRIC,
    HOST_WALL_THRESHOLD,
    Regression,
    compare_benches,
    format_regressions,
    format_wall_report,
)
from repro.bench.scenarios import SUITES, BenchScenario

__all__ = [
    "BenchScenario",
    "SUITES",
    "BENCH_SCHEMA",
    "run_suite",
    "write_bench",
    "load_bench",
    "next_bench_path",
    "Regression",
    "BLAME_THRESHOLDS",
    "DEFAULT_THRESHOLDS",
    "HOST_WALL_METRIC",
    "HOST_WALL_THRESHOLD",
    "compare_benches",
    "format_regressions",
    "format_wall_report",
]
