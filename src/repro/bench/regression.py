"""The regression gate: compare two BENCH documents metric by metric.

Each gated metric has a direction (is higher or lower worse?) and a
relative tolerance.  The simulation is deterministic, so on unchanged
code every gated metric matches exactly; the tolerances exist to absorb
*intentional* small shifts (a reordered write here, one extra GC pass
there) without ungated drift.  ``wall_clock_s`` is recorded in the
document but never gated — it measures the machine, not the code — yet
its delta is always *reported* (:func:`format_wall_report`), so speed
drift stays visible in CI logs.

Host time gates through the per-scenario ``host`` block instead:
``host.wall_us_per_query`` measures serving only (setup excluded) and
carries a deliberately loose 30% ratchet — machine noise passes, an
accidental algorithmic slowdown does not.  Improvements never fail; they
are flagged as re-baseline candidates so the ratchet tightens as the
raw-speed arc lands optimisations.  Baselines recorded before the host
block exist simply skip the host gate.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Threshold", "Regression", "DEFAULT_THRESHOLDS",
           "HOST_WALL_METRIC", "HOST_WALL_THRESHOLD", "BLAME_THRESHOLDS",
           "compare_benches", "format_regressions", "format_wall_report"]


@dataclass(frozen=True)
class Threshold:
    """Gate for one metric: which direction is bad, and by how much."""

    #: "up" = an increase is a regression; "down" = a decrease is.
    bad_direction: str
    #: relative tolerance (0.05 = 5% movement in the bad direction is ok)
    rel_tol: float
    #: absolute slack for near-zero baselines (|delta| below this passes)
    abs_tol: float = 0.0


@dataclass(frozen=True)
class Regression:
    """One gated metric that moved past its threshold."""

    scenario: str
    metric: str
    baseline: float
    current: float
    threshold: Threshold

    @property
    def rel_change(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 0.0
        return (self.current - self.baseline) / abs(self.baseline)


#: metric name (or stage-percentile prefix) -> gate.
DEFAULT_THRESHOLDS: dict[str, Threshold] = {
    "mean_response_ms": Threshold("up", 0.05),
    "throughput_qps": Threshold("down", 0.05),
    # Open-loop (kernel) saturation metrics: tails and waits move more
    # than means under contention, so their gates are looser.
    "p99_response_ms": Threshold("up", 0.10),
    "p999_response_ms": Threshold("up", 0.10),
    "mean_wait_ms": Threshold("up", 0.15, abs_tol=0.5),
    "reject_fraction": Threshold("up", 0.10, abs_tol=0.02),
    "peak_queue_depth": Threshold("up", 0.25, abs_tol=2.0),
    "bottleneck_utilization": Threshold("up", 0.05, abs_tol=0.02),
    "result_hit_ratio": Threshold("down", 0.02, abs_tol=0.005),
    "list_hit_ratio": Threshold("down", 0.02, abs_tol=0.005),
    "combined_hit_ratio": Threshold("down", 0.02, abs_tol=0.005),
    "ssd_erases": Threshold("up", 0.10, abs_tol=2.0),
    "write_amplification": Threshold("up", 0.10, abs_tol=0.02),
    "gc_page_writes": Threshold("up", 0.15, abs_tol=16.0),
    # Stage percentiles: generous, they gate order-of-magnitude slips.
    "stage_": Threshold("up", 0.20, abs_tol=1.0),
}

#: Metrics never gated (recorded for humans, not for the gate).
UNGATED = {"wall_clock_s"}

#: The host-time gate: per-query serving wall time, from the ``host``
#: block.  30% relative tolerance absorbs machine/load noise on CI
#: runners; the 200 us absolute slack keeps sub-millisecond scenarios
#: from gating on scheduler jitter.
HOST_WALL_METRIC = "host.wall_us_per_query"
HOST_WALL_THRESHOLD = Threshold("up", 0.30, abs_tol=200.0)

#: Capacity-model gates over the per-scenario ``blame`` block (open-loop
#: scenarios only).  The knee estimate falling means the modeled
#: capacity ceiling dropped; wait fraction rising means queueing grew at
#: unchanged load; the Little's-law error rising means the blame
#: instrumentation itself disagrees with the depth accounting.
BLAME_THRESHOLDS: dict[str, Threshold] = {
    "knee_qps": Threshold("down", 0.15, abs_tol=2.0),
    "wait_fraction": Threshold("up", 0.15, abs_tol=0.05),
    "little_law_max_rel_err": Threshold("up", 0.5, abs_tol=0.02),
}


def _threshold_for(metric: str,
                   thresholds: dict[str, Threshold]) -> Threshold | None:
    if metric in UNGATED:
        return None
    t = thresholds.get(metric)
    if t is not None:
        return t
    for prefix, t in thresholds.items():
        if prefix.endswith("_") and metric.startswith(prefix):
            return t
    return None


def compare_benches(
    current: dict,
    baseline: dict,
    thresholds: dict[str, Threshold] | None = None,
) -> list[Regression]:
    """Every gated metric of ``current`` that regressed vs ``baseline``.

    Scenarios present in only one document are skipped (suites may grow).
    Within a shared scenario, a gated metric that the baseline recorded
    as nonzero but the current run no longer reports is treated as a
    regression to 0.

    Documents measured under different methodologies (the harness's
    ``methodology`` block — e.g. full-run vs steady-state-windowed) are
    not comparable: their numbers answer different questions, so this
    raises ``ValueError`` instead of producing a meaningless verdict.
    """
    cur_meth = current.get("methodology")
    base_meth = baseline.get("methodology")
    if cur_meth != base_meth:
        def _name(m):
            return m.get("name", "?") if isinstance(m, dict) else "pre-methodology"
        detail = f"current is {_name(cur_meth)!r}, baseline is {_name(base_meth)!r}"
        if isinstance(cur_meth, dict) and isinstance(base_meth, dict):
            differing = sorted(k for k in set(cur_meth) | set(base_meth)
                               if cur_meth.get(k) != base_meth.get(k))
            detail += f" (differing parameters: {', '.join(differing)})"
        raise ValueError(
            f"cannot compare benches across measurement methodologies: "
            f"{detail}; re-record the baseline with the current harness"
        )
    thresholds = thresholds if thresholds is not None else DEFAULT_THRESHOLDS
    out: list[Regression] = []
    for name, base_entry in baseline.get("scenarios", {}).items():
        cur_entry = current.get("scenarios", {}).get(name)
        if cur_entry is None:
            continue
        base_metrics = base_entry["metrics"]
        cur_metrics = cur_entry["metrics"]
        for metric, base_val in base_metrics.items():
            t = _threshold_for(metric, thresholds)
            if t is None:
                continue
            cur_val = cur_metrics.get(metric)
            if cur_val is None:
                if base_val:  # a formerly-nonzero gated metric vanished
                    out.append(Regression(name, metric, base_val, 0.0, t))
                continue
            delta = cur_val - base_val
            if t.bad_direction == "down":
                delta = -delta
            if delta <= t.abs_tol:
                continue
            if base_val != 0 and delta / abs(base_val) <= t.rel_tol:
                continue
            out.append(Regression(name, metric, base_val, cur_val, t))
        # Host serving time gates through the ratchet when both sides
        # recorded it; pre-host baselines skip (nothing to ratchet from).
        base_host = base_entry.get("host") or {}
        cur_host = cur_entry.get("host") or {}
        base_wall = base_host.get("wall_us_per_query")
        cur_wall = cur_host.get("wall_us_per_query")
        if base_wall and cur_wall is not None:
            t = HOST_WALL_THRESHOLD
            delta = cur_wall - base_wall
            if delta > t.abs_tol and delta / abs(base_wall) > t.rel_tol:
                out.append(Regression(name, HOST_WALL_METRIC,
                                      base_wall, cur_wall, t))
        # Capacity model: gated when both sides carry a blame block
        # (open-loop scenarios); pre-blame baselines skip.
        base_blame = base_entry.get("blame") or {}
        cur_blame = cur_entry.get("blame") or {}
        for metric, t in BLAME_THRESHOLDS.items():
            base_val = base_blame.get(metric)
            cur_val = cur_blame.get(metric)
            if base_val is None or cur_val is None:
                continue
            delta = cur_val - base_val
            if t.bad_direction == "down":
                delta = -delta
            if delta <= t.abs_tol:
                continue
            if base_val != 0 and delta / abs(base_val) <= t.rel_tol:
                continue
            out.append(Regression(name, f"blame.{metric}",
                                  base_val, cur_val, t))
    return out


def format_wall_report(current: dict, baseline: dict) -> str:
    """Wall-clock drift report, one line per shared scenario.

    Always printed with the gate output even though ``wall_clock_s``
    never gates: speed drift should be visible in every CI log, not just
    when it crosses the host ratchet.  A host improvement past the
    ratchet's own tolerance is flagged as a re-baseline candidate — the
    warn-then-ratchet half of the gate.
    """
    lines = []
    for name, base_entry in baseline.get("scenarios", {}).items():
        cur_entry = current.get("scenarios", {}).get(name)
        if cur_entry is None:
            continue
        base_wall = base_entry["metrics"].get("wall_clock_s")
        cur_wall = cur_entry["metrics"].get("wall_clock_s")
        if not base_wall or cur_wall is None:
            continue
        pct = (cur_wall - base_wall) / base_wall
        line = (f"  {name}: wall {base_wall:.2f}s -> {cur_wall:.2f}s "
                f"({pct:+.1%}, ungated)")
        base_host = (base_entry.get("host") or {}).get("wall_us_per_query")
        cur_host = (cur_entry.get("host") or {}).get("wall_us_per_query")
        if base_host and cur_host is not None:
            hpct = (cur_host - base_host) / base_host
            t = HOST_WALL_THRESHOLD
            if hpct > t.rel_tol and cur_host - base_host > t.abs_tol:
                status = "FAILS ratchet"
            elif hpct < -t.rel_tol:
                status = "improved, re-baseline candidate"
            else:
                status = "within ratchet"
            line += (f"; host {base_host:,.0f} -> {cur_host:,.0f} us/query "
                     f"({hpct:+.1%}, {status})")
        lines.append(line)
    if not lines:
        return "wall-clock report: no shared scenarios"
    return "wall-clock report (reported always, gated via host ratchet):\n" \
        + "\n".join(lines)


def format_regressions(regressions: list[Regression]) -> str:
    """Human-readable gate report (one line per regression)."""
    if not regressions:
        return "no regressions"
    lines = [f"{len(regressions)} regression(s) past thresholds:"]
    for r in regressions:
        direction = "rose" if r.threshold.bad_direction == "up" else "fell"
        lines.append(
            f"  {r.scenario}: {r.metric} {direction} "
            f"{r.baseline:.4g} -> {r.current:.4g} "
            f"({r.rel_change:+.1%}, tolerance "
            f"{r.threshold.rel_tol:.0%} {r.threshold.bad_direction})"
        )
    return "\n".join(lines)
