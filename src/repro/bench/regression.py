"""The regression gate: compare two BENCH documents metric by metric.

Each gated metric has a direction (is higher or lower worse?) and a
relative tolerance.  The simulation is deterministic, so on unchanged
code every gated metric matches exactly; the tolerances exist to absorb
*intentional* small shifts (a reordered write here, one extra GC pass
there) without ungated drift.  ``wall_clock_s`` is recorded in the
document but never gated — it measures the machine, not the code.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Threshold", "Regression", "DEFAULT_THRESHOLDS",
           "compare_benches", "format_regressions"]


@dataclass(frozen=True)
class Threshold:
    """Gate for one metric: which direction is bad, and by how much."""

    #: "up" = an increase is a regression; "down" = a decrease is.
    bad_direction: str
    #: relative tolerance (0.05 = 5% movement in the bad direction is ok)
    rel_tol: float
    #: absolute slack for near-zero baselines (|delta| below this passes)
    abs_tol: float = 0.0


@dataclass(frozen=True)
class Regression:
    """One gated metric that moved past its threshold."""

    scenario: str
    metric: str
    baseline: float
    current: float
    threshold: Threshold

    @property
    def rel_change(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 0.0
        return (self.current - self.baseline) / abs(self.baseline)


#: metric name (or stage-percentile prefix) -> gate.
DEFAULT_THRESHOLDS: dict[str, Threshold] = {
    "mean_response_ms": Threshold("up", 0.05),
    "throughput_qps": Threshold("down", 0.05),
    # Open-loop (kernel) saturation metrics: tails and waits move more
    # than means under contention, so their gates are looser.
    "p99_response_ms": Threshold("up", 0.10),
    "p999_response_ms": Threshold("up", 0.10),
    "mean_wait_ms": Threshold("up", 0.15, abs_tol=0.5),
    "reject_fraction": Threshold("up", 0.10, abs_tol=0.02),
    "peak_queue_depth": Threshold("up", 0.25, abs_tol=2.0),
    "bottleneck_utilization": Threshold("up", 0.05, abs_tol=0.02),
    "result_hit_ratio": Threshold("down", 0.02, abs_tol=0.005),
    "list_hit_ratio": Threshold("down", 0.02, abs_tol=0.005),
    "combined_hit_ratio": Threshold("down", 0.02, abs_tol=0.005),
    "ssd_erases": Threshold("up", 0.10, abs_tol=2.0),
    "write_amplification": Threshold("up", 0.10, abs_tol=0.02),
    "gc_page_writes": Threshold("up", 0.15, abs_tol=16.0),
    # Stage percentiles: generous, they gate order-of-magnitude slips.
    "stage_": Threshold("up", 0.20, abs_tol=1.0),
}

#: Metrics never gated (recorded for humans, not for the gate).
UNGATED = {"wall_clock_s"}


def _threshold_for(metric: str,
                   thresholds: dict[str, Threshold]) -> Threshold | None:
    if metric in UNGATED:
        return None
    t = thresholds.get(metric)
    if t is not None:
        return t
    for prefix, t in thresholds.items():
        if prefix.endswith("_") and metric.startswith(prefix):
            return t
    return None


def compare_benches(
    current: dict,
    baseline: dict,
    thresholds: dict[str, Threshold] | None = None,
) -> list[Regression]:
    """Every gated metric of ``current`` that regressed vs ``baseline``.

    Scenarios present in only one document are skipped (suites may grow).
    Within a shared scenario, a gated metric that the baseline recorded
    as nonzero but the current run no longer reports is treated as a
    regression to 0.

    Documents measured under different methodologies (the harness's
    ``methodology`` block — e.g. full-run vs steady-state-windowed) are
    not comparable: their numbers answer different questions, so this
    raises ``ValueError`` instead of producing a meaningless verdict.
    """
    cur_meth = current.get("methodology")
    base_meth = baseline.get("methodology")
    if cur_meth != base_meth:
        def _name(m):
            return m.get("name", "?") if isinstance(m, dict) else "pre-methodology"
        detail = f"current is {_name(cur_meth)!r}, baseline is {_name(base_meth)!r}"
        if isinstance(cur_meth, dict) and isinstance(base_meth, dict):
            differing = sorted(k for k in set(cur_meth) | set(base_meth)
                               if cur_meth.get(k) != base_meth.get(k))
            detail += f" (differing parameters: {', '.join(differing)})"
        raise ValueError(
            f"cannot compare benches across measurement methodologies: "
            f"{detail}; re-record the baseline with the current harness"
        )
    thresholds = thresholds if thresholds is not None else DEFAULT_THRESHOLDS
    out: list[Regression] = []
    for name, base_entry in baseline.get("scenarios", {}).items():
        cur_entry = current.get("scenarios", {}).get(name)
        if cur_entry is None:
            continue
        base_metrics = base_entry["metrics"]
        cur_metrics = cur_entry["metrics"]
        for metric, base_val in base_metrics.items():
            t = _threshold_for(metric, thresholds)
            if t is None:
                continue
            cur_val = cur_metrics.get(metric)
            if cur_val is None:
                if base_val:  # a formerly-nonzero gated metric vanished
                    out.append(Regression(name, metric, base_val, 0.0, t))
                continue
            delta = cur_val - base_val
            if t.bad_direction == "down":
                delta = -delta
            if delta <= t.abs_tol:
                continue
            if base_val != 0 and delta / abs(base_val) <= t.rel_tol:
                continue
            out.append(Regression(name, metric, base_val, cur_val, t))
    return out


def format_regressions(regressions: list[Regression]) -> str:
    """Human-readable gate report (one line per regression)."""
    if not regressions:
        return "no regressions"
    lines = [f"{len(regressions)} regression(s) past thresholds:"]
    for r in regressions:
        direction = "rose" if r.threshold.bad_direction == "up" else "fell"
        lines.append(
            f"  {r.scenario}: {r.metric} {direction} "
            f"{r.baseline:.4g} -> {r.current:.4g} "
            f"({r.rel_change:+.1%}, tolerance "
            f"{r.threshold.rel_tol:.0%} {r.threshold.bad_direction})"
        )
    return "\n".join(lines)
