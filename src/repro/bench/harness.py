"""The benchmark harness: run a suite, emit a ``BENCH_<n>.json`` document.

Each scenario replays a deterministic query log through the full cached
stack with a registry-only :class:`~repro.obs.Telemetry` attached (no
spans, no audit — the cheap configuration), then folds the run result,
the stage-latency histograms and the flash-device bridge into one flat
metrics dict.  Every metric except ``wall_clock_s`` is a pure function
of the code and the seed, so unchanged code reproduces the document
exactly.

Document schema (``repro.bench/v1``)::

    {"schema": "repro.bench/v1", "suite": "smoke",
     "scenarios": {"<name>": {"config": {...}, "metrics": {...}}}}
"""

from __future__ import annotations

import json
import os
import re
import time

from repro.bench.scenarios import SUITES, BenchScenario

__all__ = ["BENCH_SCHEMA", "run_suite", "run_scenario", "write_bench",
           "load_bench", "next_bench_path"]

BENCH_SCHEMA = "repro.bench/v1"

MB = 1024 * 1024

#: Stage-latency percentiles the document keeps per stage.
_STAGE_QS = (50.0, 99.0)

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def run_scenario(scenario: BenchScenario) -> dict:
    """Run one scenario; returns its ``{"config", "metrics"}`` entry."""
    from repro.core.config import CacheConfig, Policy
    from repro.obs import Telemetry
    from repro.workloads.retrieval import run_cached
    from repro.workloads.sweep import make_log_for, make_scaled_index

    index = make_scaled_index(scenario.docs)
    log = make_log_for(scenario.queries, seed=scenario.seed)
    cfg = CacheConfig.paper_split(
        scenario.mem_mb * MB, scenario.ssd_mb * MB,
        policy=Policy(scenario.policy),
        ttl_us=scenario.ttl_ms * 1000.0,
    )
    tel = Telemetry(trace=False, audit=False)
    t0 = time.perf_counter()
    result = run_cached(
        index, log, cfg,
        static_analyze_queries=scenario.queries // 2,
        seed=scenario.seed,
        telemetry=tel,
    )
    wall = time.perf_counter() - t0
    tel.collect()

    stats = result.stats
    metrics: dict = {
        "mean_response_ms": stats.mean_response_us / 1000.0,
        "throughput_qps": stats.throughput_qps,
        "result_hit_ratio": stats.result_hit_ratio,
        "list_hit_ratio": stats.list_hit_ratio,
        "combined_hit_ratio": stats.combined_hit_ratio,
        "ssd_erases": result.ssd_erases,
        "wall_clock_s": wall,
    }
    wa = tel.registry.get("flash_write_amplification", device="ssd-cache")
    if wa is not None:
        metrics["write_amplification"] = wa.value
    gc_writes = tel.registry.get("flash_gc_page_writes_total",
                                 device="ssd-cache")
    if gc_writes is not None:
        metrics["gc_page_writes"] = gc_writes.value
    for name, tags, inst in tel.registry.items():
        if name != "stage_latency_us" or inst.kind != "histogram":
            continue
        if not inst.count:
            continue
        stage = tags["stage"]
        for q in _STAGE_QS:
            metrics[f"stage_{stage}_p{q:g}_us"] = inst.percentile(q)
    return {"config": scenario.to_dict(), "metrics": metrics}


def run_suite(suite: str = "smoke", progress=None) -> dict:
    """Run every scenario of ``suite``; returns the BENCH document."""
    try:
        scenarios = SUITES[suite]
    except KeyError:
        raise ValueError(
            f"unknown suite {suite!r}; choose from {sorted(SUITES)}"
        ) from None
    doc: dict = {"schema": BENCH_SCHEMA, "suite": suite, "scenarios": {}}
    for scenario in scenarios:
        if progress is not None:
            progress(scenario)
        doc["scenarios"][scenario.name] = run_scenario(scenario)
    return doc


def write_bench(doc: dict, path) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_bench(path) -> dict:
    """Load a BENCH document, validating the schema."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: not a {BENCH_SCHEMA} document")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        raise ValueError(f"{path}: no scenarios recorded")
    for name, entry in scenarios.items():
        for fld in ("config", "metrics"):
            if fld not in entry:
                raise ValueError(f"{path}: scenario {name!r} missing {fld!r}")
        if not entry["metrics"]:
            raise ValueError(f"{path}: scenario {name!r} has no metrics")
    return doc


def next_bench_path(directory=".") -> str:
    """The next free ``BENCH_<n>.json`` path (max existing + 1)."""
    highest = -1
    for fname in os.listdir(directory):
        m = _BENCH_RE.match(fname)
        if m:
            highest = max(highest, int(m.group(1)))
    return os.path.join(directory, f"BENCH_{highest + 1:04d}.json")
