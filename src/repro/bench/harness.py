"""The benchmark harness: run a suite, emit a ``BENCH_<n>.json`` document.

Each scenario replays a deterministic query log through the full cached
stack with a registry-only :class:`~repro.obs.Telemetry` attached (no
spans, no audit — the cheap configuration) plus a windowed timeline,
then folds the run result, the stage-latency histograms and the
flash-device bridge into one flat metrics dict.  Every metric except
``wall_clock_s`` is a pure function of the code and the seed, so
unchanged code reproduces the document exactly.

**Steady-state measurement** (methodology ``steady-state/v1``): latency
and hit-ratio metrics are computed over the timeline windows from the
first mean-stable hit-ratio window onward (see
:func:`~repro.obs.timeline.steady_state_window`), so cold-cache warmup
no longer dilutes the numbers the regression gate compares.  Flash
totals that accumulate over the whole device lifetime
(``write_amplification``, ``gc_page_writes``) stay full-run.  The
methodology is recorded in the document, and
:func:`~repro.bench.regression.compare_benches` refuses to compare
documents measured under different methodologies.

**Host-time measurement**: ``wall_clock_s`` times *serving only* —
corpus/index/manager construction and static warmup are reported
separately as ``host.build_wall_s``.  Closed-loop scenarios additionally
run twice more (same seed, so the simulated work is byte-identical): a
profiled run (:class:`~repro.obs.Profiler`) yielding per-subsystem wall
shares, hot-op counts and ``wall_ns_per_op``, and a telemetry-off run
yielding the obs-tax fraction.  The result is the ``host`` block next to
``metrics``; :func:`~repro.bench.regression.compare_benches` gates
``host.wall_us_per_query`` with a 30% ratchet.

Document schema (``repro.bench/v1``)::

    {"schema": "repro.bench/v1", "suite": "smoke",
     "methodology": {"name": "steady-state/v1", ...},
     "scenarios": {"<name>": {"config": {...}, "metrics": {...},
                              "measurement": {...}, "host": {...}}}}

Open-loop scenarios additionally carry a ``blame`` block (wait
fraction, bottleneck, knee estimate, Little's-law self-check and
per-resource wait/service means from :mod:`repro.obs.blame`), gated by
``compare_benches`` alongside the simulated metrics.
"""

from __future__ import annotations

import contextlib
import gc
import json
import os
import re
import time

from repro.bench.scenarios import SUITES, BenchScenario

__all__ = ["BENCH_SCHEMA", "METHODOLOGY", "run_suite", "run_scenario",
           "write_bench", "load_bench", "next_bench_path"]

BENCH_SCHEMA = "repro.bench/v1"

#: How the metrics were measured; recorded in every document so the
#: regression gate can refuse cross-methodology comparisons.
#: Tolerances are looser than the :func:`steady_state_window` defaults
#: because smoke-scale windows hold only a handful of queries each, so
#: the per-window hit ratio carries ~0.1-0.2 of quantization noise on
#: top of the warmup trend the test is meant to detect.
METHODOLOGY = {
    "name": "steady-state/v1",
    "window_us": 100_000.0,
    "series": "hit_ratio",
    "stability_k": 5,
    "rel_tol": 0.3,
    "abs_tol": 0.1,
}

MB = 1024 * 1024

#: Stage-latency percentiles the document keeps per stage.
_STAGE_QS = (50.0, 99.0)

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


@contextlib.contextmanager
def _serving_gc():
    """GC discipline for a measured serve.

    The index, caches and FTL mappings built before serving are
    long-lived; leaving them in the collector's young generations makes
    every gen-0 pass re-scan a large static object graph (~15% of serve
    wall at smoke scale).  Collect once, freeze the survivors out of the
    collector, and disable cycle collection for the (bounded-allocation)
    serve loop.  Every measured run — telemetry-on, profiled and
    telemetry-off — serves under the same discipline, so the obs-tax
    ratio and run-to-run comparisons stay fair.
    """
    gc.collect()
    gc.freeze()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        gc.unfreeze()


def _ratio(counters: dict, name: str, hit_outcomes=("l1_hit", "l2_hit")):
    """Hit ratio over one ``cache_*_lookups_total`` counter family."""
    from repro.obs.timeline import parse_series_key

    hits = lookups = 0.0
    for key, v in counters.items():
        if not key.startswith(name + "{"):
            continue
        lookups += v
        _, tags = parse_series_key(key)
        if tags.get("outcome") in hit_outcomes:
            hits += v
    return (hits / lookups if lookups else 0.0), lookups


def run_scenario(scenario: BenchScenario, host_profile: bool = True) -> dict:
    """Run one scenario; returns its ``{"config", "metrics",
    "measurement", "host"}`` entry.

    ``host_profile=False`` skips the two extra serving runs behind the
    host block's profile and obs-tax fields (the block then carries only
    timing), for callers that just need the simulated metrics fast.
    """
    from repro.core.config import CacheConfig, Policy
    from repro.obs import Telemetry, merge_windows, steady_state_window
    from repro.workloads.retrieval import prepare_cached_manager, run_cached
    from repro.workloads.sweep import make_log_for, make_scaled_index

    build_t0 = time.perf_counter()
    index = make_scaled_index(scenario.docs)
    log = make_log_for(scenario.queries, seed=scenario.seed)
    cfg = CacheConfig.paper_split(
        scenario.mem_mb * MB, scenario.ssd_mb * MB,
        policy=Policy(scenario.policy),
        ttl_us=scenario.ttl_ms * 1000.0,
    )
    if scenario.arrival != "closed":
        return _run_open_scenario(scenario, index, log, cfg, build_t0)

    def build_manager(telemetry):
        return prepare_cached_manager(
            index, log, cfg,
            static_analyze_queries=scenario.queries // 2,
            seed=scenario.seed, telemetry=telemetry,
        )

    def serve(manager):
        return run_cached(index, log, cfg, seed=scenario.seed,
                          manager=manager)

    tel = Telemetry(trace=False, audit=False)
    timeline = tel.attach_timeline(window_us=METHODOLOGY["window_us"])
    manager = build_manager(tel)
    build_wall = time.perf_counter() - build_t0
    with _serving_gc():
        t0 = time.perf_counter()
        result = serve(manager)
        wall = time.perf_counter() - t0
    timeline.finish()
    host = _host_block(scenario, wall, build_wall, result.queries,
                       build_manager, serve) if host_profile else {
        "wall_us_per_query": wall * 1e6 / max(1, result.queries),
        "build_wall_s": build_wall,
    }

    windows = list(timeline.windows)
    steady = steady_state_window(
        windows, series=METHODOLOGY["series"], k=METHODOLOGY["stability_k"],
        rel_tol=METHODOLOGY["rel_tol"], abs_tol=METHODOLOGY["abs_tol"],
    )
    merged = merge_windows(windows, start_window=steady)
    measurement = {
        "steady_window": steady,
        "windows_total": len(windows),
        "windows_measured": sum(
            1 for w in windows if steady is None or w["window"] >= steady),
    }

    stats = result.stats
    # Full-run fallbacks, overridden below by steady-state numbers when
    # the windowed data supports them.
    metrics: dict = {
        "mean_response_ms": stats.mean_response_us / 1000.0,
        "throughput_qps": stats.throughput_qps,
        "result_hit_ratio": stats.result_hit_ratio,
        "list_hit_ratio": stats.list_hit_ratio,
        "combined_hit_ratio": stats.combined_hit_ratio,
        "ssd_erases": result.ssd_erases,
        "wall_clock_s": wall,
    }
    counters = merged["counters"]
    hists = merged["histograms"]

    response = None
    for key, h in hists.items():
        if not key.startswith("query_latency_us"):
            continue
        if response is None:
            response = h
        else:
            response.merge(h)
    if response is not None and response.count:
        metrics["mean_response_ms"] = response.sum / response.count / 1000.0
        metrics["throughput_qps"] = response.count / (response.sum / 1e6)
        metrics["p99_response_ms"] = response.percentile(99.0) / 1000.0

    r_ratio, r_lookups = _ratio(counters, "cache_result_lookups_total")
    l_ratio, l_lookups = _ratio(counters, "cache_list_lookups_total")
    if r_lookups:
        metrics["result_hit_ratio"] = r_ratio
    if l_lookups:
        metrics["list_hit_ratio"] = l_ratio
    if r_lookups + l_lookups:
        metrics["combined_hit_ratio"] = (
            r_ratio * r_lookups + l_ratio * l_lookups
        ) / (r_lookups + l_lookups)

    erases = counters.get("flash_erases_total{device=ssd-cache}")
    if erases is not None:
        metrics["ssd_erases"] = erases

    # Lifetime accumulators stay full-run: WA and GC totals only mean
    # something over the device's whole history.
    wa = tel.registry.get("flash_write_amplification", device="ssd-cache")
    if wa is not None:
        metrics["write_amplification"] = wa.value
    gc_writes = tel.registry.get("flash_gc_page_writes_total",
                                 device="ssd-cache")
    if gc_writes is not None:
        metrics["gc_page_writes"] = gc_writes.value

    from repro.obs.timeline import parse_series_key

    for key, inst in hists.items():
        name, tags = parse_series_key(key)
        if name != "stage_latency_us" or not inst.count:
            continue
        stage = tags["stage"]
        for q in _STAGE_QS:
            metrics[f"stage_{stage}_p{q:g}_us"] = inst.percentile(q)
    return {"config": scenario.to_dict(), "metrics": metrics,
            "measurement": measurement, "host": host}


def _host_block(scenario, wall, build_wall, queries,
                build_manager, serve) -> dict:
    """Measure where the serving wall time goes.

    Two extra serving runs with the scenario's seed: one under the
    profiler (manager built *outside* the capture, so only serving is
    attributed) and one with telemetry off (the obs tax).  The simulated
    work is identical in all three runs — the profiler observes, never
    perturbs — so only host-side numbers differ.
    """
    from repro.obs import Profiler, Telemetry

    host = {
        "wall_us_per_query": wall * 1e6 / max(1, queries),
        "build_wall_s": build_wall,
    }

    profiler = Profiler()
    profiled_manager = build_manager(Telemetry(trace=False, audit=False))
    with _serving_gc(), profiler.profile():
        serve(profiled_manager)
    summary = profiler.summary(top=5)
    host["subsystem_shares"] = {
        name: entry["share"] for name, entry in summary["subsystems"].items()
    }
    host["counters"] = summary["counters"]
    host["wall_ns_per_op"] = summary["wall_ns_per_op"]

    bare_manager = build_manager(None)
    with _serving_gc():
        t0 = time.perf_counter()
        serve(bare_manager)
        wall_off = time.perf_counter() - t0
    host["obs_tax_fraction"] = (
        max(0.0, (wall - wall_off) / wall) if wall > 0 else 0.0)
    return host


def _run_open_scenario(scenario: BenchScenario, index, log, cfg,
                       build_t0: float) -> dict:
    """Open-loop scenario: closed-loop warmup, then kernel-scheduled
    arrivals.  Response metrics include queueing delay by construction;
    saturation indicators (shed fraction, peak queue depth, bottleneck
    utilization) are first-class metrics so the gate catches capacity
    regressions, not just latency ones."""
    from repro.core.config import Policy
    from repro.core.manager import CacheManager, build_hierarchy_for
    from repro.obs import Telemetry
    from repro.workloads.openloop import (DiurnalArrivals, PoissonArrivals,
                                          run_open_loop)

    tel = Telemetry(trace=False, audit=False)
    timeline = tel.attach_timeline(window_us=METHODOLOGY["window_us"])
    # Counting-mode flight recorder (no out_dir): incident counts become
    # bench measurements without writing bundles into the results tree.
    from repro.obs import FlightRecorder

    flight = FlightRecorder(tel, out_dir=None,
                            config=scenario.to_dict()).arm()
    manager = CacheManager(cfg, build_hierarchy_for(cfg, index), index,
                           telemetry=tel)
    if cfg.policy is Policy.CBSLRU and cfg.uses_ssd:
        manager.warmup_static(log, analyze_queries=scenario.queries // 2)
    queries = list(log)
    warm = min(scenario.warmup_queries, max(0, len(queries) - 1))
    for query in queries[:warm]:
        manager.process_query(query)
    manager.stats.reset()
    if scenario.arrival == "poisson":
        arrivals = PoissonArrivals(scenario.rate_qps, seed=scenario.seed)
    elif scenario.arrival == "diurnal":
        arrivals = DiurnalArrivals(scenario.rate_qps, seed=scenario.seed)
    else:
        raise ValueError(f"unknown arrival {scenario.arrival!r}")
    build_wall = time.perf_counter() - build_t0
    with _serving_gc():
        t0 = time.perf_counter()
        result = run_open_loop(
            manager, queries[warm:], arrivals,
            concurrency=scenario.concurrency, max_queue=scenario.max_queue,
            label=scenario.name,
        )
        wall = time.perf_counter() - t0
    timeline.finish()
    incidents = flight.finish()
    rec = getattr(tel, "blame", None)
    blame_block = None
    if rec is not None and rec.admission is not None:
        # Conservation must hold once the kernel has drained; a broken
        # ledger here means the scenario, not the gate, is wrong.
        rec.admission.check_invariants()
        cap = rec.capacity(completed=result.completed)
        per = cap["per_resource"]
        wait = sum(rec.totals.get(name, (0, 0.0, 0.0))[1] for name in per)
        service = sum(rec.totals.get(name, (0, 0.0, 0.0))[2] for name in per)
        blame_block = {
            "wait_fraction": (wait / (wait + service)
                              if wait + service > 0 else 0.0),
            "bottleneck": cap["bottleneck"],
            "knee_qps": cap["knee_qps"],
            "little_law_max_rel_err": cap["little_law_max_rel_err"],
            "little_law_ok": cap["little_law_ok"],
            "per_resource": {
                name: {"utilization": e["utilization"],
                       "mean_wait_us": e["mean_wait_us"],
                       "mean_service_us": e["mean_service_us"]}
                for name, e in per.items()
            },
        }

    stats = manager.stats
    bottleneck = max(result.utilization, key=result.utilization.get,
                     default=None)
    metrics: dict = {
        "mean_response_ms": result.mean_response_us / 1000.0,
        "throughput_qps": result.throughput_qps,
        "p99_response_ms": result.p99_us / 1000.0,
        "p999_response_ms": result.p999_us / 1000.0,
        "mean_wait_ms": result.mean_wait_us / 1000.0,
        "reject_fraction": result.reject_fraction,
        "peak_queue_depth": float(max(
            result.peak_resource_depth.values(), default=0)),
        "bottleneck_utilization": (
            result.utilization[bottleneck] if bottleneck else 0.0),
        "result_hit_ratio": stats.result_hit_ratio,
        "list_hit_ratio": stats.list_hit_ratio,
        "combined_hit_ratio": stats.combined_hit_ratio,
        "wall_clock_s": wall,
    }
    measurement = {
        "arrival": scenario.arrival,
        "offered_qps": scenario.rate_qps,
        "warmup_queries": warm,
        "measured_queries": len(queries) - warm,
        "completed": result.completed,
        "rejected": result.rejected,
        "bottleneck": bottleneck,
        "windows_total": len(timeline.windows),
        "incidents": incidents,
    }
    if incidents:
        measurement["incident_triggers"] = sorted(
            {m["trigger"]["detector"] for m in flight.incidents})
    # Kernel tasks run on OS threads and cProfile is per-thread, so open
    # scenarios carry only the timing fields of the host block.
    host = {
        "wall_us_per_query": wall * 1e6 / max(1, result.completed),
        "build_wall_s": build_wall,
    }
    entry = {"config": scenario.to_dict(), "metrics": metrics,
             "measurement": measurement, "host": host}
    if blame_block is not None:
        entry["blame"] = blame_block
    return entry


def run_suite(suite: str = "smoke", progress=None,
              host_profile: bool = True) -> dict:
    """Run every scenario of ``suite``; returns the BENCH document."""
    try:
        scenarios = SUITES[suite]
    except KeyError:
        raise ValueError(
            f"unknown suite {suite!r}; choose from {sorted(SUITES)}"
        ) from None
    doc: dict = {"schema": BENCH_SCHEMA, "suite": suite,
                 "methodology": dict(METHODOLOGY), "scenarios": {}}
    for scenario in scenarios:
        if progress is not None:
            progress(scenario)
        doc["scenarios"][scenario.name] = run_scenario(
            scenario, host_profile=host_profile)
    return doc


def write_bench(doc: dict, path) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_bench(path) -> dict:
    """Load a BENCH document, validating the schema."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: not a {BENCH_SCHEMA} document")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        raise ValueError(f"{path}: no scenarios recorded")
    for name, entry in scenarios.items():
        for fld in ("config", "metrics"):
            if fld not in entry:
                raise ValueError(f"{path}: scenario {name!r} missing {fld!r}")
        if not entry["metrics"]:
            raise ValueError(f"{path}: scenario {name!r} has no metrics")
    return doc


def next_bench_path(directory=".") -> str:
    """The next free ``BENCH_<n>.json`` path (max existing + 1)."""
    highest = -1
    for fname in os.listdir(directory):
        m = _BENCH_RE.match(fname)
        if m:
            highest = max(highest, int(m.group(1)))
    return os.path.join(directory, f"BENCH_{highest + 1:04d}.json")
