"""Benchmark scenario and suite definitions.

A scenario is one deterministic cached-retrieval run (index scale, query
log, cache sizing, policy); a suite is the named set the harness runs.
``smoke`` is sized for CI (tens of seconds); ``full`` covers the three
policies at paper scale for local before/after comparisons.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["BenchScenario", "SUITES"]


@dataclass(frozen=True)
class BenchScenario:
    """One deterministic benchmark run."""

    name: str
    policy: str  # "lru" | "cblru" | "cbslru"
    docs: int
    queries: int
    mem_mb: int
    ssd_mb: int
    seed: int = 7
    ttl_ms: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)


#: CI-sized: every policy touches the SSD enough to exercise admission,
#: replacement and GC, but the whole suite stays fast.
SMOKE = (
    BenchScenario("lru-smoke", "lru", docs=200_000, queries=1_500,
                  mem_mb=4, ssd_mb=16),
    BenchScenario("cblru-smoke", "cblru", docs=200_000, queries=1_500,
                  mem_mb=4, ssd_mb=16),
    BenchScenario("cbslru-smoke", "cbslru", docs=200_000, queries=1_500,
                  mem_mb=4, ssd_mb=16),
)

#: Paper-scale: the Fig. 14/17 configuration, one run per policy.
FULL = (
    BenchScenario("lru-full", "lru", docs=1_000_000, queries=4_000,
                  mem_mb=16, ssd_mb=64),
    BenchScenario("cblru-full", "cblru", docs=1_000_000, queries=4_000,
                  mem_mb=16, ssd_mb=64),
    BenchScenario("cbslru-full", "cbslru", docs=1_000_000, queries=4_000,
                  mem_mb=16, ssd_mb=64),
    BenchScenario("cbslru-dynamic", "cbslru", docs=1_000_000, queries=4_000,
                  mem_mb=16, ssd_mb=64, ttl_ms=50.0),
)

SUITES: dict[str, tuple[BenchScenario, ...]] = {
    "smoke": SMOKE,
    "full": FULL,
}
