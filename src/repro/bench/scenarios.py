"""Benchmark scenario and suite definitions.

A scenario is one deterministic cached-retrieval run (index scale, query
log, cache sizing, policy); a suite is the named set the harness runs.
``smoke`` is sized for CI (tens of seconds); ``full`` covers the three
policies at paper scale for local before/after comparisons.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["BenchScenario", "SUITES"]


@dataclass(frozen=True)
class BenchScenario:
    """One deterministic benchmark run.

    ``arrival="closed"`` (default) is the seed's synchronous replay.
    ``"poisson"``/``"diurnal"`` run open-loop on the discrete-event
    kernel: ``rate_qps`` offered (peak for diurnal), ``concurrency``
    in flight, ``max_queue`` waiting, overflow shed.  Open-loop runs
    warm up closed-loop over ``warmup_queries`` first so the measured
    phase starts from a populated cache.
    """

    name: str
    policy: str  # "lru" | "cblru" | "cbslru"
    docs: int
    queries: int
    mem_mb: int
    ssd_mb: int
    seed: int = 7
    ttl_ms: float = 0.0
    arrival: str = "closed"  # "closed" | "poisson" | "diurnal"
    rate_qps: float = 0.0
    concurrency: int = 1
    max_queue: int = 64
    warmup_queries: int = 0

    def to_dict(self) -> dict:
        return asdict(self)


#: CI-sized: every policy touches the SSD enough to exercise admission,
#: replacement and GC, but the whole suite stays fast.
SMOKE = (
    BenchScenario("lru-smoke", "lru", docs=200_000, queries=1_500,
                  mem_mb=4, ssd_mb=16),
    BenchScenario("cblru-smoke", "cblru", docs=200_000, queries=1_500,
                  mem_mb=4, ssd_mb=16),
    BenchScenario("cbslru-smoke", "cbslru", docs=200_000, queries=1_500,
                  mem_mb=4, ssd_mb=16),
)

#: Paper-scale: the Fig. 14/17 configuration, one run per policy.
FULL = (
    BenchScenario("lru-full", "lru", docs=1_000_000, queries=4_000,
                  mem_mb=16, ssd_mb=64),
    BenchScenario("cblru-full", "cblru", docs=1_000_000, queries=4_000,
                  mem_mb=16, ssd_mb=64),
    BenchScenario("cbslru-full", "cbslru", docs=1_000_000, queries=4_000,
                  mem_mb=16, ssd_mb=64),
    BenchScenario("cbslru-dynamic", "cbslru", docs=1_000_000, queries=4_000,
                  mem_mb=16, ssd_mb=64, ttl_ms=50.0),
)

#: Open-loop saturation ladder at smoke scale.  The warm single-server
#: capacity there is ~65-70 q/s (HDD-bound), so the rungs sit clearly
#: below the knee (~60%), at the CI operating point (~80%), and past it
#: (~130%, where shed queries and queue buildup are the *expected*
#: outcome).  The diurnal rung sweeps through the knee twice per cycle.
SATURATION = (
    BenchScenario("sat-below-knee", "cbslru", docs=200_000, queries=1_200,
                  mem_mb=4, ssd_mb=16, arrival="poisson", rate_qps=40.0,
                  concurrency=8, max_queue=32, warmup_queries=400),
    BenchScenario("sat-at-knee", "cbslru", docs=200_000, queries=1_200,
                  mem_mb=4, ssd_mb=16, arrival="poisson", rate_qps=55.0,
                  concurrency=8, max_queue=32, warmup_queries=400),
    BenchScenario("sat-past-knee", "cbslru", docs=200_000, queries=1_200,
                  mem_mb=4, ssd_mb=16, arrival="poisson", rate_qps=90.0,
                  concurrency=8, max_queue=32, warmup_queries=400),
    BenchScenario("sat-diurnal", "cbslru", docs=200_000, queries=1_200,
                  mem_mb=4, ssd_mb=16, arrival="diurnal", rate_qps=70.0,
                  concurrency=8, max_queue=32, warmup_queries=400),
)

SUITES: dict[str, tuple[BenchScenario, ...]] = {
    "smoke": SMOKE,
    "full": FULL,
    "saturation": SATURATION,
}
