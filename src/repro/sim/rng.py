"""Seeded random number generation helpers.

Every stochastic component takes an explicit ``numpy.random.Generator`` so
that whole experiments are reproducible from a single integer seed, and so
independent subsystems (corpus, query log, trace noise) can draw from
independent streams derived from that seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts an integer seed, ``None`` (non-deterministic), or an existing
    generator (returned unchanged), so call sites can be liberal in what
    they accept.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one integer seed.

    Uses ``SeedSequence.spawn`` so the streams are statistically independent
    regardless of how many draws each consumer makes.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
