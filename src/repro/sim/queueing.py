"""FIFO queueing simulation for open-loop load analysis.

The retrieval drivers are closed-loop (one query at a time), which
measures pure service time.  A production index server sees an *arrival
process*: queries queue while the server is busy, and response time =
wait + service.  This module simulates a single FIFO server fed by
Poisson arrivals over a measured service-time sample — the standard way
to turn service-time distributions into latency-vs-load curves.

**Analytic reference.**  This post-hoc model is the closed-form /
trace-driven *reference* the emergent discrete-event kernel
(:mod:`repro.sim.kernel`) is validated against: feeding the kernel the
same arrival and service draws must reproduce this module's FIFO
timeline exactly, and on exponential service times the kernel's mean
wait must converge to :func:`mm1_mean_wait_us` (see
``tests/test_sim_kernel.py``).  Prefer the kernel for experiments — it
captures multi-resource contention this single-server model cannot.

Response-time percentiles come from a :class:`repro.obs.instruments.
Histogram` (2%-wide log buckets), the same instrument the telemetry
layer uses everywhere else, so open-loop tails are directly comparable
with per-stage telemetry and extend to p90/p999 without re-sorting the
sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.instruments import Histogram
from repro.sim.rng import make_rng

__all__ = ["QueueResult", "simulate_fifo_queue", "mm1_mean_wait_us"]

#: Bucket layout for response-time histograms: 2% relative resolution
#: from 1 us up — percentile error stays within one bucket width.
_HIST_LO_US = 1.0
_HIST_GROWTH = 1.02


@dataclass(frozen=True)
class QueueResult:
    """Outcome of one open-loop simulation at a fixed offered load."""

    offered_qps: float
    completed: int
    mean_response_us: float
    p50_us: float
    p90_us: float
    p95_us: float
    p99_us: float
    p999_us: float
    mean_wait_us: float
    utilization: float
    #: True when the queue kept growing to the end (offered > capacity)
    saturated: bool


def mm1_mean_wait_us(arrival_qps: float, mean_service_us: float) -> float:
    """Exact M/M/1 mean queueing delay Wq = rho / (mu - lambda).

    ``lambda`` is the arrival rate, ``mu = 1/E[S]`` the service rate.
    Diverges as rho -> 1; raises for rho >= 1 (no steady state).
    """
    if arrival_qps <= 0 or mean_service_us <= 0:
        raise ValueError("arrival rate and mean service time must be positive")
    lam = arrival_qps / 1e6  # arrivals per us
    mu = 1.0 / mean_service_us
    rho = lam / mu
    if rho >= 1.0:
        raise ValueError(f"unstable queue: rho = {rho:.3f} >= 1")
    return rho / (mu - lam)


def simulate_fifo_queue(
    service_times_us: np.ndarray,
    offered_qps: float,
    seed: int = 0,
    saturation_utilization: float = 0.97,
) -> QueueResult:
    """Simulate Poisson arrivals into a single FIFO server.

    ``service_times_us`` is consumed in order.  Saturation is flagged
    when the server is busy essentially the whole horizon (utilization
    above ``saturation_utilization``) — the backlog then grows without
    bound as the run extends.
    """
    service = np.asarray(service_times_us, dtype=np.float64)
    if service.size == 0:
        raise ValueError("need at least one service-time sample")
    if (service <= 0).any():
        raise ValueError("service times must be positive")
    if offered_qps <= 0:
        raise ValueError("offered_qps must be positive")

    rng = make_rng(seed)
    n = service.size
    interarrival_us = rng.exponential(1e6 / offered_qps, size=n)
    arrivals = np.cumsum(interarrival_us)

    start = np.empty(n, dtype=np.float64)
    end = np.empty(n, dtype=np.float64)
    prev_end = 0.0
    for i in range(n):
        start[i] = max(arrivals[i], prev_end)
        end[i] = start[i] + service[i]
        prev_end = end[i]

    response = end - arrivals
    wait = start - arrivals
    horizon = end[-1]
    busy = service.sum()
    utilization = float(min(1.0, busy / horizon))
    saturated = utilization > saturation_utilization

    hist = Histogram(lo=_HIST_LO_US, growth=_HIST_GROWTH)
    hist.record_many(response.tolist())
    p50, p90, p95, p99, p999 = hist.percentiles((50.0, 90.0, 95.0, 99.0, 99.9))

    return QueueResult(
        offered_qps=offered_qps,
        completed=n,
        mean_response_us=float(response.mean()),
        p50_us=p50,
        p90_us=p90,
        p95_us=p95,
        p99_us=p99,
        p999_us=p999,
        mean_wait_us=float(wait.mean()),
        utilization=utilization,
        saturated=saturated,
    )
