"""Virtual clock for discrete-time simulation.

The clock measures time in **microseconds** (float).  All device latency
parameters in :mod:`repro.flash`, :mod:`repro.hdd` and :mod:`repro.storage`
are expressed in the same unit, matching the paper's Table III (page read
32.725 us, page write 101.475 us, block erase 1500 us).
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically advancing simulated clock.

    The clock supports two styles of accounting:

    * :meth:`advance` — move the global "now" forward by a service time.
      Used by sequential (closed-loop) workload drivers where one query
      completes before the next begins, which matches the paper's
      single-threaded retrieval test.
    * :meth:`charge` — accumulate busy time on a named channel without
      moving "now".  Device models use this to attribute service time to
      a device even when the driver decides how times compose.
    """

    __slots__ = ("_now_us", "_busy_us")

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise ValueError(f"clock cannot start at negative time: {start_us}")
        self._now_us = float(start_us)
        self._busy_us: dict[str, float] = {}

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_us / 1000.0

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_us / 1e6

    def advance(self, delta_us: float) -> float:
        """Move simulated time forward by ``delta_us`` and return the new now.

        Negative deltas are rejected: simulated time never flows backwards.
        """
        if delta_us < 0:
            raise ValueError(f"cannot advance clock by negative time: {delta_us}")
        self._now_us += delta_us
        return self._now_us

    def charge(self, channel: str, delta_us: float) -> None:
        """Accumulate ``delta_us`` of busy time on ``channel``."""
        if delta_us < 0:
            raise ValueError(f"cannot charge negative time: {delta_us}")
        self._busy_us[channel] = self._busy_us.get(channel, 0.0) + delta_us

    def busy_us(self, channel: str) -> float:
        """Total busy time accumulated on ``channel`` (0.0 if never charged)."""
        return self._busy_us.get(channel, 0.0)

    def channels(self) -> tuple[str, ...]:
        """Names of all channels that have been charged."""
        return tuple(self._busy_us)

    def reset(self) -> None:
        """Zero the clock and all busy-time channels."""
        self._now_us = 0.0
        self._busy_us.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now_us={self._now_us:.3f}, channels={len(self._busy_us)})"
