"""Virtual clock for discrete-time simulation.

The clock measures time in **microseconds** (float).  All device latency
parameters in :mod:`repro.flash`, :mod:`repro.hdd` and :mod:`repro.storage`
are expressed in the same unit, matching the paper's Table III (page read
32.725 us, page write 101.475 us, block erase 1500 us).
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically advancing simulated clock.

    The clock supports two styles of accounting:

    * :meth:`advance` — move the global "now" forward by a service time.
      Used by sequential (closed-loop) workload drivers where one query
      completes before the next begins, which matches the paper's
      single-threaded retrieval test.
    * :meth:`charge` — accumulate busy time on a named channel without
      moving "now".  Device models use this to attribute service time to
      a device even when the driver decides how times compose.
    * :meth:`consume` — one *service* on a channel (advance + charge as a
      unit).  This is the seam the discrete-event kernel
      (:mod:`repro.sim.kernel`) hooks: with a kernel bound and the caller
      running inside a kernel task, the service is queued on the kernel's
      resource for that channel instead of advancing "now" inline, so
      concurrent queries contend for devices instead of serialising.

    Simulated time never flows backwards: :meth:`advance` rejects
    negative deltas and :meth:`advance_to` rejects absolute times in the
    past, so a mis-scheduled kernel event fails loudly instead of
    silently corrupting the timeline.
    """

    __slots__ = ("_now_us", "_busy_us", "_kernel")

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise ValueError(f"clock cannot start at negative time: {start_us}")
        self._now_us = float(start_us)
        self._busy_us: dict[str, float] = {}
        self._kernel = None

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_us / 1000.0

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_us / 1e6

    def advance(self, delta_us: float) -> float:
        """Move simulated time forward by ``delta_us`` and return the new now.

        Negative deltas are rejected: simulated time never flows backwards.
        """
        if delta_us < 0:
            raise ValueError(f"cannot advance clock by negative time: {delta_us}")
        self._now_us += delta_us
        return self._now_us

    def advance_to(self, t_us: float) -> float:
        """Jump to the absolute time ``t_us`` and return the new now.

        Rejects times in the past (monotonicity): an event scheduled
        before the current "now" is a scheduler bug, not a valid jump.
        """
        if t_us < self._now_us:
            raise ValueError(
                f"cannot move clock backwards: {t_us} < now {self._now_us}"
            )
        self._now_us = float(t_us)
        return self._now_us

    def bind_kernel(self, kernel) -> None:
        """Attach (or with ``None`` detach) a :class:`repro.sim.kernel.
        Kernel` that :meth:`consume` routes services through."""
        self._kernel = kernel

    @property
    def kernel(self):
        """The bound kernel, if any."""
        return self._kernel

    def consume(self, channel: str, delta_us: float,
                charge: bool = True) -> float:
        """Serve ``delta_us`` of work on ``channel``; returns the new now.

        Without a kernel (or outside any kernel task) this is exactly
        ``advance`` followed by ``charge`` — the closed-loop accounting
        every device used before the kernel existed.  Inside a kernel
        task the request queues on the channel's resource and the task
        blocks until service completes, so "now" may jump by queueing
        delay plus service time.  ``charge=False`` advances without
        attributing busy time (used for CPU work whose attribution is
        derived as the response-time residual).
        """
        k = self._kernel
        if k is not None and k.in_task():
            k.serve(channel, delta_us, charge=charge)
            return self._now_us
        self.advance(delta_us)
        if charge:
            self.charge(channel, delta_us)
        return self._now_us

    def charge(self, channel: str, delta_us: float) -> None:
        """Accumulate ``delta_us`` of busy time on ``channel``."""
        if delta_us < 0:
            raise ValueError(f"cannot charge negative time: {delta_us}")
        self._busy_us[channel] = self._busy_us.get(channel, 0.0) + delta_us

    def busy_us(self, channel: str) -> float:
        """Total busy time accumulated on ``channel`` (0.0 if never charged)."""
        return self._busy_us.get(channel, 0.0)

    def channels(self) -> tuple[str, ...]:
        """Names of all channels that have been charged."""
        return tuple(self._busy_us)

    def busy_snapshot(self) -> dict[str, float]:
        """All per-channel busy totals as one dict copy.

        Equivalent to ``{ch: clock.busy_us(ch) for ch in clock.channels()}``
        without the per-channel method calls — the telemetry layer takes
        one of these before every query.
        """
        return dict(self._busy_us)

    def busy_items(self):
        """Live ``(channel, busy_us)`` view for read-only iteration."""
        return self._busy_us.items()

    def reset(self) -> None:
        """Zero the clock and all busy-time channels."""
        self._now_us = 0.0
        self._busy_us.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now_us={self._now_us:.3f}, channels={len(self._busy_us)})"
