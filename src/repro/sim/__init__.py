"""Simulation kernel: virtual clock, seeded randomness, and counters.

Everything in :mod:`repro` runs on *virtual time*.  Device models charge
service time to a :class:`~repro.sim.clock.VirtualClock`; no wall-clock
sleeping ever happens.  This keeps experiments deterministic and lets a
laptop sweep the paper's parameter space in seconds.
"""

from repro.sim.clock import VirtualClock
from repro.sim.counters import Counter, CounterSet
from repro.sim.rng import make_rng, spawn_rngs

__all__ = ["VirtualClock", "Counter", "CounterSet", "make_rng", "spawn_rngs"]
