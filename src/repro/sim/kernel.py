"""Discrete-event concurrency kernel over the virtual clock.

The seed's serving path was strictly closed-loop: one query ran to
completion, advancing the shared :class:`~repro.sim.clock.VirtualClock`
inline at every device access, before the next query began.  Queueing
existed only as a post-hoc analytic model (:mod:`repro.sim.queueing`).
This module makes contention *emergent* instead: an event heap on the
virtual clock, cooperative query tasks, and per-resource service queues
with configurable parallelism (lanes) — NAND channels for the SSD, a
single-actuator seek queue for the HDD, CPU units for scoring.

**Execution model.**  A :class:`Task` is an arbitrary Python callable
whose call stack must be able to pause mid-flight (deep inside the cache
layers, at a device access).  Python generators cannot suspend a nested
call stack, so tasks run on OS threads with *strict handoff*: at any
instant exactly one thread — the kernel's event loop or a single task —
is runnable; every switch goes through a pair of events.  The scheduling
is therefore fully deterministic (the event heap orders by ``(time,
sequence)``), the GIL-protected state needs no locks, and the existing
cache/device code runs unchanged inside tasks.

**The yield point.**  Devices do not call the kernel directly.  They
call :meth:`VirtualClock.consume`, which — when a kernel is bound and
the caller is inside a kernel task — turns the service time into an I/O
request queued on the channel's :class:`Resource` and blocks the task
until the completion event fires.  Outside any task the same call
degenerates to ``advance`` + ``charge``, which is byte-for-byte the
seed's closed-loop accounting; `tests/test_core_parity.py` proves that
a single closed-loop task reproduces the golden fixtures exactly.

**Admission control.**  :class:`AdmissionControl` bounds concurrency the
way a real index server does: at most ``max_inflight`` queries running,
a bounded FIFO wait queue behind them, and arrivals beyond both shed
(counted as rejections).  At the end of a drained run
``completed + rejected == arrived`` holds exactly.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from dataclasses import dataclass

from repro._hot import HOT

__all__ = [
    "Kernel",
    "Resource",
    "Task",
    "AdmissionControl",
    "AdmissionStats",
    "KernelError",
]


class KernelError(RuntimeError):
    """An impossible schedule: past events, deadlock, misuse."""


class _Abort(BaseException):
    """Unwinds a task thread when the kernel aborts (never user-visible)."""


class Resource:
    """A service station: ``lanes`` parallel servers over one FIFO queue.

    ``lanes`` models device-level parallelism — the SSD exposes its NAND
    channel/plane count, the HDD exposes 1 (a single actuator: the queue
    *is* the seek queue), CPU resources expose their core count.
    """

    __slots__ = ("name", "lanes", "queue", "in_service", "served",
                 "busy_us", "peak_depth", "depth_area_us", "_area_t_us")

    def __init__(self, name: str, lanes: int = 1) -> None:
        if lanes < 1:
            raise ValueError(f"resource {name!r} needs >= 1 lane, got {lanes}")
        self.name = name
        self.lanes = lanes
        self.queue: deque = deque()
        self.in_service = 0
        self.served = 0
        self.busy_us = 0.0
        self.peak_depth = 0
        #: Time integral of :attr:`depth` (request-microseconds).  Kept by
        #: the kernel at every depth transition, so ``depth_area_us /
        #: horizon`` is the time-average number in system — an L
        #: measurement *independent* of per-request sojourn records, which
        #: is what makes the Little's-law self-check in
        #: :mod:`repro.obs.blame` a genuine cross-check.
        self.depth_area_us = 0.0
        self._area_t_us = 0.0

    @property
    def depth(self) -> int:
        """Requests currently waiting or in service."""
        return len(self.queue) + self.in_service

    def accrue_depth(self, now_us: float) -> None:
        """Extend the depth-time integral up to ``now_us`` at the current
        depth.  Called by the kernel *before* each depth change (and by
        observers before reading :attr:`depth_area_us`)."""
        if now_us > self._area_t_us:
            self.depth_area_us += self.depth * (now_us - self._area_t_us)
            self._area_t_us = now_us

    def utilization(self, horizon_us: float) -> float:
        """Lane-seconds busy over the horizon (1.0 = all lanes saturated)."""
        if horizon_us <= 0:
            return 0.0
        return min(1.0, self.busy_us / (horizon_us * self.lanes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Resource({self.name!r}, lanes={self.lanes}, "
                f"depth={self.depth}, served={self.served})")


@dataclass
class _Request:
    task: "Task"
    service_us: float
    charge: bool
    #: When the request joined the resource (queue or lane) — set by
    #: :meth:`Kernel.serve`; ``start_us`` is set when a lane picks it up.
    #: ``start_us - enqueue_us`` is therefore the *exact* queue wait.
    enqueue_us: float = 0.0
    start_us: float = 0.0


class Task:
    """One cooperative unit of work, pausable at any ``clock.consume``.

    Created via :meth:`Kernel.spawn`; the callable runs on a dedicated
    thread that only ever executes while the kernel has handed it
    control.  ``result``/``error`` are populated when ``done``.
    """

    __slots__ = ("kernel", "fn", "name", "done", "result", "error",
                 "thread", "_resume", "_abort", "_joiners", "_done_cbs")

    def __init__(self, kernel: "Kernel", fn, name: str) -> None:
        self.kernel = kernel
        self.fn = fn
        self.name = name
        self.done = False
        self.result = None
        self.error: BaseException | None = None
        self._resume = threading.Event()
        self._abort = False
        self._joiners: list[Task] = []
        self._done_cbs: list = []
        self.thread = threading.Thread(
            target=self._run, name=f"kernel-task-{name}", daemon=True
        )

    def add_done_callback(self, fn) -> None:
        """Run ``fn(task)`` at completion time (on the finishing task's
        context, before the kernel regains control)."""
        if self.done:
            fn(self)
        else:
            self._done_cbs.append(fn)

    def join(self):
        """Block the *calling task* until this task finishes.

        Returns the task's result.  Callable only from inside another
        kernel task (fan-out/merge patterns); once a run has drained,
        read ``result`` directly instead.
        """
        if self.done:
            return self.result
        k = self.kernel
        caller = k._require_current("Task.join")
        if caller is self:
            raise KernelError(f"task {self.name!r} cannot join itself")
        self._joiners.append(caller)
        blame = k.blame
        t0 = k.clock.now_us if blame is not None else 0.0
        k._block(caller)
        if blame is not None:
            blame.on_join(caller, self, t0, k.clock.now_us)
        return self.result

    # -- thread body -------------------------------------------------------

    def _run(self) -> None:
        self._resume.wait()
        self._resume.clear()
        if self._abort:
            return
        k = self.kernel
        try:
            self.result = self.fn()
        except _Abort:
            return
        except BaseException as exc:
            self.error = exc
        self.done = True
        try:
            k._finish(self)
        except _Abort:
            return
        except BaseException as exc:  # a done-callback failed
            if self.error is None:
                self.error = exc
        k._kernel_wake.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return f"Task({self.name!r}, {state})"


class Kernel:
    """The event loop: a heap of timed events driving cooperative tasks.

    Binding is automatic: constructing a kernel calls
    ``clock.bind_kernel(self)`` so every device sharing that clock routes
    its :meth:`~repro.sim.clock.VirtualClock.consume` services through
    the kernel whenever they run inside a task.
    """

    def __init__(self, clock) -> None:
        self.clock = clock
        self._heap: list = []
        self._seq = 0
        self._resources: dict[str, Resource] = {}
        self._current: Task | None = None
        self._kernel_wake = threading.Event()
        self._alive: list[Task] = []
        self._running = False
        #: Optional :class:`~repro.obs.blame.BlameRecorder` (or anything
        #: with its hook methods).  Purely observational: every hook fires
        #: after the schedule is already decided, so attaching one never
        #: changes simulated outcomes.
        self.blame = None
        clock.bind_kernel(self)

    # -- resources ---------------------------------------------------------

    def add_resource(self, name: str, lanes: int = 1) -> Resource:
        """Declare (or re-declare the lane count of) a service resource."""
        res = self._resources.get(name)
        if res is None:
            res = Resource(name, lanes)
            self._resources[name] = res
        else:
            if lanes < 1:
                raise ValueError(f"resource {name!r} needs >= 1 lane")
            res.lanes = lanes
        return res

    def resource(self, name: str) -> Resource:
        """The named resource, auto-created with one lane if unknown."""
        res = self._resources.get(name)
        if res is None:
            res = Resource(name, 1)
            self._resources[name] = res
        return res

    def resources(self) -> tuple[Resource, ...]:
        return tuple(self._resources.values())

    # -- scheduling --------------------------------------------------------

    @property
    def now_us(self) -> float:
        return self.clock.now_us

    def at(self, t_us: float, fn) -> None:
        """Schedule ``fn()`` at absolute time ``t_us``.

        Events in the past are rejected — the monotonicity contract the
        clock enforces on :meth:`~repro.sim.clock.VirtualClock.
        advance_to` applies at scheduling time too, so the bug surfaces
        where it was made.
        """
        if t_us < self.clock.now_us:
            raise KernelError(
                f"event scheduled in the past: t={t_us} < now "
                f"{self.clock.now_us}"
            )
        heapq.heappush(self._heap, (t_us, self._seq, fn))
        self._seq += 1

    def after(self, delay_us: float, fn) -> None:
        """Schedule ``fn()`` ``delay_us`` from now."""
        if delay_us < 0:
            raise KernelError(f"negative delay: {delay_us}")
        self.at(self.clock.now_us + delay_us, fn)

    def spawn(self, fn, name: str = "task", at_us: float | None = None) -> Task:
        """Create a task running ``fn()`` starting at ``at_us`` (now by
        default); returns the :class:`Task` immediately."""
        task = Task(self, fn, name)
        self._alive.append(task)
        if self.blame is not None:
            # Only a live, unfinished task counts as the parent: spawns
            # from admission-control done-callbacks run on the *finishing*
            # task's thread and are roots, not children.
            cur = self._current
            parent = (cur if cur is not None and not cur.done
                      and cur.thread is threading.current_thread() else None)
            self.blame.on_spawn(task, parent, self.clock.now_us)
        task.thread.start()
        self.at(self.clock.now_us if at_us is None else at_us,
                lambda: self._dispatch(task))
        return task

    def in_task(self) -> bool:
        """True when the calling thread is the currently-running task."""
        t = self._current
        return t is not None and t.thread is threading.current_thread()

    # -- blocking primitives (called from task threads) --------------------

    def serve(self, channel: str, service_us: float,
              charge: bool = True) -> None:
        """Queue ``service_us`` of work on ``channel``; blocks the calling
        task until the service completes (FIFO behind earlier requests
        when all lanes are busy)."""
        task = self._require_current("Kernel.serve")
        if service_us < 0:
            raise ValueError(f"negative service time: {service_us}")
        res = self.resource(channel)
        res.accrue_depth(self.clock.now_us)
        req = _Request(task, float(service_us), charge,
                       enqueue_us=self.clock.now_us)
        if res.in_service < res.lanes:
            self._start_service(res, req)
        else:
            res.queue.append(req)
        if res.depth > res.peak_depth:
            res.peak_depth = res.depth
        self._block(task)

    def sleep(self, delay_us: float) -> None:
        """Suspend the calling task for ``delay_us`` of simulated time."""
        task = self._require_current("Kernel.sleep")
        self.after(delay_us, lambda: self._dispatch(task))
        self._block(task)

    # -- engine ------------------------------------------------------------

    def run(self) -> int:
        """Process events until the heap drains; returns events handled.

        Raises the first task error encountered, or :class:`KernelError`
        if the heap drains while tasks are still blocked (deadlock).  On
        any error every live task thread is unwound before re-raising.
        """
        if self._running:
            raise KernelError("kernel is already running")
        if self.in_task():
            raise KernelError("Kernel.run cannot be called from a task")
        self._running = True
        handled = 0
        try:
            while self._heap:
                t_us, _, fn = heapq.heappop(self._heap)
                HOT.kernel_heap_pops += 1
                self.clock.advance_to(t_us)
                fn()
                handled += 1
            if self._alive:
                names = ", ".join(t.name for t in self._alive[:8])
                raise KernelError(
                    f"deadlock: {len(self._alive)} task(s) blocked with no "
                    f"pending events ({names})"
                )
        except BaseException:
            self._abort_all()
            raise
        finally:
            self._running = False
        return handled

    # -- internals ---------------------------------------------------------

    def _require_current(self, op: str) -> Task:
        t = self._current
        if t is None or t.thread is not threading.current_thread():
            raise KernelError(f"{op} must be called from inside a kernel task")
        return t

    def _dispatch(self, task: Task) -> None:
        """Hand control to ``task`` until it blocks or finishes."""
        self._current = task
        task._resume.set()
        self._kernel_wake.wait()
        self._kernel_wake.clear()
        self._current = None
        if task.done and task.error is not None:
            error, task.error = task.error, None
            raise error

    def _block(self, task: Task) -> None:
        """Called on the task thread: yield to the kernel and wait."""
        self._kernel_wake.set()
        task._resume.wait()
        task._resume.clear()
        if task._abort:
            raise _Abort()

    def _start_service(self, res: Resource, req: _Request) -> None:
        res.in_service += 1
        req.start_us = self.clock.now_us
        end_us = self.clock.now_us + req.service_us
        self.at(end_us, lambda: self._complete(res, req))

    def _complete(self, res: Resource, req: _Request) -> None:
        now = self.clock.now_us
        res.accrue_depth(now)
        res.in_service -= 1
        res.served += 1
        res.busy_us += req.service_us
        if req.charge:
            self.clock.charge(res.name, req.service_us)
        if self.blame is not None:
            self.blame.on_serve(req.task, res.name,
                                req.enqueue_us, req.start_us, now)
        if res.queue and res.in_service < res.lanes:
            self._start_service(res, res.queue.popleft())
        self._dispatch(req.task)

    def _finish(self, task: Task) -> None:
        """Completion bookkeeping, run on the finishing task's thread."""
        self._alive.remove(task)
        now = self.clock.now_us
        if self.blame is not None:
            self.blame.on_task_end(task, now)
        for joiner in task._joiners:
            self.at(now, lambda j=joiner: self._dispatch(j))
        task._joiners.clear()
        for cb in task._done_cbs:
            cb(task)
        task._done_cbs.clear()

    def _abort_all(self) -> None:
        """Unwind every live task thread (error/deadlock cleanup)."""
        for task in list(self._alive):
            task._abort = True
            task._resume.set()
        for task in list(self._alive):
            task.thread.join(timeout=5.0)
        self._alive.clear()
        self._heap.clear()
        self._kernel_wake.clear()
        self._current = None


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

@dataclass
class AdmissionStats:
    """Arrival accounting; after a drained run
    ``completed + rejected == arrived``."""

    arrived: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0


class AdmissionControl:
    """Bounded concurrency in front of a kernel.

    At most ``max_inflight`` jobs run at once; up to ``max_queue`` more
    wait FIFO behind them; anything beyond is shed immediately and
    counted in :attr:`stats.rejected <AdmissionStats.rejected>`.
    """

    def __init__(self, kernel: Kernel, max_inflight: int,
                 max_queue: int = 0) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue cannot be negative: {max_queue}")
        self.kernel = kernel
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.inflight = 0
        self.peak_depth = 0
        self.stats = AdmissionStats()
        self._waiting: deque = deque()
        self.blame = None

    @property
    def queue_depth(self) -> int:
        """Jobs waiting for an in-flight slot."""
        return len(self._waiting)

    @property
    def depth(self) -> int:
        """Jobs admitted but not finished (waiting + in flight)."""
        return len(self._waiting) + self.inflight

    def submit(self, fn, name: str = "job") -> bool:
        """Admit or shed one job; returns False when shed (rejected)."""
        self.stats.arrived += 1
        arrival = self.kernel.clock.now_us
        if self.inflight < self.max_inflight:
            self._start(fn, name, arrival)
        elif len(self._waiting) < self.max_queue:
            self._waiting.append((fn, name, arrival))
        else:
            self.stats.rejected += 1
            if self.blame is not None:
                self.blame.on_shed(name, arrival)
            return False
        if self.depth > self.peak_depth:
            self.peak_depth = self.depth
        return True

    def _start(self, fn, name: str, arrival_us: float) -> None:
        self.inflight += 1
        self.stats.admitted += 1
        task = self.kernel.spawn(fn, name=name)
        if self.blame is not None:
            self.blame.on_job_start(task, name, arrival_us,
                                    self.kernel.clock.now_us)
        task.add_done_callback(self._job_done)

    def _job_done(self, task: Task) -> None:
        self.inflight -= 1
        self.stats.completed += 1
        if self.blame is not None:
            self.blame.on_job_done(task, self.kernel.clock.now_us)
        if self._waiting and self.inflight < self.max_inflight:
            fn, name, arrival = self._waiting.popleft()
            self._start(fn, name, arrival)

    def check_invariants(self) -> None:
        """Conservation: every arrival is queued, in flight, done or shed."""
        s = self.stats
        accounted = s.completed + s.rejected + self.inflight + len(self._waiting)
        if accounted != s.arrived:
            raise AssertionError(
                f"admission accounting broken: completed {s.completed} + "
                f"rejected {s.rejected} + inflight {self.inflight} + "
                f"waiting {len(self._waiting)} != arrived {s.arrived}"
            )
        if s.admitted != s.completed + self.inflight:
            raise AssertionError(
                f"admitted {s.admitted} != completed {s.completed} + "
                f"inflight {self.inflight}"
            )
