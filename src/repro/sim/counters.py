"""Lightweight counters for simulation statistics.

Device models and the cache manager count events (reads, writes, erases,
hits, misses) on hot paths, so the implementation favours plain attribute
arithmetic over abstraction.
"""

from __future__ import annotations

from collections.abc import Iterator

__all__ = ["Counter", "CounterSet"]


class Counter:
    """A single named event counter with an optional accumulated value.

    ``count`` tracks how many times the event fired, ``total`` accumulates
    an associated quantity (bytes, microseconds, ...).  ``mean`` is the
    ratio, which device models use for e.g. mean access time.
    """

    __slots__ = ("name", "count", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0

    def add(self, value: float = 0.0, n: int = 1) -> None:
        """Record ``n`` events carrying aggregate quantity ``value``."""
        self.count += n
        self.total += value

    @property
    def mean(self) -> float:
        """Mean quantity per event, or 0.0 when no events were recorded."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, count={self.count}, total={self.total:.3f})"


class CounterSet:
    """A named collection of :class:`Counter` objects, created on demand."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}

    def __getitem__(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __iter__(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def __len__(self) -> int:
        return len(self._counters)

    def add(self, name: str, value: float = 0.0, n: int = 1) -> None:
        """Shorthand for ``self[name].add(value, n)``."""
        self[name].add(value, n)

    def count(self, name: str) -> int:
        """Event count for ``name`` (0 if the counter does not exist)."""
        counter = self._counters.get(name)
        return counter.count if counter else 0

    def total(self, name: str) -> float:
        """Accumulated quantity for ``name`` (0.0 if absent)."""
        counter = self._counters.get(name)
        return counter.total if counter else 0.0

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()

    def snapshot(self) -> dict[str, tuple[int, float]]:
        """Return ``{name: (count, total)}`` for reporting."""
        return {c.name: (c.count, c.total) for c in self._counters.values()}
