"""Query parsing: text in, :class:`~repro.engine.query.Query` out.

A minimal front-end matching what the paper's query preprocessor (Fig. 2)
does before the cache manager sees a query: tokenise, normalise case,
drop unknown words, deduplicate.
"""

from __future__ import annotations

import itertools

from repro.engine.lexicon import Lexicon
from repro.engine.query import Query

__all__ = ["QueryParser"]


class QueryParser:
    """Turns query strings into term-id queries against a lexicon."""

    def __init__(self, lexicon: Lexicon, max_terms: int = 16) -> None:
        if max_terms < 1:
            raise ValueError("max_terms must be >= 1")
        self.lexicon = lexicon
        self.max_terms = max_terms
        self._next_id = itertools.count()

    def parse(self, text: str, query_id: int | None = None) -> Query:
        """Parse ``text``; raises ValueError if no known term survives."""
        terms: list[int] = []
        seen: set[int] = set()
        for token in text.lower().split():
            token = token.strip(".,;:!?\"'()[]")
            if not token:
                continue
            try:
                term_id = self.lexicon.lookup(token)
            except KeyError:
                continue  # out-of-vocabulary tokens are dropped
            if term_id not in seen:
                seen.add(term_id)
                terms.append(term_id)
            if len(terms) >= self.max_terms:
                break
        if not terms:
            raise ValueError(f"no known terms in query {text!r}")
        if query_id is None:
            query_id = next(self._next_id)
        return Query(query_id=query_id, terms=tuple(terms), text=text)
