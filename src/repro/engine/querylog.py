"""Synthetic query log (substitute for the AOL user-ct collection).

Two levels of skew drive the paper's caching results:

* **query popularity** — repeated queries follow a Zipf law, which is what
  result caching exploits (Section II.D, [16][17]);
* **term popularity** — query terms are drawn with a skew correlated with,
  but not identical to, collection frequency (people search for popular
  words), which is what list caching exploits [18].

A log is a concrete sequence of :class:`~repro.engine.query.Query`
objects; distinct queries with the same key share a query id, so result
caches can key on either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.engine.corpus import zipf_mandelbrot_probs
from repro.engine.query import Query
from repro.sim.rng import make_rng

__all__ = ["QueryLogConfig", "QueryLog", "generate_query_log"]


@dataclass(frozen=True)
class QueryLogConfig:
    """Shape of the synthetic query stream."""

    num_queries: int = 50_000
    #: size of the distinct-query pool the stream samples from
    distinct_queries: int = 10_000
    vocab_size: int = 20_000
    #: Zipf exponent for query popularity (~0.8-1.0 measured on web logs)
    query_zipf_s: float = 0.9
    #: Zipf exponent for term selection within queries
    term_zipf_s: float = 1.0
    min_terms: int = 1
    max_terms: int = 4
    #: fraction of the stream that is brand-new, never-repeated queries.
    #: Web logs (AOL included) are roughly half singletons, which is what
    #: bounds result-cache hit ratios in practice [16][17].
    singleton_fraction: float = 0.3
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_queries <= 0 or self.distinct_queries <= 0:
            raise ValueError("num_queries and distinct_queries must be positive")
        if not 1 <= self.min_terms <= self.max_terms:
            raise ValueError("need 1 <= min_terms <= max_terms")
        if self.vocab_size < self.max_terms:
            raise ValueError("vocab_size too small for max_terms")
        if not 0.0 <= self.singleton_fraction <= 1.0:
            raise ValueError("singleton_fraction must be in [0, 1]")


class QueryLog:
    """A generated query stream plus the distinct-query pool behind it."""

    def __init__(self, config: QueryLogConfig, pool: list[Query], stream_ids: np.ndarray):
        self.config = config
        self.pool = pool
        self.stream_ids = stream_ids

    def __len__(self) -> int:
        return int(self.stream_ids.size)

    def __iter__(self) -> Iterator[Query]:
        for qid in self.stream_ids:
            yield self.pool[int(qid)]

    def __getitem__(self, i: int) -> Query:
        return self.pool[int(self.stream_ids[i])]

    def head(self, n: int) -> list[Query]:
        """First ``n`` queries of the stream."""
        return [self.pool[int(q)] for q in self.stream_ids[:n]]

    def term_frequencies(self) -> dict[int, int]:
        """How often each term appears in the stream (Fig. 3b's quantity)."""
        freqs: dict[int, int] = {}
        for qid in self.stream_ids:
            for t in self.pool[int(qid)].terms:
                freqs[t] = freqs.get(t, 0) + 1
        return freqs

    def distinct_fraction(self) -> float:
        """Fraction of stream entries that are first occurrences."""
        return len(np.unique(self.stream_ids)) / max(1, len(self))


def generate_query_log(config: QueryLogConfig | None = None) -> QueryLog:
    """Build a deterministic synthetic query log."""
    config = config or QueryLogConfig()
    rng = make_rng(config.seed)

    term_probs = zipf_mandelbrot_probs(config.vocab_size, config.term_zipf_s, 2.7)
    # Queries skew toward mid-popularity terms: ultra-frequent stopwords are
    # down-weighted (search engines drop them), so damp the head slightly.
    damp = np.minimum(1.0, np.arange(1, config.vocab_size + 1) / 25.0) ** 0.5
    term_pick = term_probs * damp
    term_pick /= term_pick.sum()

    def draw_query(qid: int, seen_keys: dict) -> Query:
        n = int(rng.integers(config.min_terms, config.max_terms + 1))
        terms = rng.choice(config.vocab_size, size=n, replace=False, p=term_pick)
        q = Query(query_id=qid, terms=tuple(int(t) for t in terms),
                  text=" ".join(f"term{t:05d}" for t in terms))
        key = q.key
        if key in seen_keys:
            # Reuse the earlier id so identical queries share a cache key.
            return Query(query_id=seen_keys[key], terms=q.terms, text=q.text)
        seen_keys[key] = qid
        return q

    seen_keys: dict[tuple[int, ...], int] = {}
    pool: list[Query] = [
        draw_query(qid, seen_keys) for qid in range(config.distinct_queries)
    ]

    pop = zipf_mandelbrot_probs(config.distinct_queries, config.query_zipf_s, 1.0)
    # Shuffle popularity ranks so popular queries are not systematically the
    # short ones generated first.
    perm = rng.permutation(config.distinct_queries)
    repeated = perm[rng.choice(config.distinct_queries,
                               size=config.num_queries, p=pop)]
    is_singleton = rng.random(config.num_queries) < config.singleton_fraction

    stream_ids = np.empty(config.num_queries, dtype=np.int64)
    for i in range(config.num_queries):
        if is_singleton[i]:
            q = draw_query(len(pool), seen_keys)
            # Key collisions with earlier queries keep the earlier id (the
            # "singleton" turns out to be a genuine repeat — rare).
            pool.append(q)
            stream_ids[i] = len(pool) - 1
        else:
            stream_ids[i] = repeated[i]
    return QueryLog(config, pool, stream_ids)
