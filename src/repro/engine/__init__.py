"""Search-engine substrate (the paper's Lucene 3.0.0 + enwiki testbed).

A statistically faithful stand-in for a Lucene index over 5 M Wikipedia
articles: a Zipf vocabulary with heavy-tailed posting-list sizes, posting
lists sorted by within-document term frequency (the *filtered vector
model* layout of Saraiva et al. [18] that makes partial traversal
effective), an on-disk layout mapping terms to LBA extents, a top-k query
processor with early termination, and an AOL-style query-log generator.
"""

from repro.engine.builder import MaterializedIndex, build_index
from repro.engine.corpus import CorpusConfig, CorpusStats, build_corpus_stats
from repro.engine.documents import Document, DocumentStore, generate_documents
from repro.engine.parser import QueryParser
from repro.engine.lexicon import Lexicon, TermInfo
from repro.engine.postings import POSTING_BYTES, PostingList, generate_posting_list
from repro.engine.layout import IndexLayout, TermExtent
from repro.engine.index import InvertedIndex
from repro.engine.query import Query
from repro.engine.querylog import QueryLogConfig, QueryLog, generate_query_log
from repro.engine.results import ResultEntry, SearchResult
from repro.engine.processor import QueryProcessor, QueryPlan, ListDemand, ProcessorCosts

__all__ = [
    "MaterializedIndex",
    "build_index",
    "Document",
    "DocumentStore",
    "generate_documents",
    "QueryParser",
    "CorpusConfig",
    "CorpusStats",
    "build_corpus_stats",
    "Lexicon",
    "TermInfo",
    "POSTING_BYTES",
    "PostingList",
    "generate_posting_list",
    "IndexLayout",
    "TermExtent",
    "InvertedIndex",
    "Query",
    "QueryLogConfig",
    "QueryLog",
    "generate_query_log",
    "ResultEntry",
    "SearchResult",
    "QueryProcessor",
    "QueryPlan",
    "ListDemand",
    "ProcessorCosts",
]
