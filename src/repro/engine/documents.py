"""Synthetic documents and the document store.

Most experiments need only corpus *statistics* (:mod:`repro.engine.corpus`),
but a downstream adopter indexing real data needs the full pipeline:
documents in, inverted index out.  This module generates token-level
documents with the same Zipf statistics the statistical path assumes, and
stores them behind a small interface an :class:`~repro.engine.builder.
IndexBuilder` can consume — so the two paths are cross-checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.engine.corpus import zipf_mandelbrot_probs
from repro.sim.rng import make_rng

__all__ = ["Document", "DocumentStore", "generate_documents"]


@dataclass(frozen=True)
class Document:
    """One document: an id and its token stream (term ids)."""

    doc_id: int
    tokens: np.ndarray  # int64 term ids, in occurrence order

    def __post_init__(self) -> None:
        if self.doc_id < 0:
            raise ValueError("doc_id cannot be negative")

    def __len__(self) -> int:
        return int(self.tokens.size)

    def term_frequencies(self) -> dict[int, int]:
        """term id -> tf within this document."""
        terms, counts = np.unique(self.tokens, return_counts=True)
        return {int(t): int(c) for t, c in zip(terms, counts)}


class DocumentStore:
    """An in-memory collection of documents with summary statistics."""

    def __init__(self, documents: list[Document]) -> None:
        ids = [d.doc_id for d in documents]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate doc_ids in store")
        self._docs = {d.doc_id: d for d in documents}
        self._order = sorted(self._docs)

    def __len__(self) -> int:
        return len(self._docs)

    def __iter__(self) -> Iterator[Document]:
        for doc_id in self._order:
            yield self._docs[doc_id]

    def get(self, doc_id: int) -> Document:
        try:
            return self._docs[doc_id]
        except KeyError:
            raise KeyError(f"no document {doc_id}") from None

    @property
    def total_tokens(self) -> int:
        return sum(len(d) for d in self._docs.values())

    def vocabulary(self) -> set[int]:
        vocab: set[int] = set()
        for doc in self._docs.values():
            vocab.update(int(t) for t in np.unique(doc.tokens))
        return vocab


def generate_documents(
    num_docs: int,
    vocab_size: int,
    avg_doc_len: int = 200,
    zipf_s: float = 1.0,
    zipf_q: float = 2.7,
    seed: int = 0,
) -> DocumentStore:
    """Generate Zipf-token documents with log-normal length variation."""
    if num_docs <= 0 or vocab_size <= 0 or avg_doc_len <= 0:
        raise ValueError("num_docs, vocab_size and avg_doc_len must be positive")
    rng = make_rng(seed)
    probs = zipf_mandelbrot_probs(vocab_size, zipf_s, zipf_q)
    lengths = np.maximum(
        1, rng.lognormal(mean=np.log(avg_doc_len), sigma=0.4, size=num_docs)
    ).astype(np.int64)
    docs = [
        Document(doc_id=i, tokens=rng.choice(vocab_size, size=int(lengths[i]),
                                              p=probs).astype(np.int64))
        for i in range(num_docs)
    ]
    return DocumentStore(docs)
