"""Document-at-a-time (DAAT) query processing.

The default processor models term-at-a-time traversal over
frequency-sorted lists.  Lucene itself evaluates document-at-a-time:
lists are walked in doc-id order, the *rarest* term drives candidate
generation, and frequent terms are probed via skip pointers only at
candidate documents (MaxScore-style pruning).  The I/O profile inverts:
rare lists are read fully, common lists barely — useful both as a second
engine model and as an ablation on how the cache policies respond to a
different utilization shape.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro._hot import HOT
from repro.engine.index import InvertedIndex
from repro.engine.postings import POSTING_BYTES, SKIP_INTERVAL
from repro.engine.processor import ListDemand, ProcessorCosts, QueryPlan
from repro.engine.query import Query
from repro.engine.results import DEFAULT_TOP_K, ResultEntry, SearchResult

__all__ = ["DaatQueryProcessor"]


class DaatQueryProcessor:
    """DAAT processor with the same interface as ``QueryProcessor``."""

    def __init__(
        self,
        index: InvertedIndex,
        costs: ProcessorCosts | None = None,
        top_k: int = DEFAULT_TOP_K,
        seed: int = 1234,
    ) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.index = index
        self.costs = costs or ProcessorCosts()
        self.top_k = top_k
        self._rng = np.random.default_rng(seed)

    # -- planning ----------------------------------------------------------

    def plan(self, query: Query) -> QueryPlan:
        """DAAT demand model.

        The rarest term's list drives the scan and is fully traversed;
        each other list is probed once per candidate (plus the skip
        blocks touched), so its traversal is
        ``min(df, candidates * SKIP_INTERVAL)`` postings.
        """
        infos = [self.index.lexicon.term(t) for t in query.key]
        min_df = min(info.doc_freq for info in infos)
        demands = []
        for info in infos:
            if info.doc_freq == min_df:
                postings = info.doc_freq  # the driving list: full scan
            else:
                wobble = float(self._rng.lognormal(mean=0.0, sigma=0.2))
                touched = int(min_df * SKIP_INTERVAL * wobble)
                postings = max(1, min(info.doc_freq, touched))
            needed = max(1, round(postings * info.list_bytes / info.doc_freq))
            demands.append(
                ListDemand(
                    term_id=info.term_id,
                    list_bytes=info.list_bytes,
                    needed_bytes=needed,
                    pu=needed / info.list_bytes,
                    postings=postings,
                )
            )
        return QueryPlan(query=query, demands=tuple(demands))

    def cpu_time_us(self, plan: QueryPlan) -> float:
        return (
            self.costs.fixed_us
            + self.costs.per_posting_us * plan.total_postings
            + self.costs.per_result_us * self.top_k
        )

    # -- execution -------------------------------------------------------------

    def execute(self, plan: QueryPlan, materialize: bool = False) -> ResultEntry:
        if materialize:
            results = self._score(plan)
        else:
            base = hash(plan.query.key) & 0x7FFFFFFF
            n_docs = self.index.num_docs
            k = min(self.top_k, n_docs)
            results = [
                SearchResult(doc_id=(base + 6007 * i) % n_docs, score=float(k - i))
                for i in range(k)
            ]
        return ResultEntry(
            query_key=plan.query.key, results=tuple(results), top_k=self.top_k
        )

    def _score(self, plan: QueryPlan) -> list[SearchResult]:
        """Exact DAAT scoring: candidates from the rarest list, the other
        lists probed by doc id."""
        key = plan.query.key
        lists = {}
        for term in key:
            plist = self.index.postings(term)
            order = np.argsort(plist.doc_ids, kind="stable")
            lists[term] = (plist.doc_ids[order], plist.tfs[order])
        driver = min(key, key=lambda t: lists[t][0].size)
        drv_docs, drv_tfs = lists[driver]
        idfs = {t: self.index.idf(t) for t in key}

        heap: list[tuple[float, int]] = []
        for pos in range(drv_docs.size):
            HOT.daat_advance_steps += 1
            doc = int(drv_docs[pos])
            score = float(np.sqrt(drv_tfs[pos])) * idfs[driver]
            for term in key:
                if term == driver:
                    continue
                docs, tfs = lists[term]
                HOT.daat_advance_steps += 1
                i = int(np.searchsorted(docs, doc))
                if i < docs.size and docs[i] == doc:
                    score += float(np.sqrt(tfs[i])) * idfs[term]
            if len(heap) < self.top_k:
                heapq.heappush(heap, (score, -doc))
            elif (score, -doc) > heap[0]:
                heapq.heapreplace(heap, (score, -doc))
        ranked = sorted(heap, key=lambda sd: (-sd[0], -sd[1]))
        return [SearchResult(doc_id=-d, score=s) for s, d in ranked]
