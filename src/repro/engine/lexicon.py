"""Term dictionary.

Maps term ids to their statistics and synthetic surface forms.  Term id 0
is the most probable term, mirroring a rank-ordered vocabulary dump.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.corpus import CorpusStats
from repro.engine.postings import POSTING_BYTES

__all__ = ["TermInfo", "Lexicon"]


@dataclass(frozen=True)
class TermInfo:
    """Per-term metadata exposed to the processor and cache manager."""

    term_id: int
    text: str
    doc_freq: int
    coll_freq: int
    #: full frequency-sorted posting list size on disk, in bytes
    list_bytes: int
    #: mean fraction of the list traversed during processing (PU)
    utilization: float


class Lexicon:
    """Vocabulary view over :class:`~repro.engine.corpus.CorpusStats`.

    ``list_sizes`` overrides the default raw on-disk sizes (df x 8 B) —
    the compressed-index path passes varbyte-encoded sizes here.
    """

    def __init__(self, stats: CorpusStats, list_sizes=None) -> None:
        self._stats = stats
        if list_sizes is not None and len(list_sizes) != stats.num_terms:
            raise ValueError("list_sizes length must match vocabulary size")
        self._list_sizes = list_sizes

    def __len__(self) -> int:
        return self._stats.num_terms

    def __contains__(self, term_id: int) -> bool:
        return 0 <= term_id < len(self)

    def term(self, term_id: int) -> TermInfo:
        if term_id not in self:
            raise KeyError(f"term id {term_id} not in lexicon of size {len(self)}")
        df = int(self._stats.doc_freqs[term_id])
        return TermInfo(
            term_id=term_id,
            text=self.spell(term_id),
            doc_freq=df,
            coll_freq=int(self._stats.coll_freqs[term_id]),
            list_bytes=self.list_bytes(term_id),
            utilization=float(self._stats.utilization[term_id]),
        )

    @staticmethod
    def spell(term_id: int) -> str:
        """Deterministic synthetic surface form, e.g. ``term00042``."""
        return f"term{term_id:05d}"

    def lookup(self, text: str) -> int:
        """Inverse of :meth:`spell`; raises KeyError on unknown forms."""
        if not text.startswith("term"):
            raise KeyError(f"unknown term {text!r}")
        try:
            term_id = int(text[4:])
        except ValueError:
            raise KeyError(f"unknown term {text!r}") from None
        if term_id not in self:
            raise KeyError(f"unknown term {text!r}")
        return term_id

    def list_bytes(self, term_id: int) -> int:
        """On-disk posting-list size in bytes."""
        if term_id not in self:
            raise KeyError(f"term id {term_id} out of range")
        if self._list_sizes is not None:
            return int(self._list_sizes[term_id])
        return int(self._stats.doc_freqs[term_id]) * POSTING_BYTES

    def utilization(self, term_id: int) -> float:
        if term_id not in self:
            raise KeyError(f"term id {term_id} out of range")
        return float(self._stats.utilization[term_id])
