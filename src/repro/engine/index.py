"""The inverted index: lexicon + layout + lazily materialised postings.

The index is the substrate under everything: the cache manager asks it for
list sizes and locations, the processor asks it for posting data, and the
trace generator asks it for extents.  Posting lists are synthesised on
demand from (seed, term_id) and memoised in a bounded cache, so a
5 M-document-scale index never has to exist in memory at once.
"""

from __future__ import annotations

from collections import OrderedDict

import math

from repro.engine.corpus import CorpusConfig, CorpusStats, build_corpus_stats
from repro.engine.layout import IndexLayout
from repro.engine.lexicon import Lexicon
from repro.engine.postings import PostingList, generate_posting_list

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """A queryable synthetic inverted index."""

    def __init__(
        self,
        corpus: CorpusConfig | CorpusStats | None = None,
        chunk_bytes: int = 128 * 1024,
        postings_cache_size: int = 512,
        compressed: bool = False,
    ) -> None:
        if corpus is None:
            corpus = build_corpus_stats()
        elif isinstance(corpus, CorpusConfig):
            corpus = build_corpus_stats(corpus)
        self.stats = corpus
        self.compressed = compressed
        sizes = None
        if compressed:
            from repro.engine.codec import estimate_compressed_list_bytes

            sizes = estimate_compressed_list_bytes(
                corpus.doc_freqs, corpus.config.num_docs
            )
        self.lexicon = Lexicon(corpus, list_sizes=sizes)
        self.layout = IndexLayout(corpus, chunk_bytes=chunk_bytes,
                                  sizes_bytes=sizes)
        if postings_cache_size < 1:
            raise ValueError("postings_cache_size must be >= 1")
        self._postings_cache: OrderedDict[int, PostingList] = OrderedDict()
        self._postings_cache_size = postings_cache_size

    @property
    def num_docs(self) -> int:
        return self.stats.config.num_docs

    @property
    def num_terms(self) -> int:
        return self.stats.num_terms

    @property
    def index_bytes(self) -> int:
        """Total on-disk size of all posting lists."""
        return self.layout.total_bytes

    def postings(self, term_id: int) -> PostingList:
        """Materialise (or recall) the posting list of ``term_id``."""
        cached = self._postings_cache.get(term_id)
        if cached is not None:
            self._postings_cache.move_to_end(term_id)
            return cached
        if not 0 <= term_id < self.num_terms:
            raise KeyError(f"term id {term_id} out of range")
        df = int(self.stats.doc_freqs[term_id])
        plist = generate_posting_list(
            term_id, df, self.num_docs, seed=self.stats.config.seed
        )
        self._postings_cache[term_id] = plist
        if len(self._postings_cache) > self._postings_cache_size:
            self._postings_cache.popitem(last=False)
        return plist

    def idf(self, term_id: int) -> float:
        """Lucene-style idf: 1 + ln(N / (df + 1))."""
        df = int(self.stats.doc_freqs[term_id])
        return 1.0 + math.log(self.num_docs / (df + 1))

    def describe(self) -> str:
        cfg = self.stats.config
        return (
            f"InvertedIndex(docs={cfg.num_docs:,}, terms={cfg.vocab_size:,}, "
            f"index={self.index_bytes / 1e6:.1f} MB)"
        )
