"""Index construction from documents.

The inverse of the statistical shortcut: consume a
:class:`~repro.engine.documents.DocumentStore` token by token and emit a
:class:`MaterializedIndex` with *exact* posting lists in the
frequency-sorted layout.  The result quacks like
:class:`~repro.engine.index.InvertedIndex` (``lexicon``, ``layout``,
``postings``, ``idf``), so the processor, cache manager and trace tools
work on built indexes unchanged.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.corpus import CorpusConfig, CorpusStats
from repro.engine.documents import DocumentStore
from repro.engine.layout import IndexLayout
from repro.engine.lexicon import Lexicon
from repro.engine.postings import PostingList

__all__ = ["MaterializedIndex", "build_index"]


class MaterializedIndex:
    """An inverted index whose posting lists are held fully in memory.

    Interface-compatible with :class:`~repro.engine.index.InvertedIndex`
    for everything the rest of the system touches.
    """

    def __init__(
        self,
        stats: CorpusStats,
        postings: dict[int, PostingList],
        chunk_bytes: int = 128 * 1024,
        compressed: bool = False,
    ) -> None:
        self.stats = stats
        self.compressed = compressed
        sizes = None
        if compressed:
            from repro.engine.codec import encoded_size

            sizes = np.maximum(1, np.array(
                [encoded_size(postings[t]) if t in postings else 1
                 for t in range(stats.num_terms)],
                dtype=np.int64,
            ))
        self.lexicon = Lexicon(stats, list_sizes=sizes)
        self.layout = IndexLayout(stats, chunk_bytes=chunk_bytes,
                                  sizes_bytes=sizes)
        self._postings = postings

    @property
    def num_docs(self) -> int:
        return self.stats.config.num_docs

    @property
    def num_terms(self) -> int:
        return self.stats.num_terms

    @property
    def index_bytes(self) -> int:
        return self.layout.total_bytes

    def postings(self, term_id: int) -> PostingList:
        if not 0 <= term_id < self.num_terms:
            raise KeyError(f"term id {term_id} out of range")
        plist = self._postings.get(term_id)
        if plist is None:
            return PostingList(
                term_id,
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int32),
            )
        return plist

    def idf(self, term_id: int) -> float:
        df = int(self.stats.doc_freqs[term_id])
        return 1.0 + math.log(self.num_docs / (df + 1))

    def describe(self) -> str:
        cfg = self.stats.config
        return (
            f"MaterializedIndex(docs={cfg.num_docs:,}, terms={cfg.vocab_size:,}, "
            f"index={self.index_bytes / 1e6:.1f} MB)"
        )


def build_index(
    store: DocumentStore,
    vocab_size: int | None = None,
    utilization_seed: int = 0,
    chunk_bytes: int = 128 * 1024,
    compressed: bool = False,
) -> MaterializedIndex:
    """Build an exact inverted index from a document store.

    Posting lists come out frequency-sorted (descending tf, ascending doc
    id) — the filtered-vector-model layout the paper's selection policy
    assumes.  ``doc_freqs``/``coll_freqs`` are exact counts; the
    utilization model (a query-behaviour property, not a collection
    property) is synthesised the same way the statistical path does.

    Terms of the vocabulary absent from the collection keep df = 1
    placeholders (downstream size arithmetic assumes non-empty lists)
    while their posting lists are empty.
    """
    if len(store) == 0:
        raise ValueError("cannot build an index from an empty store")
    if vocab_size is None:
        vocab_size = max(store.vocabulary()) + 1

    # Accumulate (term -> [(tf, doc_id)]) exactly.
    accum: dict[int, list[tuple[int, int]]] = {}
    num_docs = 0
    total_tokens = 0
    for doc in store:
        num_docs += 1
        total_tokens += len(doc)
        for term, tf in doc.term_frequencies().items():
            accum.setdefault(term, []).append((tf, doc.doc_id))

    doc_freqs = np.ones(vocab_size, dtype=np.int64)
    coll_freqs = np.ones(vocab_size, dtype=np.int64)
    postings: dict[int, PostingList] = {}
    for term, pairs in accum.items():
        if term >= vocab_size:
            raise ValueError(f"document term {term} exceeds vocab_size {vocab_size}")
        pairs.sort(key=lambda p: (-p[0], p[1]))
        tfs = np.array([tf for tf, _ in pairs], dtype=np.int32)
        doc_ids = np.array([d for _, d in pairs], dtype=np.int64)
        postings[term] = PostingList(term, doc_ids, tfs)
        doc_freqs[term] = len(pairs)
        coll_freqs[term] = int(tfs.sum())

    # Term probabilities from exact collection frequencies.
    probs = coll_freqs / coll_freqs.sum()

    # Utilization: same behavioural model as build_corpus_stats.
    rng = np.random.default_rng(utilization_seed)
    length_rank = np.argsort(np.argsort(-doc_freqs))
    frac = length_rank / max(1, vocab_size - 1)
    mean_u = 0.22 + 0.68 * frac
    a = np.maximum(1e-3, mean_u * 3.0)
    b = np.maximum(1e-3, (1.0 - mean_u) * 3.0)
    utilization = np.clip(rng.beta(a, b), 0.02, 1.0)
    utilization[doc_freqs <= 16] = 1.0

    max_doc_id = max(d.doc_id for d in store)
    config = CorpusConfig(
        num_docs=max_doc_id + 1,
        vocab_size=vocab_size,
        avg_doc_len=max(1, total_tokens // num_docs),
        seed=utilization_seed,
    )
    stats = CorpusStats(
        config=config,
        term_probs=probs,
        doc_freqs=doc_freqs,
        coll_freqs=coll_freqs,
        utilization=utilization,
    )
    return MaterializedIndex(stats, postings, chunk_bytes=chunk_bytes,
                             compressed=compressed)
