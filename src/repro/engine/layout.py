"""On-disk index layout: term id -> LBA extent on the index store.

Lays posting lists out contiguously in term-id order (Lucene writes its
.frq/.prx files term by term), aligned to 512 B sectors.  The layout is
what turns the processor's logical list reads into the wide-scatter LBA
pattern of Fig. 1: consecutive query terms live far apart, and skip reads
jump within one extent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.corpus import CorpusStats
from repro.engine.postings import POSTING_BYTES

__all__ = ["TermExtent", "IndexLayout"]

SECTOR_BYTES = 512


@dataclass(frozen=True)
class TermExtent:
    """Contiguous on-disk location of one term's posting list."""

    term_id: int
    lba: int
    nbytes: int

    @property
    def sectors(self) -> int:
        return -(-self.nbytes // SECTOR_BYTES)


class IndexLayout:
    """Sector-aligned extents for every posting list.

    Parameters
    ----------
    stats:
        Corpus statistics providing per-term list sizes.
    base_lba:
        First sector of the index region (lets the same device host
        several segments).
    chunk_bytes:
        I/O granularity for partial list reads; the paper divides lists
        at flash-block granularity (128 KB).
    """

    def __init__(
        self,
        stats: CorpusStats,
        base_lba: int = 0,
        chunk_bytes: int = 128 * 1024,
        sizes_bytes=None,
    ) -> None:
        if chunk_bytes <= 0 or chunk_bytes % SECTOR_BYTES:
            raise ValueError("chunk_bytes must be a positive multiple of 512")
        self.chunk_bytes = chunk_bytes
        if sizes_bytes is None:
            sizes = stats.doc_freqs * POSTING_BYTES
        else:
            sizes = np.asarray(sizes_bytes, dtype=np.int64)
            if sizes.shape != stats.doc_freqs.shape:
                raise ValueError("sizes_bytes length must match vocabulary size")
            if (sizes <= 0).any():
                raise ValueError("sizes_bytes must be positive")
        sectors = -(-sizes // SECTOR_BYTES)
        starts = np.concatenate([[0], np.cumsum(sectors)[:-1]]) + base_lba
        self._lbas = starts.astype(np.int64)
        self._sizes = sizes.astype(np.int64)
        self.total_sectors = int(sectors.sum())
        self.base_lba = base_lba

    def __len__(self) -> int:
        return int(self._lbas.size)

    @property
    def total_bytes(self) -> int:
        """Total on-disk index size."""
        return int(self._sizes.sum())

    def extent(self, term_id: int) -> TermExtent:
        if not 0 <= term_id < len(self):
            raise KeyError(f"term id {term_id} out of range")
        return TermExtent(term_id, int(self._lbas[term_id]), int(self._sizes[term_id]))

    def chunk_reads(self, term_id: int, needed_bytes: int, skip: bool = True) -> list[tuple[int, int]]:
        """The (lba, nbytes) device reads for the traversed part of a list.

        A traversal that needs ``needed_bytes`` of the frequency-sorted
        prefix reads whole chunks.  With ``skip=True`` the accesses mimic
        Lucene's skip-list behaviour: the first chunk is always read, and
        later chunks are issued as separate (non-coalesced) requests —
        producing the "skipped reads" of Section III.
        """
        ext = self.extent(term_id)
        needed = max(1, min(needed_bytes, ext.nbytes))
        n_chunks = -(-needed // self.chunk_bytes)
        reads: list[tuple[int, int]] = []
        for i in range(n_chunks):
            off = i * self.chunk_bytes
            size = min(self.chunk_bytes, ext.nbytes - off)
            if size <= 0:
                break
            reads.append((ext.lba + off // SECTOR_BYTES, size))
        if not skip and len(reads) > 1:
            # Coalesce into one sequential read.
            total = sum(sz for _, sz in reads)
            reads = [(ext.lba, total)]
        return reads
