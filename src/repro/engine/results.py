"""Search results and result-cache entries.

The paper caches the complete top-K result page of a query: K = 50
documents of ~400 B each (URL, snippet, date, ...), so one result entry is
~20 KB — small and near-constant, which is why result entries get the
fixed-length cache treatment (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

__all__ = ["SearchResult", "ResultEntry", "DEFAULT_TOP_K", "DOC_SUMMARY_BYTES"]

DEFAULT_TOP_K = 50
DOC_SUMMARY_BYTES = 400


class SearchResult(NamedTuple):
    """One scored document.

    A named tuple rather than a dataclass: result assembly builds
    ``top_k`` of these per computed query, and tuple construction keeps
    that off the profile while staying immutable.
    """

    doc_id: int
    score: float


@dataclass(frozen=True)
class ResultEntry:
    """The cached top-K answer to one query."""

    query_key: tuple[int, ...]
    results: tuple[SearchResult, ...] = field(repr=False)
    top_k: int = DEFAULT_TOP_K

    @property
    def nbytes(self) -> int:
        """Serialized size: one summary record per requested slot.

        The paper treats result entries as fixed-length (~20 KB for K=50),
        so size is K * 400 B regardless of how many hits actually scored.
        """
        return self.top_k * DOC_SUMMARY_BYTES

    def __len__(self) -> int:
        return len(self.results)
