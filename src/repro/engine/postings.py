"""Posting lists in the filtered-vector-model layout.

Each posting is (doc id, term frequency).  Lists are stored sorted by
**descending tf** — the frequency-sorted layout of Saraiva et al. [18]
the paper builds on — so a prefix of the list contains the documents where
the term matters most, and early termination can stop after a fraction of
the list (the utilization rate PU).

Skip pointers are kept every ``SKIP_INTERVAL`` postings, giving the
skip-order read pattern Section III observes in Lucene.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["POSTING_BYTES", "SKIP_INTERVAL", "PostingList", "generate_posting_list"]

#: on-disk bytes per posting: 4 B doc id + 2 B tf + 2 B amortised skip data
POSTING_BYTES = 8

#: postings between consecutive skip pointers (Lucene 3.x default is 16)
SKIP_INTERVAL = 16


@dataclass(frozen=True)
class PostingList:
    """An immutable frequency-sorted posting list."""

    term_id: int
    doc_ids: np.ndarray  # int64, aligned with tfs
    tfs: np.ndarray      # int32, non-increasing

    def __post_init__(self) -> None:
        if self.doc_ids.shape != self.tfs.shape:
            raise ValueError("doc_ids and tfs must be parallel arrays")
        if self.tfs.size and (np.diff(self.tfs) > 0).any():
            raise ValueError("tfs must be sorted non-increasing (frequency-sorted)")

    def __len__(self) -> int:
        return int(self.doc_ids.size)

    @property
    def nbytes(self) -> int:
        """On-disk size (the quantity plotted in Fig. 3b)."""
        return len(self) * POSTING_BYTES

    def prefix(self, fraction: float) -> "PostingList":
        """The first ``fraction`` of the list (what early termination reads)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        n = int(round(len(self) * fraction))
        n = max(1, n) if len(self) else 0
        return PostingList(self.term_id, self.doc_ids[:n], self.tfs[:n])

    def skip_offsets(self) -> np.ndarray:
        """Byte offsets of the skip entry points within the list."""
        n_skips = len(self) // SKIP_INTERVAL
        return np.arange(1, n_skips + 1) * (SKIP_INTERVAL * POSTING_BYTES)


def generate_posting_list(
    term_id: int,
    doc_freq: int,
    num_docs: int,
    seed: int,
) -> PostingList:
    """Deterministically synthesise a term's posting list.

    Doc ids are a uniform sample of the collection; tf values follow a
    shifted geometric distribution (most occurrences are 1-3, rare spikes),
    then the list is sorted by descending tf with ascending-doc-id
    tie-break, matching the frequency-sorted layout.

    The (term_id, seed) pair fully determines the output, so lists can be
    dropped and regenerated at will (lazy materialisation).
    """
    if doc_freq < 0:
        raise ValueError("doc_freq cannot be negative")
    if doc_freq > num_docs:
        raise ValueError(f"doc_freq {doc_freq} exceeds num_docs {num_docs}")
    rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(term_id,)))
    if doc_freq == 0:
        return PostingList(
            term_id, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int32)
        )
    if doc_freq > num_docs // 2:
        doc_ids = rng.permutation(num_docs)[:doc_freq].astype(np.int64)
    else:
        # Oversample + unique is far cheaper than choice(replace=False)
        # for sparse lists; top up in the rare shortfall case.
        cand = np.unique(rng.integers(0, num_docs, size=int(doc_freq * 1.3) + 8))
        while cand.size < doc_freq:
            extra = rng.integers(0, num_docs, size=doc_freq)
            cand = np.unique(np.concatenate([cand, extra]))
        doc_ids = rng.permutation(cand)[:doc_freq].astype(np.int64)
    tfs = (1 + rng.geometric(p=0.45, size=doc_freq)).astype(np.int32)
    order = np.lexsort((doc_ids, -tfs))
    return PostingList(term_id, doc_ids[order], tfs[order])
