"""Synthetic corpus statistics.

Substitutes the paper's enwiki-20090805 collection.  We never materialise
documents: the cache policies depend only on collection *statistics* —
term probabilities (Zipf), document frequencies, posting-list sizes and
utilization rates — so those are generated directly, vectorised, from a
seed.  Posting *contents* are synthesised lazily per term
(:mod:`repro.engine.postings`) for the examples that score real queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import make_rng

__all__ = ["CorpusConfig", "CorpusStats", "build_corpus_stats"]


@dataclass(frozen=True)
class CorpusConfig:
    """Shape parameters of the synthetic collection.

    Defaults give a laptop-scale collection with the same distributional
    shape as the paper's 5 M-document enwiki index; ``num_docs`` is the
    sweep axis of Figs. 15-17.
    """

    num_docs: int = 100_000
    vocab_size: int = 20_000
    avg_doc_len: int = 200
    #: Zipf exponent of the term-probability distribution (~1 for English).
    zipf_s: float = 1.0
    #: Zipf shift (Mandelbrot q) flattening the very head.
    zipf_q: float = 2.7
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_docs <= 0 or self.vocab_size <= 0 or self.avg_doc_len <= 0:
            raise ValueError("num_docs, vocab_size and avg_doc_len must be positive")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")

    @classmethod
    def paper_scale(cls, num_docs: int = 1_000_000, seed: int = 42) -> "CorpusConfig":
        """A collection whose hot lists are multi-megabyte, like enwiki.

        The paper's policies quantise SSD-cached prefixes to 128 KB flash
        blocks, which only pays off when frequently-queried lists span
        many blocks — true at enwiki scale (5 M docs).  This preset keeps
        that property at laptop-simulation sizes.
        """
        return cls(num_docs=num_docs, vocab_size=50_000, avg_doc_len=300, seed=seed)


@dataclass(frozen=True)
class CorpusStats:
    """Vectorised per-term statistics; index = term id (0 = most probable)."""

    config: CorpusConfig
    #: per-token probability of each term (sums to 1)
    term_probs: np.ndarray
    #: document frequency (number of docs containing the term)
    doc_freqs: np.ndarray
    #: collection frequency (total occurrences)
    coll_freqs: np.ndarray
    #: base utilization rate of the frequency-sorted list (Fig. 3a's quantity)
    utilization: np.ndarray

    @property
    def num_terms(self) -> int:
        return int(self.term_probs.shape[0])

    @property
    def total_postings(self) -> int:
        return int(self.doc_freqs.sum())

    def validate(self) -> None:
        """Internal-consistency checks used by tests."""
        if not np.isclose(self.term_probs.sum(), 1.0):
            raise AssertionError("term_probs must sum to 1")
        if (self.doc_freqs < 1).any() or (self.doc_freqs > self.config.num_docs).any():
            raise AssertionError("doc_freqs out of [1, num_docs]")
        if (self.coll_freqs < self.doc_freqs).any():
            raise AssertionError("coll_freqs must be >= doc_freqs")
        if ((self.utilization <= 0) | (self.utilization > 1)).any():
            raise AssertionError("utilization must lie in (0, 1]")


def zipf_mandelbrot_probs(n: int, s: float, q: float) -> np.ndarray:
    """Normalised Zipf-Mandelbrot probabilities for ranks 1..n."""
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = 1.0 / (ranks + q) ** s
    return weights / weights.sum()


def build_corpus_stats(config: CorpusConfig | None = None) -> CorpusStats:
    """Generate the per-term statistics of a synthetic collection.

    Document frequency follows the standard occupancy approximation
    ``df = N * (1 - exp(-p * L))`` for per-token probability ``p``, doc
    count ``N`` and mean doc length ``L``, with multiplicative noise so
    same-rank terms differ (as in a real collection).
    """
    config = config or CorpusConfig()
    rng = make_rng(config.seed)
    n = config.vocab_size

    probs = zipf_mandelbrot_probs(n, config.zipf_s, config.zipf_q)

    total_tokens = config.num_docs * config.avg_doc_len
    expected_ctf = probs * total_tokens
    noise = rng.lognormal(mean=0.0, sigma=0.35, size=n)
    coll_freqs = np.maximum(1, np.round(expected_ctf * noise)).astype(np.int64)

    p_in_doc = 1.0 - np.exp(-probs * noise * config.avg_doc_len)
    doc_freqs = np.round(config.num_docs * p_in_doc).astype(np.int64)
    doc_freqs = np.clip(doc_freqs, 1, config.num_docs)
    coll_freqs = np.maximum(coll_freqs, doc_freqs)

    # Utilization (fraction of the frequency-sorted list actually traversed
    # during query processing, Fig. 3a): early termination cuts deeper into
    # long lists on average, but the measured distribution is widely
    # scattered — some head terms are nearly fully traversed, some barely.
    # Model: beta-distributed with a mean that decays with list length.
    length_rank = np.argsort(np.argsort(-doc_freqs))  # 0 = longest list
    frac = length_rank / max(1, n - 1)
    mean_u = 0.22 + 0.68 * frac          # longest ~0.22, shortest ~0.90
    concentration = 3.0
    a = np.maximum(1e-3, mean_u * concentration)
    b = np.maximum(1e-3, (1.0 - mean_u) * concentration)
    base = np.clip(rng.beta(a, b), 0.02, 1.0)
    # Short lists (a few postings) are effectively always fully read.
    base[doc_freqs <= 16] = 1.0

    stats = CorpusStats(
        config=config,
        term_probs=probs,
        doc_freqs=doc_freqs,
        coll_freqs=coll_freqs,
        utilization=base,
    )
    stats.validate()
    return stats
