"""Query representation."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Query"]


@dataclass(frozen=True)
class Query:
    """A user query: an ordered tuple of term ids.

    ``key`` (the canonical form used for result-cache lookup) treats
    queries as bags of terms, matching how result caches key on the
    normalised query string.
    """

    query_id: int
    terms: tuple[int, ...]
    text: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("a query must contain at least one term")

    @property
    def key(self) -> tuple[int, ...]:
        """Canonical cache key: sorted unique term ids."""
        return tuple(sorted(set(self.terms)))

    def __len__(self) -> int:
        return len(self.terms)
