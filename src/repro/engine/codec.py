"""Posting-list compression: d-gaps + variable-byte encoding.

Index compression is one of the throughput techniques the paper's
introduction lists alongside caching, and it is what Lucene actually
stores (vInt-coded deltas).  The codec here serialises a frequency-sorted
posting list into the byte layout a real index file would have:

* postings are stored as (doc-gap, tf) pairs within descending-tf runs —
  inside one tf run doc ids ascend, so gaps stay small;
* both fields are variable-byte coded (7 data bits per byte, high bit =
  continuation).

``encoded_size`` gives the exact on-disk size without materialising the
bytes, which lets the layout use realistic compressed extents.

The encode/decode kernels are numpy block operations (continuation-bit
masks, ``np.cumsum`` group boundaries, vectorized shift/OR accumulation)
proven byte-identical to the retained scalar reference implementations
(``_scalar_varbyte_encode`` / ``_scalar_varbyte_decode``) by the
Hypothesis suite in ``tests/test_engine_codec.py``.  Streams whose runs
could exceed 63 bits fall back to the scalar path so overflow behaviour
is exactly the reference's.
"""

from __future__ import annotations

import numpy as np

from repro._hot import HOT
from repro.engine.postings import PostingList

__all__ = [
    "varbyte_encode",
    "varbyte_decode",
    "varbyte_decode_stream",
    "encode_posting_list",
    "decode_posting_list",
    "encoded_size",
    "estimate_compressed_list_bytes",
]

#: Longest varbyte run the vectorized decoder handles: 9 bytes = 63 data
#: bits, the most an int64-encoded value can legitimately need.  Longer
#: runs are delegated to the scalar reference so corrupt streams fail
#: exactly as they always did (64-bit guard, OverflowError).
_MAX_VECTOR_RUN = 9


# ---------------------------------------------------------------------------
# Scalar reference implementations (retained: property tests pin the
# vectorized kernels to these, and pathological streams fall back here)
# ---------------------------------------------------------------------------

def _scalar_varbyte_encode(values: np.ndarray) -> bytes:
    """Reference encoder: one value at a time, 7 bits per byte."""
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 0:
        raise ValueError("varbyte cannot encode negative values")
    out = bytearray()
    for v in values.tolist():
        while True:
            byte = v & 0x7F
            v >>= 7
            if v:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def _scalar_varbyte_decode(
    data: bytes, start: int = 0, count: int | None = None
) -> tuple[np.ndarray, int]:
    """Reference decoder; returns ``(values, next_offset)``.

    A stream whose *last* byte carries the continuation bit is truncated
    mid-run and always raises — even when ``count`` values were already
    decoded, so trailing garbage cannot hide behind an early stop.
    """
    if data and data[-1] & 0x80:
        raise ValueError("truncated varbyte stream")
    if count is not None and count <= 0:
        return np.empty(0, dtype=np.int64), start
    values: list[int] = []
    current = 0
    shift = 0
    offset = start
    for pos in range(start, len(data)):
        byte = data[pos]
        current |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
            if shift > 63:
                raise ValueError("varbyte run exceeds 64 bits (corrupt stream)")
        else:
            values.append(current)
            current = 0
            shift = 0
            offset = pos + 1
            if count is not None and len(values) >= count:
                break
    return np.array(values, dtype=np.int64), offset


# ---------------------------------------------------------------------------
# Vectorized kernels
# ---------------------------------------------------------------------------

def varbyte_encode(values: np.ndarray) -> bytes:
    """Variable-byte encode an array of non-negative integers."""
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return b""
    if values.min() < 0:
        raise ValueError("varbyte cannot encode negative values")
    # Bytes per value: how many 7-bit groups until the value is exhausted.
    nbytes = np.ones(values.size, dtype=np.int64)
    rest = values >> 7
    while rest.any():
        nbytes += rest > 0
        rest >>= 7
    width = int(nbytes.max())
    shifts = 7 * np.arange(width, dtype=np.int64)
    groups = ((values[:, None] >> shifts) & 0x7F).astype(np.uint8)
    position = np.arange(width)
    keep = position < nbytes[:, None]          # groups this value occupies
    cont = position < (nbytes - 1)[:, None]    # all but the last get the bit
    groups[cont] |= 0x80
    # Row-major flatten of the kept groups = little-endian groups per
    # value, values concatenated in order — the reference byte stream.
    return groups[keep].tobytes()


def varbyte_decode_stream(
    data: bytes, start: int = 0, count: int | None = None
) -> tuple[np.ndarray, int]:
    """Decode a variable-byte stream from ``start``; returns
    ``(values, next_offset)``.

    ``count`` bounds the output length; ``next_offset`` is the position
    one past the last byte consumed, so a caller can resume decoding the
    remainder without re-scanning (see :func:`decode_posting_list`).
    A stream ending mid-run (dangling continuation bit) raises even when
    ``count`` values were already produced — trailing garbage never
    hides behind an early stop.
    """
    arr = np.frombuffer(data, dtype=np.uint8, offset=start)
    if arr.size == 0:
        return np.empty(0, dtype=np.int64), start
    if arr[-1] & 0x80:
        raise ValueError("truncated varbyte stream")
    term = arr < 0x80
    ends = np.nonzero(term)[0]
    starts = np.empty_like(ends)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    max_len = int(lengths.max())
    if max_len > _MAX_VECTOR_RUN:
        # >63-bit runs: the scalar reference owns the corrupt-stream
        # semantics (64-bit guard / OverflowError), byte for byte.
        return _scalar_varbyte_decode(data, start, count)
    n = ends.size
    if count is not None and count < n:
        n = max(0, count)
        ends = ends[:n]
        starts = starts[:n]
        lengths = lengths[:n]
        if n == 0:
            return np.empty(0, dtype=np.int64), start
        max_len = int(lengths.max())
    payload = (arr & 0x7F).astype(np.int64)
    values = payload[starts].copy()
    for k in range(1, max_len):
        more = lengths > k
        values[more] |= payload[starts[more] + k] << (7 * k)
    return values, start + int(ends[-1]) + 1


def varbyte_decode(data: bytes, count: int | None = None) -> np.ndarray:
    """Decode a variable-byte stream; ``count`` bounds the output length."""
    return varbyte_decode_stream(data, 0, count)[0]


# ---------------------------------------------------------------------------
# Posting-list framing
# ---------------------------------------------------------------------------

def _gaps_within_tf_runs(plist: PostingList) -> np.ndarray:
    """Doc-gap transform: within each equal-tf run, ascending doc ids are
    replaced by deltas (first of a run keeps its absolute id)."""
    doc_ids = plist.doc_ids
    if doc_ids.size == 0:
        return doc_ids.copy()
    gaps = doc_ids.copy()
    tfs = plist.tfs
    same_run = np.zeros(doc_ids.size, dtype=bool)
    same_run[1:] = tfs[1:] == tfs[:-1]
    gaps[same_run] = doc_ids[same_run] - np.where(
        same_run, np.concatenate([[0], doc_ids[:-1]]), 0
    )[same_run]
    return gaps


def _undo_gaps_within_runs(gaps: np.ndarray, tfs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_gaps_within_tf_runs` as one segmented cumsum.

    ``doc_id[i] = sum(gaps[s..i])`` where ``s`` is the start of ``i``'s
    equal-tf run, computed for every run at once: a global cumsum minus
    each run's starting prefix, broadcast per segment.
    """
    n = gaps.size
    if n == 0:
        return gaps.copy()
    new_run = np.ones(n, dtype=bool)
    new_run[1:] = tfs[1:] != tfs[:-1]
    seg_id = np.cumsum(new_run) - 1
    seg_starts = np.nonzero(new_run)[0]
    cs = np.cumsum(gaps)
    before_seg = cs[seg_starts] - gaps[seg_starts]
    return cs - before_seg[seg_id]


def encode_posting_list(plist: PostingList) -> bytes:
    """Serialise a frequency-sorted posting list."""
    gaps = _gaps_within_tf_runs(plist)
    interleaved = np.empty(2 * len(plist), dtype=np.int64)
    interleaved[0::2] = gaps
    interleaved[1::2] = plist.tfs
    header = varbyte_encode(np.array([plist.term_id, len(plist)]))
    return header + varbyte_encode(interleaved)


def decode_posting_list(data: bytes) -> PostingList:
    """Inverse of :func:`encode_posting_list`.

    One pass over the stream: header and body decode together, so the
    body is never re-scanned.  The stream must contain *exactly* the
    header plus ``2 * n`` body values — truncation and trailing bytes
    both raise.
    """
    values, offset = varbyte_decode_stream(data)
    if values.size < 2:
        raise ValueError("truncated posting-list header")
    term_id, n = int(values[0]), int(values[1])
    HOT.postings_decoded += n
    if values.size < 2 + 2 * n:
        raise ValueError("truncated posting-list payload")
    if values.size > 2 + 2 * n or offset != len(data):
        raise ValueError("trailing bytes after posting-list payload")
    body = values[2:]
    gaps = body[0::2]
    tfs = body[1::2].astype(np.int32)
    doc_ids = _undo_gaps_within_runs(gaps, tfs)
    return PostingList(term_id, doc_ids, tfs)


def estimate_compressed_list_bytes(
    doc_freqs: np.ndarray, num_docs: int, mean_tf: float = 2.2
) -> np.ndarray:
    """Analytic per-term compressed sizes for a statistical index.

    Mean doc-gap within a list of df postings is ~num_docs/df, so the
    gap field costs ``ceil(bits(num_docs/df)/7)`` bytes and the tf field
    ~1 byte (tf is small).  Matches :func:`encoded_size` to within a few
    percent on generated lists.
    """
    if num_docs <= 0:
        raise ValueError("num_docs must be positive")
    df = np.asarray(doc_freqs, dtype=np.float64)
    if (df < 1).any():
        raise ValueError("doc_freqs must be >= 1")
    mean_gap = np.maximum(1.0, num_docs / df)
    gap_bytes = np.floor(np.log2(mean_gap)) // 7 + 1
    tf_bytes = np.floor(np.log2(max(1.0, mean_tf))) // 7 + 1
    return (df * (gap_bytes + tf_bytes)).astype(np.int64) + 2  # +2 header


def encoded_size(plist: PostingList) -> int:
    """Exact byte size of :func:`encode_posting_list` output."""
    def vb_len(values: np.ndarray) -> int:
        values = np.maximum(np.asarray(values, dtype=np.int64), 1)
        return int(np.sum(np.floor(np.log2(values)) // 7 + 1))

    gaps = _gaps_within_tf_runs(plist)
    header = vb_len(np.array([max(1, plist.term_id), max(1, len(plist))]))
    return header + vb_len(gaps) + vb_len(plist.tfs)
