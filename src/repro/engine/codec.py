"""Posting-list compression: d-gaps + variable-byte encoding.

Index compression is one of the throughput techniques the paper's
introduction lists alongside caching, and it is what Lucene actually
stores (vInt-coded deltas).  The codec here serialises a frequency-sorted
posting list into the byte layout a real index file would have:

* postings are stored as (doc-gap, tf) pairs within descending-tf runs —
  inside one tf run doc ids ascend, so gaps stay small;
* both fields are variable-byte coded (7 data bits per byte, high bit =
  continuation).

``encoded_size`` gives the exact on-disk size without materialising the
bytes, which lets the layout use realistic compressed extents.
"""

from __future__ import annotations

import numpy as np

from repro._hot import HOT
from repro.engine.postings import PostingList

__all__ = [
    "varbyte_encode",
    "varbyte_decode",
    "encode_posting_list",
    "decode_posting_list",
    "encoded_size",
    "estimate_compressed_list_bytes",
]


def varbyte_encode(values: np.ndarray) -> bytes:
    """Variable-byte encode an array of non-negative integers."""
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 0:
        raise ValueError("varbyte cannot encode negative values")
    out = bytearray()
    for v in values.tolist():
        while True:
            byte = v & 0x7F
            v >>= 7
            if v:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def varbyte_decode(data: bytes, count: int | None = None) -> np.ndarray:
    """Decode a variable-byte stream; ``count`` bounds the output length."""
    values: list[int] = []
    current = 0
    shift = 0
    for byte in data:
        current |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
            if shift > 63:
                raise ValueError("varbyte run exceeds 64 bits (corrupt stream)")
        else:
            values.append(current)
            current = 0
            shift = 0
            if count is not None and len(values) >= count:
                break
    else:
        if shift != 0:
            raise ValueError("truncated varbyte stream")
    return np.array(values, dtype=np.int64)


def _gaps_within_tf_runs(plist: PostingList) -> np.ndarray:
    """Doc-gap transform: within each equal-tf run, ascending doc ids are
    replaced by deltas (first of a run keeps its absolute id)."""
    doc_ids = plist.doc_ids
    if doc_ids.size == 0:
        return doc_ids.copy()
    gaps = doc_ids.copy()
    tfs = plist.tfs
    same_run = np.zeros(doc_ids.size, dtype=bool)
    same_run[1:] = tfs[1:] == tfs[:-1]
    gaps[same_run] = doc_ids[same_run] - np.where(
        same_run, np.concatenate([[0], doc_ids[:-1]]), 0
    )[same_run]
    return gaps


def encode_posting_list(plist: PostingList) -> bytes:
    """Serialise a frequency-sorted posting list."""
    gaps = _gaps_within_tf_runs(plist)
    interleaved = np.empty(2 * len(plist), dtype=np.int64)
    interleaved[0::2] = gaps
    interleaved[1::2] = plist.tfs
    header = varbyte_encode(np.array([plist.term_id, len(plist)]))
    return header + varbyte_encode(interleaved)


def decode_posting_list(data: bytes) -> PostingList:
    """Inverse of :func:`encode_posting_list`."""
    header = varbyte_decode(data, count=2)
    if header.size < 2:
        raise ValueError("truncated posting-list header")
    term_id, n = int(header[0]), int(header[1])
    HOT.postings_decoded += n
    # Re-decode the whole stream and skip the two header values.
    values = varbyte_decode(data, count=2 + 2 * n)
    if values.size < 2 + 2 * n:
        raise ValueError("truncated posting-list payload")
    body = values[2:]
    gaps = body[0::2]
    tfs = body[1::2].astype(np.int32)
    # Undo the in-run delta transform.
    doc_ids = gaps.copy()
    for i in range(1, n):
        if tfs[i] == tfs[i - 1]:
            doc_ids[i] = doc_ids[i - 1] + gaps[i]
    return PostingList(term_id, doc_ids, tfs)


def estimate_compressed_list_bytes(
    doc_freqs: np.ndarray, num_docs: int, mean_tf: float = 2.2
) -> np.ndarray:
    """Analytic per-term compressed sizes for a statistical index.

    Mean doc-gap within a list of df postings is ~num_docs/df, so the
    gap field costs ``ceil(bits(num_docs/df)/7)`` bytes and the tf field
    ~1 byte (tf is small).  Matches :func:`encoded_size` to within a few
    percent on generated lists.
    """
    if num_docs <= 0:
        raise ValueError("num_docs must be positive")
    df = np.asarray(doc_freqs, dtype=np.float64)
    if (df < 1).any():
        raise ValueError("doc_freqs must be >= 1")
    mean_gap = np.maximum(1.0, num_docs / df)
    gap_bytes = np.floor(np.log2(mean_gap)) // 7 + 1
    tf_bytes = np.floor(np.log2(max(1.0, mean_tf))) // 7 + 1
    return (df * (gap_bytes + tf_bytes)).astype(np.int64) + 2  # +2 header


def encoded_size(plist: PostingList) -> int:
    """Exact byte size of :func:`encode_posting_list` output."""
    def vb_len(values: np.ndarray) -> int:
        values = np.maximum(np.asarray(values, dtype=np.int64), 1)
        return int(np.sum(np.floor(np.log2(values)) // 7 + 1))

    gaps = _gaps_within_tf_runs(plist)
    header = vb_len(np.array([max(1, plist.term_id), max(1, len(plist))]))
    return header + vb_len(gaps) + vb_len(plist.tfs)
