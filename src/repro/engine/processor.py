"""Top-k query processor with early termination.

Processing follows the filtered vector model [18] the paper assumes:
posting lists are frequency-sorted, so the processor traverses only a
prefix of each list — the *utilization rate* PU — before terminating.

The processor separates **planning** (how much of each list this query
will touch — what the cache manager needs) from **execution** (actually
scoring postings — what the examples need), so hit-ratio and latency
experiments can run at full speed without materialising posting data,
while end-to-end examples still produce real ranked results.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro._hot import HOT
from repro.engine.index import InvertedIndex
from repro.engine.postings import POSTING_BYTES
from repro.engine.query import Query
from repro.engine.results import DEFAULT_TOP_K, ResultEntry, SearchResult
from repro.sim.rng import make_rng

__all__ = ["ProcessorCosts", "ListDemand", "QueryPlan", "QueryProcessor"]


@dataclass(frozen=True)
class ProcessorCosts:
    """CPU cost model of retrieval computation (charged to virtual time)."""

    #: parse + dictionary lookup per query
    fixed_us: float = 100.0
    #: score accumulation per posting traversed
    per_posting_us: float = 0.05
    #: assembling one result summary (snippet generation etc.)
    per_result_us: float = 2.0


class ListDemand(NamedTuple):
    """How much of one term's posting list this query traversal needs.

    A named tuple rather than a frozen dataclass: planning builds one per
    term per query, so construction sits on the serving hot path.
    """

    term_id: int
    #: full on-disk list size
    list_bytes: int
    #: bytes of the frequency-sorted prefix this traversal reads
    needed_bytes: int
    #: realized utilization rate for this traversal (needed/list)
    pu: float
    #: postings actually scored
    postings: int


class QueryPlan(NamedTuple):
    """The I/O and CPU demands of processing one query."""

    query: Query
    demands: tuple[ListDemand, ...]

    @property
    def total_postings(self) -> int:
        return sum(d.postings for d in self.demands)

    @property
    def total_needed_bytes(self) -> int:
        return sum(d.needed_bytes for d in self.demands)


class QueryProcessor:
    """Plans and executes queries over an :class:`InvertedIndex`."""

    def __init__(
        self,
        index: InvertedIndex,
        costs: ProcessorCosts | None = None,
        top_k: int = DEFAULT_TOP_K,
        seed: int = 1234,
    ) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.index = index
        self.costs = costs or ProcessorCosts()
        self.top_k = top_k
        self._rng = make_rng(seed)
        # Surrogate rankings are pure functions of the query key (and
        # top_k / corpus size), so repeat misses reuse the entry.
        self._surrogates: dict[tuple[int, ...], ResultEntry] = {}
        self._surrogate_steps: tuple[tuple[int, ...], tuple[float, ...]] | None = None

    # -- planning -------------------------------------------------------------

    def plan(self, query: Query) -> QueryPlan:
        """Determine per-term traversal depth for this query.

        The realized utilization wobbles around the term's base rate
        (different query contexts terminate at different depths), exactly
        the behaviour Formula 1 captures with its PU parameter.
        """
        demands = []
        key = query.key
        # Traversal depth varies query to query around the term's base
        # utilization: different query mixes terminate at different
        # depths (sigma 0.3 spreads realized PU roughly 0.55x-1.8x).
        # One vectorized draw per query consumes the identical RNG
        # stream as per-term scalar draws.
        wobbles = self._rng.lognormal(mean=0.0, sigma=0.30, size=len(key))
        term = self.index.lexicon.term
        for term_id, wobble in zip(key, wobbles.tolist()):
            info = term(term_id)
            pu = info.utilization * wobble
            pu = 0.01 if pu < 0.01 else (1.0 if pu > 1.0 else pu)
            postings = max(1, int(round(info.doc_freq * pu)))
            # Bytes follow the on-disk format (8 B/posting raw, less when
            # the index is compressed).
            needed = max(1, round(postings * info.list_bytes / info.doc_freq))
            demands.append(
                ListDemand(
                    term_id=term_id,
                    list_bytes=info.list_bytes,
                    needed_bytes=needed,
                    pu=needed / info.list_bytes,
                    postings=postings,
                )
            )
        return QueryPlan(query=query, demands=tuple(demands))

    def cpu_time_us(self, plan: QueryPlan) -> float:
        """Retrieval computation time for a planned query."""
        return (
            self.costs.fixed_us
            + self.costs.per_posting_us * plan.total_postings
            + self.costs.per_result_us * self.top_k
        )

    # -- execution ----------------------------------------------------------------

    def execute(self, plan: QueryPlan, materialize: bool = False) -> ResultEntry:
        """Produce the top-k result entry for a planned query.

        With ``materialize=True`` real posting data is fetched and scored
        (tf-idf with accumulators); otherwise a deterministic surrogate
        ranking is returned — byte-identical in size, so cache behaviour
        is unaffected, but ~100x faster for large sweeps.
        """
        if materialize:
            results = self._score(plan)
        else:
            key = plan.query.key
            cached = self._surrogates.get(key)
            if cached is None:
                cached = self._surrogates[key] = ResultEntry(
                    query_key=key, results=tuple(self._surrogate(plan)),
                    top_k=self.top_k,
                )
            return cached
        return ResultEntry(
            query_key=plan.query.key, results=tuple(results), top_k=self.top_k
        )

    def _score(self, plan: QueryPlan) -> list[SearchResult]:
        """tf-idf scoring over the traversed prefixes."""
        acc: dict[int, float] = {}
        for demand in plan.demands:
            plist = self.index.postings(demand.term_id)
            prefix_n = min(demand.postings, len(plist))
            if prefix_n == 0:
                continue
            HOT.postings_decoded += prefix_n
            idf = self.index.idf(demand.term_id)
            doc_ids = plist.doc_ids[:prefix_n]
            scores = np.sqrt(plist.tfs[:prefix_n].astype(np.float64)) * idf
            for doc, s in zip(doc_ids.tolist(), scores.tolist()):
                acc[doc] = acc.get(doc, 0.0) + s
        top = heapq.nlargest(self.top_k, acc.items(), key=lambda kv: (kv[1], -kv[0]))
        return [SearchResult(doc_id=d, score=s) for d, s in top]

    def _surrogate(self, plan: QueryPlan) -> list[SearchResult]:
        """Deterministic placeholder ranking derived from the query key."""
        base = hash(plan.query.key) & 0x7FFFFFFF
        n_docs = self.index.num_docs
        k = min(self.top_k, n_docs)
        steps = self._surrogate_steps
        if steps is None or len(steps[1]) != k:
            # Per-rank constants: the doc-id stride and the descending
            # score ladder only depend on k, not on the query.
            steps = self._surrogate_steps = (
                tuple(7919 * i for i in range(k)),
                tuple(float(k - i) for i in range(k)),
            )
        strides, scores = steps
        return list(map(
            SearchResult,
            ((base + s) % n_docs for s in strides),
            scores,
        ))
