"""Index shards: one document partition, one server, one hybrid cache.

Document partitioning (each shard indexes 1/N of the collection, every
shard sees every query) is what large engines deploy — it keeps tail
latency bounded and lets result quality degrade gracefully — and it is
the regime the paper's per-server cache operates in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CacheConfig
from repro.core.events import EventCounter
from repro.core.manager import CacheManager, QueryOutcome, build_hierarchy_for
from repro.engine.corpus import CorpusConfig, CorpusStats, build_corpus_stats
from repro.engine.index import InvertedIndex
from repro.engine.query import Query
from repro.engine.querylog import QueryLog

__all__ = ["IndexShard", "partition_corpus"]


def partition_corpus(
    base: CorpusConfig, num_shards: int
) -> list[CorpusStats]:
    """Split a collection over ``num_shards`` document partitions.

    Every shard keeps the full vocabulary (documents are hashed across
    shards, so every common term appears everywhere) with ~1/N of each
    term's postings.  Shards get derived seeds so their lists differ.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    docs_per_shard = max(1, base.num_docs // num_shards)
    return [
        build_corpus_stats(
            CorpusConfig(
                num_docs=docs_per_shard,
                vocab_size=base.vocab_size,
                avg_doc_len=base.avg_doc_len,
                zipf_s=base.zipf_s,
                zipf_q=base.zipf_q,
                seed=base.seed + 1000 * shard,
            )
        )
        for shard in range(num_shards)
    ]


@dataclass
class _ShardResult:
    outcome: QueryOutcome
    response_us: float


class IndexShard:
    """One index server: a partition's index plus its two-level cache."""

    def __init__(
        self,
        shard_id: int,
        stats: CorpusStats,
        cache_config: CacheConfig,
        seed: int = 1234,
        telemetry=None,
        clock=None,
    ) -> None:
        if shard_id < 0:
            raise ValueError("shard_id cannot be negative")
        self.shard_id = shard_id
        self.index = InvertedIndex(stats)
        self.cache_config = cache_config
        # A shared cluster clock needs per-shard device names; private
        # clocks keep the seed's bare names (golden-parity fixtures).
        hierarchy = build_hierarchy_for(
            cache_config, self.index, clock=clock,
            device_suffix=f"#{shard_id}" if clock is not None else "",
        )
        # Per-shard telemetry (repro.obs): each server owns its registry
        # and tracer; the broker aggregates registries across shards.
        self.telemetry = telemetry
        self.manager = CacheManager(cache_config, hierarchy, self.index,
                                    telemetry=telemetry)
        # Per-shard cache observability via the event-hook seam instead of
        # reaching into the manager's cache internals.
        self.cache_events = EventCounter(self.manager.events)
        self._seed = seed + shard_id

    def warmup_static(self, log: QueryLog, analyze_queries: int | None = None):
        """Provision the static partition when the policy supports one."""
        if self.manager.policy.supports_static and self.cache_config.uses_ssd:
            return self.manager.warmup_static(log, analyze_queries=analyze_queries)
        return None

    def process_query(self, query: Query) -> QueryOutcome:
        return self.manager.process_query(query)

    @property
    def stats(self):
        return self.manager.stats

    @property
    def ssd_erase_count(self) -> int:
        return self.manager.ssd.erase_count if self.manager.ssd else 0

    @property
    def ssd_flush_count(self) -> int:
        """SSD cache-file writes observed via the event hooks."""
        return (self.cache_events.get("flush", "result")
                + self.cache_events.get("flush", "list"))

    def describe(self) -> str:
        policy = self.cache_config.policy
        return (
            f"shard {self.shard_id}: {self.index.num_docs:,} docs, "
            f"{getattr(policy, 'value', str(policy))} cache"
        )
