"""The broker: query fan-out and top-k merging across shards.

A query is broadcast to every shard in parallel; the broker's response
time is the *slowest* shard's (fan-out max) plus a fixed merge cost.
Each shard replies with its local top-k and the broker keeps the global
best k — document partitioning makes this merge exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.shard import IndexShard
from repro.core.config import CacheConfig, Policy
from repro.engine.corpus import CorpusConfig
from repro.engine.query import Query
from repro.engine.querylog import QueryLog

__all__ = ["ClusterOutcome", "BrokerStats", "Broker"]


@dataclass(frozen=True)
class ClusterOutcome:
    """One query's cluster-level result."""

    query: Query
    #: fan-out latency: the slowest shard plus the broker merge
    response_us: float
    #: per-shard service times, indexed by shard id
    shard_times_us: tuple[float, ...]
    #: how many shards answered from their result caches (L1 or L2)
    shard_result_hits: int


@dataclass
class BrokerStats:
    queries: int = 0
    total_response_us: float = 0.0
    #: sum over queries of (max shard time - mean shard time): the price
    #: of waiting for stragglers
    straggler_us: float = 0.0
    #: queries answered from the broker's own merged-result cache
    broker_cache_hits: int = 0
    per_shard_busy_us: list[float] = field(default_factory=list)

    @property
    def mean_response_us(self) -> float:
        return self.total_response_us / self.queries if self.queries else 0.0

    @property
    def throughput_qps(self) -> float:
        if self.total_response_us <= 0:
            return 0.0
        return self.queries / (self.total_response_us / 1e6)

    @property
    def mean_straggler_us(self) -> float:
        return self.straggler_us / self.queries if self.queries else 0.0


class Broker:
    """Fans queries out to shards and accounts fan-out latency.

    ``result_cache_entries`` > 0 enables a broker-level cache of merged
    results (the natural cluster extension of result caching [16][17]):
    a broker hit answers in ``broker_hit_us`` without touching any shard.
    """

    def __init__(
        self,
        shards: list[IndexShard],
        merge_overhead_us: float = 200.0,
        result_cache_entries: int = 0,
        broker_hit_us: float = 50.0,
    ) -> None:
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        ids = [s.shard_id for s in shards]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate shard ids")
        if merge_overhead_us < 0:
            raise ValueError("merge_overhead_us cannot be negative")
        if result_cache_entries < 0:
            raise ValueError("result_cache_entries cannot be negative")
        if broker_hit_us < 0:
            raise ValueError("broker_hit_us cannot be negative")
        self.shards = shards
        self.merge_overhead_us = merge_overhead_us
        self.result_cache_entries = result_cache_entries
        self.broker_hit_us = broker_hit_us
        from repro.core.lru import LruList

        self._result_cache: LruList[tuple[int, ...], bool] = LruList()
        self.stats = BrokerStats(per_shard_busy_us=[0.0] * len(shards))

    @classmethod
    def build(
        cls,
        corpus: CorpusConfig,
        num_shards: int,
        cache_config: CacheConfig,
        merge_overhead_us: float = 200.0,
        telemetry: bool = False,
        timeline_window_us: float | None = None,
        shared_clock: bool = False,
    ) -> "Broker":
        """Partition ``corpus`` and assemble a cluster of cached shards.

        ``telemetry=True`` gives every shard its own
        :class:`~repro.obs.Telemetry` (registry only, no spans — span
        volume across a whole cluster would swamp memory); aggregate the
        registries with :meth:`aggregated_registry`.
        ``timeline_window_us`` additionally attaches a windowed recorder
        per shard (implies telemetry), enabling :meth:`shard_timelines`
        and :meth:`detect_skew`.  ``shared_clock=True`` puts every shard
        on one simulated timeline (device names gain ``#<shard>``
        suffixes) — required for :meth:`run_open_loop`'s concurrent
        fan-out, incompatible with the sequential :meth:`process_query`
        accounting (which sums per-shard times instead of overlapping
        them).
        """
        from repro.cluster.shard import partition_corpus

        clock = None
        if shared_clock:
            from repro.sim.clock import VirtualClock

            clock = VirtualClock()
        partitions = partition_corpus(corpus, num_shards)
        shards = []
        for i, stats in enumerate(partitions):
            tel = None
            if telemetry or timeline_window_us is not None:
                from repro.obs import Telemetry

                tel = Telemetry(trace=False)
                if timeline_window_us is not None:
                    tel.attach_timeline(window_us=timeline_window_us)
            shards.append(IndexShard(i, stats, cache_config, telemetry=tel,
                                     clock=clock))
        return cls(shards, merge_overhead_us=merge_overhead_us)

    def warmup_static(self, log: QueryLog, analyze_queries: int | None = None) -> None:
        for shard in self.shards:
            shard.warmup_static(log, analyze_queries=analyze_queries)

    def process_query(self, query: Query) -> ClusterOutcome:
        """Broadcast one query; latency is max over shards + merge."""
        if self.result_cache_entries > 0 and self._result_cache.get(query.key):
            self._result_cache.touch(query.key)
            self.stats.queries += 1
            self.stats.total_response_us += self.broker_hit_us
            self.stats.broker_cache_hits += 1
            return ClusterOutcome(
                query=query,
                response_us=self.broker_hit_us,
                shard_times_us=(),
                shard_result_hits=0,
            )
        times: list[float] = []
        hits = 0
        for i, shard in enumerate(self.shards):
            outcome = shard.process_query(query)
            times.append(outcome.response_us)
            self.stats.per_shard_busy_us[i] += outcome.response_us
            if outcome.result_hit_level > 0:
                hits += 1
        slowest = max(times)
        response = slowest + self.merge_overhead_us
        self.stats.queries += 1
        self.stats.total_response_us += response
        self.stats.straggler_us += slowest - sum(times) / len(times)
        if self.result_cache_entries > 0:
            self._result_cache.insert(query.key, True)
            while len(self._result_cache) > self.result_cache_entries:
                self._result_cache.pop_lru()
        return ClusterOutcome(
            query=query,
            response_us=response,
            shard_times_us=tuple(times),
            shard_result_hits=hits,
        )

    def run_open_loop(
        self,
        queries,
        arrivals,
        concurrency: int = 4,
        max_queue: int = 64,
        cpu_lanes: int = 1,
        label: str = "cluster",
        blame=None,
    ):
        """Serve ``queries`` open-loop with concurrent shard fan-out.

        Requires a cluster built with ``shared_clock=True``.  Each
        admitted query spawns one kernel subtask per shard, joins them
        (fan-out max emerges from the join, stragglers and all), then
        pays the merge cost on a ``broker`` CPU resource.  Returns an
        :class:`~repro.workloads.openloop.OpenLoopResult`.

        ``blame`` optionally takes a
        :class:`~repro.obs.blame.BlameRecorder`; it is attached to the
        fan-out kernel and admission control, so per-query critical
        paths cross the join into the straggler shard's resources.
        """
        from repro.sim.kernel import AdmissionControl, Kernel
        from repro.workloads.openloop import (OpenLoopResult,
                                              schedule_arrivals)

        queries = list(queries)
        if not queries:
            raise ValueError("no queries to serve")
        clock = self.shards[0].manager.clock
        for shard in self.shards[1:]:
            if shard.manager.clock is not clock:
                raise ValueError(
                    "open-loop fan-out needs Broker.build(shared_clock=True)"
                )
        kernel = Kernel(clock)
        for shard in self.shards:
            shard.manager.hierarchy.attach_kernel(kernel, cpu_lanes=cpu_lanes)
        kernel.add_resource("broker", lanes=max(1, cpu_lanes))
        admission = AdmissionControl(kernel, max_inflight=concurrency,
                                     max_queue=max_queue)
        if blame is not None:
            blame.attach(kernel, admission)

        start_us = clock.now_us
        responses: list[float] = []
        waits: list[float] = []

        def submit(i: int, arrival_us: float) -> None:
            query = queries[i]

            def body():
                begin = clock.now_us
                subtasks = [
                    kernel.spawn(
                        lambda s=shard: s.process_query(query),
                        name=f"q{i}s{shard.shard_id}",
                    )
                    for shard in self.shards
                ]
                for t in subtasks:
                    t.join()
                clock.consume("broker", self.merge_overhead_us)
                waits.append(begin - arrival_us)
                responses.append(clock.now_us - arrival_us)

            admission.submit(body, name=f"q{i}")

        schedule_arrivals(kernel, arrivals, len(queries), submit)
        try:
            kernel.run()
            admission.check_invariants()
        finally:
            clock.bind_kernel(None)

        duration = clock.now_us - start_us
        if responses:
            from repro.obs.instruments import Histogram

            hist = Histogram(lo=1.0, growth=1.02)
            hist.record_many(responses)
            p50, p90, p99, p999 = hist.percentiles((50.0, 90.0, 99.0, 99.9))
        else:
            p50 = p90 = p99 = p999 = 0.0
        mean = (sum(responses) / len(responses)) if responses else 0.0
        offered = getattr(arrivals, "rate_qps",
                          getattr(arrivals, "peak_qps", 0.0))
        return OpenLoopResult(
            label=label,
            arrival=getattr(arrivals, "kind", type(arrivals).__name__),
            offered_qps=float(offered),
            concurrency=concurrency,
            duration_us=duration,
            arrived=admission.stats.arrived,
            completed=admission.stats.completed,
            rejected=admission.stats.rejected,
            mean_response_us=mean,
            p50_us=p50,
            p90_us=p90,
            p99_us=p99,
            p999_us=p999,
            mean_wait_us=(sum(waits) / len(waits)) if waits else 0.0,
            peak_inflight=admission.peak_depth,
            peak_resource_depth={r.name: r.peak_depth
                                 for r in kernel.resources()},
            utilization={r.name: r.utilization(duration)
                         for r in kernel.resources()},
        )

    # -- reporting ---------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def total_ssd_erases(self) -> int:
        return sum(s.ssd_erase_count for s in self.shards)

    def cache_event_totals(self):
        """Cluster-wide cache-event counts: the key-wise sum of every
        shard's :class:`~repro.core.events.EventCounter`."""
        from repro.core.events import EventCounter

        total = EventCounter()
        for shard in self.shards:
            total.merge(shard.cache_events)
        return total

    def aggregated_registry(self):
        """One merged :class:`~repro.obs.MetricsRegistry` over all shards
        that carry telemetry (counters/histograms sum across shards)."""
        from repro.obs import MetricsRegistry

        merged = MetricsRegistry()
        for shard in self.shards:
            if shard.telemetry is not None:
                merged.merge(shard.telemetry.registry)
        return merged

    def shard_timelines(self) -> dict:
        """Per-shard window records (shard id -> list of windows).

        Finalizes each shard's recorder first, so the last partial
        window is included.
        """
        out = {}
        for shard in self.shards:
            tel = shard.telemetry
            timeline = getattr(tel, "timeline", None) if tel else None
            if timeline is not None:
                timeline.finish()
                out[shard.shard_id] = list(timeline.windows)
        return out

    def detect_skew(self, series: str = "hit_ratio",
                    rel_tol: float = 0.25):
        """Cross-shard skew anomalies over one windowed series."""
        from repro.obs import detect_shard_skew

        return detect_shard_skew(self.shard_timelines(), series=series,
                                 rel_tol=rel_tol)

    def combined_hit_ratio(self) -> float:
        """Request-weighted hit ratio across all shards."""
        hits = lookups = 0
        for shard in self.shards:
            s = shard.stats
            hits += (s.result_l1_hits + s.result_l2_hits
                     + s.list_l1_hits + s.list_l2_hits)
            lookups += s.result_lookups + s.list_lookups
        return hits / lookups if lookups else 0.0

    def describe(self) -> str:
        docs = sum(s.index.num_docs for s in self.shards)
        return f"Broker({self.num_shards} shards, {docs:,} docs total)"
