"""Sharded search cluster.

The paper targets *large-scale* engines: collections are document-
partitioned over many index servers behind a broker (the Google/TodoBR
architecture its introduction cites), and the hybrid cache lives inside
each server.  This subpackage models that deployment: per-shard
:class:`~repro.core.manager.CacheManager` instances, a fan-out broker
that merges top-k results, and cluster-level accounting (fan-out latency
= slowest shard, aggregate cost, per-shard cache dilution).
"""

from repro.cluster.shard import IndexShard, partition_corpus
from repro.cluster.broker import Broker, BrokerStats, ClusterOutcome

__all__ = [
    "IndexShard",
    "partition_corpus",
    "Broker",
    "BrokerStats",
    "ClusterOutcome",
]
